//! `bench-baseline` — emits a machine-readable performance baseline.
//!
//! ```sh
//! cargo run --release -p freerider-bench --bin bench-baseline
//! cargo run --release -p freerider-bench --bin bench-baseline -- --quick --out /tmp/bench.json
//! ```
//!
//! The output (schema `freerider-bench/1`, default path
//! `benchmarks/BENCH_<git-sha>.json`) captures:
//!
//! * **kernels** — median/mean per-iteration time of the hot PHY kernels
//!   (WiFi TX/RX, Viterbi, FFT), with derived throughput where a byte
//!   count is meaningful;
//! * **trace_overhead** — the flight-recorder cost triad on WiFi RX:
//!   tracing off (A), tracing off again (A/A repeat — bounds the
//!   disabled-path cost plus measurement noise), and `all`-mode recording
//!   with a live packet scope;
//! * **experiments** — per-experiment wall-clock of the repro registry.
//!
//! `scripts/bench_diff.py` diffs a fresh baseline against the committed
//! `benchmarks/latest.json` and flags regressions beyond a configurable
//! threshold (warn-only when no committed baseline exists yet).
//!
//! Wall-clock numbers vary machine to machine; baselines are comparable
//! only within one host. The committed baseline documents the reference
//! machine and lets CI catch order-of-magnitude regressions.

use freerider_bench::micro::{bench, Summary};
use freerider_coding::convolutional::{
    encode, viterbi_decode_soft_scratch, viterbi_decode_soft_scratch_lanes,
    viterbi_decode_soft_scratch_scalar, CodeRate, ViterbiScratch, DEFAULT_VITERBI_LANES,
    VITERBI_LANE_WIDTHS,
};
use freerider_dsp::corr::{
    normalized_correlation_into, normalized_correlation_lanes_into,
    normalized_correlation_scalar_into, CORR_LANE_WIDTHS, DEFAULT_CORR_LANES,
};
use freerider_dsp::{fft, Complex};
use freerider_telemetry::profile;
use freerider_telemetry::trace::{self, TraceMode};
use freerider_telemetry::JsonWriter;
use freerider_wifi::{Receiver, RxConfig, Transmitter, TxConfig};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn git_short_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

struct KernelResult {
    name: &'static str,
    summary: Summary,
    /// Payload bytes processed per iteration (0 when not meaningful).
    bytes: u64,
}

fn write_summary(w: &mut JsonWriter, s: &Summary, bytes: u64) {
    w.begin_object();
    w.key("median_ns").u64(s.median.as_nanos() as u64);
    w.key("mean_ns").u64(s.mean.as_nanos() as u64);
    w.key("iters").u64(s.iters as u64);
    if bytes > 0 && s.median.as_nanos() > 0 {
        let mb_per_s = bytes as f64 / 1e6 / s.median.as_secs_f64();
        w.key("mb_per_s").f64((mb_per_s * 100.0).round() / 100.0);
    }
    w.end_object();
}

/// Verifies the planned 64-point FFT path against the reference
/// transform on a fixed vector, bit for bit. Wired into `verify.sh` as a
/// release-build smoke check: the planned path must never drift from the
/// reference by even one ULP, or repro byte-identity silently breaks.
fn selftest_fft() -> ExitCode {
    let data: Vec<Complex> = (0..64).map(|i| Complex::cis(i as f64 * 0.3)).collect();
    let mut reference = data.clone();
    if let Err(e) = fft::fft(&mut reference) {
        eprintln!("selftest-fft: reference FFT failed: {e}");
        return ExitCode::FAILURE;
    }
    let mut planned = [Complex::ZERO; 64];
    planned.copy_from_slice(&data);
    fft::fft64(&mut planned);
    for (i, (a, b)) in reference.iter().zip(planned.iter()).enumerate() {
        if a.re.to_bits() != b.re.to_bits() || a.im.to_bits() != b.im.to_bits() {
            eprintln!("selftest-fft: forward mismatch at bin {i}: {a:?} vs {b:?}");
            return ExitCode::FAILURE;
        }
    }
    let mut ref_inv = data.clone();
    if let Err(e) = fft::ifft(&mut ref_inv) {
        eprintln!("selftest-fft: reference IFFT failed: {e}");
        return ExitCode::FAILURE;
    }
    let mut planned_inv = [Complex::ZERO; 64];
    planned_inv.copy_from_slice(&data);
    fft::ifft64(&mut planned_inv);
    for (i, (a, b)) in ref_inv.iter().zip(planned_inv.iter()).enumerate() {
        if a.re.to_bits() != b.re.to_bits() || a.im.to_bits() != b.im.to_bits() {
            eprintln!("selftest-fft: inverse mismatch at bin {i}: {a:?} vs {b:?}");
            return ExitCode::FAILURE;
        }
    }
    println!("selftest-fft: planned 64-point FFT/IFFT bit-identical to reference");
    ExitCode::SUCCESS
}

/// One `net/serve_fanout_N` measurement: each iteration submits a tiny
/// streaming job to an in-process loopback server and drains every
/// subscriber's stream to its end. Returns the timing summary and the
/// frame count of one run (for the frames/sec derivation).
fn serve_fanout(
    label: &'static str,
    subs: usize,
    budget: Duration,
    max_iters: u32,
) -> (Summary, u64) {
    use freerider_net::{Deployment, SimConfig};
    use freerider_serve::{Client, JobSpec, Loopback, ServeConfig};

    let server = Loopback::new(&ServeConfig {
        threads: 1,
        ..ServeConfig::default()
    });
    let mut d = Deployment::open_plan().with_receiver(4.0, 0.0);
    for i in 0..30 {
        d = d.with_tag((i % 6) as f64 * 0.8 - 2.0, (i / 6) as f64 * 0.8 - 2.0);
    }
    let spec = JobSpec {
        config: SimConfig {
            rounds: 10,
            seed: 7,
            ..SimConfig::default()
        },
        deployment: d,
        stream: true,
        snapshot_every: 5,
    };
    let run = || {
        let mut submitter = Client::over(server.connect());
        let job = submitter.submit(&spec).unwrap();
        let mut watchers: Vec<_> = (1..subs)
            .map(|_| {
                let mut w = Client::over(server.connect());
                w.subscribe(job).unwrap();
                w
            })
            .collect();
        let mut frames = submitter.drain_stream().unwrap().len() as u64;
        for w in watchers.iter_mut() {
            frames += w.drain_stream().unwrap().len() as u64;
        }
        frames
    };
    let frames_per_run = run();
    (bench(label, budget, max_iters, run), frames_per_run)
}

/// The serve-path metrics-hook A/A pair: two identical fan-out-1
/// kernels whose samples are *interleaved*, so both medians see the
/// same machine noise. Two back-to-back batched runs can diverge
/// wildly when a contention window lands inside one batch;
/// interleaving makes the A/B delta a genuine bound on the
/// (unremovable) registry hook cost plus per-sample jitter.
fn serve_stats_aa(budget: Duration, max_iters: u32) -> (Summary, Summary) {
    use freerider_net::{Deployment, SimConfig};
    use freerider_serve::{Client, JobSpec, Loopback, ServeConfig};
    use std::hint::black_box;

    let server = Loopback::new(&ServeConfig {
        threads: 1,
        ..ServeConfig::default()
    });
    let mut d = Deployment::open_plan().with_receiver(4.0, 0.0);
    for i in 0..30 {
        d = d.with_tag((i % 6) as f64 * 0.8 - 2.0, (i / 6) as f64 * 0.8 - 2.0);
    }
    let spec = JobSpec {
        config: SimConfig {
            rounds: 10,
            seed: 7,
            ..SimConfig::default()
        },
        deployment: d,
        stream: true,
        snapshot_every: 5,
    };
    let run = || {
        let mut submitter = Client::over(server.connect());
        submitter.submit(&spec).unwrap();
        submitter.drain_stream().unwrap().len() as u64
    };
    black_box(run()); // warm-up
    let mut a: Vec<Duration> = Vec::new();
    let mut b: Vec<Duration> = Vec::new();
    let start = Instant::now();
    while a.len() < 3 || (start.elapsed() < budget * 2 && (a.len() as u32) < max_iters) {
        let t0 = Instant::now();
        black_box(run());
        a.push(t0.elapsed());
        let t0 = Instant::now();
        black_box(run());
        b.push(t0.elapsed());
    }
    let summarize = |mut v: Vec<Duration>| {
        v.sort_unstable();
        Summary {
            iters: v.len() as u32,
            median: v[v.len() / 2],
            mean: v.iter().sum::<Duration>() / v.len() as u32,
        }
    };
    (summarize(a), summarize(b))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--selftest-fft") {
        return selftest_fft();
    }
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let mut out_path: Option<String> = None;
    let mut lanes_mode = "all".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--out" {
            match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--lanes" {
            match it.next() {
                Some(m) if m == "all" || m == "off" => lanes_mode = m.clone(),
                _ => {
                    eprintln!("--lanes requires `all` or `off`");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    let lane_rows = lanes_mode == "all";
    let sha = git_short_sha();
    let out_path = out_path.unwrap_or_else(|| format!("benchmarks/BENCH_{sha}.json"));
    let (budget, max_iters) = if quick {
        (Duration::from_millis(60), 300)
    } else {
        (Duration::from_millis(300), 2_000)
    };
    let t_all = Instant::now();

    // Kernel timings. Tracing and profiling are pinned off so baselines
    // measure the production path regardless of the ambient
    // FREERIDER_TRACE / FREERIDER_PROFILE.
    trace::set_mode(TraceMode::Off);
    profile::set_enabled(false);
    let mut kernels: Vec<KernelResult> = Vec::new();

    let data: Vec<Complex> = (0..64).map(|i| Complex::cis(i as f64 * 0.3)).collect();
    kernels.push(KernelResult {
        name: "dsp/fft64",
        summary: bench("dsp/fft64", budget, max_iters, || {
            let mut v = data.clone();
            fft::fft(&mut v).unwrap();
            v
        }),
        bytes: 0,
    });

    kernels.push(KernelResult {
        name: "dsp/fft64_planned",
        summary: bench("dsp/fft64_planned", budget, max_iters, || {
            let mut v = [Complex::ZERO; 64];
            v.copy_from_slice(&data);
            fft::fft64(&mut v);
            v
        }),
        bytes: 0,
    });

    // Viterbi through the scratch kernel (the receivers' actual hot
    // path — the dispatcher's measured default lane width), not the
    // allocating convenience wrapper.
    let bits: Vec<u8> = (0..1000).map(|i| ((i * 7) % 3 == 0) as u8).collect();
    let coded = encode(&bits, CodeRate::Half);
    let vit_llrs: Vec<f64> = coded
        .iter()
        .map(|&b| if b & 1 == 1 { 1.0 } else { -1.0 })
        .collect();
    let mut vit = ViterbiScratch::new();
    kernels.push(KernelResult {
        name: "coding/viterbi_1000bits",
        summary: bench("coding/viterbi_1000bits", budget, max_iters, || {
            viterbi_decode_soft_scratch(&vit_llrs, CodeRate::Half, &mut vit).1
        }),
        bytes: 125,
    });

    // Lane-width A/B rows: the retained scalar kernel against every
    // compiled lane width, on the same workloads the dispatchers see.
    // `bench_diff.py --assert-lanes` checks the compiled default of each
    // family is the measured winner among these rows.
    if lane_rows {
        kernels.push(KernelResult {
            name: "coding/viterbi/scalar",
            summary: bench("coding/viterbi/scalar", budget, max_iters, || {
                viterbi_decode_soft_scratch_scalar(&vit_llrs, CodeRate::Half, &mut vit).1
            }),
            bytes: 125,
        });
        kernels.push(KernelResult {
            name: "coding/viterbi/lanes_2",
            summary: bench("coding/viterbi/lanes_2", budget, max_iters, || {
                viterbi_decode_soft_scratch_lanes::<2>(&vit_llrs, CodeRate::Half, &mut vit).1
            }),
            bytes: 125,
        });
        kernels.push(KernelResult {
            name: "coding/viterbi/lanes_4",
            summary: bench("coding/viterbi/lanes_4", budget, max_iters, || {
                viterbi_decode_soft_scratch_lanes::<4>(&vit_llrs, CodeRate::Half, &mut vit).1
            }),
            bytes: 125,
        });
        kernels.push(KernelResult {
            name: "coding/viterbi/lanes_8",
            summary: bench("coding/viterbi/lanes_8", budget, max_iters, || {
                viterbi_decode_soft_scratch_lanes::<8>(&vit_llrs, CodeRate::Half, &mut vit).1
            }),
            bytes: 125,
        });

        // Normalised-correlation A/B on an LTF-shaped workload: a
        // 64-sample reference slid over ~1k samples, the shape of the
        // WiFi fine-timing search.
        let corr_sig: Vec<Complex> = (0..1024)
            .map(|i| Complex::cis(0.0007 * (i * i) as f64) * (1.0 + 0.1 * ((i % 17) as f64)))
            .collect();
        let corr_ref: Vec<Complex> = (0..64).map(|i| Complex::cis(0.11 * i as f64)).collect();
        let mut corr_out: Vec<f64> = Vec::new();
        kernels.push(KernelResult {
            name: "dsp/ltf_corr/scalar",
            summary: bench("dsp/ltf_corr/scalar", budget, max_iters, || {
                normalized_correlation_scalar_into(&corr_sig, &corr_ref, &mut corr_out);
                corr_out.len()
            }),
            bytes: 0,
        });
        kernels.push(KernelResult {
            name: "dsp/ltf_corr/lanes_2",
            summary: bench("dsp/ltf_corr/lanes_2", budget, max_iters, || {
                normalized_correlation_lanes_into::<2>(&corr_sig, &corr_ref, &mut corr_out);
                corr_out.len()
            }),
            bytes: 0,
        });
        kernels.push(KernelResult {
            name: "dsp/ltf_corr/lanes_4",
            summary: bench("dsp/ltf_corr/lanes_4", budget, max_iters, || {
                normalized_correlation_lanes_into::<4>(&corr_sig, &corr_ref, &mut corr_out);
                corr_out.len()
            }),
            bytes: 0,
        });
        kernels.push(KernelResult {
            name: "dsp/ltf_corr/lanes_8",
            summary: bench("dsp/ltf_corr/lanes_8", budget, max_iters, || {
                normalized_correlation_lanes_into::<8>(&corr_sig, &corr_ref, &mut corr_out);
                corr_out.len()
            }),
            bytes: 0,
        });
        // Guard against a dispatcher default drifting from what these
        // rows measure: the dispatch entry points must agree with the
        // corresponding width row bit-for-bit.
        let mut dispatch_out = Vec::new();
        normalized_correlation_into(&corr_sig, &corr_ref, &mut dispatch_out);
        normalized_correlation_scalar_into(&corr_sig, &corr_ref, &mut corr_out);
        assert!(
            corr_out.len() == dispatch_out.len()
                && corr_out
                    .iter()
                    .zip(&dispatch_out)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
            "corr dispatch diverged from scalar"
        );

        // Batch-FFT A/B: sixteen 64-point blocks back to back, one
        // `fft64` call per block vs one `run_batch` over the packed
        // buffer (bit-identical transforms, amortised dispatch).
        let fft_blocks: Vec<Complex> = (0..16 * 64)
            .map(|i| Complex::cis(0.003 * (i * i % 977) as f64))
            .collect();
        let mut fft_buf = fft_blocks.clone();
        kernels.push(KernelResult {
            name: "dsp/fft64_x16/single",
            summary: bench("dsp/fft64_x16/single", budget, max_iters, || {
                fft_buf.copy_from_slice(&fft_blocks);
                for chunk in fft_buf.chunks_exact_mut(64) {
                    let block: &mut [Complex; 64] = chunk.try_into().unwrap();
                    fft::fft64(block);
                }
            }),
            bytes: 0,
        });
        kernels.push(KernelResult {
            name: "dsp/fft64_x16/batch",
            summary: bench("dsp/fft64_x16/batch", budget, max_iters, || {
                fft_buf.copy_from_slice(&fft_blocks);
                fft::plan64().run_batch(&mut fft_buf).unwrap();
            }),
            bytes: 0,
        });

        // Soft-demap A/B: twenty 16-QAM symbols per call, per-symbol
        // entry point vs the batched plane kernel the RX path uses.
        use freerider_wifi::mapping::{soft_demap_batch_into, soft_demap_symbols_into};
        use freerider_wifi::rates::Modulation;
        let demap_syms: Vec<[Complex; 48]> = (0..20)
            .map(|n| std::array::from_fn(|i| Complex::cis(0.37 * (n * 48 + i) as f64)))
            .collect();
        let demap_gains: Vec<f64> = (0..48).map(|i| 0.4 + (i as f64) / 40.0).collect();
        let mut demap_out: Vec<f64> = Vec::new();
        kernels.push(KernelResult {
            name: "wifi/demap_x20/scalar",
            summary: bench("wifi/demap_x20/scalar", budget, max_iters, || {
                let mut n = 0usize;
                for s in &demap_syms {
                    soft_demap_symbols_into(s, &demap_gains, Modulation::Qam16, &mut demap_out);
                    n += demap_out.len();
                }
                n
            }),
            bytes: 0,
        });
        kernels.push(KernelResult {
            name: "wifi/demap_x20/batch",
            summary: bench("wifi/demap_x20/batch", budget, max_iters, || {
                soft_demap_batch_into(&demap_syms, &demap_gains, Modulation::Qam16, &mut demap_out);
                demap_out.len()
            }),
            bytes: 0,
        });
    }

    let tx = Transmitter::new(TxConfig::default());
    let mut psdu = vec![0xA5u8; 1000];
    freerider_coding::crc::append_crc32(&mut psdu);
    let wave = tx.transmit(&psdu).unwrap();
    kernels.push(KernelResult {
        name: "wifi/tx_1000B",
        summary: bench("wifi/tx_1000B", budget, max_iters, || {
            tx.transmit(&psdu).unwrap()
        }),
        bytes: 1000,
    });
    let rx = Receiver::new(RxConfig {
        sensitivity_dbm: -200.0,
        ..RxConfig::default()
    });
    kernels.push(KernelResult {
        name: "wifi/rx_1000B",
        summary: bench("wifi/rx_1000B", budget, max_iters, || {
            rx.receive(&wave).unwrap()
        }),
        bytes: 1000,
    });
    // The allocation-free steady state: a warm scratch reused across
    // iterations, as the sweep executor's per-worker state does it.
    let mut rx_scratch = freerider_wifi::RxScratch::new();
    kernels.push(KernelResult {
        name: "wifi/rx_1000B_warm",
        summary: bench("wifi/rx_1000B_warm", budget, max_iters, || {
            rx.receive_with(&wave, &mut rx_scratch).unwrap().fcs_valid
        }),
        bytes: 1000,
    });

    // Serve fan-out: one tiny streaming job through the in-process
    // loopback service, drained by 1 / 4 / 16 subscribers. Measures the
    // full path — frame encode, per-subscriber queue clone, protocol
    // write/read — per job; the printed frames/sec is the derived
    // stream throughput at that fan-out.
    for subs in [1usize, 4, 16] {
        let name: &'static str = match subs {
            1 => "net/serve_fanout_1",
            4 => "net/serve_fanout_4",
            _ => "net/serve_fanout_16",
        };
        let (summary, frames_per_run) = serve_fanout(name, subs, budget, max_iters.min(200));
        if summary.median.as_nanos() > 0 {
            let fps = frames_per_run as f64 / summary.median.as_secs_f64();
            println!("{name}: ~{frames_per_run} frames/job, {fps:.0} frames/s");
        }
        kernels.push(KernelResult {
            name,
            summary,
            bytes: 0,
        });
    }

    // Flight-recorder overhead triad on the WiFi RX path. The A/A repeat
    // with tracing off bounds the disabled-path hook cost together with
    // the run-to-run noise of this harness — the honest comparison, since
    // the hooks cannot be compiled out.
    let rx_off_a = bench("wifi/rx_trace_off", budget, max_iters, || {
        rx.receive(&wave).unwrap()
    });
    let rx_off_b = bench("wifi/rx_trace_off_repeat", budget, max_iters, || {
        rx.receive(&wave).unwrap()
    });
    trace::set_mode(TraceMode::All);
    trace::reset();
    let rx_all = bench("wifi/rx_trace_all", budget, max_iters, || {
        let _pkt = trace::packet("bench.wifi", 0);
        rx.receive(&wave).unwrap()
    });
    trace::set_mode(TraceMode::Off);
    trace::reset();
    let pct = |new: Duration, base: Duration| -> f64 {
        if base.as_nanos() == 0 {
            return 0.0;
        }
        let p = (new.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0;
        (p * 100.0).round() / 100.0
    };
    let disabled_pct = pct(rx_off_b.median, rx_off_a.median);
    let recording_pct = pct(rx_all.median, rx_off_a.median);
    println!(
        "trace overhead: disabled-path {disabled_pct:+.2}% (A/A), recording {recording_pct:+.2}%"
    );

    // Stage-profiler overhead triad on the same WiFi RX path, same
    // A/A-bounded design as the trace triad above: the profiler's scope
    // hooks are one relaxed atomic load when disabled, so the A/A pair
    // bounds that cost plus harness noise, and the `on` run prices full
    // recording (stack push/pop, Instant reads, histogram updates).
    let prof_off_a = bench("wifi/rx_profile_off", budget, max_iters, || {
        rx.receive(&wave).unwrap()
    });
    let prof_off_b = bench("wifi/rx_profile_off_repeat", budget, max_iters, || {
        rx.receive(&wave).unwrap()
    });
    profile::set_enabled(true);
    profile::reset();
    let prof_on = bench("wifi/rx_profile_on", budget, max_iters, || {
        rx.receive(&wave).unwrap()
    });
    // The attribution tree of the `on` run feeds the per-stage rows:
    // p50 wall-clock per stage, plus the deterministic work counters.
    let stage_report = profile::report();
    profile::set_enabled(false);
    profile::reset();
    let profile_disabled_pct = pct(prof_off_b.median, prof_off_a.median);
    let profile_recording_pct = pct(prof_on.median, prof_off_a.median);
    println!(
        "profile overhead: disabled-path {profile_disabled_pct:+.2}% (A/A), recording {profile_recording_pct:+.2}%"
    );
    kernels.push(KernelResult {
        name: "wifi/rx_profile_off",
        summary: prof_off_a,
        bytes: 1000,
    });
    kernels.push(KernelResult {
        name: "wifi/rx_profile_on",
        summary: prof_on,
        bytes: 1000,
    });

    // Server-metrics hook overhead on the serve path. The registry's
    // relaxed-atomic hooks cannot be compiled out, so — like the trace
    // triad above — an A/A pair of the same fan-out-1 kernel bounds
    // their cost together with harness noise; bench_diff.py then holds
    // both rows to the kernel regression threshold across baselines.
    let (stats_a, stats_b) = serve_stats_aa(budget, max_iters.min(200));
    let stats_aa_pct = pct(stats_b.median, stats_a.median);
    println!(
        "serve/stats_overhead_{{a,b}}: {} vs {} median ({} iters each), A/A delta {stats_aa_pct:+.2}%",
        freerider_bench::micro::format_duration(stats_a.median),
        freerider_bench::micro::format_duration(stats_b.median),
        stats_a.iters
    );
    kernels.push(KernelResult {
        name: "serve/stats_overhead_a",
        summary: stats_a,
        bytes: 0,
    });
    kernels.push(KernelResult {
        name: "serve/stats_overhead_b",
        summary: stats_b,
        bytes: 0,
    });

    // Static-analyzer wall-clock over the real workspace (lex + item-tree
    // + all rules + cross-file wire scan). Tracked so the lint gate's
    // cost stays visible as the codebase grows; bench_diff.py treats
    // `lint/` rows as soft — analyzer runtime is not a product hot path.
    match std::env::current_dir()
        .ok()
        .and_then(|cwd| freerider_lint::walk::find_root(&cwd))
    {
        Some(ws_root) => kernels.push(KernelResult {
            name: "lint/workspace_scan",
            summary: bench("lint/workspace_scan", budget, max_iters.min(50), || {
                let files = freerider_lint::walk::discover(&ws_root).expect("walk workspace");
                freerider_lint::rules::analyze(&ws_root, &files)
                    .expect("analyze workspace")
                    .findings
                    .len()
            }),
            bytes: 0,
        }),
        None => eprintln!("bench-baseline: no enclosing workspace; skipping lint/workspace_scan"),
    }

    // Per-experiment wall-clock (quick workloads keep this step short).
    let mut experiments: Vec<(&'static str, f64)> = Vec::new();
    for e in freerider_bench::EXPERIMENTS {
        freerider_telemetry::reset();
        let t0 = Instant::now();
        let _ = freerider_bench::run(e.name, true).expect("registry names all run");
        let wall_s = t0.elapsed().as_secs_f64();
        println!("experiment {:<24} {:>8.3} s", e.name, wall_s);
        experiments.push((e.name, wall_s));
    }

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema").string("freerider-bench/1");
    w.key("git_sha").string(&sha);
    w.key("quick").bool(quick);
    w.key("kernels").begin_object();
    for k in &kernels {
        w.key(k.name);
        write_summary(&mut w, &k.summary, k.bytes);
    }
    w.end_object();
    // Compiled lane-width selections, next to the A/B rows that justify
    // them. `bench_diff.py --assert-lanes` checks each `selected` is the
    // measured winner of its `coding/viterbi/*` / `dsp/ltf_corr/*` rows.
    if lane_rows {
        w.key("lanes").begin_object();
        w.key("viterbi").begin_object();
        w.key("selected").u64(DEFAULT_VITERBI_LANES as u64);
        w.key("widths").begin_array();
        for width in VITERBI_LANE_WIDTHS {
            w.u64(width as u64);
        }
        w.end_array();
        w.end_object();
        w.key("corr").begin_object();
        w.key("selected").u64(DEFAULT_CORR_LANES as u64);
        w.key("widths").begin_array();
        for width in CORR_LANE_WIDTHS {
            w.u64(width as u64);
        }
        w.end_array();
        w.end_object();
        w.end_object();
    }
    w.key("trace_overhead").begin_object();
    w.key("wifi_rx_off_ns")
        .u64(rx_off_a.median.as_nanos() as u64);
    w.key("wifi_rx_off_repeat_ns")
        .u64(rx_off_b.median.as_nanos() as u64);
    w.key("wifi_rx_all_ns").u64(rx_all.median.as_nanos() as u64);
    w.key("disabled_path_pct").f64(disabled_pct);
    w.key("recording_pct").f64(recording_pct);
    w.end_object();
    w.key("profile_overhead").begin_object();
    w.key("wifi_rx_off_ns")
        .u64(prof_off_a.median.as_nanos() as u64);
    w.key("wifi_rx_off_repeat_ns")
        .u64(prof_off_b.median.as_nanos() as u64);
    w.key("wifi_rx_on_ns").u64(prof_on.median.as_nanos() as u64);
    w.key("disabled_path_pct").f64(profile_disabled_pct);
    w.key("recording_pct").f64(profile_recording_pct);
    w.end_object();
    // Per-stage rows from the profile-on RX run: p50 wall-clock (gated by
    // bench_diff.py against the previous baseline's profile-on run — a
    // like-for-like comparison) plus invocation counts for context.
    w.key("stages").begin_object();
    for (path, stat) in &stage_report {
        w.key(path).begin_object();
        w.key("p50_ns").u64(stat.hist.p50().unwrap_or(0));
        w.key("count").u64(stat.count);
        w.end_object();
    }
    w.end_object();
    w.key("experiments").begin_object();
    for (name, wall_s) in &experiments {
        w.key(name).begin_object();
        w.key("wall_s").f64((wall_s * 1000.0).round() / 1000.0);
        w.end_object();
    }
    w.end_object();
    w.key("total_wall_s")
        .f64((t_all.elapsed().as_secs_f64() * 1000.0).round() / 1000.0);
    w.end_object();

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("bench-baseline: cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    match std::fs::write(&out_path, w.finish()) {
        Ok(()) => {
            println!("bench-baseline: wrote {out_path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench-baseline: failed to write {out_path}: {e}");
            ExitCode::FAILURE
        }
    }
}
