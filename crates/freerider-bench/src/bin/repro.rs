//! `repro` — regenerates every table and figure of the FreeRider paper.
//!
//! ```sh
//! cargo run --release -p freerider-bench --bin repro -- all
//! cargo run --release -p freerider-bench --bin repro -- fig10 fig17
//! cargo run --release -p freerider-bench --bin repro -- --quick all
//! cargo run --release -p freerider-bench --bin repro -- --list
//! cargo run --release -p freerider-bench --bin repro -- --metrics fig10
//! cargo run --release -p freerider-bench --bin repro -- --json out.json all
//! cargo run --release -p freerider-bench --bin repro -- --trace trace.json fig10
//! FREERIDER_THREADS=4 cargo run --release -p freerider-bench --bin repro -- fig10
//! ```
//!
//! Monte-Carlo experiments fan out over `freerider_rt::Executor`:
//! `FREERIDER_THREADS` pins the worker count (default: all cores), and the
//! output is bit-identical for any setting.
//!
//! `--metrics` prints each experiment's per-stage telemetry breakdown;
//! `--json <path>` writes a machine-readable results file (schema
//! `freerider-repro/2`). In the JSON, the per-experiment `metrics` section
//! (counters + histograms) is deterministic — byte-identical across worker
//! counts — while `timing` carries wall-clock values that vary run to run.
//! Each experiment also carries a `forensics` section: the flight
//! recorder's black-box dump of failed packets (empty unless tracing is
//! on, see below).
//!
//! `--trace <path>` turns the per-packet flight recorder on (equivalent to
//! `FREERIDER_TRACE=all` when the variable is unset; an explicit
//! environment setting wins) and writes every retained packet trace as a
//! Chrome `trace_event` JSON file — load it at `chrome://tracing` or
//! <https://ui.perfetto.dev> to see per-packet span trees. `FREERIDER_TRACE`
//! alone (without `--trace`) still populates the `forensics` sections of
//! `--json` output.
//!
//! `--profile <path>` turns the hierarchical stage profiler on (equivalent
//! to `FREERIDER_PROFILE=1` when the variable is unset; an explicit
//! environment setting wins), prints a stage-attribution table to stderr
//! after the run, and writes the full report (schema `freerider-profile/1`)
//! to `<path>`. The report's `work` counters are deterministic —
//! byte-identical across `FREERIDER_THREADS` — while its `timing` section
//! is wall-clock.

use freerider_bench::micro::format_duration;
use freerider_rt::Executor;
use freerider_telemetry::profile;
use freerider_telemetry::trace::{self, PacketRecord, TraceMode};
use freerider_telemetry::{chrome_trace_json, JsonWriter, Snapshot};
use std::process::ExitCode;
use std::time::Instant;

struct ExperimentResult {
    name: &'static str,
    description: &'static str,
    output: String,
    metrics: Snapshot,
    wall_s: f64,
    /// Every packet record the flight recorder retained for this
    /// experiment (empty when tracing is off).
    trace_records: Vec<PacketRecord>,
    /// Failed records evicted by the black-box ring buffer cap.
    trace_evicted_failed: u64,
}

fn write_json(
    path: &str,
    results: &[ExperimentResult],
    quick: bool,
    workers: usize,
    total_wall_s: f64,
) -> std::io::Result<()> {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema").string("freerider-repro/2");
    w.key("quick").bool(quick);
    // Worker count lives here, outside each experiment's `metrics`
    // section, so those sections stay byte-identical across thread counts.
    w.key("workers").u64(workers as u64);
    w.key("experiments").begin_array();
    for r in results {
        w.begin_object();
        w.key("name").string(r.name);
        w.key("description").string(r.description);
        w.key("output").string(&r.output);
        w.key("metrics");
        r.metrics.write_metrics(&mut w);
        // The black box: deterministic (time-free, order-normalised)
        // post-mortems of failed packets. Always present so the schema is
        // stable; empty when tracing is off.
        let failed: Vec<PacketRecord> = r
            .trace_records
            .iter()
            .filter(|p| p.failure.is_some())
            .cloned()
            .collect();
        w.key("forensics").begin_object();
        w.key("evicted_failed").u64(r.trace_evicted_failed);
        w.key("packets");
        trace::write_forensics(&failed, &mut w);
        w.end_object();
        w.key("timing").begin_object();
        w.key("wall_s").f64(r.wall_s);
        w.key("timers");
        r.metrics.write_timers(&mut w);
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.key("total").begin_object();
    w.key("experiments").u64(results.len() as u64);
    w.key("wall_s").f64(total_wall_s);
    w.end_object();
    w.end_object();
    std::fs::write(path, w.finish())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let list = args.iter().any(|a| a == "--list" || a == "-l");
    let metrics = args.iter().any(|a| a == "--metrics" || a == "-m");
    let mut json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut profile_path: Option<String> = None;
    let mut targets: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            match it.next() {
                Some(p) => json_path = Some(p.clone()),
                None => {
                    eprintln!("--json requires a path");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--trace" {
            match it.next() {
                Some(p) => trace_path = Some(p.clone()),
                None => {
                    eprintln!("--trace requires a path");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--profile" {
            match it.next() {
                Some(p) => profile_path = Some(p.clone()),
                None => {
                    eprintln!("--profile requires a path");
                    return ExitCode::FAILURE;
                }
            }
        } else if !a.starts_with('-') {
            targets.push(a.as_str());
        }
    }
    // --trace implies full tracing unless the user pinned a mode
    // explicitly via the environment (e.g. FREERIDER_TRACE=failures to
    // trace only the black box).
    if trace_path.is_some() && std::env::var(trace::TRACE_ENV).is_err() {
        trace::set_mode(TraceMode::All);
    }
    // --profile likewise implies the stage profiler unless the user pinned
    // it via the environment.
    if profile_path.is_some() && std::env::var(profile::PROFILE_ENV).is_err() {
        profile::set_enabled(true);
    }

    if list {
        println!("available experiments:");
        let width = freerider_bench::EXPERIMENTS
            .iter()
            .map(|e| e.name.len())
            .max()
            .unwrap_or(0);
        for e in freerider_bench::EXPERIMENTS {
            println!("  {:<width$}  {}", e.name, e.description);
        }
        return ExitCode::SUCCESS;
    }
    if targets.is_empty() {
        eprintln!(
            "usage: repro [--quick] [--metrics] [--json <path>] [--trace <path>] <experiment>... | all | --list"
        );
        return ExitCode::FAILURE;
    }

    // Expand `all` and drop duplicates (`repro all fig10` must not run
    // fig10 twice), keeping first-occurrence order.
    let mut names: Vec<&str> = Vec::new();
    for t in targets {
        if t == "all" {
            for e in freerider_bench::EXPERIMENTS {
                if !names.contains(&e.name) {
                    names.push(e.name);
                }
            }
        } else if !names.contains(&t) {
            names.push(t);
        }
    }

    let threads = Executor::from_env().threads();
    eprintln!(
        "repro: {} worker thread{} (set {} to override)",
        threads,
        if threads == 1 { "" } else { "s" },
        freerider_rt::executor::THREADS_ENV
    );

    // The profile report spans the whole run (it is not reset per
    // experiment): the attribution tree answers "where did this invocation
    // spend its time", across everything it ran.
    profile::reset();
    let t_all = Instant::now();
    let mut failed = false;
    let mut results: Vec<ExperimentResult> = Vec::new();
    for name in names {
        let entry = match freerider_bench::find_experiment(name) {
            Some(e) => e,
            None => {
                eprintln!("unknown experiment `{name}` (try --list)");
                failed = true;
                continue;
            }
        };
        freerider_telemetry::reset();
        trace::reset();
        let t0 = Instant::now();
        let out = freerider_bench::run(name, quick).expect("registry names all run");
        let wall_s = t0.elapsed().as_secs_f64();
        let snap = freerider_telemetry::snapshot();
        // Eviction counters must be read before drain() clears them.
        let trace_stats = trace::drain_stats();
        let trace_records = trace::drain();
        println!("{}", "=".repeat(78));
        println!("{out}");
        if metrics && !snap.is_empty() {
            println!("--- telemetry: {name} ---");
            print!("{}", snap.table());
        }
        eprintln!("repro: {name} took {}", format_duration(t0.elapsed()));
        results.push(ExperimentResult {
            name: entry.name,
            description: entry.description,
            output: out,
            metrics: snap,
            wall_s,
            trace_records,
            trace_evicted_failed: trace_stats.evicted_failed,
        });
    }
    eprintln!("repro: total {}", format_duration(t_all.elapsed()));

    if let Some(path) = trace_path {
        let groups: Vec<(&str, &[PacketRecord])> = results
            .iter()
            .map(|r| (r.name, r.trace_records.as_slice()))
            .collect();
        let n: usize = groups.iter().map(|(_, g)| g.len()).sum();
        match std::fs::write(&path, chrome_trace_json(&groups)) {
            Ok(()) => eprintln!(
                "repro: wrote {path} ({n} packet trace{}; open at ui.perfetto.dev)",
                if n == 1 { "" } else { "s" }
            ),
            Err(e) => {
                eprintln!("repro: failed to write {path}: {e}");
                failed = true;
            }
        }
    }

    if let Some(path) = profile_path {
        let report = profile::report();
        if report.is_empty() {
            eprintln!("repro: profile report is empty (no instrumented stage ran)");
        } else {
            eprint!("{}", profile::table(&report));
        }
        match std::fs::write(&path, profile::report_json(&report)) {
            Ok(()) => eprintln!("repro: wrote {path} ({} stages)", report.len()),
            Err(e) => {
                eprintln!("repro: failed to write {path}: {e}");
                failed = true;
            }
        }
    }

    if let Some(path) = json_path {
        match write_json(
            &path,
            &results,
            quick,
            threads,
            t_all.elapsed().as_secs_f64(),
        ) {
            Ok(()) => eprintln!("repro: wrote {path}"),
            Err(e) => {
                eprintln!("repro: failed to write {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
