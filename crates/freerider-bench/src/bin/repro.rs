//! `repro` — regenerates every table and figure of the FreeRider paper.
//!
//! ```sh
//! cargo run --release -p freerider-bench --bin repro -- all
//! cargo run --release -p freerider-bench --bin repro -- fig10 fig17
//! cargo run --release -p freerider-bench --bin repro -- --quick all
//! cargo run --release -p freerider-bench --bin repro -- --list
//! cargo run --release -p freerider-bench --bin repro -- --metrics fig10
//! cargo run --release -p freerider-bench --bin repro -- --json out.json all
//! FREERIDER_THREADS=4 cargo run --release -p freerider-bench --bin repro -- fig10
//! ```
//!
//! Monte-Carlo experiments fan out over `freerider_rt::Executor`:
//! `FREERIDER_THREADS` pins the worker count (default: all cores), and the
//! output is bit-identical for any setting.
//!
//! `--metrics` prints each experiment's per-stage telemetry breakdown;
//! `--json <path>` writes a machine-readable results file (schema
//! `freerider-repro/1`). In the JSON, the per-experiment `metrics` section
//! (counters + histograms) is deterministic — byte-identical across worker
//! counts — while `timing` carries wall-clock values that vary run to run.

use freerider_bench::micro::format_duration;
use freerider_rt::Executor;
use freerider_telemetry::{JsonWriter, Snapshot};
use std::process::ExitCode;
use std::time::Instant;

struct ExperimentResult {
    name: &'static str,
    description: &'static str,
    output: String,
    metrics: Snapshot,
    wall_s: f64,
}

fn write_json(
    path: &str,
    results: &[ExperimentResult],
    quick: bool,
    workers: usize,
    total_wall_s: f64,
) -> std::io::Result<()> {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema").string("freerider-repro/1");
    w.key("quick").bool(quick);
    // Worker count lives here, outside each experiment's `metrics`
    // section, so those sections stay byte-identical across thread counts.
    w.key("workers").u64(workers as u64);
    w.key("experiments").begin_array();
    for r in results {
        w.begin_object();
        w.key("name").string(r.name);
        w.key("description").string(r.description);
        w.key("output").string(&r.output);
        w.key("metrics");
        r.metrics.write_metrics(&mut w);
        w.key("timing").begin_object();
        w.key("wall_s").f64(r.wall_s);
        w.key("timers");
        r.metrics.write_timers(&mut w);
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.key("total").begin_object();
    w.key("experiments").u64(results.len() as u64);
    w.key("wall_s").f64(total_wall_s);
    w.end_object();
    w.end_object();
    std::fs::write(path, w.finish())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let list = args.iter().any(|a| a == "--list" || a == "-l");
    let metrics = args.iter().any(|a| a == "--metrics" || a == "-m");
    let mut json_path: Option<String> = None;
    let mut targets: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            match it.next() {
                Some(p) => json_path = Some(p.clone()),
                None => {
                    eprintln!("--json requires a path");
                    return ExitCode::FAILURE;
                }
            }
        } else if !a.starts_with('-') {
            targets.push(a.as_str());
        }
    }

    if list {
        println!("available experiments:");
        let width = freerider_bench::EXPERIMENTS
            .iter()
            .map(|e| e.name.len())
            .max()
            .unwrap_or(0);
        for e in freerider_bench::EXPERIMENTS {
            println!("  {:<width$}  {}", e.name, e.description);
        }
        return ExitCode::SUCCESS;
    }
    if targets.is_empty() {
        eprintln!(
            "usage: repro [--quick] [--metrics] [--json <path>] <experiment>... | all | --list"
        );
        return ExitCode::FAILURE;
    }

    // Expand `all` and drop duplicates (`repro all fig10` must not run
    // fig10 twice), keeping first-occurrence order.
    let mut names: Vec<&str> = Vec::new();
    for t in targets {
        if t == "all" {
            for e in freerider_bench::EXPERIMENTS {
                if !names.contains(&e.name) {
                    names.push(e.name);
                }
            }
        } else if !names.contains(&t) {
            names.push(t);
        }
    }

    let threads = Executor::from_env().threads();
    eprintln!(
        "repro: {} worker thread{} (set {} to override)",
        threads,
        if threads == 1 { "" } else { "s" },
        freerider_rt::executor::THREADS_ENV
    );

    let t_all = Instant::now();
    let mut failed = false;
    let mut results: Vec<ExperimentResult> = Vec::new();
    for name in names {
        let entry = match freerider_bench::find_experiment(name) {
            Some(e) => e,
            None => {
                eprintln!("unknown experiment `{name}` (try --list)");
                failed = true;
                continue;
            }
        };
        freerider_telemetry::reset();
        let t0 = Instant::now();
        let out = freerider_bench::run(name, quick).expect("registry names all run");
        let wall_s = t0.elapsed().as_secs_f64();
        let snap = freerider_telemetry::snapshot();
        println!("{}", "=".repeat(78));
        println!("{out}");
        if metrics && !snap.is_empty() {
            println!("--- telemetry: {name} ---");
            print!("{}", snap.table());
        }
        eprintln!("repro: {name} took {}", format_duration(t0.elapsed()));
        results.push(ExperimentResult {
            name: entry.name,
            description: entry.description,
            output: out,
            metrics: snap,
            wall_s,
        });
    }
    eprintln!("repro: total {}", format_duration(t_all.elapsed()));

    if let Some(path) = json_path {
        match write_json(
            &path,
            &results,
            quick,
            threads,
            t_all.elapsed().as_secs_f64(),
        ) {
            Ok(()) => eprintln!("repro: wrote {path}"),
            Err(e) => {
                eprintln!("repro: failed to write {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
