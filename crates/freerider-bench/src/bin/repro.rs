//! `repro` — regenerates every table and figure of the FreeRider paper.
//!
//! ```sh
//! cargo run --release -p freerider-bench --bin repro -- all
//! cargo run --release -p freerider-bench --bin repro -- fig10 fig17
//! cargo run --release -p freerider-bench --bin repro -- --quick all
//! cargo run --release -p freerider-bench --bin repro -- --list
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let list = args.iter().any(|a| a == "--list" || a == "-l");
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .map(String::as_str)
        .collect();

    if list {
        println!("available experiments:");
        for e in freerider_bench::EXPERIMENTS {
            println!("  {e}");
        }
        return ExitCode::SUCCESS;
    }
    if targets.is_empty() {
        eprintln!("usage: repro [--quick] <experiment>... | all | --list");
        return ExitCode::FAILURE;
    }

    let names: Vec<&str> = if targets.contains(&"all") {
        freerider_bench::EXPERIMENTS.to_vec()
    } else {
        targets
    };

    let mut failed = false;
    for name in names {
        match freerider_bench::run(name, quick) {
            Some(out) => {
                println!("{}", "=".repeat(78));
                println!("{out}");
            }
            None => {
                eprintln!("unknown experiment `{name}` (try --list)");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
