//! `repro` — regenerates every table and figure of the FreeRider paper.
//!
//! ```sh
//! cargo run --release -p freerider-bench --bin repro -- all
//! cargo run --release -p freerider-bench --bin repro -- fig10 fig17
//! cargo run --release -p freerider-bench --bin repro -- --quick all
//! cargo run --release -p freerider-bench --bin repro -- --list
//! FREERIDER_THREADS=4 cargo run --release -p freerider-bench --bin repro -- fig10
//! ```
//!
//! Monte-Carlo experiments fan out over `freerider_rt::Executor`:
//! `FREERIDER_THREADS` pins the worker count (default: all cores), and the
//! output is bit-identical for any setting.

use freerider_bench::micro::format_duration;
use freerider_rt::Executor;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let list = args.iter().any(|a| a == "--list" || a == "-l");
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .map(String::as_str)
        .collect();

    if list {
        println!("available experiments:");
        for e in freerider_bench::EXPERIMENTS {
            println!("  {e}");
        }
        return ExitCode::SUCCESS;
    }
    if targets.is_empty() {
        eprintln!("usage: repro [--quick] <experiment>... | all | --list");
        return ExitCode::FAILURE;
    }

    let names: Vec<&str> = if targets.contains(&"all") {
        freerider_bench::EXPERIMENTS.to_vec()
    } else {
        targets
    };

    let threads = Executor::from_env().threads();
    eprintln!(
        "repro: {} worker thread{} (set {} to override)",
        threads,
        if threads == 1 { "" } else { "s" },
        freerider_rt::executor::THREADS_ENV
    );

    let t_all = Instant::now();
    let mut failed = false;
    for name in names {
        let t0 = Instant::now();
        match freerider_bench::run(name, quick) {
            Some(out) => {
                println!("{}", "=".repeat(78));
                println!("{out}");
                eprintln!("repro: {name} took {}", format_duration(t0.elapsed()));
            }
            None => {
                eprintln!("unknown experiment `{name}` (try --list)");
                failed = true;
            }
        }
    }
    eprintln!("repro: total {}", format_duration(t_all.elapsed()));
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
