//! # freerider-bench
//!
//! The reproduction harness: one generator per table/figure of the
//! FreeRider paper's evaluation (§4), each returning the same rows/series
//! the paper reports, plus the ablation experiments DESIGN.md calls out.
//!
//! The `repro` binary prints them (`repro fig10`, `repro all`, …);
//! EXPERIMENTS.md records the outputs against the paper's numbers; the
//! std-only micro-benchmarks in `benches/` time the underlying kernels.
//!
//! Every generator takes a `quick` flag: `true` shrinks the workload for
//! CI/tests, `false` runs the full experiment sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use freerider_channel::BackscatterBudget;
use freerider_core::coexist::{
    backscatter_coexistence, backscatter_with_rts_cts, wifi_throughput_cdf, CoexistTech,
    TAG_LEAK_INTO_WIFI_DBM,
};
use freerider_core::experiments::{
    ambient_analysis, distance_sweep, plm_accuracy, range_map, PlmAccuracyConfig, Technology,
};
use freerider_core::link::{BleLink, LinkConfig, WifiLink, ZigbeeLink};
use freerider_mac::{MacScheme, NetworkConfig, NetworkSim};
use freerider_tag::power::{PowerModel, TranslatorKind};
use std::fmt::Write as _;

pub mod micro;

/// One reproducible table/figure of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Experiment {
    /// The identifier `repro` accepts (e.g. `fig10`).
    pub name: &'static str,
    /// One-line summary of what the experiment regenerates.
    pub description: &'static str,
}

/// All experiments the harness can regenerate.
pub const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        name: "table1",
        description: "codeword-translation XOR logic (Table 1)",
    },
    Experiment {
        name: "fig3",
        description: "ambient packet-duration PDF + PLM confusion probability",
    },
    Experiment {
        name: "fig4",
        description: "PLM scheduling-message accuracy vs distance",
    },
    Experiment {
        name: "fig10",
        description: "WiFi LOS throughput/BER/RSSI vs distance",
    },
    Experiment {
        name: "fig11",
        description: "WiFi NLOS throughput/BER/RSSI vs distance",
    },
    Experiment {
        name: "fig12",
        description: "ZigBee LOS throughput/BER/RSSI vs distance",
    },
    Experiment {
        name: "fig13",
        description: "Bluetooth LOS throughput/BER/RSSI vs distance",
    },
    Experiment {
        name: "fig14",
        description: "operational-regime map: max RX range vs TX-to-tag distance",
    },
    Experiment {
        name: "fig15",
        description: "WiFi throughput CDF with backscatter present/absent",
    },
    Experiment {
        name: "fig16",
        description: "backscatter throughput CDFs with WiFi present/absent",
    },
    Experiment {
        name: "fig17",
        description: "multi-tag MAC aggregate throughput and Jain fairness",
    },
    Experiment {
        name: "power",
        description: "tag power budget (TSMC 65 nm behavioural model, §3.3)",
    },
    Experiment {
        name: "ablation-window",
        description: "WiFi redundancy window (OFDM symbols per tag bit)",
    },
    Experiment {
        name: "ablation-pilots",
        description: "pilot phase correction at the receiver vs tag survival",
    },
    Experiment {
        name: "ablation-shifter",
        description: "BLE channel filter vs the tag's mirror sideband",
    },
    Experiment {
        name: "ablation-zigbee-n",
        description: "ZigBee redundancy window N (symbols per tag bit)",
    },
    Experiment {
        name: "ablation-mac",
        description: "Aloha vs TDM across the inter-round idle-delay knob",
    },
    Experiment {
        name: "ablation-quaternary",
        description: "binary vs quaternary phase translation (Eq. 4 vs Eq. 5)",
    },
    Experiment {
        name: "ablation-amplitude",
        description: "amplitude modification on 16-QAM (Fig. 2 failure mode)",
    },
    Experiment {
        name: "baseline-hitchhike",
        description: "HitchHike 802.11b DSSS baseline vs FreeRider OFDM",
    },
    Experiment {
        name: "baseline-tone",
        description: "tone-excitation (Passive WiFi class) channel-cost baseline",
    },
    Experiment {
        name: "extension-harvest",
        description: "battery-free operating envelope via RF harvesting",
    },
];

/// Looks up an experiment's registry entry by name.
pub fn find_experiment(name: &str) -> Option<&'static Experiment> {
    EXPERIMENTS.iter().find(|e| e.name == name)
}

/// Runs one experiment by name; `None` if the name is unknown.
pub fn run(name: &str, quick: bool) -> Option<String> {
    Some(match name {
        "table1" => table1(),
        "fig3" => fig3(quick),
        "fig4" => fig4(quick),
        "fig10" => fig10(quick),
        "fig11" => fig11(quick),
        "fig12" => fig12(quick),
        "fig13" => fig13(quick),
        "fig14" => fig14(),
        "fig15" => fig15(quick),
        "fig16" => fig16(quick),
        "fig17" => fig17(quick),
        "power" => power(),
        "ablation-window" => ablation_window(quick),
        "ablation-pilots" => ablation_pilots(quick),
        "ablation-shifter" => ablation_shifter(quick),
        "ablation-zigbee-n" => ablation_zigbee_n(quick),
        "ablation-mac" => ablation_mac(quick),
        "ablation-quaternary" => ablation_quaternary(quick),
        "ablation-amplitude" => ablation_amplitude(quick),
        "baseline-hitchhike" => baseline_hitchhike(quick),
        "baseline-tone" => baseline_tone(),
        "extension-harvest" => extension_harvest(),
        _ => return None,
    })
}

fn sweep_table(points: &[freerider_core::experiments::DistancePoint]) -> String {
    let mut out = String::new();
    writeln!(out, "  dist(m)   tput(kbps)        BER    PRR   RSSI(dBm)").unwrap();
    for p in points {
        writeln!(
            out,
            "  {:>7.1}   {:>10.1}   {:>8.1e}   {:>4.2}   {:>9.1}",
            p.distance_m,
            p.throughput_bps / 1e3,
            p.ber,
            p.prr,
            p.rssi_dbm
        )
        .unwrap();
    }
    out
}

/// Table 1: the codeword-translation XOR logic.
pub fn table1() -> String {
    let mut out = String::from(
        "Table 1 — XOR logic between backscatter codeword, excitation codeword, tag bits\n\
         decoded  excitation  tag bit\n",
    );
    for (decoded, excitation) in [(1u8, 0u8), (0, 1), (0, 0), (1, 1)] {
        let tag = freerider_core::decoder::decode_wifi_binary(&[excitation], &[decoded], 1, 1, 0);
        writeln!(
            out,
            "  C{}       C{}          {}",
            decoded + 1,
            excitation + 1,
            tag[0]
        )
        .unwrap();
    }
    out.push_str("(decoded != excitation  <=>  tag bit 1 — Table 1 of the paper)\n");
    out
}

/// Fig. 3: ambient packet-duration PDF + PLM confusion probability.
pub fn fig3(quick: bool) -> String {
    let n = if quick { 100_000 } else { 2_000_000 };
    let a = ambient_analysis(n, 3);
    let mut out = format!("Fig. 3 — ambient packet durations ({n} synthetic packets)\n");
    writeln!(out, "  duration(ms)   PDF").unwrap();
    for (c, p) in a.bin_centers.iter().zip(a.pdf.iter()) {
        let bar = "#".repeat((p * 120.0) as usize);
        writeln!(out, "  {:>10.2}   {:>6.4} {}", c * 1e3, p, bar).unwrap();
    }
    writeln!(
        out,
        "  P(ambient within ±25 µs of L0=1.0 ms) = {:.4} %",
        a.confusion_l0 * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "  P(ambient within ±25 µs of L1=1.2 ms) = {:.4} %",
        a.confusion_l1 * 100.0
    )
    .unwrap();
    out.push_str("(paper: ~78 % < 500 µs, ~18 % in 1.5–2.7 ms, confusion ≈ 0.03 %)\n");
    out
}

/// Fig. 4: PLM scheduling-message accuracy vs distance.
pub fn fig4(quick: bool) -> String {
    let cfg = PlmAccuracyConfig {
        trials: if quick { 400 } else { 5000 },
        ..PlmAccuracyConfig::default()
    };
    let distances: Vec<f64> = (1..=10).map(|k| k as f64 * 5.0).collect();
    let mut pts = plm_accuracy(&cfg, &[1.0, 2.0, 4.0], 4);
    pts.extend(plm_accuracy(&cfg, &distances, 4));
    let mut out = String::from("Fig. 4 — PLM scheduling-message accuracy vs distance (15 dBm)\n");
    writeln!(out, "  dist(m)   accuracy(%)").unwrap();
    for p in pts {
        writeln!(
            out,
            "  {:>7.0}   {:>10.1}",
            p.distance_m,
            p.accuracy * 100.0
        )
        .unwrap();
    }
    out.push_str("(paper: >70 % below 4 m, ≈50 % at 50 m)\n");
    out
}

/// Fig. 10: WiFi LOS throughput/BER/RSSI vs distance.
pub fn fig10(quick: bool) -> String {
    let (packets, payload) = if quick { (4, 300) } else { (30, 1000) };
    let distances: Vec<f64> = if quick {
        vec![2.0, 18.0, 34.0, 42.0]
    } else {
        vec![
            2.0, 6.0, 10.0, 14.0, 18.0, 22.0, 26.0, 30.0, 34.0, 38.0, 42.0, 44.0,
        ]
    };
    let pts = distance_sweep(
        Technology::Wifi,
        BackscatterBudget::wifi_los(),
        &distances,
        packets,
        payload,
        10,
    );
    format!(
        "Fig. 10 — WiFi LOS deployment ({packets} packets × {payload} B per point)\n{}\
         (paper: ~60 kbps ≤18 m, ~15–32 kbps at 26–36 m, decodes to 42 m, BER ~1e-3, RSSI −70→−93 dBm)\n",
        sweep_table(&pts)
    )
}

/// Fig. 11: WiFi NLOS.
pub fn fig11(quick: bool) -> String {
    let (packets, payload) = if quick { (4, 300) } else { (30, 1000) };
    let distances: Vec<f64> = if quick {
        vec![2.0, 14.0, 22.0, 24.0]
    } else {
        vec![2.0, 5.0, 8.0, 11.0, 14.0, 17.0, 20.0, 22.0, 24.0]
    };
    let pts = distance_sweep(
        Technology::Wifi,
        BackscatterBudget::wifi_nlos(),
        &distances,
        packets,
        payload,
        11,
    );
    format!(
        "Fig. 11 — WiFi NLOS deployment ({packets} packets × {payload} B per point)\n{}\
         (paper: ~60 kbps ≤14 m, ~20 kbps beyond, stops at 22 m at −84 dBm because of one more wall)\n",
        sweep_table(&pts)
    )
}

/// Fig. 12: ZigBee LOS.
pub fn fig12(quick: bool) -> String {
    let (packets, payload) = if quick { (4, 60) } else { (40, 110) };
    let distances: Vec<f64> = if quick {
        vec![2.0, 12.0, 20.0, 23.0]
    } else {
        vec![2.0, 5.0, 8.0, 11.0, 14.0, 17.0, 20.0, 22.0, 24.0]
    };
    let pts = distance_sweep(
        Technology::Zigbee,
        BackscatterBudget::zigbee_los(),
        &distances,
        packets,
        payload,
        12,
    );
    format!(
        "Fig. 12 — ZigBee LOS deployment ({packets} packets × {payload} B per point)\n{}\
         (paper: ~14 kbps ≤12 m, 12 kbps at 20 m, stops at 22 m near −97 dBm, BER ≈ 5e-2)\n",
        sweep_table(&pts)
    )
}

/// Fig. 13: Bluetooth LOS.
pub fn fig13(quick: bool) -> String {
    let (packets, payload) = if quick { (6, 37) } else { (60, 37) };
    let distances: Vec<f64> = if quick {
        vec![2.0, 8.0, 12.0, 13.0]
    } else {
        vec![1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 11.0, 12.0, 13.0]
    };
    let pts = distance_sweep(
        Technology::Ble,
        BackscatterBudget::ble_los(),
        &distances,
        packets,
        payload,
        13,
    );
    format!(
        "Fig. 13 — Bluetooth LOS deployment ({packets} packets × {payload} B per point)\n{}\
         (paper: ~50 kbps ≤10 m, 19 kbps at 12 m with BER 0.23, RSSI −100 dBm at 12 m)\n",
        sweep_table(&pts)
    )
}

/// Fig. 14: the operational-regime map.
pub fn fig14() -> String {
    let d1s: Vec<f64> = vec![0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0];
    let wifi = range_map(Technology::Wifi, &BackscatterBudget::wifi_los(), &d1s);
    let zig = range_map(Technology::Zigbee, &BackscatterBudget::zigbee_los(), &d1s);
    let ble = range_map(Technology::Ble, &BackscatterBudget::ble_los(), &d1s);
    let mut out = String::from(
        "Fig. 14 — operational regime: max RX-to-tag distance vs TX-to-tag distance\n\
         TX→tag(m)    WiFi(m)   ZigBee(m)   Bluetooth(m)\n",
    );
    for i in 0..d1s.len() {
        writeln!(
            out,
            "  {:>7.1}   {:>7.1}   {:>9.1}   {:>12.1}",
            d1s[i], wifi[i].max_d_tag_rx_m, zig[i].max_d_tag_rx_m, ble[i].max_d_tag_rx_m
        )
        .unwrap();
    }
    out.push_str(
        "(paper: WiFi 42 m @ 1 m, ~8 m @ 4 m; ZigBee/Bluetooth TX→tag maxima ≈2 m / ≈1.5 m)\n",
    );
    out
}

/// Fig. 15: WiFi throughput CDF with backscatter present/absent.
pub fn fig15(quick: bool) -> String {
    let n = if quick { 500 } else { 5000 };
    let mut out = String::from("Fig. 15 — WiFi throughput with and without backscatter\n");
    let mut base = wifi_throughput_cdf(None, n, 15);
    writeln!(
        out,
        "  no backscatter:         median {:>5.1} Mbps   p10 {:>5.1}   p90 {:>5.1}",
        base.median(),
        base.quantile(0.1),
        base.quantile(0.9)
    )
    .unwrap();
    for (label, seed) in [
        ("backscattering WiFi", 16u64),
        ("backscattering ZigBee", 17),
        ("backscattering Bluetooth", 18),
    ] {
        let mut c = wifi_throughput_cdf(Some(TAG_LEAK_INTO_WIFI_DBM), n, seed);
        writeln!(
            out,
            "  {label:<23} median {:>5.1} Mbps   p10 {:>5.1}   p90 {:>5.1}",
            c.median(),
            c.quantile(0.1),
            c.quantile(0.9)
        )
        .unwrap();
    }
    out.push_str("(paper: 37.4 Mbps median without; 37.0 / 37.9 / 36.8 Mbps with)\n");
    out
}

/// Fig. 16: backscatter throughput CDFs with WiFi present/absent.
pub fn fig16(quick: bool) -> String {
    let (windows, per) = if quick { (6, 2) } else { (40, 3) };
    let mut out =
        String::from("Fig. 16 — backscatter throughput with WiFi traffic present/absent\n");
    for (tech, label) in [
        (CoexistTech::Wifi, "(a) 802.11g/n signals"),
        (CoexistTech::Zigbee, "(b) ZigBee signals"),
        (CoexistTech::Ble, "(c) Bluetooth signals"),
    ] {
        let r = backscatter_coexistence(tech, windows, per, 16);
        let mut a = r.absent;
        let mut p = r.present;
        writeln!(out, "  {label}").unwrap();
        writeln!(
            out,
            "    WiFi absent:  median {:>6.1} kbps   p10 {:>6.1}   p90 {:>6.1}",
            a.median() / 1e3,
            a.quantile(0.1) / 1e3,
            a.quantile(0.9) / 1e3
        )
        .unwrap();
        writeln!(
            out,
            "    WiFi present: median {:>6.1} kbps   p10 {:>6.1}   p90 {:>6.1}",
            p.median() / 1e3,
            p.quantile(0.1) / 1e3,
            p.quantile(0.9) / 1e3
        )
        .unwrap();
        if tech == CoexistTech::Wifi {
            // §4.4.2's suggested mitigation, quantified.
            let mut protected = backscatter_with_rts_cts(tech, windows, per, 16);
            writeln!(
                out,
                "    + RTS/CTS:    median {:>6.1} kbps   p10 {:>6.1}   p90 {:>6.1}  (reservation overhead instead of tail loss)",
                protected.median() / 1e3,
                protected.quantile(0.1) / 1e3,
                protected.quantile(0.9) / 1e3
            )
            .unwrap();
        }
    }
    out.push_str(
        "(paper: (a) median 61.8 kbps both, tail degrades to ~35 kbps for 10 %;\n (b)/(c) differences of only 1–2 kbps)\n",
    );
    out
}

/// Fig. 17: multi-tag aggregate throughput and Jain fairness.
pub fn fig17(quick: bool) -> String {
    let rounds = if quick { 120 } else { 600 };
    let mut out = String::from(
        "Fig. 17 — multi-tag MAC: aggregate throughput and Jain's fairness index\n\
         (fairness over 15-round measurement windows, as a deployment would observe)\n\
         tags   aloha(kbps)   tdm(kbps)   fairness\n",
    );
    // Every (tag count × scheme) simulation is independently seeded, so
    // the whole grid fans out over the executor; rows are assembled in
    // order and the report is identical for any worker count.
    let tag_counts = [4usize, 8, 12, 16, 20];
    let rows = freerider_rt::Executor::from_env().map(&tag_counts, |_, &n| {
        let mut cfg = NetworkConfig::paper_fig17(n, MacScheme::FramedAloha, 170);
        cfg.rounds = rounds;
        let aloha = NetworkSim::new(cfg).run();
        let mut cfg = NetworkConfig::paper_fig17(n, MacScheme::Tdm, 171);
        cfg.rounds = rounds;
        let tdm = NetworkSim::new(cfg).run();
        // Fairness over a short window: Jain over long runs trends to 1
        // (the law of large numbers); the paper's ≈0.85 reflects the
        // per-window service spread a real deployment sees.
        let mut wcfg = NetworkConfig::paper_fig17(n, MacScheme::FramedAloha, 174 + n as u64);
        wcfg.rounds = 15;
        let windowed = NetworkSim::new(wcfg).run();
        (aloha.aggregate_bps, tdm.aggregate_bps, windowed.fairness)
    });
    for (&n, (aloha_bps, tdm_bps, fairness)) in tag_counts.iter().zip(rows) {
        writeln!(
            out,
            "  {n:>4}   {:>11.1}   {:>9.1}   {:>8.3}",
            aloha_bps / 1e3,
            tdm_bps / 1e3,
            fairness
        )
        .unwrap();
    }
    // Asymptotes.
    let mut cfg = NetworkConfig::paper_fig17(60, MacScheme::FramedAloha, 172);
    cfg.rounds = rounds;
    let aloha = NetworkSim::new(cfg).run();
    let mut cfg = NetworkConfig::paper_fig17(60, MacScheme::Tdm, 173);
    cfg.rounds = rounds;
    let tdm = NetworkSim::new(cfg).run();
    writeln!(
        out,
        "  asymptote (60 tags): aloha {:.1} kbps, TDM {:.1} kbps",
        aloha.aggregate_bps / 1e3,
        tdm.aggregate_bps / 1e3
    )
    .unwrap();
    out.push_str("(paper: ≈7→15 kbps over 4→20 tags; asymptotes ≈18 kbps Aloha / ≈40 kbps TDM; fairness ≈0.85+)\n");
    out
}

/// §3.3: the tag power budget.
pub fn power() -> String {
    let m = PowerModel::default();
    let mut out =
        String::from("§3.3 — FreeRider tag power budget (TSMC 65 nm behavioural model)\n");
    writeln!(
        out,
        "  ring oscillator @20 MHz : {:>5.1} µW",
        m.ring_osc_uw(20e6)
    )
    .unwrap();
    writeln!(
        out,
        "  RF switch               : {:>5.1} µW",
        m.rf_switch_uw
    )
    .unwrap();
    writeln!(out, "  envelope detector       : {:>5.1} µW", m.envelope_uw).unwrap();
    for (kind, label) in [
        (TranslatorKind::WifiPhase, "WiFi phase translator   "),
        (TranslatorKind::ZigbeePhase, "ZigBee phase translator "),
        (TranslatorKind::BleFsk, "Bluetooth FSK translator"),
    ] {
        writeln!(
            out,
            "  {label}: {:>5.1} µW control → total {:>5.1} µW",
            m.control_logic_uw(kind),
            m.total_uw(kind, 20e6)
        )
        .unwrap();
    }
    writeln!(
        out,
        "  energy per tag bit at 60 kbps: {:.0} pJ",
        m.energy_per_bit_pj(TranslatorKind::WifiPhase, 20e6, 60e3)
    )
    .unwrap();
    out.push_str("(paper: ≈30 µW total; 19 µW clock, 12 µW switch, 1–3 µW control logic)\n");
    out
}

/// Ablation: the tag-bit redundancy window (symbols per tag bit).
pub fn ablation_window(quick: bool) -> String {
    let packets = if quick { 4 } else { 20 };
    let mut out = String::from(
        "Ablation — WiFi redundancy window (OFDM symbols per tag bit) at 20 m\n\
         window   in-packet rate(kbps)   tput(kbps)        BER\n",
    );
    for w in [1usize, 2, 4, 8] {
        let mut link = WifiLink::new(LinkConfig {
            payload_len: 600,
            packets,
            ..LinkConfig::new(BackscatterBudget::wifi_los(), 20.0, 40 + w as u64)
        });
        link.translator.symbols_per_step = w;
        let s = link.run();
        writeln!(
            out,
            "  {w:>6}   {:>20.1}   {:>10.1}   {:>8.1e}",
            link.translator.bit_rate(20e6) / 1e3,
            s.throughput_bps() / 1e3,
            s.ber()
        )
        .unwrap();
    }
    out.push_str(
        "(the paper picks 4: below it the scrambler/coder boundary effects dominate — §3.2.1)\n",
    );
    out
}

/// Ablation: pilot phase tracking on the backscatter receiver.
pub fn ablation_pilots(quick: bool) -> String {
    let packets = if quick { 4 } else { 20 };
    let mut out =
        String::from("Ablation — pilot-based common-phase correction at the receiver (5 m)\n");
    use freerider_wifi::rx::PhaseTracking;
    for (tracking, label) in [
        (
            PhaseTracking::DecisionDirected,
            "decision-directed (BCM43xx-like)",
        ),
        (PhaseTracking::FullPilot, "full pilot correction"),
    ] {
        let mut link = WifiLink::new(LinkConfig {
            payload_len: 600,
            packets,
            ..LinkConfig::new(BackscatterBudget::wifi_los(), 5.0, 44)
        });
        link.rx_config.phase_tracking = tracking;
        let s = link.run();
        writeln!(
            out,
            "  {label:<34}: tput {:>6.1} kbps, tag BER {:.2}",
            s.throughput_bps() / 1e3,
            s.ber()
        )
        .unwrap();
    }
    out.push_str(
        "(full pilot correction rotates the tag's Δθ away: tag BER collapses to ~0.5 — §3.2.1)\n",
    );
    out
}

/// Ablation: the BLE channel filter vs the tag's mirror sideband.
pub fn ablation_shifter(quick: bool) -> String {
    let packets = if quick { 6 } else { 30 };
    let mut out = String::from(
        "Ablation — receiver channel filter vs the square-wave mirror sideband (BLE, 4 m)\n",
    );
    for (filter, label) in [
        (true, "channel filter on (Eq. 10 satisfied)"),
        (false, "channel filter off"),
    ] {
        let mut link = BleLink::new(LinkConfig {
            payload_len: 37,
            packets,
            ..LinkConfig::new(BackscatterBudget::ble_los(), 4.0, 45)
        });
        link.rx_config.channel_filter = filter;
        let s = link.run();
        writeln!(
            out,
            "  {label:<38}: PRR {:.2}, tag BER {:.2}",
            s.prr(),
            s.ber()
        )
        .unwrap();
    }
    out.push_str(
        "(without the filter the ±750 kHz image and harmonics corrupt the discriminator — §3.2.3/Fig. 8)\n",
    );
    out
}

/// Ablation: ZigBee symbols per tag bit (the §3.2.2 N).
pub fn ablation_zigbee_n(quick: bool) -> String {
    let packets = if quick { 4 } else { 20 };
    let mut out = String::from(
        "Ablation — ZigBee redundancy window N (data symbols per tag bit) at 19 m\n\
         N   in-packet rate(kbps)   tput(kbps)        BER\n",
    );
    for n in [1usize, 2, 4, 8] {
        let mut link = ZigbeeLink::new(LinkConfig {
            payload_len: 100,
            packets,
            ..LinkConfig::new(BackscatterBudget::zigbee_los(), 19.0, 46 + n as u64)
        });
        link.translator.symbols_per_step = n;
        let s = link.run();
        writeln!(
            out,
            "  {n}   {:>20.1}   {:>10.1}   {:>8.1e}",
            link.translator.bit_rate(4e6) / 1e3,
            s.throughput_bps() / 1e3,
            s.ber()
        )
        .unwrap();
    }
    out.push_str("(§3.2.2: boundary symbols violate the O-QPSK offset structure and lose correlation margin; larger N buys majority-vote protection at marginal SNR)\n");
    out
}

/// Ablation: Framed Slotted Aloha vs TDM across the idle-delay knob.
pub fn ablation_mac(quick: bool) -> String {
    let rounds = if quick { 150 } else { 600 };
    let mut out = String::from(
        "Ablation — MAC scheme and channel politeness (12 tags)\n\
         scheme        idle(ms)   tput(kbps)   fairness\n",
    );
    for scheme in [MacScheme::FramedAloha, MacScheme::Tdm] {
        for idle_ms in [0.0f64, 20.0, 50.0] {
            let mut cfg = NetworkConfig::paper_fig17(12, scheme, 47);
            cfg.rounds = rounds;
            cfg.inter_round_idle_s = idle_ms * 1e-3;
            let r = NetworkSim::new(cfg).run();
            writeln!(
                out,
                "  {:<12}  {:>7.0}   {:>10.1}   {:>8.3}",
                format!("{scheme:?}"),
                idle_ms,
                r.aggregate_bps / 1e3,
                r.fairness
            )
            .unwrap();
        }
    }
    out.push_str(
        "(rounds can be arbitrarily delayed so backscatter doesn't hog the channel — §2.4.1)\n",
    );
    out
}

/// Ablation: binary (Eq. 4) vs quaternary (Eq. 5) phase translation.
pub fn ablation_quaternary(quick: bool) -> String {
    let packets = if quick { 4 } else { 20 };
    let mut out = String::from(
        "Ablation — binary Δθ=180° vs quaternary Δθ=90° phase translation (WiFi)\n\
         scheme      dist(m)   tput(kbps)        BER\n",
    );
    for d in [5.0f64, 20.0, 35.0] {
        let cfg = LinkConfig {
            payload_len: 600,
            packets,
            ..LinkConfig::new(BackscatterBudget::wifi_los(), d, 48)
        };
        let b = WifiLink::new(cfg.clone()).run();
        let q = WifiLink::new_quaternary(cfg).run();
        writeln!(
            out,
            "  binary      {:>7.1}   {:>10.1}   {:>8.1e}",
            d,
            b.throughput_bps() / 1e3,
            b.ber()
        )
        .unwrap();
        writeln!(
            out,
            "  quaternary  {:>7.1}   {:>10.1}   {:>8.1e}",
            d,
            q.throughput_bps() / 1e3,
            q.ber()
        )
        .unwrap();
    }
    out.push_str(
        "(Eq. 5 doubles the rate; the finer phase decision costs BER at range — §2.3.1)\n",
    );
    out
}

/// Ablation: amplitude translation on OFDM — the Fig. 2 failure mode.
pub fn ablation_amplitude(quick: bool) -> String {
    use freerider_channel::channel::{Channel, Fading};
    use freerider_rt::Rng64;
    use freerider_tag::translator::AmplitudeTranslator;
    use freerider_wifi::{Mpdu, Receiver, RxConfig, Transmitter, TxConfig};

    let packets = if quick { 4 } else { 20 };
    let mut rng = Rng64::new(49);
    // Amplitude scaling leaves BPSK/QPSK signs intact — the Fig. 2 failure
    // needs a constellation where amplitude carries bits, so the ablation
    // excites at 24 Mbps (16-QAM).
    let tx = Transmitter::new(TxConfig {
        rate: freerider_wifi::Mcs::Qam16Half,
        ..TxConfig::default()
    });
    let rx = Receiver::new(RxConfig {
        sensitivity_dbm: -200.0,
        ..RxConfig::default()
    });
    let translator = AmplitudeTranslator::new(1.0, 0.5, 320, 480);
    let mut ch = Channel::new(-60.0, -95.0, Fading::None, 50);
    let mut ref_ch = Channel::new(-60.0, -95.0, Fading::None, 51);

    let mut xor_ones = 0usize;
    let mut xor_total = 0usize;
    for _ in 0..packets {
        let payload: Vec<u8> = (0..600).map(|_| rng.byte()).collect();
        let frame = Mpdu::build(
            freerider_wifi::frame::MacAddr::local(1),
            freerider_wifi::frame::MacAddr::local(2),
            0,
            &payload,
        );
        let wave = tx.transmit(frame.as_bytes()).expect("fits");
        let original = rx.receive(&ref_ch.propagate(&wave)).expect("strong link");
        let bits: Vec<u8> = (0..40).map(|_| rng.bit()).collect();
        let (tagged, _) = translator.translate(&wave, &bits);
        if let Ok(pkt) = rx.receive(&ch.propagate(&tagged)) {
            // Amplitude scaling creates *invalid* OFDM codewords (Fig. 2):
            // the decoded stream diverges from the original unpredictably.
            let n = original.data_bits.len().min(pkt.data_bits.len());
            xor_total += n;
            xor_ones += (0..n)
                .filter(|&k| original.data_bits[k] != pkt.data_bits[k])
                .count();
        }
    }
    let frac = xor_ones as f64 / xor_total.max(1) as f64;
    format!(
        "Ablation — amplitude modification on 16-QAM OFDM (the Fig. 2 invalid-codeword failure)\n  \
         fraction of decoded bits diverging from the excitation stream: {:.1} %\n  \
         (a valid codeword translation flips bits only inside one-windows, decodably;\n   \
         halving the amplitude of a 16-QAM symbol lands between rings — an invalid\n   \
         codeword — scattering errors across the packet: no decodable tag data)\n",
        frac * 100.0
    )
}

/// The HitchHike baseline (§1/§5 of the paper): codeword translation on
/// 802.11b DSSS, the system FreeRider generalises. Reproduces the paper's
/// comparison point — DSSS symbols are 1 µs vs OFDM's 4 µs (and FreeRider
/// needs a 4-symbol window), so HitchHike's tag rate is an order of
/// magnitude higher *when 802.11b traffic exists* — which is precisely the
/// deployment problem FreeRider solves ("HitchHike devices will see little
/// WiFi traffic they can use to backscatter").
pub fn baseline_hitchhike(quick: bool) -> String {
    use freerider_channel::channel::{Channel, Fading};
    use freerider_dot11b::hitchhike::{decode_hitchhike, HitchhikeTranslator};
    use freerider_dot11b::{
        Receiver as BReceiver, RxConfig as BRxConfig, Transmitter as BTransmitter,
    };
    use freerider_rt::Rng64;

    let packets = if quick { 3 } else { 15 };
    let mut out = String::from(
        "Baseline — HitchHike (802.11b DSSS) vs FreeRider (802.11g OFDM)\n\
         scheme             dist(m)   in-pkt rate    tput(kbps)        BER   PRR\n",
    );

    // 802.11b budget: same hallway, 22 MHz noise floor, DSSS sensitivity.
    let budget = BackscatterBudget {
        noise_floor_dbm: freerider_dsp::db::thermal_noise_dbm(22e6, 6.0),
        ..BackscatterBudget::wifi_los()
    };
    for d in [2.0f64, 20.0] {
        let mut rng = Rng64::new(60 + d as u64);
        let tx = BTransmitter::new();
        let rx_ref = BReceiver::new(BRxConfig {
            sensitivity_dbm: -200.0,
            ..BRxConfig::default()
        });
        let rx = BReceiver::new(BRxConfig::default());
        let translator = HitchhikeTranslator::standard();
        let rssi = budget.rssi_dbm(1.0, d);
        let mut ch_ref = Channel::new(-45.0, budget.noise_floor_dbm, Fading::None, 61);
        let mut ch = Channel::new(rssi, budget.noise_floor_dbm, Fading::None, 62 + d as u64);

        let (mut sent, mut correct, mut decoded, mut airtime) = (0u64, 0u64, 0usize, 0.0f64);
        for _ in 0..packets {
            let psdu: Vec<u8> = (0..500).map(|_| rng.byte()).collect();
            let wave = tx.transmit(&psdu).expect("fits");
            airtime += wave.len() as f64 / freerider_dot11b::SAMPLE_RATE;
            let original = match rx_ref.receive(&ch_ref.propagate(&wave)) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let bits: Vec<u8> = (0..translator.capacity(wave.len()))
                .map(|_| rng.bit())
                .collect();
            sent += bits.len() as u64;
            let (tagged, _) = translator.translate(&wave, &bits);
            if let Ok(pkt) = rx.receive(&ch.propagate_padded(&tagged, 150)) {
                decoded += 1;
                let dec = decode_hitchhike(&original.psdu_bits, &pkt.psdu_bits, 1, 0);
                correct += bits
                    .iter()
                    .zip(dec.iter())
                    .filter(|(a, b)| (**a & 1) == (**b & 1))
                    .count() as u64;
            }
        }
        let tput = correct as f64 / airtime;
        let ber = if decoded > 0 {
            1.0 - correct as f64 / (sent as f64 * decoded as f64 / packets as f64)
        } else {
            1.0
        };
        writeln!(
            out,
            "  HitchHike (11b)   {:>7.1}   {:>9.0} kbps   {:>10.1}   {:>8.1e}   {:>3.2}",
            d,
            translator.bit_rate() / 1e3,
            tput / 1e3,
            ber.max(0.0),
            decoded as f64 / packets as f64
        )
        .unwrap();

        // FreeRider on OFDM at the same distance for the comparison row.
        let fr = WifiLink::new(LinkConfig {
            payload_len: 500,
            packets,
            fading: freerider_core::link::Fading::None,
            ..LinkConfig::new(BackscatterBudget::wifi_los(), d, 63)
        })
        .run();
        writeln!(
            out,
            "  FreeRider (11g)   {:>7.1}   {:>9.1} kbps   {:>10.1}   {:>8.1e}   {:>3.2}",
            d,
            62.5,
            fr.throughput_bps() / 1e3,
            fr.ber(),
            fr.prr()
        )
        .unwrap();
    }
    out.push_str(
        "(HitchHike's 1 µs DSSS symbols carry ~16× FreeRider's OFDM tag rate — but only\n \
         802.11b traffic can carry it; FreeRider rides the 802.11g/n traffic that is\n \
         actually on the air, which is the paper's deployment argument)\n",
    );
    out
}

/// The tone-excitation baseline (Passive WiFi / Interscatter, §1): the
/// excitation radio must emit a dedicated single tone (or an all-zeros
/// Bluetooth frame), so its channel airtime carries **zero productive
/// bits** while the tag transmits. FreeRider's excitation *is* productive
/// traffic. This experiment quantifies the intro's congestion argument.
pub fn baseline_tone() -> String {
    // A saturated 802.11g link sustains ≈37 Mbps of goodput. Give the tag
    // a 10 % airtime duty cycle in both designs.
    let duty = 0.10f64;
    let wifi_goodput_mbps = 37.4;
    let tag_rate_tone_kbps = 1000.0; // Interscatter-class tag rate on a clean tone
    let tag_rate_freerider_kbps = 60.0;

    let tone_productive = wifi_goodput_mbps * (1.0 - duty);
    let freerider_productive = wifi_goodput_mbps; // excitation *is* traffic
    let mut out = String::from(
        "Baseline — tone excitation (Passive WiFi / Interscatter class) vs FreeRider\n",
    );
    writeln!(out, "  tag airtime duty cycle: {:.0} %", duty * 100.0).unwrap();
    writeln!(
        out,
        "  tone excitation:   tag {:>6.0} kbps, productive WiFi {:>5.1} Mbps (channel lost to the tone)",
        tag_rate_tone_kbps * duty,
        tone_productive
    )
    .unwrap();
    writeln!(
        out,
        "  FreeRider:         tag {:>6.1} kbps, productive WiFi {:>5.1} Mbps (excitation is the traffic)",
        tag_rate_freerider_kbps * duty,
        freerider_productive
    )
    .unwrap();
    writeln!(
        out,
        "  channel cost per delivered tag bit: tone {:.0} productive bits lost / tag bit; FreeRider 0",
        (wifi_goodput_mbps * 1e6 * duty) / (tag_rate_tone_kbps * 1e3 * duty)
    )
    .unwrap();
    out.push_str(
        "(the intro's point: \"deploying backscatter systems that rely on non-productive\n \
         communication results in decreased data rates and increased congestion\")\n",
    );
    out
}

/// Extension — the battery-free operating envelope: sustainable duty
/// cycle of an energy-harvesting tag vs distance from the exciter,
/// combining the §3.3 power budget with an RF-harvesting front end.
pub fn extension_harvest() -> String {
    use freerider_tag::harvest::Harvester;

    let h = Harvester::default();
    let m = PowerModel::default();
    let budget = BackscatterBudget::wifi_los();
    let mut out = String::from(
        "Extension — battery-free operating envelope (RF harvesting vs §3.3 budget)\n\
         dist(m)   incident(dBm)   harvest(µW)   duty cycle   regime\n",
    );
    for d in [0.2f64, 0.35, 0.5, 0.8, 1.0, 1.5, 2.0, 3.0] {
        let incident = budget.power_at_tag_dbm(d);
        let harvest = h.harvested_uw(incident);
        let duty = h.sustainable_duty_cycle(&m, TranslatorKind::WifiPhase, 20e6, incident);
        let regime = if duty >= 1.0 {
            "continuous".to_string()
        } else if duty > 0.0 {
            match h.burst_timing(&m, TranslatorKind::WifiPhase, 20e6, incident) {
                Some((on, off)) => format!("burst {:.1} s on / {:.1} s off", on, off),
                None => "intermittent".to_string(),
            }
        } else {
            "dead (battery required)".to_string()
        };
        writeln!(
            out,
            "  {d:>5.2}   {incident:>13.1}   {harvest:>11.1}   {:>10.2}   {regime}",
            duty
        )
        .unwrap();
    }
    out.push_str(
        "(communication works to 42 m, but battery-free operation only within ~1 m of an\n \
         11 dBm exciter — the gap RF-harvesting research keeps trying to close; with a\n \
         battery or solar assist the 30 µW budget runs for years)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_runs_quick() {
        for e in EXPERIMENTS {
            let out = run(e.name, true).unwrap_or_else(|| panic!("unknown {}", e.name));
            assert!(!out.is_empty(), "{} produced no output", e.name);
            assert!(!e.description.is_empty(), "{} has no description", e.name);
        }
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run("fig99", true).is_none());
        assert!(find_experiment("fig99").is_none());
        assert_eq!(find_experiment("fig10").unwrap().name, "fig10");
    }

    #[test]
    fn table1_matches_paper() {
        let t = table1();
        assert!(t.contains("C2       C1          1"));
        assert!(t.contains("C1       C1          0"));
    }
}
