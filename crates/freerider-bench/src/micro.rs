//! A minimal std-only micro-benchmark harness.
//!
//! The criterion dependency is gone (the workspace builds hermetically,
//! and crates.io is unreachable in the environments this repo targets),
//! so the `benches/` binaries time their kernels with this instead:
//! adaptive iteration against a wall-clock budget, then median / mean
//! per-iteration time from the collected samples.
//!
//! Run with `cargo bench` (the bench targets are `harness = false`
//! plain `main`s) or `cargo run --release -p freerider-bench --bin …`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-benchmark timing summary.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Iterations actually timed.
    pub iters: u32,
    /// Median per-iteration time.
    pub median: Duration,
    /// Mean per-iteration time.
    pub mean: Duration,
}

/// Times `f` adaptively: after one warm-up call, iterates until `budget`
/// wall-clock has been spent or `max_iters` samples are taken (whichever
/// comes first, with a minimum of 3 samples), then prints and returns the
/// per-iteration summary.
pub fn bench<T>(
    label: &str,
    budget: Duration,
    max_iters: u32,
    mut f: impl FnMut() -> T,
) -> Summary {
    black_box(f()); // warm-up (and fault-in of lazy state)
    let mut samples: Vec<Duration> = Vec::new();
    let start = Instant::now();
    while samples.len() < 3
        || (start.elapsed() < budget && (samples.len() as u32) < max_iters.max(3))
    {
        let t0 = Instant::now();
        black_box(f());
        samples.push(t0.elapsed());
    }
    samples.sort_unstable();
    let iters = samples.len() as u32;
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / iters;
    let s = Summary {
        iters,
        median,
        mean,
    };
    println!(
        "{label:<44} {:>12} median {:>12} mean   ({} iters)",
        format_duration(median),
        format_duration(mean),
        iters
    );
    s
}

/// Formats a duration with an SI-appropriate unit.
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_numbers() {
        let s = bench("noop", Duration::from_millis(5), 50, || 1 + 1);
        assert!(s.iters >= 3);
        assert!(s.median <= s.mean * 10);
    }

    #[test]
    fn durations_format_with_units() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert!(format_duration(Duration::from_micros(500)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(500)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(20)).ends_with(" s"));
    }
}
