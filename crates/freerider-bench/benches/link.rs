//! End-to-end link benchmarks: one full excitation→tag→receiver→decode
//! round per technology — the kernel behind Figs. 10–13.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use freerider_channel::channel::Fading;
use freerider_channel::BackscatterBudget;
use freerider_core::link::{BleLink, LinkConfig, WifiLink, ZigbeeLink};

fn one_packet(budget: BackscatterBudget, d: f64, payload: usize) -> LinkConfig {
    LinkConfig {
        payload_len: payload,
        packets: 1,
        fading: Fading::None,
        ..LinkConfig::new(budget, d, 1)
    }
}

fn bench_links(c: &mut Criterion) {
    let mut g = c.benchmark_group("link");
    g.sample_size(10);
    let wifi = WifiLink::new(one_packet(BackscatterBudget::wifi_los(), 5.0, 1000));
    g.bench_function("wifi_1000B_packet", |b| b.iter(|| black_box(wifi.run())));
    let zig = ZigbeeLink::new(one_packet(BackscatterBudget::zigbee_los(), 5.0, 100));
    g.bench_function("zigbee_100B_packet", |b| b.iter(|| black_box(zig.run())));
    let ble = BleLink::new(one_packet(BackscatterBudget::ble_los(), 3.0, 37));
    g.bench_function("ble_37B_packet", |b| b.iter(|| black_box(ble.run())));
    g.finish();
}

fn bench_decoders(c: &mut Criterion) {
    let mut g = c.benchmark_group("decoder");
    let orig: Vec<u8> = (0..12_000).map(|i| ((i * 11) % 5 < 2) as u8).collect();
    let back: Vec<u8> = orig.iter().map(|b| b ^ 1).collect();
    g.bench_function("xor_majority_500_tag_bits", |b| {
        b.iter(|| {
            black_box(freerider_core::decoder::decode_wifi_binary(
                black_box(&orig),
                black_box(&back),
                24,
                4,
                1,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_links, bench_decoders);
criterion_main!(benches);
