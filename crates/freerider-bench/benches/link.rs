//! End-to-end link benchmarks: one full excitation→tag→receiver→decode
//! round per technology — the kernel behind Figs. 10–13. Plain `main`
//! timed with `freerider_bench::micro`.

use freerider_bench::micro::bench;
use freerider_channel::channel::Fading;
use freerider_channel::BackscatterBudget;
use freerider_core::link::{BleLink, LinkConfig, WifiLink, ZigbeeLink};
use std::time::Duration;

const BUDGET: Duration = Duration::from_millis(400);
const MAX_ITERS: u32 = 200;

fn one_packet(budget: BackscatterBudget, d: f64, payload: usize) -> LinkConfig {
    LinkConfig {
        payload_len: payload,
        packets: 1,
        fading: Fading::None,
        ..LinkConfig::new(budget, d, 1)
    }
}

fn main() {
    let wifi = WifiLink::new(one_packet(BackscatterBudget::wifi_los(), 5.0, 1000));
    bench("link/wifi_1000B_packet", BUDGET, MAX_ITERS, || wifi.run());
    let zig = ZigbeeLink::new(one_packet(BackscatterBudget::zigbee_los(), 5.0, 100));
    bench("link/zigbee_100B_packet", BUDGET, MAX_ITERS, || zig.run());
    let ble = BleLink::new(one_packet(BackscatterBudget::ble_los(), 3.0, 37));
    bench("link/ble_37B_packet", BUDGET, MAX_ITERS, || ble.run());

    let orig: Vec<u8> = (0..12_000).map(|i| ((i * 11) % 5 < 2) as u8).collect();
    let back: Vec<u8> = orig.iter().map(|b| b ^ 1).collect();
    bench(
        "decoder/xor_majority_500_tag_bits",
        BUDGET,
        MAX_ITERS,
        || freerider_core::decoder::decode_wifi_binary(&orig, &back, 24, 4, 1),
    );
}
