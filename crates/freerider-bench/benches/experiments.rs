//! Per-figure benchmarks: each group times the generator that regenerates
//! one table/figure of the paper (at the harness's quick size), so
//! `cargo bench` exercises every experiment end-to-end.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_figures(c: &mut Criterion) {
    // Fast experiments get normal sampling.
    for name in [
        "table1",
        "fig3",
        "fig4",
        "fig14",
        "fig15",
        "fig17",
        "power",
        "baseline-tone",
        "extension-harvest",
    ] {
        let mut g = c.benchmark_group(format!("repro/{name}"));
        g.sample_size(10);
        g.bench_function("quick", |b| {
            b.iter(|| black_box(freerider_bench::run(name, true).unwrap()))
        });
        g.finish();
    }
    // IQ-heavy experiments: one-shot measurement style.
    for name in [
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig16",
        "ablation-window",
        "ablation-pilots",
        "ablation-shifter",
        "ablation-zigbee-n",
        "ablation-mac",
        "ablation-quaternary",
        "ablation-amplitude",
        "baseline-hitchhike",
    ] {
        let mut g = c.benchmark_group(format!("repro/{name}"));
        g.sample_size(10);
        g.bench_function("quick", |b| {
            b.iter(|| black_box(freerider_bench::run(name, true).unwrap()))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
