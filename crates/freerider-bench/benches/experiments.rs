//! Per-figure benchmarks: times the generator that regenerates each
//! table/figure of the paper (at the harness's quick size), so
//! `cargo bench` exercises every experiment end-to-end. Plain `main`
//! timed with `freerider_bench::micro`.

use freerider_bench::micro::bench;
use std::time::Duration;

fn main() {
    // Fast experiments get a larger iteration budget; IQ-heavy ones are
    // effectively one-shot (min 3 samples).
    let fast = Duration::from_millis(300);
    let heavy = Duration::from_millis(50);
    for e in freerider_bench::EXPERIMENTS {
        let name = e.name;
        let iq_heavy = matches!(
            name,
            "fig10"
                | "fig11"
                | "fig12"
                | "fig13"
                | "fig16"
                | "ablation-window"
                | "ablation-pilots"
                | "ablation-shifter"
                | "ablation-zigbee-n"
                | "ablation-mac"
                | "ablation-quaternary"
                | "ablation-amplitude"
                | "baseline-hitchhike"
        );
        let budget = if iq_heavy { heavy } else { fast };
        bench(&format!("repro/{name}/quick"), budget, 50, || {
            freerider_bench::run(name, true).unwrap()
        });
    }
}
