//! Component-level micro-benchmarks: the PHY and tag kernels every
//! experiment is built from. Plain `main` timed with
//! `freerider_bench::micro` (no external bench harness).

use freerider_bench::micro::bench;
use freerider_coding::convolutional::{
    encode, viterbi_decode_soft_scratch, CodeRate, ViterbiScratch,
};
use freerider_dot11b::barker::{despread_symbol, spread_symbol};
use freerider_dsp::{fft, Complex};
use freerider_tag::envelope::{EnvelopeConfig, EnvelopeDetector};
use freerider_tag::translator::{FskTranslator, PhaseTranslator};
use freerider_wifi::{Receiver, RxConfig, Transmitter, TxConfig};
use freerider_zigbee::chips::{bipolar_table, correlate};
use std::time::Duration;

const BUDGET: Duration = Duration::from_millis(300);
const MAX_ITERS: u32 = 2_000;

fn main() {
    // dsp
    let data: Vec<Complex> = (0..64).map(|i| Complex::cis(i as f64 * 0.3)).collect();
    bench("dsp/fft64", BUDGET, MAX_ITERS, || {
        let mut v = data.clone();
        fft::fft(&mut v).unwrap();
        v
    });

    // coding — through the scratch kernel (the receivers' actual hot
    // path), not the allocating convenience wrapper.
    let bits: Vec<u8> = (0..1000).map(|i| ((i * 7) % 3 == 0) as u8).collect();
    let coded = encode(&bits, CodeRate::Half);
    let llrs: Vec<f64> = coded
        .iter()
        .map(|&b| if b & 1 == 1 { 1.0 } else { -1.0 })
        .collect();
    let mut vit = ViterbiScratch::new();
    bench("coding/viterbi_1000bits", BUDGET, MAX_ITERS, || {
        viterbi_decode_soft_scratch(&llrs, CodeRate::Half, &mut vit).1
    });

    // wifi
    let tx = Transmitter::new(TxConfig::default());
    let mut psdu = vec![0xA5u8; 1000];
    freerider_coding::crc::append_crc32(&mut psdu);
    let wave = tx.transmit(&psdu).unwrap();
    bench("wifi/tx_1000B", BUDGET, MAX_ITERS, || {
        tx.transmit(&psdu).unwrap()
    });
    let rx = Receiver::new(RxConfig {
        sensitivity_dbm: -200.0,
        ..RxConfig::default()
    });
    bench("wifi/rx_1000B", BUDGET, MAX_ITERS, || {
        rx.receive(&wave).unwrap()
    });

    // zigbee
    let table = bipolar_table();
    bench("zigbee/chip_correlate_16codes", BUDGET, MAX_ITERS, || {
        correlate(&table[7])
    });

    // dot11b
    let chips = spread_symbol(Complex::ONE);
    bench("dot11b/barker_despread", BUDGET, MAX_ITERS, || {
        despread_symbol(&chips)
    });
    let btx = freerider_dot11b::Transmitter::new();
    let bpsdu = vec![0x5Au8; 500];
    let bwave = btx.transmit(&bpsdu).unwrap();
    bench("dot11b/tx_500B", BUDGET, MAX_ITERS, || {
        btx.transmit(&bpsdu).unwrap()
    });
    let brx = freerider_dot11b::Receiver::new(freerider_dot11b::RxConfig {
        sensitivity_dbm: -200.0,
        ..freerider_dot11b::RxConfig::default()
    });
    bench("dot11b/rx_500B", BUDGET, MAX_ITERS, || {
        brx.receive(&bwave).unwrap()
    });

    // net
    {
        use freerider_channel::geometry::Point;
        use freerider_net::coverage::coverage_map;
        use freerider_net::{Deployment, LinkModel};
        let d = Deployment::open_plan()
            .with_receiver(4.0, 0.0)
            .with_receiver(-4.0, 0.0);
        let m = LinkModel::default();
        bench("net/coverage_map_30x30", BUDGET, MAX_ITERS, || {
            coverage_map(&d, &m, Point::new(-15.0, -15.0), 1.0, 30, 30)
        });
    }

    // tag
    let excitation: Vec<Complex> = (0..41_280).map(|i| Complex::cis(i as f64 * 0.01)).collect();
    let tag_bits: Vec<u8> = (0..127).map(|i| (i % 2) as u8).collect();
    let phase = PhaseTranslator::wifi_binary();
    bench("tag/phase_translate_wifi_packet", BUDGET, MAX_ITERS, || {
        phase.translate(&excitation, &tag_bits)
    });
    let fsk = FskTranslator::ble();
    let ble_ex: Vec<Complex> = (0..3008).map(|i| Complex::cis(i as f64 * 0.2)).collect();
    let ble_bits = vec![1u8; 20];
    bench("tag/fsk_translate_ble_packet", BUDGET, MAX_ITERS, || {
        fsk.translate(&ble_ex, &ble_bits)
    });
    let mut det = EnvelopeDetector::new(EnvelopeConfig {
        threshold_mw: 0.25,
        ..EnvelopeConfig::default()
    });
    let burst: Vec<Complex> = (0..20_000).map(|_| Complex::ONE).collect();
    bench("tag/envelope_detect_1ms", BUDGET, MAX_ITERS, || {
        det.detect(&burst)
    });
}
