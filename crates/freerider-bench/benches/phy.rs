//! Component-level criterion benchmarks: the PHY and tag kernels every
//! experiment is built from.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use freerider_coding::convolutional::{encode, viterbi_decode, CodeRate};
use freerider_dsp::{fft, Complex};
use freerider_tag::envelope::{EnvelopeConfig, EnvelopeDetector};
use freerider_tag::translator::{FskTranslator, PhaseTranslator};
use freerider_wifi::{Receiver, RxConfig, Transmitter, TxConfig};
use freerider_dot11b::barker::{despread_symbol, spread_symbol};
use freerider_zigbee::chips::{bipolar_table, correlate};

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("dsp");
    let data: Vec<Complex> = (0..64).map(|i| Complex::cis(i as f64 * 0.3)).collect();
    g.throughput(Throughput::Elements(64));
    g.bench_function("fft64", |b| {
        b.iter(|| {
            let mut v = data.clone();
            fft::fft(&mut v).unwrap();
            black_box(v)
        })
    });
    g.finish();
}

fn bench_viterbi(c: &mut Criterion) {
    let mut g = c.benchmark_group("coding");
    let bits: Vec<u8> = (0..1000).map(|i| ((i * 7) % 3 == 0) as u8).collect();
    let coded = encode(&bits, CodeRate::Half);
    g.throughput(Throughput::Elements(bits.len() as u64));
    g.bench_function("viterbi_1000bits", |b| {
        b.iter(|| black_box(viterbi_decode(black_box(&coded), CodeRate::Half)))
    });
    g.finish();
}

fn bench_wifi_phy(c: &mut Criterion) {
    let mut g = c.benchmark_group("wifi");
    g.sample_size(20);
    let tx = Transmitter::new(TxConfig::default());
    let mut psdu = vec![0xA5u8; 1000];
    freerider_coding::crc::append_crc32(&mut psdu);
    let wave = tx.transmit(&psdu).unwrap();
    g.throughput(Throughput::Bytes(psdu.len() as u64));
    g.bench_function("tx_1000B", |b| {
        b.iter(|| black_box(tx.transmit(black_box(&psdu)).unwrap()))
    });
    let rx = Receiver::new(RxConfig {
        sensitivity_dbm: -200.0,
        ..RxConfig::default()
    });
    g.bench_function("rx_1000B", |b| {
        b.iter(|| black_box(rx.receive(black_box(&wave)).unwrap()))
    });
    g.finish();
}

fn bench_zigbee_despread(c: &mut Criterion) {
    let mut g = c.benchmark_group("zigbee");
    let table = bipolar_table();
    g.bench_function("chip_correlate_16codes", |b| {
        b.iter(|| black_box(correlate(black_box(&table[7]))))
    });
    g.finish();
}

fn bench_dot11b(c: &mut Criterion) {
    let mut g = c.benchmark_group("dot11b");
    let chips = spread_symbol(Complex::ONE);
    g.bench_function("barker_despread", |b| {
        b.iter(|| black_box(despread_symbol(black_box(&chips))))
    });
    let tx = freerider_dot11b::Transmitter::new();
    let psdu = vec![0x5Au8; 500];
    let wave = tx.transmit(&psdu).unwrap();
    g.throughput(Throughput::Bytes(500));
    g.bench_function("tx_500B", |b| {
        b.iter(|| black_box(tx.transmit(black_box(&psdu)).unwrap()))
    });
    let rx = freerider_dot11b::Receiver::new(freerider_dot11b::RxConfig {
        sensitivity_dbm: -200.0,
        ..freerider_dot11b::RxConfig::default()
    });
    g.sample_size(10);
    g.bench_function("rx_500B", |b| {
        b.iter(|| black_box(rx.receive(black_box(&wave)).unwrap()))
    });
    g.finish();
}

fn bench_net(c: &mut Criterion) {
    use freerider_channel::geometry::Point;
    use freerider_net::coverage::coverage_map;
    use freerider_net::{Deployment, LinkModel};
    let mut g = c.benchmark_group("net");
    let d = Deployment::open_plan()
        .with_receiver(4.0, 0.0)
        .with_receiver(-4.0, 0.0);
    let m = LinkModel::default();
    g.bench_function("coverage_map_30x30", |b| {
        b.iter(|| {
            black_box(coverage_map(
                black_box(&d),
                &m,
                Point::new(-15.0, -15.0),
                1.0,
                30,
                30,
            ))
        })
    });
    g.finish();
}

fn bench_tag(c: &mut Criterion) {
    let mut g = c.benchmark_group("tag");
    g.sample_size(30);
    let excitation: Vec<Complex> = (0..41_280).map(|i| Complex::cis(i as f64 * 0.01)).collect();
    let bits: Vec<u8> = (0..127).map(|i| (i % 2) as u8).collect();
    let phase = PhaseTranslator::wifi_binary();
    g.throughput(Throughput::Elements(excitation.len() as u64));
    g.bench_function("phase_translate_wifi_packet", |b| {
        b.iter(|| black_box(phase.translate(black_box(&excitation), &bits)))
    });
    let fsk = FskTranslator::ble();
    let ble_ex: Vec<Complex> = (0..3008).map(|i| Complex::cis(i as f64 * 0.2)).collect();
    let ble_bits = vec![1u8; 20];
    g.bench_function("fsk_translate_ble_packet", |b| {
        b.iter(|| black_box(fsk.translate(black_box(&ble_ex), &ble_bits)))
    });
    let mut det = EnvelopeDetector::new(EnvelopeConfig {
        threshold_mw: 0.25,
        ..EnvelopeConfig::default()
    });
    let burst: Vec<Complex> = (0..20_000).map(|_| Complex::ONE).collect();
    g.bench_function("envelope_detect_1ms", |b| {
        b.iter(|| black_box(det.detect(black_box(&burst))))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fft,
    bench_viterbi,
    bench_wifi_phy,
    bench_zigbee_despread,
    bench_dot11b,
    bench_net,
    bench_tag
);
criterion_main!(benches);
