//! Pins the profiler's determinism contract end-to-end: running the same
//! WiFi receive sweep under 1 and 4 executor workers must produce a
//! byte-identical `work_json` dump — same stage paths, same invocation
//! counts, same samples/bits, same work counters. This is the acceptance
//! gate for "scopes never wrap executor dispatch".

use freerider_rt::Executor;
use freerider_telemetry::profile;
use freerider_wifi::{Receiver, RxConfig, RxScratch, Transmitter, TxConfig};

/// Receives a small multi-size packet sweep under `threads` workers with
/// profiling on, returning the deterministic work dump.
fn sweep_work_json(threads: usize) -> String {
    let tx = Transmitter::new(TxConfig::default());
    let waves: Vec<_> = [64usize, 200, 500, 1000]
        .iter()
        .map(|&len| {
            let mut psdu = vec![0xA5u8; len];
            freerider_coding::crc::append_crc32(&mut psdu);
            tx.transmit(&psdu).unwrap()
        })
        .collect();
    let rx = Receiver::new(RxConfig {
        sensitivity_dbm: -200.0,
        ..RxConfig::default()
    });

    // Reset AFTER transmit so only the receive pipeline is profiled
    // (TX-side CRC/FFT work would otherwise land in `(unscoped)`).
    profile::reset();
    let ok = Executor::new(threads).map_with(&waves, RxScratch::new, |_, wave, scratch| {
        rx.receive_with(wave, scratch).unwrap().fcs_valid
    });
    assert!(ok.iter().all(|&v| v), "every packet must decode cleanly");
    let json = profile::work_json(&profile::report());
    profile::reset();
    json
}

#[test]
fn work_counters_byte_identical_across_worker_counts() {
    profile::set_enabled(true);
    let serial = sweep_work_json(1);
    let parallel = sweep_work_json(4);
    profile::set_enabled(false);

    assert_eq!(
        serial, parallel,
        "work dump must not depend on the worker count"
    );

    // The dump is the real pipeline, not an empty report.
    assert!(serial.starts_with(r#"{"schema":"freerider-profile-work/1""#));
    for stage in [
        r#""wifi.rx""#,
        r#""wifi.rx/decode/viterbi""#,
        r#""wifi.rx/decode/equalize""#,
        r#""wifi.rx/decode/fcs""#,
    ] {
        assert!(serial.contains(stage), "missing {stage} in:\n{serial}");
    }
    for counter in [
        "fft.butterflies",
        "viterbi.acs_ops",
        "equalize.subcarriers",
        "demap.symbols",
        "crc.bytes",
    ] {
        assert!(serial.contains(counter), "missing {counter} in:\n{serial}");
    }
    // 4 packets → the root scope ran exactly 4 times.
    assert!(
        serial.contains(r#""wifi.rx":{"count":4"#),
        "root scope count must equal the packet count:\n{serial}"
    );
}
