//! Log-distance path loss and floor-plan wall attenuation.

/// Log-distance path-loss model:
/// `PL(d) = PL₀ + 10·n·log₁₀(d / 1 m)` (dB).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathLoss {
    /// Reference loss at 1 m, dB.
    pub pl0_db: f64,
    /// Path-loss exponent. Hallways behave like lossy waveguides
    /// (n < 2); cluttered NLOS paths run higher.
    pub exponent: f64,
}

impl PathLoss {
    /// Creates a model.
    ///
    /// # Panics
    /// Panics if `exponent <= 0` or `pl0_db < 0`.
    pub fn new(pl0_db: f64, exponent: f64) -> Self {
        assert!(exponent > 0.0, "path-loss exponent must be positive");
        assert!(pl0_db >= 0.0, "reference loss must be non-negative");
        PathLoss { pl0_db, exponent }
    }

    /// Free-space-like 2.4 GHz reference: PL₀ ≈ 40 dB at 1 m, n = 2.
    pub fn free_space_2g4() -> Self {
        PathLoss::new(40.0, 2.0)
    }

    /// Path loss in dB at distance `d_m` metres. Distances below 0.1 m are
    /// clamped (near-field is out of scope).
    pub fn loss_db(&self, d_m: f64) -> f64 {
        let d = d_m.max(0.1);
        self.pl0_db + 10.0 * self.exponent * d.log10()
    }
}

/// A minimal floor-plan model for the NLOS deployment of Fig. 9(b): walls
/// are crossed as the receiver moves down the hallway, each adding a fixed
/// penetration loss at and beyond its distance threshold.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FloorPlan {
    /// `(threshold_m, loss_db)` — receivers at distance ≥ threshold incur
    /// the loss.
    walls: Vec<(f64, f64)>,
}

impl FloorPlan {
    /// An open line-of-sight deployment (no walls).
    pub fn line_of_sight() -> Self {
        FloorPlan::default()
    }

    /// The paper's NLOS deployment (Fig. 9b): the TX and tag sit in a room,
    /// so one wall (≈5 dB) is always crossed; past 22 m the signal must
    /// penetrate one more wall (≈12 dB), which is what stops backscatter
    /// reception there (§4.2.1: "the backscattered signal actually needs to
    /// pass one more wall … the packet header cannot be detected").
    pub fn paper_nlos() -> Self {
        FloorPlan {
            walls: vec![(0.0, 4.0), (22.5, 12.0)],
        }
    }

    /// Creates a floor plan from explicit walls.
    pub fn with_walls(walls: Vec<(f64, f64)>) -> Self {
        FloorPlan { walls }
    }

    /// Total wall loss in dB at receiver distance `d_m`.
    pub fn wall_loss_db(&self, d_m: f64) -> f64 {
        self.walls
            .iter()
            .filter(|(thresh, _)| d_m >= *thresh)
            .map(|(_, loss)| loss)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_grows_logarithmically() {
        let pl = PathLoss::new(35.0, 1.75);
        assert!((pl.loss_db(1.0) - 35.0).abs() < 1e-12);
        // Each decade adds 10·n dB.
        assert!((pl.loss_db(10.0) - 52.5).abs() < 1e-9);
        assert!((pl.loss_db(100.0) - 70.0).abs() < 1e-9);
    }

    #[test]
    fn near_field_clamped() {
        let pl = PathLoss::free_space_2g4();
        assert_eq!(pl.loss_db(0.0), pl.loss_db(0.1));
        assert_eq!(pl.loss_db(-3.0), pl.loss_db(0.1));
    }

    #[test]
    fn free_space_sanity() {
        // 2.4 GHz free space at 10 m ≈ 60 dB.
        let pl = PathLoss::free_space_2g4();
        assert!((pl.loss_db(10.0) - 60.0).abs() < 0.5);
    }

    #[test]
    fn floor_plan_walls_accumulate() {
        let fp = FloorPlan::paper_nlos();
        assert!((fp.wall_loss_db(1.0) - 4.0).abs() < 1e-12);
        assert!((fp.wall_loss_db(22.0) - 4.0).abs() < 1e-12);
        assert!((fp.wall_loss_db(23.0) - 16.0).abs() < 1e-12);
        assert_eq!(FloorPlan::line_of_sight().wall_loss_db(40.0), 0.0);
    }

    #[test]
    #[should_panic]
    fn invalid_exponent_panics() {
        let _ = PathLoss::new(40.0, 0.0);
    }
}
