//! The two-segment backscatter link budget: excitation TX → tag → receiver.
//!
//! Received backscatter power:
//!
//! ```text
//! P_rx = P_tx − PL(d_tx→tag) − L_bs − PL(d_tag→rx) − walls(d_tag→rx)
//! ```
//!
//! where `L_bs` is the backscatter conversion loss: the tag's reflection
//! (Γ) efficiency plus the square-wave shifter placing only `2/π` of the
//! amplitude in the used sideband (≈ 3.9 dB; see
//! `freerider_dsp::osc::SquareWave`).
//!
//! The per-technology presets are calibrated so that simulated RSSI-vs-
//! distance matches the measurements the paper reports (Figs. 10c, 11c,
//! 12c, 13c); the calibration residuals are recorded in EXPERIMENTS.md.

use crate::pathloss::{FloorPlan, PathLoss};
use freerider_dsp::db;

/// A complete backscatter link budget.
///
/// ```
/// use freerider_channel::BackscatterBudget;
///
/// let b = BackscatterBudget::wifi_los();
/// // The paper's Fig. 10(c) endpoints: ≈ −70 dBm at 2 m, ≈ −93 dBm at 42 m.
/// assert!((b.rssi_dbm(1.0, 2.0) - -70.3).abs() < 0.5);
/// assert!((b.rssi_dbm(1.0, 42.0) - -93.4).abs() < 0.5);
/// // A 5 dBm ZigBee excitation cannot power the tag beyond ~2 m (§4.3).
/// let z = BackscatterBudget::zigbee_los();
/// assert!(z.tag_operational(2.0));
/// assert!(!z.tag_operational(3.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BackscatterBudget {
    /// Excitation transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Path loss on the TX → tag segment.
    pub tx_tag: PathLoss,
    /// Path loss on the tag → RX segment.
    pub tag_rx: PathLoss,
    /// Backscatter conversion loss, dB (Γ efficiency + sideband split).
    pub backscatter_loss_db: f64,
    /// Walls on the tag → RX segment.
    pub floor_plan: FloorPlan,
    /// Receiver noise floor, dBm (thermal + noise figure at the signal
    /// bandwidth).
    pub noise_floor_dbm: f64,
    /// Minimum excitation power at the tag for its envelope detector and
    /// reflection chain to operate, dBm. This — not the receiver — is what
    /// bounds the TX-to-tag axis of Fig. 14 (§4.3): with the presets'
    /// −36.5 dBm the operational regime ends at ≈5 m for the 11 dBm WiFi
    /// excitation, ≈2 m for 5 dBm ZigBee and ≈1.3 m for 0 dBm Bluetooth,
    /// matching the paper's reported maxima (4.5 m / 2 m / 1.5 m).
    pub tag_sensitivity_dbm: f64,
}

/// The square-wave shifter's sideband loss in dB (`20·log10(π/2)` ≈ 3.92).
pub const SIDEBAND_LOSS_DB: f64 = 3.921_584_838_512_754;

impl BackscatterBudget {
    /// WiFi LOS hallway (Fig. 10): 11 dBm excitation (§4.2.1), hallway
    /// waveguide exponent 1.75, 20 MHz noise floor ≈ −95 dBm.
    pub fn wifi_los() -> Self {
        BackscatterBudget {
            tx_power_dbm: 11.0,
            tx_tag: PathLoss::new(35.0, 1.75),
            tag_rx: PathLoss::new(35.0, 1.75),
            backscatter_loss_db: SIDEBAND_LOSS_DB + 2.1,
            floor_plan: FloorPlan::line_of_sight(),
            noise_floor_dbm: db::thermal_noise_dbm(20e6, 6.0),
            tag_sensitivity_dbm: -36.5,
        }
    }

    /// WiFi NLOS (Fig. 11): TX + tag in a room, receiver in the hallway
    /// (Fig. 9b); the paper's measured slope is shallow (waveguide) but an
    /// extra wall appears past 22 m.
    pub fn wifi_nlos() -> Self {
        BackscatterBudget {
            tx_power_dbm: 11.0,
            tx_tag: PathLoss::new(35.0, 1.75),
            // The paper's measured NLOS slope is very shallow (the hallway
            // acts as a waveguide once the signal exits the room), with the
            // loss dominated by the wall terms.
            tag_rx: PathLoss::new(35.0, 1.1),
            backscatter_loss_db: SIDEBAND_LOSS_DB + 2.1,
            floor_plan: FloorPlan::paper_nlos(),
            noise_floor_dbm: db::thermal_noise_dbm(20e6, 6.0),
            tag_sensitivity_dbm: -36.5,
        }
    }

    /// ZigBee LOS (Fig. 12): 5 dBm CC2650 excitation, 2 MHz channel
    /// (noise floor ≈ −105 dBm; the CC2650's practical sync sensitivity of
    /// ≈ −97 dBm is modelled in the receiver, not here).
    pub fn zigbee_los() -> Self {
        BackscatterBudget {
            tx_power_dbm: 5.0,
            tx_tag: PathLoss::new(35.0, 1.75),
            tag_rx: PathLoss::new(35.0, 1.9),
            backscatter_loss_db: SIDEBAND_LOSS_DB + 2.1,
            floor_plan: FloorPlan::line_of_sight(),
            noise_floor_dbm: db::thermal_noise_dbm(2e6, 8.0),
            tag_sensitivity_dbm: -36.5,
        }
    }

    /// Bluetooth LOS (Fig. 13): 0 dBm CC2541 excitation, 1 MHz channel.
    pub fn ble_los() -> Self {
        BackscatterBudget {
            tx_power_dbm: 0.0,
            tx_tag: PathLoss::new(35.0, 1.75),
            tag_rx: PathLoss::new(35.0, 2.2),
            backscatter_loss_db: SIDEBAND_LOSS_DB + 2.1,
            floor_plan: FloorPlan::line_of_sight(),
            noise_floor_dbm: db::thermal_noise_dbm(1e6, 8.0),
            tag_sensitivity_dbm: -36.5,
        }
    }

    /// Power arriving at the tag, dBm.
    pub fn power_at_tag_dbm(&self, d_tx_tag_m: f64) -> f64 {
        self.tx_power_dbm - self.tx_tag.loss_db(d_tx_tag_m)
    }

    /// Whether the tag receives enough excitation power to operate at all
    /// (envelope detection + useful reflection).
    pub fn tag_operational(&self, d_tx_tag_m: f64) -> bool {
        self.power_at_tag_dbm(d_tx_tag_m) >= self.tag_sensitivity_dbm
    }

    /// Backscatter RSSI at the receiver, dBm.
    pub fn rssi_dbm(&self, d_tx_tag_m: f64, d_tag_rx_m: f64) -> f64 {
        self.power_at_tag_dbm(d_tx_tag_m)
            - self.backscatter_loss_db
            - self.tag_rx.loss_db(d_tag_rx_m)
            - self.floor_plan.wall_loss_db(d_tag_rx_m)
    }

    /// Signal-to-noise ratio at the receiver, dB.
    pub fn snr_db(&self, d_tx_tag_m: f64, d_tag_rx_m: f64) -> f64 {
        self.rssi_dbm(d_tx_tag_m, d_tag_rx_m) - self.noise_floor_dbm
    }

    /// RSSI of the *excitation* signal at a receiver `d_m` from the
    /// transmitter (used for direct TX→RX links, e.g. PLM reception at the
    /// tag and the coexistence experiments).
    pub fn direct_rssi_dbm(&self, d_m: f64) -> f64 {
        self.tx_power_dbm - self.tx_tag.loss_db(d_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wifi_los_matches_paper_fig10c() {
        // Fig. 10(c): ≈ −70 dBm at ~2 m, degrading to ≈ −93 dBm at 42 m.
        let b = BackscatterBudget::wifi_los();
        let near = b.rssi_dbm(1.0, 2.0);
        let far = b.rssi_dbm(1.0, 42.0);
        assert!((near - (-70.0)).abs() < 2.0, "near RSSI {near}");
        assert!((far - (-93.0)).abs() < 2.0, "far RSSI {far}");
    }

    #[test]
    fn wifi_nlos_wall_kills_reception_past_22m() {
        // Fig. 11(c): ≈ −84 dBm at 22 m; the extra wall beyond pushes RSSI
        // below the −94 dBm header-detection sensitivity.
        let b = BackscatterBudget::wifi_nlos();
        let at22 = b.rssi_dbm(1.0, 22.0);
        assert!((at22 - (-84.0)).abs() < 2.5, "22 m RSSI {at22}");
        assert!(b.rssi_dbm(1.0, 24.0) < -94.0);
    }

    #[test]
    fn zigbee_matches_paper_fig12c() {
        // Fig. 12(c): ≈ −97 dBm at 22 m.
        let b = BackscatterBudget::zigbee_los();
        let far = b.rssi_dbm(1.0, 22.0);
        assert!((far - (-97.0)).abs() < 2.5, "far RSSI {far}");
    }

    #[test]
    fn ble_matches_paper_fig13c() {
        // Fig. 13(c): ≈ −100 dBm at 12 m.
        let b = BackscatterBudget::ble_los();
        let far = b.rssi_dbm(1.0, 12.0);
        assert!((far - (-100.0)).abs() < 2.5, "far RSSI {far}");
    }

    #[test]
    fn snr_is_rssi_minus_noise() {
        let b = BackscatterBudget::wifi_los();
        let snr = b.snr_db(1.0, 10.0);
        assert!((snr - (b.rssi_dbm(1.0, 10.0) - b.noise_floor_dbm)).abs() < 1e-12);
        // Near the tag the link is comfortably above threshold.
        assert!(b.snr_db(1.0, 2.0) > 20.0);
    }

    #[test]
    fn moving_tx_away_weakens_everything() {
        // Fig. 14: the operational regime shrinks fast as TX-to-tag grows,
        // because the loss appears before the (lossy) reflection.
        let b = BackscatterBudget::wifi_los();
        let r1 = b.rssi_dbm(1.0, 10.0);
        let r4 = b.rssi_dbm(4.0, 10.0);
        assert!(r4 < r1 - 9.0, "expected ≥10.5 dB drop: {r1} → {r4}");
    }
}
