//! # freerider-channel
//!
//! Radio-propagation substrate: everything between a transmitter's DAC and
//! a receiver's ADC in the FreeRider experiments.
//!
//! The original evaluation was run in the hallways and offices of Figure 9
//! of the paper; since no physical RF environment is available, this crate
//! provides calibrated statistical models whose parameters are fitted to
//! the RSSI-vs-distance measurements the paper itself reports
//! (Figs. 10c/11c/12c/13c) — see the constants on
//! [`budget::BackscatterBudget`].
//!
//! * [`pathloss`] — log-distance path loss and the floor-plan wall model.
//! * [`geometry`] — 2D sites (points, wall segments, crossing counts) for
//!   deployment-scale simulation.
//! * [`budget`] — the two-segment TX → tag → RX backscatter link budget.
//! * [`channel`] — applies a budget to IQ waveforms: power scaling, block
//!   Rician fading, and thermal AWGN.
//! * [`interference`] — duty-cycled co/adjacent-channel interferers with
//!   spectral-mask leakage (for the coexistence experiments, Figs. 15/16).
//! * [`ambient`] — the synthetic ambient-traffic generator reproducing the
//!   packet-duration distribution of Fig. 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ambient;
pub mod budget;
pub mod channel;
pub mod geometry;
pub mod interference;
pub mod pathloss;

pub use budget::BackscatterBudget;
pub use channel::Channel;
pub use pathloss::{FloorPlan, PathLoss};
