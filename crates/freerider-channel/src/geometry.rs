//! 2D deployment geometry: positions, wall segments, and geometric path
//! loss.
//!
//! The calibrated paper experiments use the 1D threshold model in
//! [`crate::pathloss::FloorPlan`] (fitted to Fig. 9's hallway); this
//! module provides the general 2D machinery for deployment-scale
//! simulation (`freerider-net`): walls are line segments with a
//! penetration loss, and a link's extra attenuation is the sum over walls
//! its line-of-sight crosses.

use crate::pathloss::PathLoss;

/// A point in the deployment plane, metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// x coordinate, metres.
    pub x: f64,
    /// y coordinate, metres.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }
}

/// A wall: a line segment with a penetration loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wall {
    /// One endpoint.
    pub a: Point,
    /// The other endpoint.
    pub b: Point,
    /// Penetration loss in dB.
    pub loss_db: f64,
}

impl Wall {
    /// Creates a wall.
    pub fn new(a: Point, b: Point, loss_db: f64) -> Self {
        Wall { a, b, loss_db }
    }

    /// Whether the segment `p`→`q` crosses this wall.
    pub fn crosses(&self, p: Point, q: Point) -> bool {
        segments_intersect(p, q, self.a, self.b)
    }
}

/// Proper segment intersection (shared endpoints / collinear touching
/// count as crossing — a ray grazing a wall still penetrates it).
fn segments_intersect(p1: Point, p2: Point, p3: Point, p4: Point) -> bool {
    fn orient(a: Point, b: Point, c: Point) -> f64 {
        (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
    }
    fn on_segment(a: Point, b: Point, c: Point) -> bool {
        c.x >= a.x.min(b.x) - 1e-12
            && c.x <= a.x.max(b.x) + 1e-12
            && c.y >= a.y.min(b.y) - 1e-12
            && c.y <= a.y.max(b.y) + 1e-12
    }
    let d1 = orient(p3, p4, p1);
    let d2 = orient(p3, p4, p2);
    let d3 = orient(p1, p2, p3);
    let d4 = orient(p1, p2, p4);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    (d1.abs() < 1e-12 && on_segment(p3, p4, p1))
        || (d2.abs() < 1e-12 && on_segment(p3, p4, p2))
        || (d3.abs() < 1e-12 && on_segment(p1, p2, p3))
        || (d4.abs() < 1e-12 && on_segment(p1, p2, p4))
}

/// A 2D site: a propagation model plus walls.
#[derive(Debug, Clone, PartialEq)]
pub struct Site {
    /// The distance-dependent loss model.
    pub path_loss: PathLoss,
    /// The walls.
    pub walls: Vec<Wall>,
}

impl Site {
    /// An open site with the given propagation model.
    pub fn open(path_loss: PathLoss) -> Self {
        Site {
            path_loss,
            walls: Vec::new(),
        }
    }

    /// Adds a wall (builder style).
    pub fn with_wall(mut self, wall: Wall) -> Self {
        self.walls.push(wall);
        self
    }

    /// Total loss in dB between two points: log-distance plus every wall
    /// the direct path crosses.
    pub fn loss_db(&self, from: Point, to: Point) -> f64 {
        let d = from.distance(&to);
        let walls: f64 = self
            .walls
            .iter()
            .filter(|w| w.crosses(from, to))
            .map(|w| w.loss_db)
            .sum();
        self.path_loss.loss_db(d) + walls
    }

    /// Number of walls the direct path crosses.
    pub fn walls_crossed(&self, from: Point, to: Point) -> usize {
        self.walls.iter().filter(|w| w.crosses(from, to)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn distances() {
        assert!((p(0.0, 0.0).distance(&p(3.0, 4.0)) - 5.0).abs() < 1e-12);
        assert_eq!(p(1.0, 1.0).distance(&p(1.0, 1.0)), 0.0);
    }

    #[test]
    fn crossing_detection() {
        let wall = Wall::new(p(0.0, -1.0), p(0.0, 1.0), 5.0);
        assert!(wall.crosses(p(-1.0, 0.0), p(1.0, 0.0)));
        assert!(!wall.crosses(p(-1.0, 2.0), p(1.0, 2.0)));
        assert!(!wall.crosses(p(1.0, 0.0), p(2.0, 0.0)));
        // Parallel, non-crossing.
        assert!(!wall.crosses(p(0.5, -1.0), p(0.5, 1.0)));
        // Endpoint touch counts as crossing.
        assert!(wall.crosses(p(0.0, 0.0), p(1.0, 0.0)));
    }

    #[test]
    fn site_loss_accumulates_walls() {
        let site = Site::open(PathLoss::new(35.0, 2.0))
            .with_wall(Wall::new(p(5.0, -10.0), p(5.0, 10.0), 6.0))
            .with_wall(Wall::new(p(8.0, -10.0), p(8.0, 10.0), 4.0));
        let a = p(0.0, 0.0);
        // Through no walls.
        let l0 = site.loss_db(a, p(4.0, 0.0));
        assert!((l0 - (35.0 + 20.0 * 4.0f64.log10())).abs() < 1e-9);
        // Through one wall.
        assert_eq!(site.walls_crossed(a, p(6.0, 0.0)), 1);
        // Through both.
        assert_eq!(site.walls_crossed(a, p(9.0, 0.0)), 2);
        let l2 = site.loss_db(a, p(9.0, 0.0));
        assert!((l2 - (35.0 + 20.0 * 9.0f64.log10() + 10.0)).abs() < 1e-9);
    }

    #[test]
    fn oblique_paths() {
        let site = Site::open(PathLoss::new(40.0, 2.0)).with_wall(Wall::new(
            p(2.0, 0.0),
            p(2.0, 3.0),
            7.0,
        ));
        // A diagonal path over the top of the wall misses it.
        assert_eq!(site.walls_crossed(p(0.0, 4.0), p(4.0, 5.0)), 0);
        // A diagonal through it hits.
        assert_eq!(site.walls_crossed(p(0.0, 1.0), p(4.0, 2.0)), 1);
    }
}
