//! Synthetic ambient WiFi traffic, reproducing the packet-duration
//! statistics of Fig. 3 of the paper.
//!
//! The paper measured 30 million packets on channel 6 in a lecture hall and
//! found a bimodal duration distribution: ~78 % of packets shorter than
//! 500 µs (control/ACK/short data) and ~18 % between 1500 µs and 2700 µs
//! (aggregated data), with the remainder in between. With a ±25 µs
//! pulse-width error bound, the probability that an ambient packet matches
//! a PLM pulse length is ≈ 0.03 %.
//!
//! This generator substitutes for the unavailable capture: it produces
//! durations from that documented mixture so the PLM false-positive
//! analysis (and Fig. 3's regeneration) can run.

use freerider_rt::Rng64;

/// Generator of ambient packet durations (seconds).
#[derive(Debug)]
pub struct AmbientTraffic {
    rng: Rng64,
}

/// Fraction of ambient packets in the short mode (< 500 µs).
pub const SHORT_FRACTION: f64 = 0.78;
/// Fraction of ambient packets in the long mode (1.5–2.7 ms).
pub const LONG_FRACTION: f64 = 0.18;

impl AmbientTraffic {
    /// Creates a generator.
    pub fn new(seed: u64) -> Self {
        AmbientTraffic {
            rng: Rng64::new(seed),
        }
    }

    /// Draws one packet duration in seconds.
    pub fn sample_duration(&mut self) -> f64 {
        let u = self.rng.f64();
        if u < SHORT_FRACTION {
            // Short mode: exponential-ish mass below 500 µs, floor 40 µs
            // (shortest ACK-class frames).
            let x = self.rng.f64();
            40e-6 + 460e-6 * x * x
        } else if u < SHORT_FRACTION + LONG_FRACTION {
            // Long mode: uniform over 1.5–2.7 ms (A-MPDU bursts).
            self.rng.f64_range(1.5e-3, 2.7e-3)
        } else {
            // Middle mass: mostly just past the short mode; the region
            // around the PLM pulse lengths (≈0.9–1.5 ms) is nearly empty —
            // the sparsity that gives the paper its ≈0.03 % confusion rate.
            if self.rng.bernoulli(0.92) {
                self.rng.f64_range(0.5e-3, 0.9e-3)
            } else {
                self.rng.f64_range(0.9e-3, 1.5e-3)
            }
        }
    }

    /// Draws `n` durations.
    pub fn sample_many(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample_duration()).collect()
    }

    /// Probability (empirical over `n` draws) that an ambient packet falls
    /// within ±`bound` of `pulse` — the PLM confusion probability.
    pub fn confusion_probability(&mut self, pulse_s: f64, bound_s: f64, n: usize) -> f64 {
        let mut hits = 0usize;
        for _ in 0..n {
            let d = self.sample_duration();
            if (d - pulse_s).abs() <= bound_s {
                hits += 1;
            }
        }
        hits as f64 / n as f64
    }

    /// Histogram of durations with `bin_width_s` bins up to `max_s`;
    /// returns (bin centers, PDF values).
    pub fn histogram(&mut self, n: usize, bin_width_s: f64, max_s: f64) -> (Vec<f64>, Vec<f64>) {
        let nbins = (max_s / bin_width_s).ceil() as usize;
        let mut counts = vec![0usize; nbins];
        for _ in 0..n {
            let d = self.sample_duration();
            let b = ((d / bin_width_s) as usize).min(nbins - 1);
            counts[b] += 1;
        }
        let centers = (0..nbins).map(|b| (b as f64 + 0.5) * bin_width_s).collect();
        let pdf = counts.iter().map(|&c| c as f64 / n as f64).collect();
        (centers, pdf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_fractions_match_fig3() {
        let mut t = AmbientTraffic::new(1);
        let durations = t.sample_many(100_000);
        let short = durations.iter().filter(|&&d| d < 500e-6).count() as f64 / 1e5;
        let long = durations
            .iter()
            .filter(|&&d| (1.5e-3..2.7e-3).contains(&d))
            .count() as f64
            / 1e5;
        assert!((short - 0.78).abs() < 0.01, "short fraction {short}");
        assert!((long - 0.18).abs() < 0.01, "long fraction {long}");
    }

    #[test]
    fn plm_confusion_is_per_mille_scale() {
        // The paper reports ≈ 0.03 % for its pulse lengths with a ±25 µs
        // bound; our mixture puts PLM pulses (≈ 1.0–1.2 ms) in the sparse
        // middle region, giving the same order of magnitude (< 1 %).
        let mut t = AmbientTraffic::new(2);
        let p = t.confusion_probability(1.1e-3, 25e-6, 1_000_000);
        assert!(p < 0.01, "confusion probability {p}");
        assert!(p > 0.0, "middle mass should not be empty");
    }

    #[test]
    fn histogram_integrates_to_one() {
        let mut t = AmbientTraffic::new(3);
        let (centers, pdf) = t.histogram(50_000, 0.1e-3, 3e-3);
        assert_eq!(centers.len(), pdf.len());
        let total: f64 = pdf.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Bimodality: first bins and the 1.5–2.7 ms region both carry mass,
        // with a dip in between.
        let early: f64 = pdf[..5].iter().sum();
        let mid: f64 = pdf[6..14].iter().sum();
        let late: f64 = pdf[15..27].iter().sum();
        assert!(early > 0.7);
        assert!(late > 0.15);
        assert!(mid < 0.1);
    }

    #[test]
    fn durations_are_positive_and_bounded() {
        let mut t = AmbientTraffic::new(4);
        for d in t.sample_many(10_000) {
            assert!((40e-6..=2.7e-3).contains(&d), "duration {d}");
        }
    }
}
