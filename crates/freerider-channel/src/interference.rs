//! Co- and adjacent-channel interference for the coexistence experiments
//! (paper §4.4, Figs. 15 and 16).
//!
//! A WiFi interferer on channel 6 leaks into the backscatter channel
//! (channel 13 / 2.48 GHz) through its spectral mask. We model the
//! interferer as a duty-cycled wideband source whose in-(backscatter-)band
//! leakage power is `tx_power − mask_rejection`, active during bursty
//! packet transmissions.

use freerider_dsp::db;
use freerider_dsp::noise::NoiseSource;
use freerider_dsp::Complex;
use freerider_rt::{stream, Rng64};

/// A duty-cycled interferer leaking noise-like energy into the observed
/// band.
#[derive(Debug)]
pub struct Interferer {
    /// In-band leakage power while a burst is on, dBm.
    pub leak_dbm: f64,
    /// Fraction of time the interferer transmits, `[0, 1]`.
    pub duty_cycle: f64,
    /// Mean burst length in samples.
    pub burst_len: usize,
    rng: Rng64,
    source: NoiseSource,
}

/// 802.11 spectral-mask rejection from channel 6 to channel 13 (≥ 25 MHz
/// away → the −40 dBr region of the OFDM mask, plus receiver selectivity).
pub const WIFI_ACI_REJECTION_DB: f64 = 45.0;

impl Interferer {
    /// Creates an interferer.
    ///
    /// * `tx_power_dbm` — the interferer's transmit power at its own centre
    ///   frequency, as it arrives at the victim receiver (i.e. after its
    ///   own path loss).
    /// * `mask_rejection_db` — how far down its emissions are in the
    ///   victim's band.
    pub fn new(
        tx_power_dbm: f64,
        mask_rejection_db: f64,
        duty_cycle: f64,
        burst_len: usize,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&duty_cycle));
        assert!(burst_len > 0);
        let leak_dbm = tx_power_dbm - mask_rejection_db;
        Interferer {
            leak_dbm,
            duty_cycle,
            burst_len,
            rng: Rng64::derive(seed, stream::INTERFERER),
            source: NoiseSource::new(
                freerider_rt::derive_seed(seed, stream::NOISE),
                db::dbm_to_mw(leak_dbm),
            ),
        }
    }

    /// Adds the interferer's contribution over `buf` in place, returning
    /// the fraction of samples actually covered by bursts.
    pub fn add_to(&mut self, buf: &mut [Complex]) -> f64 {
        let mut covered = 0usize;
        let mut i = 0usize;
        while i < buf.len() {
            // Geometric-ish burst/idle alternation honouring the duty cycle.
            let burst_on = self.rng.bernoulli(self.duty_cycle);
            let span = self.burst_len / 2 + self.rng.index(self.burst_len + 1);
            let len = span.max(1).min(buf.len() - i);
            if burst_on {
                for z in buf[i..i + len].iter_mut() {
                    *z += self.source.sample();
                }
                covered += len;
            }
            i += len;
        }
        covered as f64 / buf.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leakage_power_is_calibrated() {
        // 100% duty cycle: measured power equals leak power.
        let mut intf = Interferer::new(-30.0, 45.0, 1.0, 1000, 1);
        let mut buf = vec![Complex::ZERO; 100_000];
        let cov = intf.add_to(&mut buf);
        assert!((cov - 1.0).abs() < 1e-9);
        let p = db::mean_power_dbm(&buf);
        assert!((p - (-75.0)).abs() < 0.3, "leak {p}");
    }

    #[test]
    fn duty_cycle_is_respected() {
        let mut intf = Interferer::new(0.0, 0.0, 0.3, 500, 2);
        let mut buf = vec![Complex::ZERO; 200_000];
        let cov = intf.add_to(&mut buf);
        assert!((cov - 0.3).abs() < 0.05, "coverage {cov}");
    }

    #[test]
    fn zero_duty_cycle_is_silent() {
        let mut intf = Interferer::new(0.0, 0.0, 0.0, 100, 3);
        let mut buf = vec![Complex::ZERO; 10_000];
        let cov = intf.add_to(&mut buf);
        assert_eq!(cov, 0.0);
        assert!(buf.iter().all(|z| *z == Complex::ZERO));
    }

    #[test]
    fn aci_leakage_is_far_below_backscatter() {
        // A 15 dBm interferer 5 m away (≈ −27 dBm at the victim) leaks
        // ≈ −72 dBm — comparable to a mid-range backscatter signal, which
        // is why Fig. 16(a) shows a visible (but not fatal) tail impact.
        let arriving = 15.0 - 42.0;
        let intf = Interferer::new(arriving, WIFI_ACI_REJECTION_DB, 0.5, 100, 4);
        assert!((intf.leak_dbm - (-72.0)).abs() < 0.5);
    }
}
