//! Applies a link budget to IQ waveforms: power scaling, block fading,
//! frequency-selective multipath, oscillator phase noise, and thermal
//! noise.
//!
//! The convention throughout the workspace: a complex sample `z` carries
//! instantaneous power `|z|²` milliwatts, so dBm arithmetic maps onto
//! amplitude scaling via `db::field_scale`.

use freerider_dsp::db;
use freerider_dsp::noise::NoiseSource;
use freerider_dsp::Complex;
use freerider_rt::{stream, Rng64};

/// Block-fading configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fading {
    /// No fading: deterministic flat channel.
    None,
    /// Rician block fading with the given K-factor in dB (per-packet
    /// constant complex gain; K→∞ approaches `None`). Indoor LOS links are
    /// typically K ≈ 6–12 dB.
    Rician {
        /// Ratio of specular to scattered power, dB.
        k_db: f64,
    },
    /// Rayleigh block fading (no specular component) — deep NLOS.
    Rayleigh,
}

/// Frequency-selective multipath: a tapped delay line with an exponential
/// power-delay profile, re-drawn per packet (block fading per tap).
///
/// This is what makes a 20 MHz OFDM signal see different gains on
/// different subcarriers — the dominant real-world impairment behind the
/// paper's mid-range WiFi throughput decline (Fig. 10a). Narrowband
/// signals (ZigBee's 2 MHz, Bluetooth's 1 MHz) see delay spreads of tens
/// of nanoseconds as essentially flat, which the model reproduces
/// naturally (the taps collapse onto one sample).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Multipath {
    /// RMS delay spread in samples at the signal's sample rate.
    pub rms_delay_samples: f64,
    /// Number of taps in the delay line (tap 0 = LOS/first arrival).
    pub taps: usize,
}

impl Multipath {
    /// A typical LOS hallway at 20 Msps: ~60 ns RMS delay spread.
    pub fn hallway_20msps() -> Self {
        Multipath {
            rms_delay_samples: 1.2,
            taps: 6,
        }
    }

    /// A through-wall NLOS office at 20 Msps: ~150 ns RMS delay spread.
    pub fn office_nlos_20msps() -> Self {
        Multipath {
            rms_delay_samples: 3.0,
            taps: 10,
        }
    }
}

/// A statistical radio channel operating on baseband IQ.
#[derive(Debug)]
pub struct Channel {
    /// Target mean received signal power, dBm.
    pub rssi_dbm: f64,
    /// Noise floor, dBm.
    pub noise_floor_dbm: f64,
    /// Fading model, applied per call (block fading).
    pub fading: Fading,
    /// Frequency-selective multipath (`None` = flat channel).
    pub multipath: Option<Multipath>,
    /// Oscillator phase-noise random walk, radians per √sample (models
    /// the combined TX/RX phase noise plus residual CFO jitter; drifts a
    /// few degrees over a millisecond for the defaults used in the
    /// experiments).
    pub phase_noise: f64,
    noise: NoiseSource,
    fade_rng: Rng64,
}

impl Channel {
    /// Creates a channel delivering `rssi_dbm` mean signal power over a
    /// `noise_floor_dbm` floor. All randomness derives from `seed`.
    pub fn new(rssi_dbm: f64, noise_floor_dbm: f64, fading: Fading, seed: u64) -> Self {
        Channel {
            rssi_dbm,
            noise_floor_dbm,
            fading,
            multipath: None,
            phase_noise: 0.0,
            noise: NoiseSource::new(
                freerider_rt::derive_seed(seed, stream::NOISE),
                db::dbm_to_mw(noise_floor_dbm),
            ),
            fade_rng: Rng64::derive(seed, stream::FADING),
        }
    }

    /// Adds frequency-selective multipath (builder style).
    pub fn with_multipath(mut self, multipath: Multipath) -> Self {
        self.multipath = Some(multipath);
        self
    }

    /// Adds oscillator phase noise (builder style), radians per √sample.
    pub fn with_phase_noise(mut self, rad_per_sqrt_sample: f64) -> Self {
        self.phase_noise = rad_per_sqrt_sample;
        self
    }

    /// Draws this packet's multipath tap vector (unit total power,
    /// exponential power-delay profile; tap 0 keeps a deterministic phase
    /// so the direct path dominates like a Rician channel).
    fn draw_taps(&mut self) -> Vec<Complex> {
        let Some(mp) = self.multipath else {
            return vec![Complex::ONE];
        };
        let mut taps = Vec::with_capacity(mp.taps);
        for k in 0..mp.taps {
            let mean_pwr = (-(k as f64) / mp.rms_delay_samples.max(1e-6)).exp();
            if k == 0 {
                taps.push(Complex::new(mean_pwr.sqrt(), 0.0));
            } else {
                // Rayleigh tap: complex Gaussian with the profile's power.
                let g = Complex::new(self.gauss(), self.gauss()) * (mean_pwr / 2.0).sqrt();
                taps.push(g);
            }
        }
        let total: f64 = taps.iter().map(|t| t.norm_sqr()).sum();
        let norm = total.sqrt().max(1e-12);
        taps.into_iter().map(|t| t / norm).collect()
    }

    /// Convolves the waveform with this packet's tap vector.
    fn apply_multipath(&mut self, wave: &[Complex]) -> Vec<Complex> {
        let taps = self.draw_taps();
        if taps.len() == 1 {
            return wave.iter().map(|&z| z * taps[0]).collect();
        }
        let mut out = vec![Complex::ZERO; wave.len()];
        for (d, &t) in taps.iter().enumerate() {
            if t == Complex::ZERO {
                continue;
            }
            for n in d..wave.len() {
                out[n] += wave[n - d] * t;
            }
        }
        out
    }

    /// Applies a phase-noise random walk in place.
    fn apply_phase_noise(&mut self, wave: &mut [Complex]) {
        if self.phase_noise <= 0.0 {
            return;
        }
        let mut phi = 0.0f64;
        for z in wave.iter_mut() {
            phi += self.phase_noise * self.gauss();
            *z *= Complex::cis(phi);
        }
    }

    /// Draws this packet's complex fading gain (unit mean power).
    fn fade_gain(&mut self) -> Complex {
        match self.fading {
            Fading::None => Complex::ONE,
            Fading::Rayleigh => {
                Complex::new(self.gauss() / 2f64.sqrt(), self.gauss() / 2f64.sqrt())
            }
            Fading::Rician { k_db } => {
                let k = db::db_to_ratio(k_db);
                let los = (k / (k + 1.0)).sqrt();
                let s = (1.0 / (k + 1.0)).sqrt();
                let phase = self.fade_rng.f64_range(0.0, std::f64::consts::TAU);
                Complex::from_polar(los, phase)
                    + Complex::new(
                        s * self.gauss() / 2f64.sqrt(),
                        s * self.gauss() / 2f64.sqrt(),
                    )
            }
        }
    }

    fn gauss(&mut self) -> f64 {
        // Drawn from the fading RNG (kept separate from the noise RNG so
        // fading draws don't perturb the noise sequence).
        self.fade_rng.gauss()
    }

    /// Propagates a unit-power transmit waveform: multipath, fading gain,
    /// phase noise, power scaling to the target RSSI, thermal noise.
    pub fn propagate(&mut self, tx_wave: &[Complex]) -> Vec<Complex> {
        let _stage = freerider_telemetry::trace::stage("channel.propagate");
        freerider_telemetry::count("channel.propagate.calls");
        freerider_telemetry::count_n("channel.propagate.samples", tx_wave.len() as u64);
        let gain = db::field_scale(self.rssi_dbm);
        let fade = self.fade_gain();
        let mut out = self.apply_multipath(tx_wave);
        self.apply_phase_noise(&mut out);
        for z in out.iter_mut() {
            *z = *z * gain * fade;
        }
        self.noise.add_to(&mut out);
        out
    }

    /// Propagates with `pad` noise-only samples before and after the
    /// packet, so receivers must genuinely detect it.
    pub fn propagate_padded(&mut self, tx_wave: &[Complex], pad: usize) -> Vec<Complex> {
        let _stage = freerider_telemetry::trace::stage("channel.propagate");
        freerider_telemetry::count("channel.propagate.calls");
        freerider_telemetry::count_n(
            "channel.propagate.samples",
            (tx_wave.len() + 2 * pad) as u64,
        );
        let gain = db::field_scale(self.rssi_dbm);
        let fade = self.fade_gain();
        let mut body = self.apply_multipath(tx_wave);
        self.apply_phase_noise(&mut body);
        let mut out = Vec::with_capacity(body.len() + 2 * pad);
        out.extend(self.noise.take(pad));
        for &z in &body {
            out.push(z * gain * fade + self.noise.sample());
        }
        out.extend(self.noise.take(pad));
        out
    }

    /// Mean SNR in dB this channel delivers.
    pub fn snr_db(&self) -> f64 {
        self.rssi_dbm - self.noise_floor_dbm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_target_rssi() {
        let mut ch = Channel::new(-60.0, -120.0, Fading::None, 1);
        let tx = vec![Complex::ONE; 50_000];
        let rx = ch.propagate(&tx);
        let rssi = db::mean_power_dbm(&rx);
        assert!((rssi - (-60.0)).abs() < 0.2, "rssi {rssi}");
    }

    #[test]
    fn noise_floor_is_respected() {
        let mut ch = Channel::new(-200.0, -90.0, Fading::None, 2);
        let tx = vec![Complex::ZERO; 50_000];
        let rx = ch.propagate(&tx);
        let floor = db::mean_power_dbm(&rx);
        assert!((floor - (-90.0)).abs() < 0.2, "floor {floor}");
    }

    #[test]
    fn padded_adds_noise_only_regions() {
        let mut ch = Channel::new(-50.0, -100.0, Fading::None, 3);
        let tx = vec![Complex::ONE; 1000];
        let rx = ch.propagate_padded(&tx, 500);
        assert_eq!(rx.len(), 2000);
        let head = db::mean_power_dbm(&rx[..500]);
        let body = db::mean_power_dbm(&rx[500..1500]);
        assert!(head < -90.0, "head {head}");
        assert!((body - (-50.0)).abs() < 0.5, "body {body}");
    }

    #[test]
    fn rician_mean_power_is_unit() {
        let mut ch = Channel::new(0.0, -300.0, Fading::Rician { k_db: 6.0 }, 4);
        let tx = vec![Complex::ONE; 10];
        let mut acc = 0.0;
        let n = 4000;
        for _ in 0..n {
            let rx = ch.propagate(&tx);
            acc += db::mean_power(&rx);
        }
        let mean = acc / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean fade power {mean}");
    }

    #[test]
    fn rayleigh_fades_deeply_sometimes() {
        let mut ch = Channel::new(0.0, -300.0, Fading::Rayleigh, 5);
        let tx = vec![Complex::ONE; 4];
        let mut deep = 0;
        for _ in 0..2000 {
            let rx = ch.propagate(&tx);
            if db::mean_power_dbm(&rx) < -10.0 {
                deep += 1;
            }
        }
        // P(|h|² < 0.1) = 1 − e^{−0.1} ≈ 9.5 %.
        assert!((50..350).contains(&deep), "deep fades {deep}/2000");
    }

    #[test]
    fn seeded_channels_are_reproducible() {
        let tx = vec![Complex::ONE; 100];
        let a = Channel::new(-70.0, -95.0, Fading::Rician { k_db: 9.0 }, 7).propagate(&tx);
        let b = Channel::new(-70.0, -95.0, Fading::Rician { k_db: 9.0 }, 7).propagate(&tx);
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod multipath_tests {
    use super::*;
    use freerider_dsp::fft;

    #[test]
    fn multipath_preserves_mean_power() {
        let mut ch =
            Channel::new(0.0, -300.0, Fading::None, 6).with_multipath(Multipath::hallway_20msps());
        let tx = vec![Complex::ONE; 2000];
        let mut acc = 0.0;
        let n = 500;
        for _ in 0..n {
            let rx = ch.propagate(&tx);
            acc += db::mean_power(&rx[20..]);
        }
        let mean = acc / n as f64;
        assert!((mean - 1.0).abs() < 0.1, "mean power {mean}");
    }

    #[test]
    fn multipath_is_frequency_selective() {
        // The channel's frequency response over a 64-bin FFT should vary
        // by several dB between bins for the NLOS profile.
        let mut ch = Channel::new(0.0, -300.0, Fading::None, 7)
            .with_multipath(Multipath::office_nlos_20msps());
        let taps = ch.draw_taps();
        let mut h = vec![Complex::ZERO; 64];
        for (d, &t) in taps.iter().enumerate() {
            h[d] = t;
        }
        fft::fft(&mut h).unwrap();
        let gains: Vec<f64> = h.iter().map(|z| z.norm_sqr()).collect();
        let max = gains.iter().cloned().fold(f64::MIN, f64::max);
        let min = gains.iter().cloned().fold(f64::MAX, f64::min);
        let spread_db = 10.0 * (max / min.max(1e-12)).log10();
        assert!(spread_db > 3.0, "selectivity only {spread_db:.1} dB");
    }

    #[test]
    fn flat_channel_without_multipath() {
        let mut ch = Channel::new(0.0, -300.0, Fading::None, 8);
        let tx: Vec<Complex> = (0..100).map(|i| Complex::cis(i as f64)).collect();
        let rx = ch.propagate(&tx);
        for (a, b) in rx.iter().zip(tx.iter()) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn phase_noise_walks_slowly() {
        let mut ch = Channel::new(0.0, -300.0, Fading::None, 9).with_phase_noise(1e-3);
        let tx = vec![Complex::ONE; 20_000];
        let rx = ch.propagate(&tx);
        // Magnitude untouched…
        for z in &rx {
            assert!((z.abs() - 1.0).abs() < 1e-9);
        }
        // …phase drifts but stays modest over 1 ms at 20 Msps
        // (σ = 1e-3·√20000 ≈ 0.14 rad).
        let end_phase = rx[19_999].arg().abs();
        assert!(end_phase < 1.2, "drift {end_phase}");
        // And it is not identically zero.
        let drifted = rx.iter().any(|z| z.arg().abs() > 1e-3);
        assert!(drifted);
    }

    #[test]
    fn multipath_tap_zero_dominates() {
        let mut ch =
            Channel::new(0.0, -300.0, Fading::None, 10).with_multipath(Multipath::hallway_20msps());
        for _ in 0..50 {
            let taps = ch.draw_taps();
            let p0 = taps[0].norm_sqr();
            let rest: f64 = taps[1..].iter().map(|t| t.norm_sqr()).sum();
            assert!(p0 > rest * 0.3, "direct path too weak: {p0} vs {rest}");
        }
    }
}
