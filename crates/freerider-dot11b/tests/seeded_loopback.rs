//! Seeded-randomized properties: any payload and scrambler seed survive the
//! DSSS chain, and any HitchHike tag pattern XOR-decodes exactly on a clean
//! channel.

use freerider_dot11b::hitchhike::{decode_hitchhike, HitchhikeTranslator};
use freerider_dot11b::{Receiver, RxConfig, Transmitter};
use freerider_rt::Rng64;

const CASES: u64 = 20;
const SUITE_SEED: u64 = 0x0D11_B001;

#[test]
fn any_payload_round_trips() {
    for case in 0..CASES {
        let mut rng = Rng64::derive(SUITE_SEED, case);
        let n = 1 + rng.index(199);
        let payload = rng.bytes(n);
        let seed = rng.index(0x80) as u8;

        let tx = Transmitter {
            scrambler_seed: seed,
        };
        let wave = tx.transmit(&payload).unwrap();
        let rx = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        let pkt = rx.receive(&wave).unwrap();
        assert_eq!(pkt.psdu, payload, "case {case}");
    }
}

#[test]
fn any_tag_pattern_decodes() {
    let tx = Transmitter::new();
    let translator = HitchhikeTranslator::standard();
    let payload = vec![0x77u8; 50];
    let wave = tx.transmit(&payload).unwrap();
    let rx = Receiver::new(RxConfig {
        sensitivity_dbm: -200.0,
        ..RxConfig::default()
    });
    let original = rx.receive(&wave).unwrap();
    let capacity = translator.capacity(wave.len());

    for case in 0..CASES {
        let mut rng = Rng64::derive(SUITE_SEED ^ 1, case);
        let n = (1 + rng.index(99)).min(capacity);
        let bits = rng.bits(n);

        let (tagged, used) = translator.translate(&wave, &bits);
        assert_eq!(used, bits.len(), "case {case}");
        let pkt = rx.receive(&tagged).unwrap();
        let decoded = decode_hitchhike(&original.psdu_bits, &pkt.psdu_bits, 1, 0);
        assert_eq!(&decoded[..bits.len()], &bits[..], "case {case}");
    }
}
