//! Property: any payload and scrambler seed survive the DSSS chain, and
//! any HitchHike tag pattern XOR-decodes exactly on a clean channel.

use freerider_dot11b::hitchhike::{decode_hitchhike, HitchhikeTranslator};
use freerider_dot11b::{Receiver, RxConfig, Transmitter};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn any_payload_round_trips(
        payload in prop::collection::vec(any::<u8>(), 1..200),
        seed in 0u8..0x80,
    ) {
        let tx = Transmitter { scrambler_seed: seed };
        let wave = tx.transmit(&payload).unwrap();
        let rx = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        let pkt = rx.receive(&wave).unwrap();
        prop_assert_eq!(pkt.psdu, payload);
    }

    #[test]
    fn any_tag_pattern_decodes(bits in prop::collection::vec(0u8..2, 1..100)) {
        let tx = Transmitter::new();
        let translator = HitchhikeTranslator::standard();
        let payload = vec![0x77u8; 50];
        let wave = tx.transmit(&payload).unwrap();
        let rx = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        let original = rx.receive(&wave).unwrap();
        prop_assume!(bits.len() <= translator.capacity(wave.len()));
        let (tagged, used) = translator.translate(&wave, &bits);
        prop_assert_eq!(used, bits.len());
        let pkt = rx.receive(&tagged).unwrap();
        let decoded = decode_hitchhike(&original.psdu_bits, &pkt.psdu_bits, 1, 0);
        prop_assert_eq!(&decoded[..bits.len()], &bits[..]);
    }
}
