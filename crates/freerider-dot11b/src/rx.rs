//! The 802.11b receiver: Barker correlation timing, DBPSK differential
//! decoding, self-sync descrambling and SFD framing.

use crate::barker::despread_symbol;
use crate::scrambler::Descrambler;
use crate::tx::Transmitter;
use crate::{SAMPLES_PER_SYMBOL, SFD, SYNC_BITS};
use freerider_coding::crc::crc16_itu;
use freerider_dsp::{bits, db, Complex};

/// Receiver configuration.
#[derive(Debug, Clone, Copy)]
pub struct RxConfig {
    /// Peak-to-offpeak ratio of the Barker correlator required to declare
    /// a signal present (the DSSS processing-gain evidence).
    pub detection_ratio: f64,
    /// Minimum estimated *signal* power for sync, dBm. DSSS decodes below
    /// the 22 MHz noise floor (−94.6 dBm): 1 Mbps DBPSK sensitivity on
    /// commodity cards is ≈ −98 dBm.
    pub sensitivity_dbm: f64,
}

impl Default for RxConfig {
    fn default() -> Self {
        RxConfig {
            detection_ratio: 4.0,
            sensitivity_dbm: -98.0,
        }
    }
}

/// Errors from [`Receiver::receive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxError {
    /// No DSSS signal found.
    NoSignal,
    /// Signal present but the SFD never appeared.
    NoSfd,
    /// The PLCP header CRC failed.
    BadHeader,
    /// Buffer ends before the declared PSDU does.
    Truncated,
}

impl std::fmt::Display for RxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RxError::NoSignal => write!(f, "no 802.11b signal detected"),
            RxError::NoSfd => write!(f, "SFD not found"),
            RxError::BadHeader => write!(f, "PLCP header CRC failed"),
            RxError::Truncated => write!(f, "PPDU truncated"),
        }
    }
}

impl std::error::Error for RxError {}

/// A received 802.11b frame.
#[derive(Debug, Clone)]
pub struct RxPacket {
    /// The PSDU bytes.
    pub psdu: Vec<u8>,
    /// Descrambled PSDU bits — the stream a HitchHike-style decoder
    /// compares between the two receivers.
    pub psdu_bits: Vec<u8>,
    /// Estimated signal RSSI, dBm.
    pub rssi_dbm: f64,
    /// Sample index of the first demodulated symbol.
    pub start: usize,
}

/// The 802.11b receiver.
#[derive(Debug, Clone)]
pub struct Receiver {
    config: RxConfig,
}

impl Receiver {
    /// Creates a receiver.
    pub fn new(config: RxConfig) -> Self {
        Receiver { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RxConfig {
        &self.config
    }

    /// Receives the first frame in `samples`.
    pub fn receive(&self, samples: &[Complex]) -> Result<RxPacket, RxError> {
        let min_len = (SYNC_BITS + 16 + 32) * SAMPLES_PER_SYMBOL;
        if samples.len() < min_len {
            return Err(RxError::NoSignal);
        }

        // --- Symbol timing: Barker correlation energy, folded mod 22. ---
        // Search over the first part of the buffer for the chip phase with
        // the strongest periodic peaks.
        let search_symbols = (samples.len() / SAMPLES_PER_SYMBOL).clamp(8, 3 * SYNC_BITS);
        let mut fold = [0.0f64; SAMPLES_PER_SYMBOL];
        let search_len = search_symbols * SAMPLES_PER_SYMBOL;
        let mut best_off = 0usize;
        let mut corr_cache = vec![0.0f64; search_len];
        for (n, c) in corr_cache.iter_mut().enumerate() {
            if n + SAMPLES_PER_SYMBOL <= samples.len() {
                *c = despread_symbol(&samples[n..]).norm_sqr();
            }
        }
        for (n, &c) in corr_cache.iter().enumerate() {
            fold[n % SAMPLES_PER_SYMBOL] += c;
        }
        let mut best_val = f64::MIN;
        for (off, &v) in fold.iter().enumerate() {
            if v > best_val {
                best_val = v;
                best_off = off;
            }
        }
        let total: f64 = fold.iter().sum();
        let offpeak = (total - best_val) / (SAMPLES_PER_SYMBOL - 1) as f64;
        if best_val < self.config.detection_ratio * offpeak.max(1e-30) {
            return Err(RxError::NoSignal);
        }

        // --- Sensitivity gate on estimated signal power. ---
        // Peak bins carry ≈ G²·Pₛ + G·Pₙ and off-peak bins ≈ G·Pₙ (+ small
        // sidelobes), with G = 22 samples per correlation.
        let n_syms = corr_cache.len() / SAMPLES_PER_SYMBOL;
        let peak_mean = best_val / n_syms.max(1) as f64;
        let off_mean = offpeak / n_syms.max(1) as f64;
        let g = SAMPLES_PER_SYMBOL as f64;
        let ps = ((peak_mean - off_mean) / (g * g - 4.0 * g)).max(1e-30);
        let rssi_dbm = db::mw_to_dbm(ps);
        if rssi_dbm < self.config.sensitivity_dbm {
            return Err(RxError::NoSignal);
        }

        // --- Demodulate every symbol from the timing offset. ---
        let mut symbols = Vec::new();
        let mut n = best_off;
        while n + SAMPLES_PER_SYMBOL <= samples.len() {
            symbols.push(despread_symbol(&samples[n..]));
            n += SAMPLES_PER_SYMBOL;
        }
        if symbols.len() < 2 {
            return Err(RxError::NoSignal);
        }
        // DBPSK differential decode.
        let mut raw_bits = Vec::with_capacity(symbols.len() - 1);
        for w in symbols.windows(2) {
            raw_bits.push(u8::from((w[1] * w[0].conj()).re < 0.0));
        }
        // Descramble (self-synchronising: no seed needed).
        let descrambled = Descrambler::new().descramble(&raw_bits);

        // --- Find the SFD. ---
        let sfd_bits = bits::bytes_to_bits_lsb(&SFD.to_le_bytes());
        let sfd_at = descrambled
            .windows(16)
            .position(|w| w == &sfd_bits[..])
            .ok_or(RxError::NoSfd)?;
        let hdr = sfd_at + 16;
        if descrambled.len() < hdr + 32 {
            return Err(RxError::Truncated);
        }
        let len_bytes = bits::bits_to_bytes_lsb(&descrambled[hdr..hdr + 16]);
        let len = u16::from_le_bytes([len_bytes[0], len_bytes[1]]) as usize;
        let crc_bytes = bits::bits_to_bytes_lsb(&descrambled[hdr + 16..hdr + 32]);
        let got = u16::from_le_bytes([crc_bytes[0], crc_bytes[1]]);
        if crc16_itu(&(len as u16).to_le_bytes()) != got {
            return Err(RxError::BadHeader);
        }
        let body = hdr + 32;
        if descrambled.len() < body + 8 * len {
            return Err(RxError::Truncated);
        }
        let psdu_bits = descrambled[body..body + 8 * len].to_vec();
        let psdu = bits::bits_to_bytes_lsb(&psdu_bits);
        Ok(RxPacket {
            psdu,
            psdu_bits,
            rssi_dbm,
            start: best_off,
        })
    }

    /// Airtime helper mirroring the transmitter's framing.
    pub fn airtime_s(len: usize) -> f64 {
        Transmitter::new().airtime_s(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freerider_dsp::noise::NoiseSource;

    fn rx_test() -> Receiver {
        Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        })
    }

    #[test]
    fn noiseless_loopback() {
        let tx = Transmitter::new();
        let mut buf = vec![Complex::ZERO; 97];
        buf.extend(tx.transmit(b"hitchhike substrate").unwrap());
        buf.extend(vec![Complex::ZERO; 60]);
        let pkt = rx_test().receive(&buf).unwrap();
        assert_eq!(pkt.psdu, b"hitchhike substrate");
    }

    #[test]
    fn loopback_below_the_noise_floor() {
        // DSSS processing gain: decode at −3 dB SNR (signal below noise).
        let tx = Transmitter::new();
        let wave = tx.transmit(&[0x42; 80]).unwrap();
        let mut buf: Vec<Complex> = wave
            .iter()
            .map(|&z| z * freerider_dsp::db::field_scale(-3.0))
            .collect();
        NoiseSource::new(3, 1.0).add_to(&mut buf);
        let pkt = rx_test().receive(&buf).unwrap();
        assert_eq!(pkt.psdu, vec![0x42; 80]);
    }

    #[test]
    fn noise_only_is_rejected() {
        let buf = NoiseSource::new(9, 1.0).take(8000);
        let rx = rx_test();
        assert!(matches!(
            rx.receive(&buf),
            Err(RxError::NoSignal) | Err(RxError::NoSfd)
        ));
    }

    #[test]
    fn phase_offset_is_harmless() {
        // DBPSK is differential: an arbitrary carrier phase cancels.
        let tx = Transmitter::new();
        let wave = tx.transmit(b"rotate me").unwrap();
        let rot = Complex::cis(2.2);
        let rotated: Vec<Complex> = wave.iter().map(|&z| z * rot).collect();
        let pkt = rx_test().receive(&rotated).unwrap();
        assert_eq!(pkt.psdu, b"rotate me");
    }

    #[test]
    fn truncated_frame() {
        let tx = Transmitter::new();
        let wave = tx.transmit(&[9u8; 200]).unwrap();
        let cut = &wave[..wave.len() * 2 / 3];
        assert_eq!(rx_test().receive(cut).unwrap_err(), RxError::Truncated);
    }

    #[test]
    fn rssi_estimate_tracks_signal_level() {
        let tx = Transmitter::new();
        let wave = tx.transmit(&[1u8; 60]).unwrap();
        for target in [-60.0, -80.0] {
            let mut buf: Vec<Complex> = wave
                .iter()
                .map(|&z| z * freerider_dsp::db::field_scale(target))
                .collect();
            NoiseSource::new(5, freerider_dsp::db::dbm_to_mw(-94.6)).add_to(&mut buf);
            let pkt = rx_test().receive(&buf).unwrap();
            assert!(
                (pkt.rssi_dbm - target).abs() < 3.0,
                "target {target}: est {}",
                pkt.rssi_dbm
            );
        }
    }
}
