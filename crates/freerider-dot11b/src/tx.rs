//! The 802.11b DSSS transmitter (1 Mbps DBPSK).
//!
//! Frame format (long-preamble style, shortened sync for simulation
//! economy): `SYNC (64 scrambled ones) | SFD (16 bits) | LENGTH (16 bits) |
//! CRC-16 (16 bits) | PSDU`, all self-sync scrambled, DBPSK
//! differentially encoded and Barker-spread at 11 Mchip/s.

use crate::barker::spread_symbol;
use crate::scrambler::Scrambler;
use crate::{SFD, SYNC_BITS};
use freerider_coding::crc::crc16_itu;
use freerider_dsp::{bits, Complex, IqBuf};

/// Maximum PSDU length (bounded by the 16-bit LENGTH field; kept modest
/// for simulation buffers).
pub const MAX_PSDU_LEN: usize = 4095;

/// Errors from [`Transmitter::transmit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxError {
    /// PSDU longer than [`MAX_PSDU_LEN`].
    PsduTooLong(usize),
}

impl std::fmt::Display for TxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxError::PsduTooLong(n) => write!(f, "PSDU of {n} bytes exceeds {MAX_PSDU_LEN}"),
        }
    }
}

impl std::error::Error for TxError {}

/// The 802.11b transmitter.
#[derive(Debug, Clone, Copy)]
pub struct Transmitter {
    /// Scrambler seed (self-synchronising, so any value interoperates).
    pub scrambler_seed: u8,
}

impl Default for Transmitter {
    fn default() -> Self {
        Transmitter {
            scrambler_seed: 0x1B,
        }
    }
}

impl Transmitter {
    /// Creates a transmitter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serialises the on-air bit stream (before scrambling) for `psdu`.
    pub fn air_bits(psdu: &[u8]) -> Vec<u8> {
        let mut air = vec![1u8; SYNC_BITS];
        air.extend(bits::bytes_to_bits_lsb(&SFD.to_le_bytes()));
        let len = psdu.len() as u16;
        air.extend(bits::bytes_to_bits_lsb(&len.to_le_bytes()));
        let crc = crc16_itu(&len.to_le_bytes());
        air.extend(bits::bytes_to_bits_lsb(&crc.to_le_bytes()));
        air.extend(bits::bytes_to_bits_lsb(psdu));
        air
    }

    /// Generates the baseband waveform for one PPDU.
    pub fn transmit(&self, psdu: &[u8]) -> Result<IqBuf, TxError> {
        if psdu.len() > MAX_PSDU_LEN {
            return Err(TxError::PsduTooLong(psdu.len()));
        }
        let air = Self::air_bits(psdu);
        let scrambled = Scrambler::new(self.scrambler_seed).scramble(&air);
        // DBPSK: bit 1 → π phase change, bit 0 → none.
        let mut phase = Complex::ONE;
        let mut out = IqBuf::with_capacity(scrambled.len() * crate::SAMPLES_PER_SYMBOL);
        for &b in &scrambled {
            if b == 1 {
                phase = -phase;
            }
            out.extend(spread_symbol(phase));
        }
        Ok(out)
    }

    /// Waveform length in samples for a `len`-byte PSDU.
    pub fn ppdu_len_samples(&self, len: usize) -> usize {
        (SYNC_BITS + 16 + 32 + 8 * len) * crate::SAMPLES_PER_SYMBOL
    }

    /// Airtime in seconds for a `len`-byte PSDU at 1 Mbps.
    pub fn airtime_s(&self, len: usize) -> f64 {
        (SYNC_BITS + 16 + 32 + 8 * len) as f64 * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waveform_length_and_airtime() {
        let tx = Transmitter::new();
        let wave = tx.transmit(&[0u8; 100]).unwrap();
        assert_eq!(wave.len(), tx.ppdu_len_samples(100));
        // 64+16+32+800 = 912 symbols at 1 µs.
        assert!((tx.airtime_s(100) - 912e-6).abs() < 1e-12);
    }

    #[test]
    fn constant_envelope() {
        let tx = Transmitter::new();
        let wave = tx.transmit(b"dsss").unwrap();
        for z in &wave {
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn oversize_rejected() {
        let tx = Transmitter::new();
        assert!(tx.transmit(&vec![0u8; 4096]).is_err());
    }
}
