//! The 11-chip Barker sequence and DSSS spreading.

use crate::{CHIPS_PER_SYMBOL, SAMPLES_PER_CHIP};
use freerider_dsp::Complex;

/// The 802.11b Barker sequence (+1 −1 +1 +1 −1 +1 +1 +1 −1 −1 −1).
pub const BARKER: [f64; 11] = [1.0, -1.0, 1.0, 1.0, -1.0, 1.0, 1.0, 1.0, -1.0, -1.0, -1.0];

/// Spreads one DBPSK symbol of phase `phase` (±1 on the I axis times the
/// carrier phase) into `SAMPLES_PER_SYMBOL` chips-worth of samples.
pub fn spread_symbol(symbol: Complex) -> Vec<Complex> {
    let mut out = Vec::with_capacity(CHIPS_PER_SYMBOL * SAMPLES_PER_CHIP);
    for &c in BARKER.iter() {
        for _ in 0..SAMPLES_PER_CHIP {
            out.push(symbol * c);
        }
    }
    out
}

/// Despreads one symbol: correlates `SAMPLES_PER_SYMBOL` samples against
/// the Barker sequence, returning the complex correlation (the recovered
/// symbol, scaled by the processing gain).
pub fn despread_symbol(samples: &[Complex]) -> Complex {
    debug_assert!(samples.len() >= CHIPS_PER_SYMBOL * SAMPLES_PER_CHIP);
    let mut acc = Complex::ZERO;
    for (k, &c) in BARKER.iter().enumerate() {
        for s in 0..SAMPLES_PER_CHIP {
            acc += samples[k * SAMPLES_PER_CHIP + s] * c;
        }
    }
    acc
}

/// Barker autocorrelation sidelobe bound: |R(τ)| ≤ 1 for τ ≠ 0 (chips).
pub fn autocorrelation(lag_chips: usize) -> f64 {
    let mut acc = 0.0;
    for k in 0..CHIPS_PER_SYMBOL - lag_chips {
        acc += BARKER[k] * BARKER[k + lag_chips];
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barker_has_ideal_sidelobes() {
        assert_eq!(autocorrelation(0), 11.0);
        for lag in 1..11 {
            assert!(
                autocorrelation(lag).abs() <= 1.0 + 1e-12,
                "sidelobe at {lag}: {}",
                autocorrelation(lag)
            );
        }
    }

    #[test]
    fn spread_despread_round_trip() {
        for phase in [0.0, 1.0, 2.5] {
            let sym = Complex::cis(phase);
            let chips = spread_symbol(sym);
            assert_eq!(chips.len(), 22);
            let rec = despread_symbol(&chips);
            // Processing gain 22 (11 chips × 2 samples).
            assert!((rec / 22.0 - sym).abs() < 1e-12);
        }
    }

    #[test]
    fn despread_rejects_offset_copies() {
        // A misaligned symbol correlates far below the aligned one.
        let sym = Complex::ONE;
        let mut stream = spread_symbol(sym);
        stream.extend(spread_symbol(-sym));
        let aligned = despread_symbol(&stream).abs();
        let off = despread_symbol(&stream[6..]).abs();
        assert!(aligned > 4.0 * off, "aligned {aligned} vs offset {off}");
    }
}
