//! # freerider-dot11b
//!
//! A software 802.11b DSSS physical layer (1 Mbps DBPSK over 11-chip
//! Barker spreading at 11 Mchip/s) and the **HitchHike** backscatter
//! baseline built on it.
//!
//! HitchHike (Zhang et al., SenSys'16) is the system FreeRider extends:
//! it introduced codeword translation, but — as the FreeRider paper's
//! introduction stresses — "only works with 802.11b WiFi. Most modern WiFi
//! clients use 802.11g/n where OFDM signals are transmitted." This crate
//! implements that baseline so the comparison the paper draws (§4.2.1:
//! FreeRider's OFDM tag rate is *lower* than HitchHike's "because OFDM
//! symbols are longer in duration than DSSS symbols") can be reproduced
//! quantitatively.
//!
//! * [`barker`] — the 11-chip Barker sequence and spreading.
//! * [`scrambler`] — the 802.11b *self-synchronising* scrambler (different
//!   from 802.11g's frame-synchronous one; its feedforward/feedback
//!   structure shapes how tag flips propagate, see [`hitchhike`]).
//! * [`tx`] / [`rx`] — DBPSK transmitter and Barker-correlator receiver.
//! * [`hitchhike`] — the baseline tag: differential phase-flip codeword
//!   translation on DBPSK, and the XOR decoder that inverts the
//!   self-synchronising scrambler's error spreading.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barker;
pub mod hitchhike;
pub mod rx;
pub mod scrambler;
pub mod tx;

pub use rx::{Receiver, RxConfig, RxError, RxPacket};
pub use tx::Transmitter;

/// Baseband sample rate: 2 samples per chip at 11 Mchip/s.
pub const SAMPLE_RATE: f64 = 22e6;

/// Samples per chip.
pub const SAMPLES_PER_CHIP: usize = 2;

/// Chips per DBPSK symbol (the Barker length).
pub const CHIPS_PER_SYMBOL: usize = 11;

/// Samples per 1 µs DBPSK symbol.
pub const SAMPLES_PER_SYMBOL: usize = CHIPS_PER_SYMBOL * SAMPLES_PER_CHIP;

/// Number of scrambled-ones bits in the (shortened) sync preamble.
pub const SYNC_BITS: usize = 64;

/// The 16-bit start-of-frame delimiter, transmitted LSB-first.
pub const SFD: u16 = 0xF3A0;
