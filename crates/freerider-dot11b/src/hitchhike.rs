//! The HitchHike baseline: codeword translation on 802.11b DBPSK.
//!
//! HitchHike's translation is the degenerate (single-carrier) case of
//! FreeRider's: the two DBPSK codewords differ by a π phase change, so a
//! tag that flips its reflection phase *between* symbols translates one
//! codeword into the other. Because DBPSK is differential, the tag
//! encodes its own data differentially too — toggling its phase state at
//! symbol k injects a bit flip exactly at position k of the demodulated
//! stream.
//!
//! Each injected flip then passes the receiver's self-synchronising
//! descrambler, which spreads it to positions k, k+4 and k+7 (see
//! [`crate::scrambler`]). The XOR of the two receivers' descrambled
//! streams is therefore not the tag data t but `e = t ⊕ t₋₄ ⊕ t₋₇` — and
//! since that map is exactly the descrambler's feedforward structure, the
//! decoder inverts it by running the *scrambler* (feedback) structure
//! over the XOR stream. One residual channel error in `e` consequently
//! corrupts a short burst of recovered tag bits: HitchHike's documented
//! error amplification, reproduced here.
//!
//! Rate: with a tag bit per DBPSK symbol (1 µs), the in-packet rate is
//! 1 Mbps — HitchHike's headline advantage over FreeRider-on-OFDM
//! (the FreeRider paper §4.2.1: its OFDM rate "is a lower data rate than
//! HitchHike because OFDM symbols are longer in duration than DSSS
//! symbols"). The `symbols_per_bit` knob trades that rate for robustness.

use freerider_dsp::Complex;

/// The HitchHike tag's codeword translator.
#[derive(Debug, Clone, Copy)]
pub struct HitchhikeTranslator {
    /// DBPSK symbols per tag bit (1 = HitchHike's full rate).
    pub symbols_per_bit: usize,
    /// Sample offset where tag modulation begins (after SYNC+SFD+header so
    /// the receiver can still frame the packet).
    pub data_start: usize,
}

impl HitchhikeTranslator {
    /// The standard configuration: 1 tag bit per symbol, starting after
    /// the PLCP header (64+16+32 symbols).
    pub fn standard() -> Self {
        HitchhikeTranslator {
            symbols_per_bit: 1,
            data_start: (crate::SYNC_BITS + 16 + 32) * crate::SAMPLES_PER_SYMBOL,
        }
    }

    /// In-packet tag bit rate, bits/second (1 µs symbols).
    pub fn bit_rate(&self) -> f64 {
        1e6 / self.symbols_per_bit as f64
    }

    /// Tag bits that fit on an excitation of `len` samples.
    pub fn capacity(&self, len: usize) -> usize {
        if len <= self.data_start {
            return 0;
        }
        (len - self.data_start) / (self.symbols_per_bit * crate::SAMPLES_PER_SYMBOL)
    }

    /// Backscatters `excitation`, embedding `tag_bits` differentially: the
    /// tag's phase state toggles at the start of a window whose bit is 1.
    pub fn translate(&self, excitation: &[Complex], tag_bits: &[u8]) -> (Vec<Complex>, usize) {
        let mut out = excitation.to_vec();
        let window = self.symbols_per_bit * crate::SAMPLES_PER_SYMBOL;
        let mut state = 1.0f64;
        let mut consumed = 0usize;
        let mut pos = self.data_start;
        while pos + window <= out.len() && consumed < tag_bits.len() {
            if tag_bits[consumed] & 1 == 1 {
                state = -state;
            }
            if state < 0.0 {
                for z in out[pos..pos + window].iter_mut() {
                    *z = -*z;
                }
            }
            consumed += 1;
            pos += window;
        }
        // Hold the final state to the end of the packet so the last
        // differential transition stays consistent.
        if state < 0.0 {
            for z in out[pos..].iter_mut() {
                *z = -*z;
            }
        }
        (out, consumed)
    }
}

/// Decodes HitchHike tag bits from the two receivers' descrambled PSDU
/// bit streams.
///
/// `start_bit` is the PSDU bit index where tag modulation began (0 with
/// [`HitchhikeTranslator::standard`], which starts right at the PSDU).
pub fn decode_hitchhike(
    original: &[u8],
    backscattered: &[u8],
    symbols_per_bit: usize,
    start_bit: usize,
) -> Vec<u8> {
    assert!(symbols_per_bit > 0);
    let n = original.len().min(backscattered.len());
    // XOR stream e = t ⊕ t₋₄ ⊕ t₋₇ (in *symbol* positions).
    let e: Vec<u8> = (0..n)
        .map(|k| (original[k] ^ backscattered[k]) & 1)
        .collect();
    // Invert the descrambler's spreading by running the scrambler
    // (feedback) structure over e.
    let mut t = vec![0u8; n];
    for k in start_bit..n {
        let t4 = if k >= 4 { t[k - 4] } else { 0 };
        let t7 = if k >= 7 { t[k - 7] } else { 0 };
        t[k] = e[k] ^ t4 ^ t7;
    }
    // Collapse symbol-rate flips to tag bits (majority over the window).
    let mut out = Vec::new();
    let mut pos = start_bit;
    while pos + symbols_per_bit <= n {
        let ones = t[pos..pos + symbols_per_bit]
            .iter()
            .filter(|&&b| b == 1)
            .count();
        out.push(u8::from(ones * 2 > symbols_per_bit));
        pos += symbols_per_bit;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rx::{Receiver, RxConfig};
    use crate::tx::Transmitter;
    use freerider_dsp::noise::NoiseSource;
    use freerider_rt::Rng64;

    fn run_link(noise_power: f64, seed: u64) -> (Vec<u8>, Vec<u8>) {
        let mut rng = Rng64::new(seed);
        let tx = Transmitter::new();
        let rx = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        let translator = HitchhikeTranslator::standard();
        let psdu: Vec<u8> = (0..200).map(|_| rng.byte()).collect();
        let wave = tx.transmit(&psdu).unwrap();
        let original = rx.receive(&wave).unwrap();
        assert_eq!(original.psdu, psdu);

        let bits: Vec<u8> = (0..translator.capacity(wave.len()))
            .map(|_| rng.bit())
            .collect();
        let (tagged, consumed) = translator.translate(&wave, &bits);
        assert_eq!(consumed, bits.len());
        let mut rx_wave = tagged;
        if noise_power > 0.0 {
            NoiseSource::new(seed ^ 0xAB, noise_power).add_to(&mut rx_wave);
        }
        let back = rx.receive(&rx_wave).expect("backscatter decodes");
        let decoded = decode_hitchhike(&original.psdu_bits, &back.psdu_bits, 1, 0);
        (bits, decoded)
    }

    #[test]
    fn clean_link_recovers_all_tag_bits() {
        let (sent, decoded) = run_link(0.0, 1);
        assert_eq!(sent.len(), 1600);
        assert_eq!(&decoded[..sent.len()], &sent[..]);
    }

    #[test]
    fn noisy_link_recovers_with_bounded_amplification() {
        // DSSS gain keeps symbol errors rare at 6 dB SNR; each residual
        // error can corrupt a few tag bits (the scrambler-inversion burst).
        let (sent, decoded) = run_link(0.25, 2);
        let errors = sent
            .iter()
            .zip(decoded.iter())
            .filter(|(a, b)| a != b)
            .count();
        let ber = errors as f64 / sent.len() as f64;
        assert!(ber < 0.02, "BER {ber}");
    }

    #[test]
    fn rate_is_1mbps_in_packet() {
        let t = HitchhikeTranslator::standard();
        assert!((t.bit_rate() - 1e6).abs() < 1e-9);
        // 16× the FreeRider OFDM in-packet rate (62.5 kbps) — the paper's
        // "DSSS symbols are shorter" point, quantified.
        assert!((t.bit_rate() / 62_500.0 - 16.0).abs() < 1e-9);
    }

    #[test]
    fn decoder_inverts_scrambler_spreading_exactly() {
        // Pure bit-domain check: inject t through the e = t⊕t₋₄⊕t₋₇ map
        // and confirm the decoder returns t.
        let t: Vec<u8> = (0..100).map(|i| ((i * 7) % 5 < 2) as u8).collect();
        let mut e = vec![0u8; 100];
        for k in 0..100 {
            let t4 = if k >= 4 { t[k - 4] } else { 0 };
            let t7 = if k >= 7 { t[k - 7] } else { 0 };
            e[k] = t[k] ^ t4 ^ t7;
        }
        let orig = vec![0u8; 100];
        let back: Vec<u8> = e.clone();
        let decoded = decode_hitchhike(&orig, &back, 1, 0);
        assert_eq!(decoded, t);
    }

    #[test]
    fn productive_link_unharmed() {
        // The excitation receiver still decodes the original PSDU bytes
        // while the tag rides — HitchHike shares FreeRider's headline.
        let mut rng = Rng64::new(5);
        let tx = Transmitter::new();
        let rx = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        let psdu: Vec<u8> = (0..100).map(|_| rng.byte()).collect();
        let wave = tx.transmit(&psdu).unwrap();
        let pkt = rx.receive(&wave).unwrap();
        assert_eq!(pkt.psdu, psdu);
    }
}
