//! The 802.11b self-synchronising scrambler (IEEE 802.11-2012 §17.2.4).
//!
//! Unlike 802.11g's frame-synchronous scrambler (a free-running LFSR XORed
//! onto the data), 802.11b scrambles with feedback through the
//! *transmitted* bits and descrambles feedforward through the *received*
//! bits:
//!
//! ```text
//! scramble:   s[k] = d[k] ⊕ s[k−4] ⊕ s[k−7]
//! descramble: d[k] = s[k] ⊕ s[k−4] ⊕ s[k−7]
//! ```
//!
//! Self-synchronisation is why the receiver needs no seed exchange — and
//! it is also why a HitchHike tag's bit flips *spread*: one flipped
//! on-air bit appears at three positions of the descrambled output
//! (k, k+4, k+7). The [`crate::hitchhike`] decoder has to invert exactly
//! this structure.

/// Scrambler state: the last 7 *output* bits.
#[derive(Debug, Clone)]
pub struct Scrambler {
    state: u8,
}

impl Scrambler {
    /// Creates a scrambler with the given initial register (any value —
    /// the receiver self-synchronises after 7 bits).
    pub fn new(seed: u8) -> Self {
        Scrambler { state: seed & 0x7F }
    }

    /// Scrambles a bit sequence (TX side, feedback structure).
    pub fn scramble(&mut self, bits: &[u8]) -> Vec<u8> {
        bits.iter()
            .map(|&d| {
                let fb = ((self.state >> 3) ^ (self.state >> 6)) & 1;
                let s = (d & 1) ^ fb;
                self.state = ((self.state << 1) | s) & 0x7F;
                s
            })
            .collect()
    }
}

/// Descrambler state: the last 7 *received* bits.
#[derive(Debug, Clone, Default)]
pub struct Descrambler {
    state: u8,
}

impl Descrambler {
    /// Creates a descrambler (state fills from the received stream).
    pub fn new() -> Self {
        Descrambler::default()
    }

    /// Descrambles a bit sequence (RX side, feedforward structure).
    pub fn descramble(&mut self, bits: &[u8]) -> Vec<u8> {
        bits.iter()
            .map(|&s| {
                let s = s & 1;
                let d = s ^ ((self.state >> 3) & 1) ^ ((self.state >> 6) & 1);
                self.state = ((self.state << 1) | s) & 0x7F;
                d
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_after_sync() {
        let data: Vec<u8> = (0..200).map(|i| ((i * 13) % 7 < 3) as u8).collect();
        for seed in [0u8, 0x1B, 0x7F] {
            let scrambled = Scrambler::new(seed).scramble(&data);
            let out = Descrambler::new().descramble(&scrambled);
            // The first 7 bits may be wrong (descrambler state empty);
            // everything after self-synchronises regardless of the seed.
            assert_eq!(&out[7..], &data[7..], "seed {seed:#x}");
        }
    }

    #[test]
    fn whitens_constant_input() {
        // The sync preamble is scrambled ones — the output must not be
        // constant (that is its entire purpose).
        let ones = vec![1u8; 128];
        let s = Scrambler::new(0x1B).scramble(&ones);
        let transitions = s.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(transitions > 30, "only {transitions} transitions");
    }

    #[test]
    fn single_flip_spreads_to_three_positions() {
        // The HitchHike-relevant property: flipping one on-air bit flips
        // descrambled bits k, k+4 and k+7.
        let data: Vec<u8> = (0..64).map(|i| (i % 2) as u8).collect();
        let scrambled = Scrambler::new(0x55).scramble(&data);
        let mut corrupted = scrambled.clone();
        corrupted[30] ^= 1;
        let clean = Descrambler::new().descramble(&scrambled);
        let dirty = Descrambler::new().descramble(&corrupted);
        let flipped: Vec<usize> = (0..64).filter(|&k| clean[k] != dirty[k]).collect();
        assert_eq!(flipped, vec![30, 34, 37]);
    }

    #[test]
    fn descrambler_resyncs_mid_stream() {
        // Joining a stream at an arbitrary point still descrambles after
        // 7 bits — self-synchronisation.
        let data: Vec<u8> = (0..120).map(|i| ((i * 31) % 11 < 5) as u8).collect();
        let scrambled = Scrambler::new(0x3C).scramble(&data);
        let out = Descrambler::new().descramble(&scrambled[40..]);
        assert_eq!(&out[7..], &data[47..]);
    }
}
