//! # freerider-tag
//!
//! The FreeRider backscatter tag: a behavioural model of the hardware
//! prototype in §3.1 of the paper (two VERT2450 antennas, an LT5534
//! envelope detector, an ADG902 RF switch, and an AGLN250 FPGA running the
//! codeword translator).
//!
//! * [`envelope`] — the envelope detector: rectifier + RC low-pass +
//!   comparator, with the prototype's 0.35 µs detection latency.
//! * [`plm`] — packet-length modulation: the low-power transmitter-to-tag
//!   control channel (§2.4.2).
//! * [`translator`] — the codeword translators: phase (WiFi/ZigBee,
//!   Eqs. 4–5), FSK toggling (Bluetooth, Eq. 6 with the Eq. 10 sideband
//!   constraint), and amplitude (the §2.1 mechanism that Fig. 2 shows
//!   *breaking* OFDM — kept for the ablation).
//! * [`impedance`] — the antenna impedance bank and reflection
//!   coefficients Γ.
//! * [`power`] — the µW-level power model of §3.3 (~30 µW total).
//! * [`harvest`] — RF energy harvesting: the battery-free operating
//!   envelope implied by that budget (extension).
//! * [`tag`] — the tag state machine tying everything together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod envelope;
pub mod harvest;
pub mod impedance;
pub mod plm;
pub mod power;
pub mod tag;
pub mod translator;

pub use tag::{Tag, TagConfig, TagState};
pub use translator::{AmplitudeTranslator, FskTranslator, PhaseTranslator};
