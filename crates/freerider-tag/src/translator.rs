//! Codeword translators — the heart of FreeRider (§2.2, §2.3).
//!
//! A tag embeds its data by transforming each codeword of the excitation
//! signal into *another valid codeword from the same codebook*:
//!
//! * [`PhaseTranslator`] — phase-dimension translation for OFDM WiFi and
//!   O-QPSK ZigBee (Eqs. 4 and 5): tag data selects a phase offset applied
//!   uniformly over a redundancy window of PHY symbols.
//! * [`FskTranslator`] — frequency-dimension translation for Bluetooth
//!   (Eq. 6): tag data 1 toggles the RF transistor at Δf = |f₁ − f₀|,
//!   swapping the two FSK codewords; tag data 0 reflects unmodified. The
//!   Δf choice is validated against the Eq. 10 sideband constraint at
//!   construction.
//! * [`AmplitudeTranslator`] — amplitude-dimension translation via the
//!   impedance bank (§2.1). Valid for constant-envelope single-carrier
//!   signals; **invalid for OFDM** (Fig. 2) — kept to reproduce that
//!   negative result in the ablation benches.
//!
//! All translators implement the same shape: given the excitation waveform
//! and tag bits, produce the backscattered waveform. They are pure
//! functions of their inputs — the physical multiply-by-T(t) of Eq. 1.

use freerider_dsp::osc::SquareWave;
use freerider_dsp::Complex;

/// Phase-dimension codeword translator (WiFi OFDM / ZigBee O-QPSK).
///
/// ```
/// use freerider_tag::translator::PhaseTranslator;
/// use freerider_dsp::Complex;
///
/// let t = PhaseTranslator::wifi_binary();
/// assert!((t.bit_rate(20e6) - 62_500.0).abs() < 1.0); // the paper's ~60 kbps
///
/// // A tag bit of 1 rotates its 4-symbol window by 180°.
/// let excitation = vec![Complex::ONE; t.data_start + 4 * 80];
/// let (wave, used) = t.translate(&excitation, &[1]);
/// assert_eq!(used, 1);
/// assert!((wave[t.data_start] + Complex::ONE).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PhaseTranslator {
    /// Phase step in radians: π for the binary scheme (Eq. 4), π/2 for the
    /// quaternary scheme (Eq. 5).
    pub delta_theta: f64,
    /// Number of distinct phase levels (2 or 4); `log2(levels)` tag bits
    /// are consumed per step.
    pub levels: usize,
    /// PHY symbols per tag step — the redundancy window (4 OFDM symbols
    /// for WiFi at 6 Mbps per §3.2.1; N symbols for ZigBee per §3.2.2).
    pub symbols_per_step: usize,
    /// Samples per PHY symbol (80 for WiFi at 20 Msps, 64 for ZigBee at
    /// 4 Msps).
    pub symbol_len: usize,
    /// Sample offset where tag modulation begins (after the preamble and
    /// any header the receiver must decode cleanly).
    pub data_start: usize,
}

impl PhaseTranslator {
    /// The paper's binary WiFi configuration: Δθ = 180°, 1 tag bit per
    /// 4 OFDM symbols ⇒ 1/(16 µs) = 62.5 kbps ≈ the reported ~60 kbps.
    /// `data_start` covers preamble + SIGNAL + 1 data symbol (the symbol
    /// carrying SERVICE, which seed recovery needs clean).
    pub fn wifi_binary() -> Self {
        PhaseTranslator {
            delta_theta: std::f64::consts::PI,
            levels: 2,
            symbols_per_step: 4,
            symbol_len: 80,
            data_start: 320 + 80 + 80,
        }
    }

    /// Quaternary WiFi (Eq. 5): Δθ = 90°, 2 tag bits per step.
    pub fn wifi_quaternary() -> Self {
        PhaseTranslator {
            delta_theta: std::f64::consts::FRAC_PI_2,
            levels: 4,
            ..Self::wifi_binary()
        }
    }

    /// The paper's ZigBee configuration: Δθ = 180° over N = 4 data symbols
    /// ⇒ 1/(64 µs) = 15.6 kbps ≈ the reported ~15 kbps. `data_start`
    /// covers SHR + PHR (12 symbols of 64 samples at 4 Msps).
    pub fn zigbee_binary() -> Self {
        PhaseTranslator {
            delta_theta: std::f64::consts::PI,
            levels: 2,
            symbols_per_step: 4,
            symbol_len: 64,
            data_start: 12 * 64,
        }
    }

    /// Tag bits consumed per step.
    pub fn bits_per_step(&self) -> usize {
        (self.levels as f64).log2() as usize
    }

    /// Tag data rate in bits/second given the PHY sample rate.
    pub fn bit_rate(&self, sample_rate: f64) -> f64 {
        self.bits_per_step() as f64 * sample_rate / (self.symbols_per_step * self.symbol_len) as f64
    }

    /// Number of tag bits that fit on one excitation waveform of `len`
    /// samples.
    pub fn capacity(&self, len: usize) -> usize {
        if len <= self.data_start {
            return 0;
        }
        let steps = (len - self.data_start) / (self.symbols_per_step * self.symbol_len);
        steps * self.bits_per_step()
    }

    /// Backscatters `excitation`, embedding `tag_bits`. Returns the
    /// backscattered waveform and the number of tag bits consumed.
    ///
    /// Phase offsets are *absolute* per step (Eq. 4/5): step phase =
    /// `value × Δθ` where `value` is the step's tag-bit group read MSB
    /// first. Samples before `data_start` and after the last whole step
    /// are reflected unmodified.
    pub fn translate(&self, excitation: &[Complex], tag_bits: &[u8]) -> (Vec<Complex>, usize) {
        let mut out = excitation.to_vec();
        let step_len = self.symbols_per_step * self.symbol_len;
        let bps = self.bits_per_step();
        let mut consumed = 0usize;
        let mut pos = self.data_start;
        while pos + step_len <= out.len() && consumed + bps <= tag_bits.len() {
            let mut value = 0usize;
            for k in 0..bps {
                value = (value << 1) | (tag_bits[consumed + k] & 1) as usize;
            }
            consumed += bps;
            let rot = Complex::cis(self.delta_theta * value as f64);
            for z in out[pos..pos + step_len].iter_mut() {
                *z *= rot;
            }
            pos += step_len;
        }
        (out, consumed)
    }
}

/// Frequency-dimension codeword translator for FSK radios (Bluetooth).
#[derive(Debug, Clone)]
pub struct FskTranslator {
    /// Toggle frequency, cycles/sample (Δf / sample_rate).
    pub toggle_freq: f64,
    /// Excitation bits per tag bit (the redundancy window; ≈18 gives the
    /// paper's ~55 kbps on 1 Mbps Bluetooth).
    pub bits_per_tag_bit: usize,
    /// Samples per excitation bit.
    pub samples_per_bit: usize,
    /// Sample offset where tag modulation begins (after preamble + access
    /// address on BLE).
    pub data_start: usize,
}

/// Errors constructing an [`FskTranslator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FskTranslatorError {
    /// Δf violates the Eq. 10 sideband-placement constraint: the unwanted
    /// mirror copy would land inside the receiver channel.
    SidebandInBand {
        /// The offending mirror-sideband offset from the channel centre, Hz.
        mirror_offset_hz: f64,
        /// The minimum out-of-band offset required, Hz.
        required_hz: f64,
    },
}

impl std::fmt::Display for FskTranslatorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FskTranslatorError::SidebandInBand {
                mirror_offset_hz,
                required_hz,
            } => write!(
                f,
                "mirror sideband at {mirror_offset_hz} Hz is inside the channel (needs ≥ {required_hz} Hz)"
            ),
        }
    }
}

impl std::error::Error for FskTranslatorError {}

impl FskTranslator {
    /// The paper's Bluetooth configuration: Δf = 500 kHz at 8 Msps,
    /// 16 excitation bits per tag bit. The in-data rate is 62.5 kbps; the
    /// preamble/access-address/PDU-header overhead of each BLE packet
    /// brings the delivered rate to the paper's ~55 kbps.
    ///
    /// Modulation starts *after* the 16-bit PDU header (bit 56 on air):
    /// flipping the length field would leave the commodity receiver unable
    /// to even delimit the packet — the FSK analogue of the WiFi
    /// translator skipping the SERVICE symbol.
    pub fn ble() -> Self {
        Self::new(500e3, 8e6, 250e3, 1e6, 16, 8, (40 + 16) * 8)
            .expect("the paper's parameters satisfy Eq. 10") // lint: allow(panic) — constant arguments known to satisfy Eq. 10
    }

    /// Creates a translator, checking Eq. 10: with deviation `f_dev` and
    /// channel bandwidth `w`, modulation index `i = 2·f_dev/w`; the mirror
    /// sideband lands at `f_dev + Δf` from the channel centre and must
    /// exceed `(1 − i)·w/2 + 2·f_dev` … equivalently the paper's
    /// `f₁ + Δf > f₁ + (1−i)·w/2`, i.e. `Δf > (1−i)·w/2`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        delta_f_hz: f64,
        sample_rate: f64,
        f_dev_hz: f64,
        bandwidth_hz: f64,
        bits_per_tag_bit: usize,
        samples_per_bit: usize,
        data_start: usize,
    ) -> Result<Self, FskTranslatorError> {
        let i = 2.0 * f_dev_hz / bandwidth_hz;
        let required = (1.0 - i) * bandwidth_hz / 2.0;
        if delta_f_hz <= required {
            return Err(FskTranslatorError::SidebandInBand {
                mirror_offset_hz: f_dev_hz + delta_f_hz,
                required_hz: required,
            });
        }
        Ok(FskTranslator {
            toggle_freq: delta_f_hz / sample_rate,
            bits_per_tag_bit,
            samples_per_bit,
            data_start,
        })
    }

    /// Tag data rate in bits/second given the excitation bit rate.
    pub fn bit_rate(&self, excitation_bit_rate: f64) -> f64 {
        excitation_bit_rate / self.bits_per_tag_bit as f64
    }

    /// Number of tag bits that fit on an excitation waveform of `len`
    /// samples.
    pub fn capacity(&self, len: usize) -> usize {
        if len <= self.data_start {
            return 0;
        }
        (len - self.data_start) / (self.bits_per_tag_bit * self.samples_per_bit)
    }

    /// Backscatters `excitation`, embedding `tag_bits`: windows carrying a
    /// 1 are multiplied by the Δf square wave (codeword swap); windows
    /// carrying a 0 are reflected unmodified (Eq. 6).
    pub fn translate(&self, excitation: &[Complex], tag_bits: &[u8]) -> (Vec<Complex>, usize) {
        let mut out = excitation.to_vec();
        let window = self.bits_per_tag_bit * self.samples_per_bit;
        let mut consumed = 0usize;
        let mut pos = self.data_start;
        while pos + window <= out.len() && consumed < tag_bits.len() {
            if tag_bits[consumed] & 1 == 1 {
                // A fresh oscillator per window models the tag re-starting
                // its toggle clock; phase continuity across windows is not
                // required for FSK.
                let mut sq = SquareWave::new(self.toggle_freq);
                for z in out[pos..pos + window].iter_mut() {
                    *z = *z * sq.next();
                }
            }
            consumed += 1;
            pos += window;
        }
        (out, consumed)
    }
}

/// Amplitude-dimension translator: switches the reflection magnitude per
/// window. Valid codeword translation for constant-envelope signals;
/// **creates invalid codewords on OFDM** (Fig. 2 of the paper) — the
/// ablation benches use it to reproduce that failure.
#[derive(Debug, Clone, Copy)]
pub struct AmplitudeTranslator {
    /// Reflection amplitude for tag data 0, in `[0, 1]`.
    pub level0: f64,
    /// Reflection amplitude for tag data 1, in `[0, 1]`.
    pub level1: f64,
    /// Samples per tag bit window.
    pub window: usize,
    /// Sample offset where modulation begins.
    pub data_start: usize,
}

impl AmplitudeTranslator {
    /// Creates a translator.
    ///
    /// # Panics
    /// Panics unless `0 ≤ level ≤ 1` for both levels and `window > 0`.
    pub fn new(level0: f64, level1: f64, window: usize, data_start: usize) -> Self {
        assert!((0.0..=1.0).contains(&level0) && (0.0..=1.0).contains(&level1));
        assert!(window > 0);
        AmplitudeTranslator {
            level0,
            level1,
            window,
            data_start,
        }
    }

    /// Backscatters with per-window amplitude levels.
    pub fn translate(&self, excitation: &[Complex], tag_bits: &[u8]) -> (Vec<Complex>, usize) {
        let mut out = excitation.to_vec();
        let mut consumed = 0usize;
        let mut pos = self.data_start;
        while pos + self.window <= out.len() && consumed < tag_bits.len() {
            let level = if tag_bits[consumed] & 1 == 1 {
                self.level1
            } else {
                self.level0
            };
            for z in out[pos..pos + self.window].iter_mut() {
                *z = z.scale(level);
            }
            consumed += 1;
            pos += self.window;
        }
        (out, consumed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wifi_binary_rate_is_62_5_kbps() {
        let t = PhaseTranslator::wifi_binary();
        let r = t.bit_rate(20e6);
        assert!((r - 62_500.0).abs() < 1.0, "rate {r}");
    }

    #[test]
    fn wifi_quaternary_doubles_the_rate() {
        let t = PhaseTranslator::wifi_quaternary();
        assert!((t.bit_rate(20e6) - 125_000.0).abs() < 1.0);
    }

    #[test]
    fn zigbee_rate_is_15_6_kbps() {
        let t = PhaseTranslator::zigbee_binary();
        let r = t.bit_rate(4e6);
        assert!((r - 15_625.0).abs() < 1.0, "rate {r}");
    }

    #[test]
    fn ble_delivered_rate_is_about_55_kbps() {
        let t = FskTranslator::ble();
        // In-data rate 62.5 kbps…
        assert!((t.bit_rate(1e6) - 62_500.0).abs() < 1.0);
        // …but over a maximum-length BLE packet (37-byte payload, 336 PDU
        // bits, 376 bits on air, header skipped) the delivered rate is
        // ≈ 53 kbps — the paper's "~55 kbps".
        let pdu_bits = 16 + 8 * 37 + 24;
        let tag_bits = ((pdu_bits - 16) / t.bits_per_tag_bit) as f64;
        let airtime_s = (40 + pdu_bits) as f64 / 1e6;
        let delivered = tag_bits / airtime_s;
        assert!(
            (delivered - 55_000.0).abs() < 3_000.0,
            "delivered {delivered}"
        );
    }

    #[test]
    fn phase_translate_applies_exact_rotations() {
        let t = PhaseTranslator {
            delta_theta: std::f64::consts::PI,
            levels: 2,
            symbols_per_step: 2,
            symbol_len: 4,
            data_start: 8,
        };
        let excitation = vec![Complex::ONE; 8 + 8 * 3 + 2];
        let (out, consumed) = t.translate(&excitation, &[1, 0, 1]);
        assert_eq!(consumed, 3);
        // Preamble region untouched.
        assert!(out[..8].iter().all(|&z| (z - Complex::ONE).abs() < 1e-12));
        // Step 0 (bit 1): rotated by π.
        assert!(out[8..16].iter().all(|&z| (z + Complex::ONE).abs() < 1e-12));
        // Step 1 (bit 0): untouched.
        assert!(out[16..24]
            .iter()
            .all(|&z| (z - Complex::ONE).abs() < 1e-12));
        // Step 2 (bit 1): rotated.
        assert!(out[24..32]
            .iter()
            .all(|&z| (z + Complex::ONE).abs() < 1e-12));
        // Tail (not a whole step): untouched.
        assert!(out[32..].iter().all(|&z| (z - Complex::ONE).abs() < 1e-12));
    }

    #[test]
    fn quaternary_uses_four_phases() {
        let t = PhaseTranslator {
            delta_theta: std::f64::consts::FRAC_PI_2,
            levels: 4,
            symbols_per_step: 1,
            symbol_len: 4,
            data_start: 0,
        };
        let excitation = vec![Complex::ONE; 16];
        let (out, consumed) = t.translate(&excitation, &[0, 0, 0, 1, 1, 0, 1, 1]);
        assert_eq!(consumed, 8);
        let phases: Vec<f64> = [0, 4, 8, 12].iter().map(|&i| out[i].arg()).collect();
        assert!((phases[0] - 0.0).abs() < 1e-12);
        assert!((phases[1] - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!(
            (phases[2] - std::f64::consts::PI).abs() < 1e-9
                || (phases[2] + std::f64::consts::PI).abs() < 1e-9
        );
        assert!((phases[3] + std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn capacity_accounts_for_header() {
        let t = PhaseTranslator::wifi_binary();
        assert_eq!(t.capacity(t.data_start), 0);
        assert_eq!(t.capacity(t.data_start + 319), 0);
        assert_eq!(t.capacity(t.data_start + 320), 1);
        assert_eq!(t.capacity(t.data_start + 1000), 3);
    }

    #[test]
    fn eq10_constraint_is_enforced() {
        // Δf = 200 kHz < (1−0.5)·1 MHz/2 = 250 kHz → rejected.
        let r = FskTranslator::new(200e3, 8e6, 250e3, 1e6, 18, 8, 0);
        assert!(matches!(r, Err(FskTranslatorError::SidebandInBand { .. })));
        // The paper's 500 kHz passes.
        assert!(FskTranslator::new(500e3, 8e6, 250e3, 1e6, 18, 8, 0).is_ok());
    }

    #[test]
    fn fsk_translate_toggles_only_one_windows() {
        let t = FskTranslator::new(500e3, 8e6, 250e3, 1e6, 2, 8, 16).unwrap();
        let excitation = vec![Complex::ONE; 16 + 16 * 2 + 5];
        let (out, consumed) = t.translate(&excitation, &[0, 1]);
        assert_eq!(consumed, 2);
        // Window 0 (bit 0) and header: unchanged.
        assert!(out[..32].iter().all(|&z| (z - Complex::ONE).abs() < 1e-12));
        // Window 1 (bit 1): ±1 toggling at 500 kHz = period 16 samples.
        let w = &out[32..48];
        assert!(w[..8].iter().all(|&z| (z - Complex::ONE).abs() < 1e-12));
        assert!(w[8..].iter().all(|&z| (z + Complex::ONE).abs() < 1e-12));
    }

    #[test]
    fn amplitude_translate_scales_windows() {
        let t = AmplitudeTranslator::new(1.0, 0.4, 4, 4);
        let excitation = vec![Complex::new(0.0, 2.0); 16];
        let (out, consumed) = t.translate(&excitation, &[1, 0, 1]);
        assert_eq!(consumed, 3);
        assert!((out[4].im - 0.8).abs() < 1e-12);
        assert!((out[8].im - 2.0).abs() < 1e-12);
        assert!((out[12].im - 0.8).abs() < 1e-12);
    }

    #[test]
    fn translate_with_no_bits_is_identity() {
        let t = PhaseTranslator::wifi_binary();
        let excitation = vec![Complex::new(0.3, -0.7); 2000];
        let (out, consumed) = t.translate(&excitation, &[]);
        assert_eq!(consumed, 0);
        assert_eq!(out, excitation);
    }
}
