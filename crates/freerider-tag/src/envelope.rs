//! The tag's envelope detector.
//!
//! Models the LT5534 + comparator chain of the prototype (§3.1): the RF
//! input is rectified (|z|²), smoothed by an RC low-pass, and compared
//! against a reference voltage. The paper measured a 0.35 µs delay between
//! the excitation signal's true start and the detector's indication, and
//! found performance does not degrade because of it — the model reproduces
//! the delay via the RC settling time.
//!
//! Low-power envelope detectors consume < 1 µW (§2.4.2, citing ref. 20),
//! which is what makes PLM viable as a tag-side control channel.

use freerider_dsp::fir::RcLowPass;
use freerider_dsp::Complex;

/// Envelope detector configuration.
#[derive(Debug, Clone, Copy)]
pub struct EnvelopeConfig {
    /// Sample rate of the incoming IQ stream, Hz.
    pub sample_rate: f64,
    /// RC time constant, seconds. The prototype's measured 0.35 µs
    /// detection latency corresponds to τ ≈ 0.15 µs (detection at
    /// ~90 % settling).
    pub tau_s: f64,
    /// Comparator threshold, in linear power units (mW). The paper's
    /// "reference voltage of 1.8 V" maps onto this detection threshold;
    /// raising it trades range for noise immunity (§2.4.2).
    pub threshold_mw: f64,
    /// Comparator hysteresis as a fraction of the threshold.
    pub hysteresis: f64,
}

impl Default for EnvelopeConfig {
    fn default() -> Self {
        EnvelopeConfig {
            sample_rate: 20e6,
            tau_s: 0.15e-6,
            threshold_mw: 1e-7, // −70 dBm
            hysteresis: 0.5,
        }
    }
}

/// The envelope detector.
#[derive(Debug, Clone)]
pub struct EnvelopeDetector {
    config: EnvelopeConfig,
    rc: RcLowPass,
    state: bool,
}

/// A detected RF pulse.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pulse {
    /// Sample index where the comparator fired.
    pub start: usize,
    /// Pulse duration in seconds.
    pub duration_s: f64,
}

impl EnvelopeDetector {
    /// Creates a detector.
    pub fn new(config: EnvelopeConfig) -> Self {
        let rc = RcLowPass::new(config.tau_s, 1.0 / config.sample_rate);
        EnvelopeDetector {
            config,
            rc,
            state: false,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EnvelopeConfig {
        &self.config
    }

    /// Processes an IQ stream, returning the comparator output per sample.
    pub fn detect(&mut self, iq: &[Complex]) -> Vec<bool> {
        let on = self.config.threshold_mw;
        let off = on * (1.0 - self.config.hysteresis);
        iq.iter()
            .map(|z| {
                let env = self.rc.step(z.norm_sqr());
                if self.state {
                    if env < off {
                        self.state = false;
                    }
                } else if env > on {
                    self.state = true;
                }
                self.state
            })
            .collect()
    }

    /// Processes an IQ stream and extracts pulses (rising edge → falling
    /// edge). A pulse still high at the end of the buffer is discarded —
    /// its duration is unknown.
    pub fn pulses(&mut self, iq: &[Complex]) -> Vec<Pulse> {
        let gate = self.detect(iq);
        let mut pulses = Vec::new();
        let mut start = None;
        for (n, &g) in gate.iter().enumerate() {
            match (start, g) {
                (None, true) => start = Some(n),
                (Some(s), false) => {
                    pulses.push(Pulse {
                        start: s,
                        duration_s: (n - s) as f64 / self.config.sample_rate,
                    });
                    start = None;
                }
                _ => {}
            }
        }
        pulses
    }

    /// Resets the detector state.
    pub fn reset(&mut self) {
        self.rc.reset();
        self.state = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freerider_dsp::noise::NoiseSource;

    fn burst(pre: usize, len: usize, post: usize, amp: f64) -> Vec<Complex> {
        let mut v = vec![Complex::ZERO; pre];
        v.extend(vec![Complex::new(amp, 0.0); len]);
        v.extend(vec![Complex::ZERO; post]);
        v
    }

    #[test]
    fn detects_a_burst_with_sub_microsecond_latency() {
        let mut det = EnvelopeDetector::new(EnvelopeConfig {
            threshold_mw: 0.5,
            ..EnvelopeConfig::default()
        });
        let iq = burst(100, 2000, 100, 1.0);
        let gate = det.detect(&iq);
        let rise = gate.iter().position(|&g| g).expect("must fire");
        // The paper's measured latency is 0.35 µs = 7 samples at 20 Msps.
        let latency_s = (rise - 100) as f64 / 20e6;
        assert!(latency_s <= 0.5e-6, "latency {latency_s}");
        assert!(latency_s > 0.0, "RC must introduce some delay");
    }

    #[test]
    fn pulse_duration_is_measured_accurately() {
        let mut det = EnvelopeDetector::new(EnvelopeConfig {
            threshold_mw: 0.5,
            ..EnvelopeConfig::default()
        });
        // 1000 µs pulse = 20000 samples.
        let iq = burst(500, 20_000, 500, 1.0);
        let pulses = det.pulses(&iq);
        assert_eq!(pulses.len(), 1);
        let err = (pulses[0].duration_s - 1e-3).abs();
        assert!(err < 1e-6, "duration error {err}");
    }

    #[test]
    fn below_threshold_stays_silent() {
        let mut det = EnvelopeDetector::new(EnvelopeConfig {
            threshold_mw: 0.5,
            ..EnvelopeConfig::default()
        });
        let iq = burst(100, 1000, 100, 0.5); // power 0.25 < 0.5
        assert!(det.pulses(&iq).is_empty());
    }

    #[test]
    fn hysteresis_rides_through_fades() {
        let mut det = EnvelopeDetector::new(EnvelopeConfig {
            threshold_mw: 0.5,
            hysteresis: 0.6,
            ..EnvelopeConfig::default()
        });
        // A burst whose middle dips to 70 % power (above the 0.2 off level).
        let mut iq = burst(100, 3000, 100, 1.0);
        for z in iq[1500..1600].iter_mut() {
            *z = Complex::new(0.7f64.sqrt(), 0.0);
        }
        let pulses = det.pulses(&iq);
        assert_eq!(pulses.len(), 1, "fade must not split the pulse");
    }

    #[test]
    fn noise_robustness() {
        let mut det = EnvelopeDetector::new(EnvelopeConfig {
            threshold_mw: 0.3,
            ..EnvelopeConfig::default()
        });
        let mut iq = burst(2000, 10_000, 2000, 1.0);
        NoiseSource::new(3, 0.02).add_to(&mut iq);
        let pulses = det.pulses(&iq);
        assert_eq!(pulses.len(), 1);
        assert!((pulses[0].duration_s - 10_000.0 / 20e6).abs() < 2e-6);
    }

    #[test]
    fn unterminated_pulse_is_dropped() {
        let mut det = EnvelopeDetector::new(EnvelopeConfig {
            threshold_mw: 0.5,
            ..EnvelopeConfig::default()
        });
        let mut iq = vec![Complex::ZERO; 100];
        iq.extend(vec![Complex::ONE; 1000]); // never falls
        assert!(det.pulses(&iq).is_empty());
    }
}
