//! The tag power model (§3.3 of the paper).
//!
//! The prototype, simulated in TSMC 65 nm, consumes ≈30 µW:
//!
//! * ≈19 µW — the ring oscillator producing the 20 MHz square wave for
//!   frequency shifting (the dominant consumer; scales with frequency,
//!   after ref. 27's 20 µW ring-oscillator design),
//! * ≈12 µW — the ADG902 RF switch toggling,
//! * 1–3 µW — the control logic selecting which codeword translator runs,
//! * <1 µW — the envelope detector (§2.4.2, citing ref. 20).

/// Which codeword translator the control logic is running (affects its
/// complexity and hence its share of the budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslatorKind {
    /// Phase translation for OFDM WiFi.
    WifiPhase,
    /// Phase translation for ZigBee O-QPSK.
    ZigbeePhase,
    /// FSK toggling for Bluetooth.
    BleFsk,
}

/// Component-level power model.
#[derive(Debug, Clone, Copy)]
pub struct PowerModel {
    /// Ring-oscillator power at 20 MHz, µW.
    pub ring_osc_uw_at_20mhz: f64,
    /// RF switch power, µW.
    pub rf_switch_uw: f64,
    /// Envelope detector power, µW.
    pub envelope_uw: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            ring_osc_uw_at_20mhz: 19.0,
            rf_switch_uw: 12.0,
            envelope_uw: 0.8,
        }
    }
}

impl PowerModel {
    /// Ring-oscillator power at a given shift frequency (dynamic power of
    /// CMOS logic scales ∝ f).
    pub fn ring_osc_uw(&self, shift_freq_hz: f64) -> f64 {
        self.ring_osc_uw_at_20mhz * shift_freq_hz / 20e6
    }

    /// Control-logic power for a translator kind, µW (1–3 µW per §3.3;
    /// the OFDM translator's symbol-window bookkeeping is the most complex).
    pub fn control_logic_uw(&self, kind: TranslatorKind) -> f64 {
        match kind {
            TranslatorKind::WifiPhase => 3.0,
            TranslatorKind::ZigbeePhase => 2.0,
            TranslatorKind::BleFsk => 1.0,
        }
    }

    /// Total active power, µW, for a translator running with the given
    /// frequency shift.
    pub fn total_uw(&self, kind: TranslatorKind, shift_freq_hz: f64) -> f64 {
        self.ring_osc_uw(shift_freq_hz)
            + self.rf_switch_uw
            + self.control_logic_uw(kind)
            + self.envelope_uw
    }

    /// Energy per tag bit in picojoules at a given tag bit rate.
    pub fn energy_per_bit_pj(
        &self,
        kind: TranslatorKind,
        shift_freq_hz: f64,
        bit_rate: f64,
    ) -> f64 {
        assert!(bit_rate > 0.0);
        self.total_uw(kind, shift_freq_hz) * 1e-6 / bit_rate * 1e12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_about_30uw_for_wifi() {
        // §3.3: "the overall power consumption of the FreeRider tag is
        // around 30 µW", with 19 µW for the 20 MHz clock and 12 µW for the
        // switch.
        let m = PowerModel::default();
        let total = m.total_uw(TranslatorKind::WifiPhase, 20e6);
        assert!((total - 30.0).abs() < 5.0, "total {total} µW");
    }

    #[test]
    fn oscillator_dominates() {
        let m = PowerModel::default();
        let osc = m.ring_osc_uw(20e6);
        assert!((osc - 19.0).abs() < 1e-12);
        assert!(osc > m.rf_switch_uw);
    }

    #[test]
    fn power_scales_with_shift_frequency() {
        let m = PowerModel::default();
        assert!(
            m.total_uw(TranslatorKind::BleFsk, 500e3) < m.total_uw(TranslatorKind::BleFsk, 20e6)
        );
        // A 500 kHz BLE toggle costs well under a µW of oscillator power.
        assert!(m.ring_osc_uw(500e3) < 0.5);
    }

    #[test]
    fn control_logic_in_1_to_3_uw() {
        let m = PowerModel::default();
        for kind in [
            TranslatorKind::WifiPhase,
            TranslatorKind::ZigbeePhase,
            TranslatorKind::BleFsk,
        ] {
            let p = m.control_logic_uw(kind);
            assert!((1.0..=3.0).contains(&p));
        }
    }

    #[test]
    fn energy_per_bit_is_sub_nanojoule() {
        // 30 µW at 60 kbps → 0.5 nJ/bit: microwatt backscatter in a
        // nutshell (cf. WiFi radios at ~100 nJ/bit).
        let m = PowerModel::default();
        let e = m.energy_per_bit_pj(TranslatorKind::WifiPhase, 20e6, 60e3);
        assert!((e - 580.0).abs() < 100.0, "energy {e} pJ/bit");
    }
}
