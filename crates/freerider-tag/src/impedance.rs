//! The antenna impedance bank and reflection coefficients.
//!
//! §2.1 of the paper: backscattered signal strength is a function of
//! `Γ = (Z_T − Z_A*) / (Z_A + Z_T)` where `Z_A` is the antenna impedance
//! and `Z_T` the terminating impedance. Traditional tags switch between
//! `Z_T = Z_A` (matched, absorb → Γ=0) and `Z_T = 0` (short, reflect →
//! |Γ|=1); FreeRider's tag switches across *multiple* impedances to fine
//! tune the backscattered amplitude.

use freerider_dsp::Complex;

/// A complex impedance in ohms.
pub type Impedance = Complex;

/// Reflection coefficient for a terminating impedance `zt` on an antenna
/// of impedance `za`: `Γ = (Z_T − Z_A*) / (Z_A + Z_T)`.
pub fn reflection_coefficient(za: Impedance, zt: Impedance) -> Complex {
    (zt - za.conj()) / (za + zt)
}

/// A bank of terminating impedances selectable by the tag's RF switch.
#[derive(Debug, Clone)]
pub struct ImpedanceBank {
    antenna: Impedance,
    states: Vec<Impedance>,
}

impl ImpedanceBank {
    /// Creates a bank for an antenna of impedance `antenna`.
    ///
    /// # Panics
    /// Panics if `states` is empty.
    pub fn new(antenna: Impedance, states: Vec<Impedance>) -> Self {
        assert!(!states.is_empty(), "need at least one impedance state");
        ImpedanceBank { antenna, states }
    }

    /// The classic two-state tag on a 50 Ω antenna: matched (absorb) and
    /// short (full reflect).
    pub fn binary_50ohm() -> Self {
        ImpedanceBank::new(
            Complex::new(50.0, 0.0),
            vec![Complex::new(50.0, 0.0), Complex::ZERO],
        )
    }

    /// A multi-level bank giving graded |Γ| values, for fine amplitude
    /// control (§2.1: "our tag switches across multiple impedances to fine
    /// tune the amplitude").
    pub fn multilevel_50ohm(levels: usize) -> Self {
        assert!(levels >= 2);
        // Resistive terminations from short (0 Ω) to matched (50 Ω).
        let states = (0..levels)
            .map(|k| Complex::new(50.0 * k as f64 / (levels - 1) as f64, 0.0))
            .collect();
        ImpedanceBank::new(Complex::new(50.0, 0.0), states)
    }

    /// Number of selectable states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the bank is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Γ for state `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn gamma(&self, idx: usize) -> Complex {
        reflection_coefficient(self.antenna, self.states[idx])
    }

    /// All |Γ| magnitudes, in state order.
    pub fn amplitudes(&self) -> Vec<f64> {
        (0..self.states.len())
            .map(|i| self.gamma(i).abs())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matched_load_absorbs() {
        let g = reflection_coefficient(Complex::new(50.0, 0.0), Complex::new(50.0, 0.0));
        assert!(g.abs() < 1e-12);
    }

    #[test]
    fn short_reflects_fully_inverted() {
        let g = reflection_coefficient(Complex::new(50.0, 0.0), Complex::ZERO);
        assert!((g.abs() - 1.0).abs() < 1e-12);
        assert!((g.arg().abs() - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn open_reflects_fully_in_phase() {
        let g = reflection_coefficient(Complex::new(50.0, 0.0), Complex::new(1e12, 0.0));
        assert!((g.re - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reactive_termination_rotates_phase() {
        // A purely reactive load reflects |Γ| = 1 at a nonzero angle —
        // the mechanism behind fine phase control.
        let g = reflection_coefficient(Complex::new(50.0, 0.0), Complex::new(0.0, 50.0));
        assert!((g.abs() - 1.0).abs() < 1e-12);
        assert!(g.arg().abs() > 0.1 && g.arg().abs() < std::f64::consts::PI - 0.1);
    }

    #[test]
    fn binary_bank_has_absorb_and_reflect() {
        let bank = ImpedanceBank::binary_50ohm();
        let amps = bank.amplitudes();
        assert!(amps[0] < 1e-12);
        assert!((amps[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multilevel_bank_is_monotonic() {
        let bank = ImpedanceBank::multilevel_50ohm(5);
        let amps = bank.amplitudes();
        assert_eq!(amps.len(), 5);
        for w in amps.windows(2) {
            assert!(w[0] > w[1], "|Γ| must fall as Z_T approaches match");
        }
        assert!((amps[0] - 1.0).abs() < 1e-12); // short
        assert!(amps[4] < 1e-12); // matched
    }

    #[test]
    fn passivity() {
        // A passive termination can never reflect more than arrived.
        for r in [0.0, 10.0, 50.0, 200.0, 1e6] {
            for x in [-100.0, 0.0, 100.0] {
                let g = reflection_coefficient(Complex::new(50.0, 0.0), Complex::new(r, x));
                assert!(g.abs() <= 1.0 + 1e-9, "|Γ| = {} for {r}+{x}j", g.abs());
            }
        }
    }
}
