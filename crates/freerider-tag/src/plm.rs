//! Packet-length modulation (PLM): the transmitter-to-tag control channel.
//!
//! §2.4.2 of the paper: the transmitter encodes bits in the *durations* of
//! packets it sends (re-ordering/re-packetising buffered traffic, so busy
//! networks pay negligible overhead). The tag measures packet durations
//! with its envelope detector; a duration within ±[`PlmConfig::tolerance_s`]
//! of L₀/L₁ records a 0/1, anything else is ignored as ambient noise. A
//! circular buffer is matched against a preamble to delimit messages.
//!
//! Duration choices: Fig. 3 shows ambient traffic is bimodal (<0.5 ms and
//! 1.5–2.7 ms), so pulses of ≈1.0 ms and ≈1.2 ms sit in the sparse middle,
//! giving a ~0.03 % ambient-confusion probability. The prototype ran at
//! ≈500 bps — exactly what L≈1 ms packets plus inter-frame gaps deliver.

/// PLM parameters shared by the transmitter-side encoder and the tag-side
/// decoder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlmConfig {
    /// Packet duration encoding a 0 bit, seconds.
    pub l0_s: f64,
    /// Packet duration encoding a 1 bit, seconds.
    pub l1_s: f64,
    /// Pulse-width matching tolerance, seconds (±).
    pub tolerance_s: f64,
    /// Inter-packet gap, seconds.
    pub gap_s: f64,
    /// The preamble bit pattern that delimits control messages.
    pub preamble: [u8; 8],
}

impl Default for PlmConfig {
    fn default() -> Self {
        PlmConfig {
            l0_s: 1.0e-3,
            l1_s: 1.2e-3,
            tolerance_s: 25e-6,
            gap_s: 0.6e-3,
            preamble: [1, 0, 1, 1, 0, 0, 1, 0],
        }
    }
}

impl PlmConfig {
    /// Effective bit rate of the control channel, bits/second.
    pub fn bit_rate(&self) -> f64 {
        let avg = (self.l0_s + self.l1_s) / 2.0 + self.gap_s;
        1.0 / avg
    }
}

/// Transmitter-side encoder: turns message bits into a schedule of packet
/// durations.
///
/// ```
/// use freerider_tag::plm::{PlmConfig, PlmEncoder, PlmReceiver};
///
/// let cfg = PlmConfig::default();
/// let durations = PlmEncoder::new(cfg).encode(&[1, 0, 1]);
/// let mut rx = PlmReceiver::new(cfg, 3);
/// let msg = durations.iter().find_map(|&d| rx.push_pulse(d));
/// assert_eq!(msg, Some(vec![1, 0, 1]));
/// ```
#[derive(Debug, Clone)]
pub struct PlmEncoder {
    config: PlmConfig,
}

impl PlmEncoder {
    /// Creates an encoder.
    pub fn new(config: PlmConfig) -> Self {
        PlmEncoder { config }
    }

    /// Encodes `message` (preceded by the preamble) as a list of packet
    /// durations in seconds. The caller transmits packets of these lengths
    /// separated by [`PlmConfig::gap_s`].
    pub fn encode(&self, message: &[u8]) -> Vec<f64> {
        self.config
            .preamble
            .iter()
            .chain(message.iter())
            .map(|&b| {
                if b & 1 == 1 {
                    self.config.l1_s
                } else {
                    self.config.l0_s
                }
            })
            .collect()
    }

    /// Airtime of a message of `n` bits, including preamble and gaps.
    pub fn airtime_s(&self, n: usize) -> f64 {
        let bits = n + self.config.preamble.len();
        bits as f64 * ((self.config.l0_s + self.config.l1_s) / 2.0 + self.config.gap_s)
    }
}

/// Tag-side decoder: consumes measured pulse durations, emits messages.
#[derive(Debug, Clone)]
pub struct PlmReceiver {
    config: PlmConfig,
    /// Circular bit buffer (most recent last).
    buffer: Vec<u8>,
    /// Message length expected after a preamble match.
    message_len: usize,
    /// Bits being collected for an in-progress message (`None` = hunting).
    collecting: Option<Vec<u8>>,
}

impl PlmReceiver {
    /// Creates a receiver expecting `message_len`-bit messages.
    pub fn new(config: PlmConfig, message_len: usize) -> Self {
        PlmReceiver {
            config,
            buffer: Vec::new(),
            message_len,
            collecting: None,
        }
    }

    /// Classifies one measured pulse duration: `Some(bit)` if it matches
    /// L₀ or L₁ within tolerance, `None` for ambient traffic.
    pub fn classify(&self, duration_s: f64) -> Option<u8> {
        if (duration_s - self.config.l0_s).abs() <= self.config.tolerance_s {
            Some(0)
        } else if (duration_s - self.config.l1_s).abs() <= self.config.tolerance_s {
            Some(1)
        } else {
            None
        }
    }

    /// Feeds one measured pulse duration; returns a complete message when
    /// one is delimited.
    pub fn push_pulse(&mut self, duration_s: f64) -> Option<Vec<u8>> {
        let bit = self.classify(duration_s)?;
        self.push_bit(bit)
    }

    /// Feeds one already-classified bit.
    pub fn push_bit(&mut self, bit: u8) -> Option<Vec<u8>> {
        if let Some(msg) = self.collecting.as_mut() {
            msg.push(bit & 1);
            if msg.len() == self.message_len {
                let out = self.collecting.take();
                self.buffer.clear();
                return out;
            }
            return None;
        }
        self.buffer.push(bit & 1);
        let p = self.config.preamble;
        if self.buffer.len() > p.len() {
            let excess = self.buffer.len() - p.len();
            self.buffer.drain(..excess);
        }
        if self.buffer.len() == p.len() && self.buffer[..] == p[..] {
            self.collecting = Some(Vec::with_capacity(self.message_len));
        }
        None
    }

    /// Abandons any partially-collected message (e.g. on a long silence).
    pub fn reset(&mut self) {
        self.buffer.clear();
        self.collecting = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freerider_rt::Rng64;

    #[test]
    fn encode_decode_round_trip() {
        let cfg = PlmConfig::default();
        let enc = PlmEncoder::new(cfg);
        let mut rx = PlmReceiver::new(cfg, 12);
        let msg: Vec<u8> = vec![1, 0, 0, 1, 1, 1, 0, 1, 0, 0, 1, 0];
        let mut out = None;
        for d in enc.encode(&msg) {
            out = out.or(rx.push_pulse(d));
        }
        assert_eq!(out, Some(msg));
    }

    #[test]
    fn ambient_pulses_are_ignored() {
        let cfg = PlmConfig::default();
        let enc = PlmEncoder::new(cfg);
        let mut rx = PlmReceiver::new(cfg, 8);
        let msg = vec![1, 1, 0, 0, 1, 0, 1, 0];
        let durations = enc.encode(&msg);
        // Interleave ambient packets (durations far from L0/L1) between
        // every PLM pulse — the paper's robustness claim.
        let mut rng = Rng64::new(1);
        let mut out = None;
        for d in durations {
            for _ in 0..rng.index(4) {
                let ambient = if rng.bernoulli(0.8) {
                    rng.f64_range(40e-6, 460e-6)
                } else {
                    rng.f64_range(1.5e-3, 2.7e-3)
                };
                assert!(rx.push_pulse(ambient).is_none());
            }
            out = out.or(rx.push_pulse(d));
        }
        assert_eq!(out, Some(msg));
    }

    #[test]
    fn tolerance_bound_is_enforced() {
        let cfg = PlmConfig::default();
        let rx = PlmReceiver::new(cfg, 4);
        assert_eq!(rx.classify(1.0e-3), Some(0));
        assert_eq!(rx.classify(1.0e-3 + 24e-6), Some(0));
        assert_eq!(rx.classify(1.0e-3 + 26e-6), None);
        assert_eq!(rx.classify(1.2e-3 - 20e-6), Some(1));
        assert_eq!(rx.classify(0.5e-3), None);
    }

    #[test]
    fn sliding_preamble_match() {
        // Garbage bits before the preamble must not prevent the match.
        let cfg = PlmConfig::default();
        let enc = PlmEncoder::new(cfg);
        let mut rx = PlmReceiver::new(cfg, 4);
        let mut out = None;
        for &b in &[0u8, 1, 1, 0, 1] {
            assert!(rx.push_bit(b).is_none());
        }
        for d in enc.encode(&[1, 0, 1, 0]) {
            out = out.or(rx.push_pulse(d));
        }
        assert_eq!(out, Some(vec![1, 0, 1, 0]));
    }

    #[test]
    fn back_to_back_messages() {
        let cfg = PlmConfig::default();
        let enc = PlmEncoder::new(cfg);
        let mut rx = PlmReceiver::new(cfg, 4);
        let mut got = Vec::new();
        for msg in [[1u8, 1, 1, 1], [0, 0, 0, 0], [1, 0, 1, 0]] {
            for d in enc.encode(&msg) {
                if let Some(m) = rx.push_pulse(d) {
                    got.push(m);
                }
            }
        }
        assert_eq!(
            got,
            vec![vec![1, 1, 1, 1], vec![0, 0, 0, 0], vec![1, 0, 1, 0]]
        );
    }

    #[test]
    fn bit_rate_is_about_500bps() {
        let cfg = PlmConfig::default();
        let r = cfg.bit_rate();
        assert!((400.0..700.0).contains(&r), "PLM bit rate {r}");
    }
}
