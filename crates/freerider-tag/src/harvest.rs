//! RF energy harvesting — the battery-free operating envelope.
//!
//! The paper's motivation is ultra-low-power IoT ("backscatter radios only
//! consume microwatts … instead of doing active transmission"), and its
//! §3.3 budget (~30 µW) is what makes battery-free operation thinkable.
//! This module extends the power model with an RF harvesting front end so
//! the workspace can answer the natural follow-on question: *at what
//! excitation level does a FreeRider tag run without a battery, and at
//! what duty cycle?*
//!
//! Model: a rectifier harvests `η · P_incident` above its turn-on
//! threshold (CMOS rectifiers need ≈ −20 dBm to start; η ≈ 30 % well
//! above it, rolling off toward the threshold), charging a storage
//! capacitor. The tag wakes at `v_on`, runs its ~30 µW translator until
//! the capacitor sags to `v_off`, then sleeps and recharges — classic
//! duty-cycled intermittent computing.

use crate::power::{PowerModel, TranslatorKind};
use freerider_dsp::db;

/// The harvesting front end + storage capacitor.
#[derive(Debug, Clone, Copy)]
pub struct Harvester {
    /// Peak RF→DC conversion efficiency (0..1) well above threshold.
    pub peak_efficiency: f64,
    /// Rectifier turn-on threshold, dBm (no harvest below this).
    pub threshold_dbm: f64,
    /// Storage capacitance, farads.
    pub capacitance_f: f64,
    /// Wake voltage.
    pub v_on: f64,
    /// Brown-out voltage.
    pub v_off: f64,
}

impl Default for Harvester {
    fn default() -> Self {
        Harvester {
            peak_efficiency: 0.30,
            threshold_dbm: -20.0,
            capacitance_f: 47e-6,
            v_on: 2.4,
            v_off: 1.8,
        }
    }
}

impl Harvester {
    /// Harvested power in µW at the given incident RF power.
    ///
    /// The efficiency ramps from 0 at the threshold to the peak value
    /// ~10 dB above it (a smooth stand-in for measured rectifier curves).
    pub fn harvested_uw(&self, incident_dbm: f64) -> f64 {
        let margin = incident_dbm - self.threshold_dbm;
        if margin <= 0.0 {
            return 0.0;
        }
        let eff = self.peak_efficiency * (margin / 10.0).min(1.0);
        eff * db::dbm_to_mw(incident_dbm) * 1e3
    }

    /// Long-run sustainable duty cycle (fraction of time the tag can run
    /// a `kind` translator with `shift_freq_hz` shifting) at the given
    /// incident power. 1.0 = continuous battery-free operation.
    pub fn sustainable_duty_cycle(
        &self,
        model: &PowerModel,
        kind: TranslatorKind,
        shift_freq_hz: f64,
        incident_dbm: f64,
    ) -> f64 {
        let harvest = self.harvested_uw(incident_dbm);
        let draw = model.total_uw(kind, shift_freq_hz);
        // While active the tag also keeps harvesting.
        if harvest >= draw {
            return 1.0;
        }
        if harvest <= 0.0 {
            return 0.0;
        }
        // Duty cycle d satisfies d·(draw − harvest) = (1−d)·harvest.
        harvest / draw
    }

    /// Energy stored between `v_on` and `v_off`, microjoules.
    pub fn usable_energy_uj(&self) -> f64 {
        0.5 * self.capacitance_f * (self.v_on * self.v_on - self.v_off * self.v_off) * 1e6
    }

    /// On-time per wake-up in seconds (capacitor energy over net draw),
    /// and the recharge time to get it back. Returns `None` when the tag
    /// can run continuously (or never).
    pub fn burst_timing(
        &self,
        model: &PowerModel,
        kind: TranslatorKind,
        shift_freq_hz: f64,
        incident_dbm: f64,
    ) -> Option<(f64, f64)> {
        let harvest = self.harvested_uw(incident_dbm);
        let draw = model.total_uw(kind, shift_freq_hz);
        if harvest >= draw || harvest <= 0.0 {
            return None;
        }
        let e = self.usable_energy_uj();
        let on_s = e / (draw - harvest);
        let recharge_s = e / harvest;
        Some((on_s, recharge_s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_harvest_below_threshold() {
        let h = Harvester::default();
        assert_eq!(h.harvested_uw(-25.0), 0.0);
        assert_eq!(h.harvested_uw(-20.0), 0.0);
        assert!(h.harvested_uw(-19.0) > 0.0);
    }

    #[test]
    fn harvest_scales_with_power() {
        let h = Harvester::default();
        // At −10 dBm (100 µW incident), full 30 % efficiency: 30 µW.
        assert!((h.harvested_uw(-10.0) - 30.0).abs() < 0.5);
        // At 0 dBm (1 mW): 300 µW.
        assert!((h.harvested_uw(0.0) - 300.0).abs() < 5.0);
    }

    #[test]
    fn battery_free_point_is_about_minus_10dbm() {
        // ~35 µW draw vs 30 % harvesting: continuous operation needs
        // ≈ −9 dBm of incident RF — i.e. centimetres from a strong exciter
        // (11 dBm − 35 dB@1m ≈ −24 dBm is NOT enough; the battery-free
        // envelope is much tighter than the communication envelope).
        let h = Harvester::default();
        let m = PowerModel::default();
        let d_cont = h.sustainable_duty_cycle(&m, TranslatorKind::WifiPhase, 20e6, -9.0);
        assert!((d_cont - 1.0).abs() < 1e-9, "duty at −9 dBm: {d_cont}");
        let d_10 = h.sustainable_duty_cycle(&m, TranslatorKind::WifiPhase, 20e6, -10.0);
        assert!((d_10 - 0.86).abs() < 0.03, "duty at −10 dBm: {d_10}");
        let d_24 = h.sustainable_duty_cycle(&m, TranslatorKind::WifiPhase, 20e6, -24.0);
        assert!(d_24 < 0.1, "duty at −24 dBm: {d_24}");
        assert_eq!(
            h.sustainable_duty_cycle(&m, TranslatorKind::WifiPhase, 20e6, -30.0),
            0.0
        );
    }

    #[test]
    fn duty_cycle_is_monotone_in_power() {
        let h = Harvester::default();
        let m = PowerModel::default();
        let mut last = 0.0;
        for dbm in [-22.0, -18.0, -15.0, -12.0, -9.0] {
            let d = h.sustainable_duty_cycle(&m, TranslatorKind::BleFsk, 500e3, dbm);
            assert!(d >= last, "{dbm} dBm: {d} < {last}");
            last = d;
        }
        assert!((last - 1.0).abs() < 1e-9, "BLE's tiny clock sustains early");
    }

    #[test]
    fn burst_timing_balances_energy() {
        let h = Harvester::default();
        let m = PowerModel::default();
        let (on_s, recharge_s) = h
            .burst_timing(&m, TranslatorKind::WifiPhase, 20e6, -15.0)
            .expect("intermittent regime");
        assert!(on_s > 0.0 && recharge_s > 0.0);
        // Long-run duty from burst timing equals the closed form.
        let d_burst = on_s / (on_s + recharge_s);
        let d_formula = h.sustainable_duty_cycle(&m, TranslatorKind::WifiPhase, 20e6, -15.0);
        assert!(
            (d_burst - d_formula).abs() < 0.01,
            "{d_burst} vs {d_formula}"
        );
        // Continuous or dead regimes yield no burst timing.
        assert!(h
            .burst_timing(&m, TranslatorKind::WifiPhase, 20e6, -5.0)
            .is_none());
        assert!(h
            .burst_timing(&m, TranslatorKind::WifiPhase, 20e6, -40.0)
            .is_none());
    }

    #[test]
    fn capacitor_energy() {
        let h = Harvester::default();
        // ½·47µF·(2.4²−1.8²) = ½·47e-6·2.52 J ≈ 59.2 µJ.
        assert!((h.usable_energy_uj() - 59.2).abs() < 0.5);
    }
}
