//! The tag state machine: envelope detection, PLM control reception, a
//! data queue, and the configured codeword translator.

use crate::envelope::{EnvelopeConfig, EnvelopeDetector};
use crate::plm::{PlmConfig, PlmReceiver};
use crate::translator::{AmplitudeTranslator, FskTranslator, PhaseTranslator};
use freerider_dsp::Complex;
use std::collections::VecDeque;

/// Any of the three codeword translators, behind one interface.
#[derive(Debug, Clone)]
pub enum Translator {
    /// Phase translation (WiFi / ZigBee).
    Phase(PhaseTranslator),
    /// FSK toggling (Bluetooth).
    Fsk(FskTranslator),
    /// Amplitude levels (single-carrier only; breaks OFDM — Fig. 2).
    Amplitude(AmplitudeTranslator),
}

impl Translator {
    /// Tag bits that fit on an excitation of `len` samples.
    pub fn capacity(&self, len: usize) -> usize {
        match self {
            Translator::Phase(t) => t.capacity(len),
            Translator::Fsk(t) => t.capacity(len),
            Translator::Amplitude(t) => {
                if len <= t.data_start {
                    0
                } else {
                    (len - t.data_start) / t.window
                }
            }
        }
    }

    /// Backscatters `excitation` with `bits`; returns waveform + consumed.
    pub fn translate(&self, excitation: &[Complex], bits: &[u8]) -> (Vec<Complex>, usize) {
        match self {
            Translator::Phase(t) => t.translate(excitation, bits),
            Translator::Fsk(t) => t.translate(excitation, bits),
            Translator::Amplitude(t) => t.translate(excitation, bits),
        }
    }
}

/// Tag configuration.
#[derive(Debug, Clone)]
pub struct TagConfig {
    /// Envelope-detector settings.
    pub envelope: EnvelopeConfig,
    /// PLM control-channel settings.
    pub plm: PlmConfig,
    /// Control-message length in bits.
    pub plm_message_len: usize,
    /// The codeword translator this tag runs.
    pub translator: Translator,
}

impl TagConfig {
    /// A WiFi binary-phase tag with default control channel.
    pub fn wifi() -> Self {
        TagConfig {
            envelope: EnvelopeConfig::default(),
            plm: PlmConfig::default(),
            plm_message_len: 16,
            translator: Translator::Phase(PhaseTranslator::wifi_binary()),
        }
    }
}

/// MAC-visible tag state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagState {
    /// Not synchronised to any round.
    Idle,
    /// Synchronised; waiting for its chosen slot.
    Scheduled {
        /// The slot this tag will transmit in.
        slot: u16,
    },
    /// Currently backscattering.
    Backscattering,
}

/// The FreeRider tag.
#[derive(Debug)]
pub struct Tag {
    config: TagConfig,
    envelope: EnvelopeDetector,
    plm: PlmReceiver,
    state: TagState,
    queue: VecDeque<u8>,
}

impl Tag {
    /// Creates a tag.
    pub fn new(config: TagConfig) -> Self {
        let envelope = EnvelopeDetector::new(config.envelope);
        let plm = PlmReceiver::new(config.plm, config.plm_message_len);
        Tag {
            config,
            envelope,
            plm,
            state: TagState::Idle,
            queue: VecDeque::new(),
        }
    }

    /// Current MAC state.
    pub fn state(&self) -> TagState {
        self.state
    }

    /// Queues data bits for uplink.
    pub fn push_data(&mut self, bits: &[u8]) {
        self.queue.extend(bits.iter().map(|b| b & 1));
    }

    /// Bits waiting in the uplink queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules this tag into `slot` of the current round.
    pub fn schedule(&mut self, slot: u16) {
        self.state = TagState::Scheduled { slot };
    }

    /// Returns to idle (round over / lost sync).
    pub fn reset_schedule(&mut self) {
        self.state = TagState::Idle;
    }

    /// Feeds received IQ through the envelope detector and PLM decoder;
    /// returns any complete control message.
    pub fn observe(&mut self, iq: &[Complex]) -> Option<Vec<u8>> {
        let pulses = self.envelope.pulses(iq);
        let mut msg = None;
        for p in pulses {
            msg = msg.or(self.plm.push_pulse(p.duration_s));
        }
        msg
    }

    /// Feeds an already-measured pulse duration (seconds) to the PLM
    /// decoder — the discrete-event path used by the MAC simulator.
    pub fn observe_pulse(&mut self, duration_s: f64) -> Option<Vec<u8>> {
        self.plm.push_pulse(duration_s)
    }

    /// Backscatters one excitation packet, draining queued bits. Returns
    /// the backscattered waveform and how many bits were embedded.
    pub fn backscatter(&mut self, excitation: &[Complex]) -> (Vec<Complex>, usize) {
        let capacity = self.config.translator.capacity(excitation.len());
        let take = capacity.min(self.queue.len());
        let bits: Vec<u8> = self.queue.iter().take(take).copied().collect();
        self.state = TagState::Backscattering;
        let (wave, consumed) = self.config.translator.translate(excitation, &bits);
        for _ in 0..consumed {
            self.queue.pop_front();
        }
        self.state = TagState::Idle;
        (wave, consumed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_phase_tag() -> Tag {
        Tag::new(TagConfig {
            envelope: EnvelopeConfig::default(),
            plm: PlmConfig::default(),
            plm_message_len: 4,
            translator: Translator::Phase(PhaseTranslator {
                delta_theta: std::f64::consts::PI,
                levels: 2,
                symbols_per_step: 1,
                symbol_len: 10,
                data_start: 20,
            }),
        })
    }

    #[test]
    fn queue_drains_by_capacity() {
        let mut tag = tiny_phase_tag();
        tag.push_data(&[1, 0, 1, 1, 0, 0, 1]);
        assert_eq!(tag.pending(), 7);
        // Excitation fits 3 steps after the 20-sample header.
        let excitation = vec![Complex::ONE; 20 + 30];
        let (wave, consumed) = tag.backscatter(&excitation);
        assert_eq!(consumed, 3);
        assert_eq!(tag.pending(), 4);
        assert_eq!(wave.len(), excitation.len());
        // First step (bit 1) flipped, second (bit 0) clean, third flipped.
        assert!((wave[20] + Complex::ONE).abs() < 1e-12);
        assert!((wave[30] - Complex::ONE).abs() < 1e-12);
        assert!((wave[40] + Complex::ONE).abs() < 1e-12);
    }

    #[test]
    fn empty_queue_reflects_cleanly() {
        let mut tag = tiny_phase_tag();
        let excitation = vec![Complex::ONE; 100];
        let (wave, consumed) = tag.backscatter(&excitation);
        assert_eq!(consumed, 0);
        assert_eq!(wave, excitation);
    }

    #[test]
    fn control_message_via_pulses() {
        let mut tag = tiny_phase_tag();
        let cfg = PlmConfig::default();
        let enc = crate::plm::PlmEncoder::new(cfg);
        let mut got = None;
        for d in enc.encode(&[1, 0, 0, 1]) {
            got = got.or(tag.observe_pulse(d));
        }
        assert_eq!(got, Some(vec![1, 0, 0, 1]));
    }

    #[test]
    fn schedule_state_transitions() {
        let mut tag = tiny_phase_tag();
        assert_eq!(tag.state(), TagState::Idle);
        tag.schedule(5);
        assert_eq!(tag.state(), TagState::Scheduled { slot: 5 });
        tag.reset_schedule();
        assert_eq!(tag.state(), TagState::Idle);
    }

    #[test]
    fn observe_detects_plm_over_iq() {
        // Full-stack: encode a message as actual RF bursts, run the tag's
        // envelope detector + PLM chain over the IQ stream.
        let mut tag = Tag::new(TagConfig {
            envelope: EnvelopeConfig {
                threshold_mw: 0.25,
                ..EnvelopeConfig::default()
            },
            plm: PlmConfig::default(),
            plm_message_len: 4,
            translator: Translator::Phase(PhaseTranslator::wifi_binary()),
        });
        let cfg = PlmConfig::default();
        let enc = crate::plm::PlmEncoder::new(cfg);
        let fs = 20e6;
        let mut iq = Vec::new();
        let gap = vec![Complex::ZERO; (cfg.gap_s * fs) as usize];
        for d in enc.encode(&[0, 1, 1, 0]) {
            iq.extend(vec![Complex::ONE; (d * fs) as usize]);
            iq.extend(gap.iter());
        }
        let msg = tag.observe(&iq);
        assert_eq!(msg, Some(vec![0, 1, 1, 0]));
    }
}
