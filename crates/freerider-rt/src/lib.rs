//! # freerider-rt
//!
//! The workspace's Monte-Carlo runtime: every headline result of the paper
//! (BER/throughput/RSSI distance sweeps, the range map, PLM accuracy, the
//! coexistence CDFs, the multi-tag MAC) is thousands of independent seeded
//! trials, and this crate provides the two things they all need:
//!
//! * [`Rng64`] — a deterministic, zero-dependency PRNG (xoshiro256++ core,
//!   splitmix64 seeding) with hierarchical **stream derivation**:
//!   [`Rng64::derive`]`(seed, stream)` gives every sweep point, packet, and
//!   tag an independent, reproducible stream, replacing the ad-hoc
//!   `seed ^ 0x22` / `seed.wrapping_add(i * 7919)` hacks the crates used to
//!   carry around. It also hosts the single [`Rng64::gauss`] Box–Muller
//!   implementation the workspace previously duplicated three times.
//! * [`Executor`] / [`Sweep`] — a std-only scoped-thread work-stealing pool
//!   that fans trial grids out over all cores. Because every point draws
//!   from its own derived stream, parallel results are **bit-identical** to
//!   serial ones regardless of scheduling; `FREERIDER_THREADS=1` forces the
//!   serial path.
//! * [`CancelToken`] — a clonable cooperative-cancellation flag checked at
//!   checkpoint boundaries (simulation rounds, sweep points), so
//!   long-running jobs hosted by a service can be stopped cleanly without
//!   perturbing the deterministic prefix already produced.
//!
//! The crate's only dependency is `freerider-telemetry` (itself
//! dependency-free), so the whole repository still builds and tests with
//! no network access.
//!
//! ## Seeding discipline
//!
//! Experiments take one top-level `u64` seed. Sub-streams are derived, never
//! offset: `derive_seed(seed, STREAM_ID)` where the stream id is either a
//! structural index (sweep-point index, packet number, tag id) or one of the
//! small documented constants in [`stream`] for fixed roles (noise, fading,
//! payload, …). Derivation is a splitmix64-based bijective mix, so distinct
//! stream ids give decorrelated streams and the same `(seed, stream)` pair
//! is bit-identical everywhere, forever.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod executor;
pub mod rng;
pub mod sweep;

pub use cancel::CancelToken;
pub use executor::Executor;
pub use rng::{derive_seed, Rng64};
pub use sweep::Sweep;

/// Conventional stream ids for fixed sub-roles of one experiment seed.
///
/// Structural indices (sweep point, packet, tag, window) use the index
/// itself as the stream id; these constants start high so they never
/// collide with small indices.
pub mod stream {
    /// Thermal-noise sample stream of a channel.
    pub const NOISE: u64 = 1 << 32;
    /// Block-fading / multipath tap draws of a channel.
    pub const FADING: u64 = (1 << 32) + 1;
    /// Random excitation payload bytes.
    pub const PAYLOAD: u64 = (1 << 32) + 2;
    /// Random tag data bits.
    pub const TAG_BITS: u64 = (1 << 32) + 3;
    /// Interferer burst timing.
    pub const INTERFERER: u64 = (1 << 32) + 4;
    /// Reference (productive-link) channel of a backscatter link.
    pub const REF_CHANNEL: u64 = (1 << 32) + 5;
    /// Backscatter channel of a link.
    pub const BACK_CHANNEL: u64 = (1 << 32) + 6;
    /// MAC slot-selection / control-loss draws.
    pub const MAC: u64 = (1 << 32) + 7;
}
