//! The sweep builder: the one idiom every experiment shares — a grid of
//! points, one derived RNG stream per point, a per-point trial function,
//! results collected in point order — written once.
//!
//! ```
//! use freerider_rt::{Executor, Rng64, Sweep};
//!
//! // Mean of 100 Gaussian draws at each of 8 sweep points.
//! let means = Sweep::over((0..8).collect::<Vec<u32>>())
//!     .seed(42)
//!     .executor(Executor::serial())
//!     .run(|point| {
//!         let mut rng = point.rng();
//!         let n = 100;
//!         (0..n).map(|_| rng.gauss()).sum::<f64>() / n as f64
//!     });
//! assert_eq!(means.len(), 8);
//! ```

use crate::executor::Executor;
use crate::rng::{derive_seed, Rng64};

/// One point of a sweep as handed to the trial function: the grid value,
/// its index, and the seed derived for it.
#[derive(Debug, Clone, Copy)]
pub struct Point<'a, T> {
    /// The grid value (distance, SNR, tag count, …).
    pub value: &'a T,
    /// Position of this point in the grid.
    pub index: usize,
    /// Seed derived as `derive_seed(sweep_seed, index)` — feed it to link
    /// configs that take a raw `u64`, or call [`Point::rng`].
    pub seed: u64,
}

impl<T> Point<'_, T> {
    /// A fresh generator for this point's stream.
    pub fn rng(&self) -> Rng64 {
        Rng64::new(self.seed)
    }

    /// A sub-stream of this point (e.g. one per trial within the point).
    pub fn derive(&self, stream: u64) -> Rng64 {
        Rng64::derive(self.seed, stream)
    }
}

/// Builder for a seeded Monte-Carlo sweep over a grid of points.
#[derive(Debug, Clone)]
pub struct Sweep<T> {
    points: Vec<T>,
    seed: u64,
    executor: Executor,
}

impl<T: Sync> Sweep<T> {
    /// Starts a sweep over `points` (seed 0, executor from the
    /// environment — see [`Executor::from_env`]).
    pub fn over(points: Vec<T>) -> Self {
        Sweep {
            points,
            seed: 0,
            executor: Executor::from_env(),
        }
    }

    /// Sets the top-level seed; point `i` runs on stream
    /// `derive_seed(seed, i)`.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the executor (e.g. [`Executor::serial`] for the
    /// equivalence test).
    pub fn executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Runs `f` on every point, in parallel, returning results in grid
    /// order. Bit-identical for any worker count as long as `f` draws its
    /// randomness from the [`Point`] it is given.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Point<'_, T>) -> R + Sync,
    {
        self.run_with(|| (), |point, _| f(point))
    }

    /// [`Sweep::run`] with reusable per-worker scratch state: `mk_state`
    /// builds one `S` per worker and `f` gets `&mut S` with every point.
    /// The state must be treated as scratch memory only (see
    /// [`Executor::map_with`]) — then results are still bit-identical for
    /// any worker count.
    pub fn run_with<R, S, M, F>(&self, mk_state: M, f: F) -> Vec<R>
    where
        R: Send,
        M: Fn() -> S + Sync,
        F: Fn(Point<'_, T>, &mut S) -> R + Sync,
    {
        let seed = self.seed;
        self.executor
            .map_with(&self.points, mk_state, |index, value, state| {
                f(
                    Point {
                        value,
                        index,
                        seed: derive_seed(seed, index as u64),
                    },
                    state,
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let grid: Vec<f64> = (0..24).map(|i| i as f64 * 0.5).collect();
        let run = |ex: Executor| {
            Sweep::over(grid.clone()).seed(1234).executor(ex).run(|p| {
                let mut rng = p.rng();
                (0..200).map(|_| rng.gauss() * p.value).sum::<f64>()
            })
        };
        let serial = run(Executor::serial());
        let parallel = run(Executor::new(4));
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn point_seeds_are_the_documented_derivation() {
        let seeds: Vec<u64> = Sweep::over(vec![(); 5])
            .seed(99)
            .executor(Executor::serial())
            .run(|p| p.seed);
        for (i, &s) in seeds.iter().enumerate() {
            assert_eq!(s, derive_seed(99, i as u64));
        }
    }

    #[test]
    fn sub_streams_within_a_point_differ() {
        Sweep::over(vec![0u8])
            .seed(7)
            .executor(Executor::serial())
            .run(|p| {
                let mut a = p.derive(0);
                let mut b = p.derive(1);
                assert_ne!(a.next_u64(), b.next_u64());
            });
    }
}
