//! Cooperative cancellation for long-running deterministic work.
//!
//! A [`CancelToken`] is a cheap clonable flag shared between the party
//! that owns a computation (a server's job manager, a CLI signal handler)
//! and the computation itself. Work checks [`CancelToken::is_cancelled`]
//! at natural checkpoint boundaries — a simulation round, a sweep point —
//! and unwinds cleanly by *returning*, never by panicking, so partial
//! results stay well-formed.
//!
//! Cancellation is deliberately coarse: it never interrupts a checkpoint
//! mid-flight, so everything produced *before* the flag was observed is
//! still bit-identical to the uncancelled run's prefix. That keeps the
//! workspace determinism contract intact — a cancelled job's streamed
//! output is a prefix of the complete job's output, not a third timeline.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag.
///
/// Clones observe the same flag; once [`cancel`](CancelToken::cancel) is
/// called the token stays cancelled forever (there is no reset — reuse
/// means a fresh token).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent and safe to call from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the flag has been raised.
    ///
    /// A relaxed-acquire load — cheap enough to call once per simulation
    /// round or sweep point without measurable cost.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_clear_and_latches() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        u.cancel();
        assert!(t.is_cancelled());
        // A fresh token is independent.
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn visible_across_threads() {
        let t = CancelToken::new();
        let u = t.clone();
        let h = std::thread::spawn(move || {
            while !u.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        t.cancel();
        assert!(h.join().unwrap());
    }
}
