//! The deterministic RNG: xoshiro256++ core, splitmix64 seeding and stream
//! derivation, and the distribution helpers the experiments draw from.
//!
//! Why xoshiro256++: 256 bits of state (period 2²⁵⁶ − 1), excellent
//! statistical quality, four rotate/xor/add lines per draw — and trivially
//! reproducible from a written-down algorithm, which matters more here than
//! cryptographic strength. Seeding expands a single `u64` through the
//! splitmix64 sequence, the construction the xoshiro authors recommend, so
//! correlated user seeds (1, 2, 3, …) still land in decorrelated states.

/// The golden-ratio increment of the splitmix64 sequence.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// splitmix64 output mix (Stafford's MurmurHash3 finalizer variant 13).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One step of the splitmix64 sequence: advances `state` and returns the
/// mixed output.
#[inline]
fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN);
    mix(*state)
}

/// Derives an independent sub-seed from `(seed, stream)`.
///
/// The map is a bijective mix of both words, so distinct stream ids under
/// the same seed (and the same stream id under distinct seeds) give
/// decorrelated streams. Derivation nests: a link derives per-channel seeds
/// from its own seed, an experiment derives per-point seeds from the
/// experiment seed, and the trees never collide in practice because each
/// level mixes 64 fresh bits.
#[inline]
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    mix(seed ^ mix(stream.wrapping_mul(GOLDEN).wrapping_add(!GOLDEN)))
}

/// The workspace's deterministic PRNG (xoshiro256++).
///
/// Cheap to create, cheap to clone, `Send` — make one per independent
/// stream instead of threading a global one through call stacks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed (splitmix64 state expansion).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix_next(&mut sm),
            splitmix_next(&mut sm),
            splitmix_next(&mut sm),
            splitmix_next(&mut sm),
        ];
        // splitmix64 outputs are never all zero for any seed, but keep the
        // guard: the all-zero state is xoshiro's single fixed point.
        debug_assert!(s.iter().any(|&w| w != 0));
        Rng64 { s }
    }

    /// Creates the generator for sub-stream `stream` of `seed` — the
    /// hierarchical derivation every sweep point / packet / tag uses.
    pub fn derive(seed: u64, stream: u64) -> Self {
        Rng64::new(derive_seed(seed, stream))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `buf` with uniform random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (hi - lo) * self.f64()
    }

    /// Uniform `u64` in `[0, n)` (Lemire's unbiased multiply-shift).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        let mut m = self.next_u64() as u128 * n as u128;
        if (m as u64) < n {
            let threshold = n.wrapping_neg() % n;
            while (m as u64) < threshold {
                m = self.next_u64() as u128 * n as u128;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform index in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// One uniform bit as `0u8` / `1u8` (the workspace's tag-bit unit).
    #[inline]
    pub fn bit(&mut self) -> u8 {
        (self.next_u64() >> 63) as u8
    }

    /// One uniform byte.
    #[inline]
    pub fn byte(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// `n` uniform bits (`0`/`1` bytes).
    pub fn bits(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.bit()).collect()
    }

    /// `n` uniform bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut v = vec![0u8; n];
        self.fill_bytes(&mut v);
        v
    }

    /// One standard Gaussian variate (Box–Muller, cosine branch).
    ///
    /// This is the single source of truth for Gaussian draws — the three
    /// copies `freerider-core`/`freerider-channel` used to carry are gone.
    /// The sine branch is discarded; use [`Rng64::gauss_pair`] when both
    /// variates are wanted (complex noise samples).
    #[inline]
    pub fn gauss(&mut self) -> f64 {
        self.gauss_pair().0
    }

    /// Two independent standard Gaussian variates from one Box–Muller
    /// transform.
    #[inline]
    pub fn gauss_pair(&mut self) -> (f64, f64) {
        let u1 = loop {
            let u = self.f64();
            if u > 1e-300 {
                break u;
            }
        };
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        (r * theta.cos(), r * theta.sin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference splitmix64 outputs for seed 0 — the published test vector.
    #[test]
    fn splitmix_known_answers() {
        let mut st = 0u64;
        assert_eq!(splitmix_next(&mut st), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix_next(&mut st), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix_next(&mut st), 0x06C4_5D18_8009_454F);
    }

    // xoshiro256++ from the state [1, 2, 3, 4], computed independently from
    // the reference algorithm.
    #[test]
    fn xoshiro_known_answers() {
        let mut r = Rng64 { s: [1, 2, 3, 4] };
        let expect: [u64; 6] = [
            0x0000_0000_0280_0001,
            0x0000_0000_0380_0067,
            0x000C_C000_0380_0067,
            0x000C_C201_9944_00B2,
            0x8012_A201_9AC4_33CD,
            0x8A69_978A_CDEE_33BA,
        ];
        for e in expect {
            assert_eq!(r.next_u64(), e);
        }
    }

    // Full pipeline (seeding + core) pinned so the sequence can never
    // silently change under refactoring: every seeded experiment in the
    // workspace depends on it.
    #[test]
    fn seeded_sequence_is_pinned() {
        let mut r = Rng64::new(42);
        assert_eq!(r.next_u64(), 0xD076_4D4F_4476_689F);
        assert_eq!(r.next_u64(), 0x519E_4174_576F_3791);
        assert_eq!(r.next_u64(), 0xFBE0_7CFB_0C24_ED8C);
        assert_eq!(r.next_u64(), 0xB37D_9F60_0CD8_35B8);
    }

    #[test]
    fn same_seed_same_stream_bit_identical() {
        let mut a = Rng64::derive(7, 13);
        let mut b = Rng64::derive(7, 13);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_streams_are_decorrelated() {
        // Adjacent stream ids and adjacent seeds: outputs should agree on
        // ~half their bits, like independent draws.
        for (sa, ia, sb, ib) in [(1u64, 0u64, 1u64, 1u64), (1, 5, 2, 5), (0, 0, 0, 1)] {
            let mut a = Rng64::derive(sa, ia);
            let mut b = Rng64::derive(sb, ib);
            let mut agree = 0u32;
            let n = 256;
            for _ in 0..n {
                agree += (!(a.next_u64() ^ b.next_u64())).count_ones();
            }
            let frac = agree as f64 / (64.0 * n as f64);
            assert!((0.45..0.55).contains(&frac), "bit agreement {frac}");
        }
    }

    #[test]
    fn derive_nests_without_collisions() {
        // A two-level tree of 32×32 streams: all 1024 leaves distinct.
        let mut first = std::collections::HashSet::new();
        for i in 0..32u64 {
            let level1 = derive_seed(99, i);
            for j in 0..32u64 {
                let mut leaf = Rng64::derive(level1, j);
                assert!(first.insert(leaf.next_u64()), "collision at ({i},{j})");
            }
        }
    }

    #[test]
    fn f64_is_uniform_unit() {
        let mut r = Rng64::new(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }

    #[test]
    fn below_is_unbiased_and_in_range() {
        let mut r = Rng64::new(4);
        let mut counts = [0u32; 7];
        let n = 140_000;
        for _ in 0..n {
            counts[r.below(7) as usize] += 1;
        }
        for c in counts {
            let dev = (c as f64 - 20_000.0).abs() / 20_000.0;
            assert!(dev < 0.05, "bucket deviation {dev}");
        }
    }

    #[test]
    fn bernoulli_matches_probability() {
        let mut r = Rng64::new(5);
        let hits = (0..100_000).filter(|_| r.bernoulli(0.3)).count();
        assert!((hits as f64 / 1e5 - 0.3).abs() < 0.01, "hits {hits}");
    }

    #[test]
    fn gauss_moments() {
        let mut r = Rng64::new(6);
        let n = 200_000;
        let (mut m1, mut m2, mut m3, mut m4) = (0.0, 0.0, 0.0, 0.0);
        for _ in 0..n {
            let x = r.gauss();
            m1 += x;
            m2 += x * x;
            m3 += x * x * x;
            m4 += x * x * x * x;
        }
        let nf = n as f64;
        assert!((m1 / nf).abs() < 0.01, "mean {}", m1 / nf);
        assert!((m2 / nf - 1.0).abs() < 0.02, "variance {}", m2 / nf);
        assert!((m3 / nf).abs() < 0.05, "skew {}", m3 / nf);
        assert!((m4 / nf - 3.0).abs() < 0.1, "kurtosis {}", m4 / nf);
    }

    #[test]
    fn gauss_pair_components_are_independent() {
        let mut r = Rng64::new(7);
        let n = 100_000;
        let mut cov = 0.0;
        for _ in 0..n {
            let (x, y) = r.gauss_pair();
            cov += x * y;
        }
        assert!(
            (cov / n as f64).abs() < 0.01,
            "covariance {}",
            cov / n as f64
        );
    }

    #[test]
    fn fill_bytes_handles_ragged_lengths() {
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut a = Rng64::new(8);
            let mut buf = vec![0u8; len];
            a.fill_bytes(&mut buf);
            // Same seed re-fills identically.
            let mut b = Rng64::new(8);
            let mut buf2 = vec![0u8; len];
            b.fill_bytes(&mut buf2);
            assert_eq!(buf, buf2);
        }
        // Byte stream is not constant.
        let mut r = Rng64::new(9);
        let buf = r.bytes(64);
        assert!(buf.iter().any(|&b| b != buf[0]));
    }

    #[test]
    fn bit_and_byte_are_uniform() {
        let mut r = Rng64::new(10);
        let ones: u32 = (0..10_000).map(|_| r.bit() as u32).sum();
        assert!((4700..5300).contains(&ones), "ones {ones}");
        let mut sum = 0u64;
        for _ in 0..100_000 {
            sum += r.byte() as u64;
        }
        let mean = sum as f64 / 1e5;
        assert!((mean - 127.5).abs() < 1.0, "byte mean {mean}");
    }
}
