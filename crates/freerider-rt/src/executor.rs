//! The parallel trial executor: a std-only scoped-thread pool that fans a
//! list of independent work items out over all cores.
//!
//! Work distribution is a single shared atomic index — each worker claims
//! the next unclaimed item, so a slow item (a long sweep point near the
//! range edge) never stalls the others. Results carry their item index and
//! are reassembled in order, which makes the output **independent of
//! scheduling**: as long as each item seeds its own RNG stream (see
//! [`crate::Rng64::derive`]), the parallel result is bit-identical to the
//! serial one.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the worker count. `FREERIDER_THREADS=1`
/// forces the serial in-place path (no threads spawned at all).
pub const THREADS_ENV: &str = "FREERIDER_THREADS";

/// A fixed-width parallel map executor over independent work items.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::from_env()
    }
}

impl Executor {
    /// An executor with exactly `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
        }
    }

    /// An executor sized from the environment: [`THREADS_ENV`] if set to a
    /// positive integer, otherwise `std::thread::available_parallelism()`.
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Executor::new(threads)
    }

    /// A single-threaded executor (the serial reference path).
    pub fn serial() -> Self {
        Executor::new(1)
    }

    /// Number of workers this executor runs.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, returning results in item order.
    ///
    /// `f(index, &item)` must be a pure function of its arguments (seed any
    /// randomness from `index` via stream derivation) — then the output is
    /// bit-identical whatever the worker count. Panics in `f` propagate.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_with(items, || (), |i, t, _| f(i, t))
    }

    /// [`Executor::map`] with reusable per-worker state: `mk_state` builds
    /// one `S` per worker (one total on the serial path) and `f` receives
    /// `&mut S` alongside each item. This is how hot loops (the WiFi
    /// receiver's scratch arenas) reuse buffers across work items without
    /// any cross-item coupling — `f` must still be a pure function of
    /// `(index, &item)`, treating the state as scratch memory only, so
    /// results stay bit-identical for any worker count.
    pub fn map_with<T, R, S, M, F>(&self, items: &[T], mk_state: M, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        M: Fn() -> S + Sync,
        F: Fn(usize, &T, &mut S) -> R + Sync,
    {
        // Only deterministic quantities are counted here — recording the
        // worker count would break the cross-thread-count metric
        // equivalence this executor exists to provide.
        freerider_telemetry::count("rt.map.calls");
        freerider_telemetry::count_n("rt.map.items", items.len() as u64);
        let _span = freerider_telemetry::span("rt.map");
        // Flight-recorder scope for the whole fan-out. The id is a global
        // call counter: map() calls are issued serially by the
        // orchestration thread, so the numbering is deterministic for any
        // worker count. Per-packet scopes opened by the work items nest
        // inside (serial path) or live on their own worker threads
        // (parallel path) — either way their records are identical.
        let _scope = freerider_telemetry::trace::active().then(|| {
            use std::sync::atomic::AtomicU64;
            static MAP_CALLS: AtomicU64 = AtomicU64::new(0);
            let scope = freerider_telemetry::trace::packet(
                "rt.map",
                MAP_CALLS.fetch_add(1, Ordering::Relaxed), // lint: allow(o1) — monotonic trace-scope counter; no ordering dependency
            );
            freerider_telemetry::trace::value_u64("rt.map.items", items.len() as u64);
            scope
        });
        if self.threads == 1 || items.len() <= 1 {
            let mut state = mk_state();
            return items
                .iter()
                .enumerate()
                .map(|(i, t)| f(i, t, &mut state))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(items.len());
        let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut state = mk_state();
                        let mut out = Vec::new();
                        loop {
                            // lint: allow(o1) — RMW claims each index exactly once; scope join publishes results
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            out.push((i, f(i, &items[i], &mut state)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                // lint: allow(panic) — re-raising a worker panic is the intended behaviour
                .flat_map(|h| h.join().expect("executor worker panicked"))
                .collect()
        });
        indexed.sort_unstable_by_key(|&(i, _)| i);
        debug_assert_eq!(indexed.len(), items.len());
        indexed.into_iter().map(|(_, r)| r).collect()
    }

    /// Maps `f` over `items` and folds the ordered results with `reduce`,
    /// starting from `init`. The fold itself runs serially in item order,
    /// so any reduction (even a non-commutative one) is deterministic.
    pub fn map_reduce<T, R, A, F, G>(&self, items: &[T], f: F, init: A, reduce: G) -> A
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
        G: FnMut(A, R) -> A,
    {
        self.map(items, f).into_iter().fold(init, reduce)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 5, 16] {
            let out = Executor::new(threads).map(&items, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3 + 1
            });
            assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        // Each item runs a little Monte-Carlo off its own derived stream;
        // the f64 sums must match serial execution exactly, not just
        // approximately.
        let items: Vec<u64> = (0..64).collect();
        let run = |threads: usize| {
            Executor::new(threads).map(&items, |i, _| {
                let mut rng = Rng64::derive(0xFEED, i as u64);
                (0..500).map(|_| rng.gauss()).sum::<f64>()
            })
        };
        let serial = run(1);
        for threads in [2, 3, 8] {
            let par = run(threads);
            assert_eq!(serial.len(), par.len());
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits(), "not bit-identical");
            }
        }
    }

    #[test]
    fn map_reduce_folds_in_order() {
        let items: Vec<usize> = (0..40).collect();
        // Non-commutative fold: building a string of indices.
        let s = Executor::new(4).map_reduce(
            &items,
            |i, _| i,
            String::new(),
            |mut acc, i| {
                use std::fmt::Write;
                write!(acc, "{i},").unwrap();
                acc
            },
        );
        let expect: String = (0..40).map(|i| format!("{i},")).collect();
        assert_eq!(s, expect);
    }

    #[test]
    fn map_with_reuses_state_and_stays_deterministic() {
        // The per-worker state is scratch only: a buffer reused across
        // items must not change results, whatever the worker count.
        let items: Vec<u64> = (0..97).collect();
        let run = |threads: usize| {
            Executor::new(threads).map_with(&items, Vec::<f64>::new, |i, _, buf| {
                buf.clear();
                let mut rng = Rng64::derive(0xBEEF, i as u64);
                buf.extend((0..64).map(|_| rng.gauss()));
                buf.iter().sum::<f64>()
            })
        };
        let serial = run(1);
        for threads in [2, 4, 7] {
            for (a, b) in serial.iter().zip(&run(threads)) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let e = Executor::new(8);
        let empty: Vec<u32> = vec![];
        assert!(e.map(&empty, |_, &x| x).is_empty());
        assert_eq!(e.map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn thread_count_sources() {
        assert_eq!(Executor::new(0).threads(), 1);
        assert_eq!(Executor::serial().threads(), 1);
        assert!(Executor::from_env().threads() >= 1);
    }
}
