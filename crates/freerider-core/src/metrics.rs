//! Measurement accumulators: link statistics and empirical CDFs.

/// Aggregate statistics from a link run.
#[derive(Debug, Clone)]
pub struct LinkStats {
    /// Excitation packets transmitted.
    pub packets_sent: usize,
    /// Backscattered packets the receiver synchronised on and decoded.
    pub packets_decoded: usize,
    /// Excitation packets receiver 1 decoded with valid FCS (the
    /// productive link's health).
    pub productive_ok: usize,
    /// Tag bits embedded across all packets.
    pub tag_bits_sent: u64,
    /// Tag bits compared on decoded packets.
    pub tag_bits_compared: u64,
    /// Of those, bits decoded correctly.
    pub tag_bits_correct: u64,
    /// Link-budget RSSI, dBm.
    pub budget_rssi_dbm: f64,
    /// Mean receiver-reported RSSI over decoded packets, dBm.
    pub measured_rssi_dbm: f64,
    rssi_acc: f64,
    rssi_n: usize,
    /// Total excitation airtime, seconds.
    pub airtime_s: f64,
}

impl LinkStats {
    /// Creates an empty accumulator for a link with the given budget RSSI.
    pub fn new(budget_rssi_dbm: f64) -> Self {
        LinkStats {
            packets_sent: 0,
            packets_decoded: 0,
            productive_ok: 0,
            tag_bits_sent: 0,
            tag_bits_compared: 0,
            tag_bits_correct: 0,
            budget_rssi_dbm,
            measured_rssi_dbm: f64::NAN,
            rssi_acc: 0.0,
            rssi_n: 0,
            airtime_s: 0.0,
        }
    }

    /// Records one excitation packet's airtime.
    pub fn add_airtime(&mut self, s: f64) {
        self.airtime_s += s;
        self.packets_sent += 1;
    }

    /// Records the productive (receiver 1) outcome.
    pub fn note_productive(&mut self, fcs_ok: bool) {
        if fcs_ok {
            self.productive_ok += 1;
        }
    }

    /// Records tag bits embedded on a packet.
    pub fn note_sent(&mut self, bits: usize) {
        self.tag_bits_sent += bits as u64;
    }

    /// Records a decoded backscatter packet: compares sent vs decoded tag
    /// bits over their common prefix.
    pub fn note_decoded(&mut self, sent: &[u8], decoded: &[u8]) {
        self.packets_decoded += 1;
        let n = sent.len().min(decoded.len());
        self.tag_bits_compared += n as u64;
        self.tag_bits_correct += sent[..n]
            .iter()
            .zip(&decoded[..n])
            .filter(|(a, b)| (**a & 1) == (**b & 1))
            .count() as u64;
    }

    /// Records a receiver RSSI observation.
    pub fn note_measured_rssi(&mut self, rssi_dbm: f64) {
        self.rssi_acc += rssi_dbm;
        self.rssi_n += 1;
        self.measured_rssi_dbm = self.rssi_acc / self.rssi_n as f64;
    }

    /// Records a lost backscatter packet (no sync / undecodable).
    pub fn note_lost(&mut self) {}

    /// Tag throughput in bits/second: correctly decoded tag bits over the
    /// total excitation airtime (back-to-back transmission, as in §4.2).
    pub fn throughput_bps(&self) -> f64 {
        if self.airtime_s <= 0.0 {
            return 0.0;
        }
        self.tag_bits_correct as f64 / self.airtime_s
    }

    /// Tag-bit error rate over decoded packets (the paper's Fig. 10b
    /// metric: conditioned on the packet being received).
    pub fn ber(&self) -> f64 {
        if self.tag_bits_compared == 0 {
            return 1.0;
        }
        1.0 - self.tag_bits_correct as f64 / self.tag_bits_compared as f64
    }

    /// Packet reception rate of the backscatter path.
    pub fn prr(&self) -> f64 {
        if self.packets_sent == 0 {
            return 0.0;
        }
        self.packets_decoded as f64 / self.packets_sent as f64
    }

    /// Merges another accumulator in, as if both runs' packets had been
    /// recorded into one. All counts and the RSSI average combine exactly,
    /// so merging per-worker accumulators is associative and yields the
    /// same statistics regardless of how the packets were partitioned.
    /// `budget_rssi_dbm` keeps `self`'s value (merging only makes sense
    /// across runs of the same link).
    pub fn merge(&mut self, other: &LinkStats) {
        self.packets_sent += other.packets_sent;
        self.packets_decoded += other.packets_decoded;
        self.productive_ok += other.productive_ok;
        self.tag_bits_sent += other.tag_bits_sent;
        self.tag_bits_compared += other.tag_bits_compared;
        self.tag_bits_correct += other.tag_bits_correct;
        self.airtime_s += other.airtime_s;
        self.rssi_acc += other.rssi_acc;
        self.rssi_n += other.rssi_n;
        self.measured_rssi_dbm = if self.rssi_n == 0 {
            f64::NAN
        } else {
            self.rssi_acc / self.rssi_n as f64
        };
    }
}

/// An empirical CDF accumulator (used for the Figs. 15/16 coexistence
/// plots).
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl Cdf {
    /// Creates an empty CDF.
    pub fn new() -> Self {
        Cdf::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_by(|a, b| a.total_cmp(b));
            self.sorted = true;
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank; NaN when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.ensure_sorted();
        let idx =
            ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len()) - 1;
        self.samples[idx]
    }

    /// The median.
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// Empirical `P(X ≤ x)`.
    pub fn prob_le(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.ensure_sorted();
        let n = self.samples.partition_point(|&s| s <= x);
        n as f64 / self.samples.len() as f64
    }

    /// Merges another CDF's samples in. Quantiles of the merged CDF equal
    /// those of a single accumulator fed all samples, whatever the merge
    /// order (the samples are re-sorted on the next query).
    pub fn merge(&mut self, other: &Cdf) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// `(value, cumulative probability)` pairs for plotting.
    pub fn points(&mut self) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let n = self.samples.len();
        self.samples
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_counts_only_correct_bits() {
        let mut s = LinkStats::new(-70.0);
        s.add_airtime(1.0);
        s.note_sent(100);
        s.note_decoded(&[1; 100], &{
            let mut d = vec![1u8; 100];
            for b in d[..10].iter_mut() {
                *b = 0;
            }
            d
        });
        assert!((s.throughput_bps() - 90.0).abs() < 1e-9);
        assert!((s.ber() - 0.1).abs() < 1e-9);
        assert!((s.prr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn undetected_packets_zero_throughput() {
        let mut s = LinkStats::new(-95.0);
        s.add_airtime(0.5);
        s.note_sent(50);
        s.note_lost();
        assert_eq!(s.throughput_bps(), 0.0);
        assert_eq!(s.ber(), 1.0);
        assert_eq!(s.prr(), 0.0);
    }

    #[test]
    fn mismatched_lengths_compare_common_prefix() {
        let mut s = LinkStats::new(-70.0);
        s.add_airtime(1.0);
        s.note_sent(10);
        s.note_decoded(&[1, 0, 1, 0, 1, 0, 1, 0, 1, 0], &[1, 0, 1, 0]);
        assert_eq!(s.tag_bits_compared, 4);
        assert_eq!(s.tag_bits_correct, 4);
    }

    #[test]
    fn cdf_quantiles() {
        let mut c = Cdf::new();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            c.push(x);
        }
        assert_eq!(c.median(), 3.0);
        assert_eq!(c.quantile(0.2), 1.0);
        assert_eq!(c.quantile(1.0), 5.0);
        assert!((c.prob_le(3.0) - 0.6).abs() < 1e-12);
        assert_eq!(c.prob_le(0.0), 0.0);
        assert_eq!(c.prob_le(10.0), 1.0);
    }

    #[test]
    fn cdf_points_are_monotone() {
        let mut c = Cdf::new();
        for i in 0..50 {
            c.push(((i * 37) % 11) as f64);
        }
        let pts = c.points();
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cdf_is_nan() {
        let mut c = Cdf::new();
        assert!(c.median().is_nan());
        assert!(c.prob_le(1.0).is_nan());
    }

    #[test]
    fn empty_link_stats() {
        let s = LinkStats::new(-70.0);
        assert_eq!(s.throughput_bps(), 0.0);
        assert_eq!(s.ber(), 1.0);
        assert_eq!(s.prr(), 0.0);
        assert!(s.measured_rssi_dbm.is_nan());
    }

    #[test]
    fn single_sample_paths() {
        let mut s = LinkStats::new(-70.0);
        s.add_airtime(2.0);
        s.note_sent(1);
        s.note_decoded(&[1], &[1]);
        s.note_measured_rssi(-72.5);
        assert!((s.throughput_bps() - 0.5).abs() < 1e-12);
        assert_eq!(s.ber(), 0.0);
        assert!((s.measured_rssi_dbm - -72.5).abs() < 1e-12);

        let mut c = Cdf::new();
        c.push(7.0);
        assert_eq!(c.median(), 7.0);
        assert_eq!(c.quantile(0.0), 7.0);
        assert_eq!(c.quantile(1.0), 7.0);
        assert_eq!(c.points(), vec![(7.0, 1.0)]);
    }

    #[test]
    fn merge_preserves_nan_rssi_until_a_measurement_exists() {
        // Neither side measured RSSI: the merged average must stay NaN,
        // not become 0 (which would read as an absurdly strong link).
        let mut a = LinkStats::new(-70.0);
        let b = LinkStats::new(-70.0);
        a.merge(&b);
        assert!(a.measured_rssi_dbm.is_nan());
        // One side has a measurement: the merge adopts it exactly.
        let mut c = LinkStats::new(-70.0);
        c.note_measured_rssi(-80.0);
        a.merge(&c);
        assert!((a.measured_rssi_dbm - -80.0).abs() < 1e-12);
    }

    #[test]
    fn link_stats_merge_matches_single_accumulator() {
        let feed = |s: &mut LinkStats, offset: u64| {
            s.add_airtime(1.0);
            s.note_sent(8);
            let sent: Vec<u8> = (0..8).map(|k| ((k + offset) % 2) as u8).collect();
            let mut dec = sent.clone();
            dec[0] ^= 1;
            s.note_decoded(&sent, &dec);
            s.note_measured_rssi(-70.0 - offset as f64);
            s.note_productive(offset.is_multiple_of(2));
        };
        let mut whole = LinkStats::new(-60.0);
        for k in 0..6 {
            feed(&mut whole, k);
        }
        // Partition the same packets 3 ways and merge in two different
        // associations: (a+b)+c and a+(b+c).
        let mut parts: Vec<LinkStats> = (0..3).map(|_| LinkStats::new(-60.0)).collect();
        for k in 0..6 {
            feed(&mut parts[(k / 2) as usize], k);
        }
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        let mut bc = parts[1].clone();
        bc.merge(&parts[2]);
        let mut right = parts[0].clone();
        right.merge(&bc);
        for m in [&left, &right] {
            assert_eq!(m.packets_sent, whole.packets_sent);
            assert_eq!(m.packets_decoded, whole.packets_decoded);
            assert_eq!(m.productive_ok, whole.productive_ok);
            assert_eq!(m.tag_bits_compared, whole.tag_bits_compared);
            assert_eq!(m.tag_bits_correct, whole.tag_bits_correct);
            assert!((m.airtime_s - whole.airtime_s).abs() < 1e-12);
            assert!((m.measured_rssi_dbm - whole.measured_rssi_dbm).abs() < 1e-9);
            assert!((m.ber() - whole.ber()).abs() < 1e-12);
        }
    }

    #[test]
    fn cdf_merge_matches_single_accumulator() {
        let samples: Vec<f64> = (0..90).map(|k| ((k * 61) % 23) as f64).collect();
        let mut whole = Cdf::new();
        for &x in &samples {
            whole.push(x);
        }
        let mut parts: Vec<Cdf> = (0..3).map(|_| Cdf::new()).collect();
        for (k, &x) in samples.iter().enumerate() {
            parts[k % 3].push(x);
        }
        // (a+b)+c vs a+(b+c): identical quantiles, equal to the unmerged
        // accumulator's.
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        let mut bc = parts[1].clone();
        bc.merge(&parts[2]);
        let mut right = parts[0].clone();
        right.merge(&bc);
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            assert_eq!(left.quantile(q), whole.quantile(q), "q={q}");
            assert_eq!(right.quantile(q), whole.quantile(q), "q={q}");
        }
        assert_eq!(left.len(), whole.len());
        // Merging an empty CDF is the identity.
        let before: Vec<(f64, f64)> = left.points();
        left.merge(&Cdf::new());
        assert_eq!(left.points(), before);
    }
}
