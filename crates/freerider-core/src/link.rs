//! End-to-end single-tag backscatter links.
//!
//! Each link wires the full pipeline of Fig. 1 of the paper:
//!
//! ```text
//! excitation TX ──(direct channel)──► receiver 1  (original decode)
//!        │
//!        └─(TX→tag channel)─► tag: codeword translation + freq shift
//!                 └─(tag→RX channel)─► receiver 2  (backscatter decode)
//!                                          │
//!                orig bits ⊕ backscatter bits ──► tag data
//! ```
//!
//! The excitation radio keeps doing *productive* communication: the link
//! verifies receiver 1 still gets FCS-valid packets while the tag rides
//! on them.

use crate::decoder;
use crate::metrics::LinkStats;
use freerider_channel::channel::Channel;
pub use freerider_channel::channel::{Fading, Multipath};
use freerider_channel::BackscatterBudget;
use freerider_rt::{derive_seed, stream, Rng64};
use freerider_tag::translator::{FskTranslator, PhaseTranslator};
use freerider_telemetry::trace;

/// Configuration shared by the three technology links.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// The calibrated link budget (includes deployment geometry model).
    pub budget: BackscatterBudget,
    /// Excitation-transmitter-to-tag distance, metres (1 m in §4.1).
    pub d_tx_tag_m: f64,
    /// Tag-to-receiver distance, metres (the swept variable).
    pub d_tag_rx_m: f64,
    /// Excitation payload length, bytes.
    pub payload_len: usize,
    /// Packets to run.
    pub packets: usize,
    /// Fading on the backscatter path.
    pub fading: Fading,
    /// Frequency-selective multipath on the backscatter path (`None` =
    /// flat). The experiment presets enable the calibrated per-technology
    /// profiles; unit tests keep the flat channel for determinism.
    pub multipath: Option<Multipath>,
    /// Oscillator phase-noise random walk, radians per √sample.
    pub phase_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl LinkConfig {
    /// The paper's default geometry: tag 1 m from the transmitter.
    pub fn new(budget: BackscatterBudget, d_tag_rx_m: f64, seed: u64) -> Self {
        LinkConfig {
            budget,
            d_tx_tag_m: 1.0,
            d_tag_rx_m,
            payload_len: 1000,
            packets: 20,
            fading: Fading::Rician { k_db: 9.0 },
            multipath: None,
            phase_noise: 0.0,
            seed,
        }
    }
}

fn random_bits(n: usize, rng: &mut Rng64) -> Vec<u8> {
    rng.bits(n)
}

fn random_bytes(n: usize, rng: &mut Rng64) -> Vec<u8> {
    rng.bytes(n)
}

/// RSSI at which receiver 1 (co-located with the excitation TX) hears the
/// original signal — strong by construction.
const REFERENCE_RSSI_DBM: f64 = -45.0;

/// The 802.11g/n backscatter link.
#[derive(Debug, Clone)]
pub struct WifiLink {
    /// Link configuration.
    pub config: LinkConfig,
    /// The tag's phase translator.
    pub translator: PhaseTranslator,
    /// Tag data encoding: binary Δθ=180° (Eq. 4) or quaternary Δθ=90°
    /// (Eq. 5).
    pub scheme: WifiTagScheme,
    /// Excitation MCS. The paper's evaluation runs at 6 Mbps BPSK; the
    /// binary π translation is equally a valid codeword translation on
    /// QPSK (both bits of a symbol complement), so 12/18 Mbps excitation
    /// works too. 16/64-QAM excitation does *not* XOR-decode (a π flip
    /// complements only the sign bits — see
    /// `freerider_wifi::mapping::tests::pi_rotation_flips_only_sign_bits_of_qam16`).
    pub excitation_rate: freerider_wifi::Mcs,
    /// Backscatter-receiver configuration (the `ablation-pilots` bench
    /// sets `phase_tracking` to `FullPilot` here).
    pub rx_config: freerider_wifi::RxConfig,
}

/// The two tag-data encodings of §2.3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WifiTagScheme {
    /// Eq. 4: Δθ = 180°, one tag bit per window, decoded by bit XOR.
    Binary,
    /// Eq. 5: Δθ = 90°, two tag bits per window, decoded from the
    /// equalised constellations.
    Quaternary,
}

/// Reusable working memory for one [`WifiLink`] worker: one receive
/// arena per receiver, so both decoded copies of a packet stay live at
/// once while everything underneath is reused packet to packet.
#[derive(Debug, Clone, Default)]
pub struct WifiLinkScratch {
    /// Arena for receiver 1 (the productive/reference decode).
    reference: freerider_wifi::RxScratch,
    /// Arena for receiver 2 (the backscatter decode).
    backscatter: freerider_wifi::RxScratch,
}

impl WifiLinkScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

impl WifiLink {
    /// Creates the paper's standard WiFi link (6 Mbps excitation, binary
    /// 180° translation over 4-symbol windows).
    pub fn new(config: LinkConfig) -> Self {
        WifiLink {
            config,
            translator: PhaseTranslator::wifi_binary(),
            scheme: WifiTagScheme::Binary,
            excitation_rate: freerider_wifi::Mcs::Bpsk12,
            rx_config: freerider_wifi::RxConfig::default(),
        }
    }

    /// Creates the higher-rate quaternary link (Eq. 5): 2 tag bits per
    /// 4-symbol window ⇒ ~125 kbps in-packet.
    ///
    /// Quaternary translation is only a *valid codeword translation* when
    /// π/2 is a symmetry of the excitation constellation, so this link
    /// excites at 12 Mbps QPSK. The receiver's decision-directed tracker
    /// (fourth-power on QPSK, blind mod π/2) then passes the tag's
    /// rotations through while still tracking drift — robust even on long
    /// packets, unlike `PhaseTracking::Off`.
    pub fn new_quaternary(config: LinkConfig) -> Self {
        WifiLink {
            config,
            translator: PhaseTranslator::wifi_quaternary(),
            scheme: WifiTagScheme::Quaternary,
            excitation_rate: freerider_wifi::Mcs::Qpsk12,
            rx_config: freerider_wifi::RxConfig::default(),
        }
    }

    /// Runs the link, returning aggregate statistics.
    pub fn run(&self) -> LinkStats {
        self.run_with(&mut WifiLinkScratch::new())
    }

    /// [`WifiLink::run`] with caller-provided receive arenas — the
    /// allocation-lean form sweeps thread through per-worker executor
    /// state. Statistics are bit-identical to [`WifiLink::run`].
    pub fn run_with(&self, scratch: &mut WifiLinkScratch) -> LinkStats {
        use freerider_wifi::{Mpdu, Receiver, RxConfig, RxError, Transmitter, TxConfig};
        let cfg = &self.config;
        let mut rng = Rng64::derive(cfg.seed, stream::PAYLOAD);
        let tx = Transmitter::new(TxConfig {
            rate: self.excitation_rate,
            ..TxConfig::default()
        });
        let rx_ref = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..self.rx_config
        });
        let rx_back = Receiver::new(self.rx_config);
        let n_dbps = tx.config().rate.data_bits_per_symbol();

        let rssi = cfg.budget.rssi_dbm(cfg.d_tx_tag_m, cfg.d_tag_rx_m);
        let floor = cfg.budget.noise_floor_dbm;
        let mut ref_channel = Channel::new(
            REFERENCE_RSSI_DBM,
            floor,
            Fading::None,
            derive_seed(cfg.seed, stream::REF_CHANNEL),
        );
        let mut back_channel = Channel::new(
            rssi,
            floor,
            cfg.fading,
            derive_seed(cfg.seed, stream::BACK_CHANNEL),
        )
        .with_phase_noise(cfg.phase_noise);
        if let Some(mp) = cfg.multipath {
            back_channel = back_channel.with_multipath(mp);
        }

        let mut stats = LinkStats::new(rssi);
        if !cfg.budget.tag_operational(cfg.d_tx_tag_m) {
            // The excitation cannot power the tag's front end (§4.3's
            // TX-to-tag bound): nothing is backscattered at all.
            return stats;
        }
        // Clamp so header + payload + FCS never exceeds the 4095-byte PSDU.
        let payload_len = cfg.payload_len.min(
            freerider_wifi::plcp::MAX_PSDU_LEN
                - freerider_wifi::frame::HEADER_LEN
                - freerider_wifi::frame::FCS_LEN,
        );
        for i in 0..cfg.packets {
            // One flight-recorder scope per excitation packet; the id is
            // derived from (seed, index) so it is worker-count independent.
            let _pkt = trace::packet("wifi.link", derive_seed(cfg.seed, i as u64));
            let frame = Mpdu::build(
                freerider_wifi::frame::MacAddr::local(1),
                freerider_wifi::frame::MacAddr::local(2),
                rng.below(4096) as u16,
                &random_bytes(payload_len, &mut rng),
            );
            // lint: allow(panic) — payload_len clamped above so the PSDU fits
            let wave = tx.transmit(frame.as_bytes()).expect("payload fits");
            stats.add_airtime(wave.len() as f64 / freerider_wifi::SAMPLE_RATE);

            // Receiver 1: the productive link.
            let ref_rx = rx_ref.receive_with(&ref_channel.propagate(&wave), &mut scratch.reference);
            let original = match ref_rx {
                Ok(p) => {
                    if !p.fcs_valid {
                        // Only the *reference* copy is expected to pass FCS;
                        // the backscattered copy fails it by design.
                        trace::fail("wifi.ref.fcs_bad");
                    }
                    stats.note_productive(p.fcs_valid);
                    p
                }
                Err(_) => {
                    trace::fail("wifi.ref.rx_error");
                    stats.note_productive(false);
                    continue;
                }
            };

            // The tag.
            let tag_bits = random_bits(self.translator.capacity(wave.len()), &mut rng);
            let (tagged, consumed) = self.translator.translate(&wave, &tag_bits);
            debug_assert_eq!(consumed, tag_bits.len());
            stats.note_sent(tag_bits.len());

            // Receiver 2: the backscatter path.
            match rx_back.receive_with(
                &back_channel.propagate_padded(&tagged, 200),
                &mut scratch.backscatter,
            ) {
                Ok(pkt) => {
                    stats.note_measured_rssi(pkt.rssi_dbm);
                    let decoded = match self.scheme {
                        WifiTagScheme::Binary => decoder::decode_wifi_binary(
                            &original.data_bits,
                            &pkt.data_bits,
                            n_dbps,
                            self.translator.symbols_per_step,
                            1,
                        ),
                        WifiTagScheme::Quaternary => decoder::decode_wifi_quaternary(
                            &original.equalized,
                            &pkt.equalized,
                            self.translator.symbols_per_step,
                            1,
                            self.translator.delta_theta,
                        ),
                    };
                    stats.note_decoded(&tag_bits, &decoded);
                }
                Err(e) => {
                    trace::fail(match e {
                        RxError::NoPreamble => "wifi.back.no_preamble",
                        RxError::BadSignal(_) => "wifi.back.bad_signal",
                        RxError::Truncated => "wifi.back.truncated",
                    });
                    stats.note_lost();
                }
            }
        }
        stats
    }
}

/// The ZigBee backscatter link.
#[derive(Debug, Clone)]
pub struct ZigbeeLink {
    /// Link configuration.
    pub config: LinkConfig,
    /// The tag's phase translator.
    pub translator: PhaseTranslator,
    /// Backscatter-receiver configuration.
    pub rx_config: freerider_zigbee::RxConfig,
}

impl ZigbeeLink {
    /// Creates the paper's standard ZigBee link (180° translation over
    /// 4-symbol windows).
    pub fn new(config: LinkConfig) -> Self {
        ZigbeeLink {
            config,
            translator: PhaseTranslator::zigbee_binary(),
            rx_config: freerider_zigbee::RxConfig::default(),
        }
    }

    /// Runs the link.
    pub fn run(&self) -> LinkStats {
        use freerider_zigbee::{Receiver, RxConfig, RxError, Transmitter};
        let cfg = &self.config;
        let mut rng = Rng64::derive(cfg.seed, stream::PAYLOAD);
        let tx = Transmitter::new();
        let rx_ref = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        let rx_back = Receiver::new(self.rx_config);

        let rssi = cfg.budget.rssi_dbm(cfg.d_tx_tag_m, cfg.d_tag_rx_m);
        let floor = cfg.budget.noise_floor_dbm;
        let mut ref_channel = Channel::new(
            REFERENCE_RSSI_DBM,
            floor,
            Fading::None,
            derive_seed(cfg.seed, stream::REF_CHANNEL),
        );
        let mut back_channel = Channel::new(
            rssi,
            floor,
            cfg.fading,
            derive_seed(cfg.seed, stream::BACK_CHANNEL),
        )
        .with_phase_noise(cfg.phase_noise);
        if let Some(mp) = cfg.multipath {
            back_channel = back_channel.with_multipath(mp);
        }

        let payload_len = cfg.payload_len.min(125);
        let mut stats = LinkStats::new(rssi);
        if !cfg.budget.tag_operational(cfg.d_tx_tag_m) {
            // The excitation cannot power the tag's front end (§4.3's
            // TX-to-tag bound): nothing is backscattered at all.
            return stats;
        }
        for i in 0..cfg.packets {
            let _pkt = trace::packet("zigbee.link", derive_seed(cfg.seed, i as u64));
            let wave = tx
                .transmit(&random_bytes(payload_len, &mut rng))
                .expect("payload fits"); // lint: allow(panic) — payload_len clamped to the PHY maximum
            stats.add_airtime(wave.len() as f64 / freerider_zigbee::SAMPLE_RATE);

            let original = match rx_ref.receive(&ref_channel.propagate(&wave)) {
                Ok(p) => {
                    if !p.fcs_valid {
                        trace::fail("zigbee.ref.fcs_bad");
                    }
                    stats.note_productive(p.fcs_valid);
                    p
                }
                Err(_) => {
                    trace::fail("zigbee.ref.rx_error");
                    stats.note_productive(false);
                    continue;
                }
            };

            let tag_bits = random_bits(self.translator.capacity(wave.len()), &mut rng);
            let (tagged, consumed) = self.translator.translate(&wave, &tag_bits);
            debug_assert_eq!(consumed, tag_bits.len());
            stats.note_sent(tag_bits.len());

            match rx_back.receive(&back_channel.propagate_padded(&tagged, 150)) {
                Ok(pkt) => {
                    stats.note_measured_rssi(pkt.rssi_dbm);
                    let decoded = decoder::decode_zigbee_binary(
                        &original.psdu_symbols,
                        &pkt.psdu_symbols,
                        self.translator.symbols_per_step,
                    );
                    stats.note_decoded(&tag_bits, &decoded);
                }
                Err(e) => {
                    trace::fail(match e {
                        RxError::NoPreamble => "zigbee.back.no_preamble",
                        RxError::NoSfd => "zigbee.back.no_sfd",
                        RxError::Truncated => "zigbee.back.truncated",
                    });
                    stats.note_lost();
                }
            }
        }
        stats
    }
}

/// The Bluetooth backscatter link.
#[derive(Debug, Clone)]
pub struct BleLink {
    /// Link configuration.
    pub config: LinkConfig,
    /// The tag's FSK translator.
    pub translator: FskTranslator,
    /// Backscatter-receiver configuration (the `ablation-shifter` bench
    /// disables `channel_filter` here to expose the mirror sideband).
    pub rx_config: freerider_ble::RxConfig,
}

impl BleLink {
    /// Creates the paper's standard Bluetooth link (Δf = 500 kHz toggling
    /// over 16-bit windows).
    pub fn new(config: LinkConfig) -> Self {
        BleLink {
            config,
            translator: FskTranslator::ble(),
            rx_config: freerider_ble::RxConfig::default(),
        }
    }

    /// Runs the link.
    pub fn run(&self) -> LinkStats {
        use freerider_ble::{Receiver, RxConfig, RxError, Transmitter};
        let cfg = &self.config;
        let mut rng = Rng64::derive(cfg.seed, stream::PAYLOAD);
        let tx = Transmitter::new();
        let rx_ref = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        let rx_back = Receiver::new(self.rx_config);

        let rssi = cfg.budget.rssi_dbm(cfg.d_tx_tag_m, cfg.d_tag_rx_m);
        let floor = cfg.budget.noise_floor_dbm;
        let mut ref_channel = Channel::new(
            REFERENCE_RSSI_DBM,
            floor,
            Fading::None,
            derive_seed(cfg.seed, stream::REF_CHANNEL),
        );
        let mut back_channel = Channel::new(
            rssi,
            floor,
            cfg.fading,
            derive_seed(cfg.seed, stream::BACK_CHANNEL),
        )
        .with_phase_noise(cfg.phase_noise);
        if let Some(mp) = cfg.multipath {
            back_channel = back_channel.with_multipath(mp);
        }

        let payload_len = cfg.payload_len.min(37);
        let mut stats = LinkStats::new(rssi);
        if !cfg.budget.tag_operational(cfg.d_tx_tag_m) {
            // The excitation cannot power the tag's front end (§4.3's
            // TX-to-tag bound): nothing is backscattered at all.
            return stats;
        }
        for i in 0..cfg.packets {
            let _pkt = trace::packet("ble.link", derive_seed(cfg.seed, i as u64));
            let wave = tx
                .transmit(&random_bytes(payload_len, &mut rng))
                .expect("payload fits"); // lint: allow(panic) — payload_len clamped to the PHY maximum
            stats.add_airtime(wave.len() as f64 / freerider_ble::SAMPLE_RATE);

            let original = match rx_ref.receive(&ref_channel.propagate(&wave)) {
                Ok(p) => {
                    if !p.crc_valid {
                        trace::fail("ble.ref.crc_bad");
                    }
                    stats.note_productive(p.crc_valid);
                    p
                }
                Err(_) => {
                    trace::fail("ble.ref.rx_error");
                    stats.note_productive(false);
                    continue;
                }
            };

            let tag_bits = random_bits(self.translator.capacity(wave.len()), &mut rng);
            let (tagged, consumed) = self.translator.translate(&wave, &tag_bits);
            debug_assert_eq!(consumed, tag_bits.len());
            stats.note_sent(tag_bits.len());

            match rx_back.receive(&back_channel.propagate_padded(&tagged, 200)) {
                Ok(pkt) => {
                    stats.note_measured_rssi(pkt.rssi_dbm);
                    let decoded = decoder::decode_ble_binary(
                        &original.pdu_bits,
                        &pkt.pdu_bits,
                        self.translator.bits_per_tag_bit,
                        16,
                    );
                    stats.note_decoded(&tag_bits, &decoded);
                }
                Err(e) => {
                    trace::fail(match e {
                        RxError::NoSync => "ble.back.no_sync",
                        RxError::Truncated(_) => "ble.back.truncated",
                    });
                    stats.note_lost();
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wifi_cfg(d: f64) -> LinkConfig {
        LinkConfig {
            payload_len: 200,
            packets: 4,
            fading: Fading::None,
            ..LinkConfig::new(BackscatterBudget::wifi_los(), d, 7)
        }
    }

    #[test]
    fn wifi_link_close_range_is_error_free() {
        let stats = WifiLink::new(wifi_cfg(2.0)).run();
        assert_eq!(stats.packets_sent, 4);
        assert_eq!(stats.packets_decoded, 4);
        assert_eq!(
            stats.productive_ok, 4,
            "excitation link must stay productive"
        );
        assert!(stats.tag_bits_sent > 0);
        assert!(stats.ber() < 1e-2, "BER {}", stats.ber());
        // ~60 kbps at close range (Fig. 10a).
        let t = stats.throughput_bps();
        assert!((50e3..66e3).contains(&t), "throughput {t}");
    }

    #[test]
    fn wifi_link_dies_past_max_range() {
        let stats = WifiLink::new(wifi_cfg(60.0)).run();
        assert_eq!(stats.packets_decoded, 0, "60 m is past the 42 m cliff");
        assert_eq!(stats.throughput_bps(), 0.0);
    }

    #[test]
    fn zigbee_link_close_range_works() {
        let cfg = LinkConfig {
            payload_len: 60,
            packets: 4,
            fading: Fading::None,
            ..LinkConfig::new(BackscatterBudget::zigbee_los(), 3.0, 9)
        };
        let stats = ZigbeeLink::new(cfg).run();
        assert_eq!(stats.packets_decoded, 4);
        assert!(stats.ber() < 0.12, "BER {}", stats.ber());
        let t = stats.throughput_bps();
        assert!((10e3..17e3).contains(&t), "throughput {t}");
    }

    #[test]
    fn ble_link_close_range_works() {
        let cfg = LinkConfig {
            payload_len: 37,
            packets: 6,
            fading: Fading::None,
            ..LinkConfig::new(BackscatterBudget::ble_los(), 2.0, 11)
        };
        let stats = BleLink::new(cfg).run();
        assert_eq!(stats.packets_decoded, 6);
        assert!(stats.ber() < 0.12, "BER {}", stats.ber());
        let t = stats.throughput_bps();
        assert!((40e3..60e3).contains(&t), "throughput {t}");
    }
}

#[cfg(test)]
mod rate_tests {
    use super::*;
    use freerider_wifi::Mcs;

    fn cfg(seed: u64) -> LinkConfig {
        LinkConfig {
            payload_len: 300,
            packets: 3,
            fading: Fading::None,
            ..LinkConfig::new(BackscatterBudget::wifi_los(), 3.0, seed)
        }
    }

    #[test]
    fn qpsk_excitation_carries_tag_data_too() {
        // §2.2.1: "FreeRider does codeword translation regardless of the
        // data transmitted by these radios" — and regardless of whether
        // the symbols are BPSK or QPSK (π flips complement both bits).
        for rate in [Mcs::Qpsk12, Mcs::Qpsk34] {
            let mut link = WifiLink::new(cfg(71));
            link.excitation_rate = rate;
            let s = link.run();
            assert_eq!(s.packets_decoded, 3, "{rate:?}");
            assert_eq!(s.ber(), 0.0, "{rate:?} BER {}", s.ber());
            assert_eq!(s.productive_ok, 3, "{rate:?} productive");
        }
    }

    #[test]
    fn qam_excitation_breaks_xor_decoding() {
        // The flip complements only the sign bits of 16-QAM symbols: the
        // Viterbi decoder no longer sees complement-runs and the XOR
        // stream is garbage — the structural reason the paper evaluates
        // at 6 Mbps.
        let mut link = WifiLink::new(LinkConfig {
            packets: 8,
            ..cfg(72)
        });
        link.excitation_rate = Mcs::Qam16Half;
        let s = link.run();
        assert_eq!(s.productive_ok, 8, "excitation itself still works");
        assert!(s.ber() > 0.2, "QAM tag BER should collapse: {}", s.ber());
    }

    #[test]
    fn faster_excitation_does_not_change_tag_rate() {
        // The tag rate is set by the OFDM symbol clock, not the bit rate.
        let mut a = WifiLink::new(cfg(73));
        a.excitation_rate = Mcs::Bpsk12;
        let mut b = WifiLink::new(cfg(73));
        b.excitation_rate = Mcs::Qpsk12;
        let sa = a.run();
        let sb = b.run();
        // Same payload → half the symbols at QPSK → roughly half the tag
        // bits per packet, but the per-second rate during a packet is
        // identical (62.5 kbps); throughput over airtime matches closely.
        assert!((sa.throughput_bps() - sb.throughput_bps()).abs() < 6e3);
    }
}

#[cfg(test)]
mod quaternary_tests {
    use super::*;

    #[test]
    fn quaternary_on_qpsk_survives_long_packets() {
        // The fourth-power tracker removes drift mod π/2 while passing the
        // tag's Eq. 5 rotations — so even 1000-byte excitation packets
        // (340+ OFDM symbols of accumulated residual CFO) decode cleanly.
        let cfg = LinkConfig {
            payload_len: 1000,
            packets: 3,
            fading: Fading::None,
            ..LinkConfig::new(BackscatterBudget::wifi_los(), 4.0, 81)
        };
        let s = WifiLink::new_quaternary(cfg).run();
        assert_eq!(s.packets_decoded, 3);
        assert_eq!(s.productive_ok, 3, "QPSK excitation stays productive");
        assert!(s.ber() < 5e-3, "BER {}", s.ber());
        // ~125 kbps in-packet at QPSK: half the symbols of a BPSK packet
        // carry the same payload, so delivered rate stays ≈ 120 kbps.
        let t = s.throughput_bps();
        assert!((100e3..130e3).contains(&t), "throughput {t}");
    }
}
