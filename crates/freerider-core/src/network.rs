//! The multi-tag FreeRider network (Fig. 17), built from *real* parts:
//! actual [`freerider_tag::Tag`] state machines receiving actual
//! [`freerider_mac::messages::ControlMessage`]s over the PLM pulse
//! channel, coordinated by the adaptive [`freerider_mac::Coordinator`].
//!
//! Where [`freerider_mac::sim`] is the fast calibrated model used for the
//! Fig. 17 sweeps, this module is the integration-level system: every
//! control message is PLM-encoded and decoded by every tag's pulse
//! decoder, and every delivered slot drains a tag's queue through its
//! codeword translator on real IQ samples.

use freerider_dsp::Complex;
use freerider_mac::aloha::{run_round, summarize, SlotOutcome};
use freerider_mac::fairness::jain_index;
use freerider_mac::messages::{ControlMessage, MESSAGE_BITS};
use freerider_mac::Coordinator;
use freerider_rt::Rng64;
use freerider_tag::plm::{PlmConfig, PlmEncoder};
use freerider_tag::translator::PhaseTranslator;
use freerider_tag::{Tag, TagConfig};

/// Network configuration.
#[derive(Debug, Clone)]
pub struct TagNetworkConfig {
    /// Number of tags.
    pub n_tags: usize,
    /// Bits queued at each tag up front.
    pub backlog_bits: usize,
    /// Slot excitation waveform length in samples (sets per-slot capacity).
    pub slot_samples: usize,
    /// Probability a tag mis-measures one PLM pulse (control-channel
    /// noise; a single bad pulse loses that round's announcement).
    pub pulse_error_prob: f64,
    /// Capture probability for collided slots.
    pub capture_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TagNetworkConfig {
    fn default() -> Self {
        TagNetworkConfig {
            n_tags: 8,
            backlog_bits: 4096,
            slot_samples: 480 + 320 * 25, // header + 25 tag bits per slot
            pulse_error_prob: 0.005,
            capture_prob: 0.45,
            seed: 1,
        }
    }
}

/// Results of a network run.
#[derive(Debug, Clone)]
pub struct TagNetworkReport {
    /// Bits each tag delivered.
    pub per_tag_bits: Vec<u64>,
    /// Jain's fairness index over the deliveries.
    pub fairness: f64,
    /// Rounds executed.
    pub rounds: usize,
    /// Control messages decoded, summed over tags.
    pub announcements_heard: usize,
    /// Unsalvaged collision slots, summed over rounds.
    pub collisions: usize,
}

/// The integration-level multi-tag network.
pub struct TagNetwork {
    config: TagNetworkConfig,
    tags: Vec<Tag>,
    translator: PhaseTranslator,
    coordinator: Coordinator,
    encoder: PlmEncoder,
    rng: Rng64,
}

impl TagNetwork {
    /// Builds the network with every tag pre-loaded with
    /// `backlog_bits` of queue.
    pub fn new(config: TagNetworkConfig) -> Self {
        let mut rng = Rng64::new(config.seed);
        let translator = PhaseTranslator {
            // A compact slot translator: 1 symbol per step keeps slots small.
            delta_theta: std::f64::consts::PI,
            levels: 2,
            symbols_per_step: 4,
            symbol_len: 80,
            data_start: 480,
        };
        let tags = (0..config.n_tags)
            .map(|_| {
                let mut t = Tag::new(TagConfig {
                    plm_message_len: MESSAGE_BITS,
                    translator: freerider_tag::tag::Translator::Phase(translator),
                    ..TagConfig::wifi()
                });
                let bits: Vec<u8> = (0..config.backlog_bits).map(|_| rng.bit()).collect();
                t.push_data(&bits);
                t
            })
            .collect();
        TagNetwork {
            config,
            tags,
            translator,
            coordinator: Coordinator::with_defaults(),
            encoder: PlmEncoder::new(PlmConfig::default()),
            rng,
        }
    }

    /// Runs `rounds` MAC rounds.
    pub fn run(&mut self, rounds: usize) -> TagNetworkReport {
        let mut per_tag_bits = vec![0u64; self.config.n_tags];
        let mut announcements_heard = 0usize;
        let mut collisions = 0usize;

        for _ in 0..rounds {
            let n_slots = self.coordinator.n_slots();
            let msg = ControlMessage::RoundStart { n_slots };
            let durations = self.encoder.encode(&msg.encode());

            // Broadcast over PLM: each tag measures each pulse, with
            // independent measurement errors.
            let mut participants = Vec::new();
            for (i, tag) in self.tags.iter_mut().enumerate() {
                let mut decoded = None;
                for &d in &durations {
                    let measured = if self.rng.bernoulli(self.config.pulse_error_prob) {
                        d + 80e-6 // far outside the ±25 µs bound
                    } else {
                        d
                    };
                    decoded = decoded.or(tag.observe_pulse(measured));
                }
                match decoded.as_deref().map(ControlMessage::decode) {
                    Some(Ok(ControlMessage::RoundStart { n_slots: n })) if n == n_slots => {
                        announcements_heard += 1;
                        participants.push(i);
                    }
                    _ => {}
                }
            }

            // Random slot selection (framed Aloha).
            let slots = run_round(
                &participants,
                n_slots,
                self.config.capture_prob,
                &mut self.rng,
            );
            for outcome in &slots {
                if let SlotOutcome::Success(t) | SlotOutcome::Capture(t) = outcome {
                    // The winner backscatters a real excitation waveform.
                    let excitation = vec![Complex::ONE; self.config.slot_samples];
                    let before = self.tags[*t].pending();
                    let (_, consumed) = self.tags[*t].backscatter(&excitation);
                    debug_assert_eq!(before - self.tags[*t].pending(), consumed);
                    per_tag_bits[*t] += consumed as u64;
                }
            }
            let summary = summarize(&slots);
            collisions += summary.collision;
            self.coordinator.adapt(&summary);
        }

        let alloc: Vec<f64> = per_tag_bits.iter().map(|&b| b as f64).collect();
        TagNetworkReport {
            fairness: jain_index(&alloc),
            per_tag_bits,
            rounds,
            announcements_heard,
            collisions,
        }
    }

    /// Per-slot tag-bit capacity with the configured slot waveform.
    pub fn slot_capacity(&self) -> usize {
        self.translator.capacity(self.config.slot_samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_tag_gets_served() {
        let mut net = TagNetwork::new(TagNetworkConfig {
            n_tags: 8,
            seed: 3,
            ..TagNetworkConfig::default()
        });
        let report = net.run(60);
        assert!(report.per_tag_bits.iter().all(|&b| b > 0), "{report:?}");
        assert!(report.fairness > 0.8, "fairness {}", report.fairness);
    }

    #[test]
    fn slot_capacity_matches_deliveries() {
        let mut net = TagNetwork::new(TagNetworkConfig {
            n_tags: 2,
            seed: 4,
            ..TagNetworkConfig::default()
        });
        let cap = net.slot_capacity();
        assert_eq!(cap, 25);
        let report = net.run(10);
        for &b in &report.per_tag_bits {
            assert_eq!(b % cap as u64, 0, "deliveries come in whole slots");
        }
    }

    #[test]
    fn announcements_flow_through_real_plm() {
        let mut net = TagNetwork::new(TagNetworkConfig {
            n_tags: 5,
            pulse_error_prob: 0.0,
            seed: 5,
            ..TagNetworkConfig::default()
        });
        let report = net.run(20);
        // Perfect control channel: every tag hears every round.
        assert_eq!(report.announcements_heard, 5 * 20);
    }

    #[test]
    fn pulse_errors_cost_announcements() {
        let mut net = TagNetwork::new(TagNetworkConfig {
            n_tags: 5,
            pulse_error_prob: 0.05,
            seed: 6,
            ..TagNetworkConfig::default()
        });
        let report = net.run(40);
        assert!(report.announcements_heard < 5 * 40);
        assert!(report.announcements_heard > 0);
    }

    #[test]
    fn collisions_happen_and_are_adapted_away() {
        let mut net = TagNetwork::new(TagNetworkConfig {
            n_tags: 16,
            seed: 7,
            ..TagNetworkConfig::default()
        });
        // The coordinator starts at 4 slots for 16 tags: early rounds
        // collide heavily, later rounds settle.
        let early = net.run(3).collisions;
        let late = net.run(30).collisions as f64 / 30.0;
        assert!(early >= 2, "early collisions {early}");
        assert!(late < 3.0, "late collision rate {late}/round");
    }
}
