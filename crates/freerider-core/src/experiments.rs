//! The experiments of §4: distance sweeps (Figs. 10–13), the operational
//! range map (Fig. 14), PLM control-channel accuracy (Fig. 4), and the
//! ambient-traffic analysis (Fig. 3).

use crate::link::{BleLink, LinkConfig, WifiLink, ZigbeeLink};
use crate::metrics::LinkStats;
use freerider_channel::ambient::AmbientTraffic;
use freerider_channel::channel::Multipath;
use freerider_channel::BackscatterBudget;
use freerider_rt::{derive_seed, Executor, Sweep};

/// The three excitation technologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Technology {
    /// 802.11g/n OFDM WiFi.
    Wifi,
    /// IEEE 802.15.4 ZigBee.
    Zigbee,
    /// Bluetooth LE.
    Ble,
}

impl Technology {
    /// The backscatter receiver's sync sensitivity for this technology
    /// (matches the `RxConfig` defaults of each PHY crate).
    pub fn sensitivity_dbm(self) -> f64 {
        match self {
            Technology::Wifi => -94.0,
            Technology::Zigbee => -97.0,
            Technology::Ble => -100.0,
        }
    }

    /// The paper's LOS budget for this technology.
    pub fn los_budget(self) -> BackscatterBudget {
        match self {
            Technology::Wifi => BackscatterBudget::wifi_los(),
            Technology::Zigbee => BackscatterBudget::zigbee_los(),
            Technology::Ble => BackscatterBudget::ble_los(),
        }
    }

    /// A realistic multipath profile for this technology's sample rate.
    /// The ~60 ns hallway delay spread is frequency-selective across
    /// WiFi's 20 MHz but nearly flat across ZigBee's 2 MHz / BLE's 1 MHz
    /// (sub-sample at their rates), which the tap model reproduces.
    pub fn multipath(self) -> Multipath {
        match self {
            Technology::Wifi => Multipath::hallway_20msps(),
            Technology::Zigbee => Multipath {
                rms_delay_samples: 0.25,
                taps: 2,
            },
            Technology::Ble => Multipath {
                rms_delay_samples: 0.5,
                taps: 3,
            },
        }
    }
}

/// One point of a distance sweep.
#[derive(Debug, Clone, Copy)]
pub struct DistancePoint {
    /// Tag-to-receiver distance, metres.
    pub distance_m: f64,
    /// Tag throughput, bits/second.
    pub throughput_bps: f64,
    /// Tag-bit error rate over decoded packets.
    pub ber: f64,
    /// Backscatter packet reception rate.
    pub prr: f64,
    /// Link-budget RSSI, dBm.
    pub rssi_dbm: f64,
}

impl DistancePoint {
    fn from_stats(distance_m: f64, s: &LinkStats) -> Self {
        DistancePoint {
            distance_m,
            throughput_bps: s.throughput_bps(),
            ber: s.ber(),
            prr: s.prr(),
            rssi_dbm: s.budget_rssi_dbm,
        }
    }
}

/// Runs a throughput/BER/RSSI distance sweep (Figs. 10–13) on the
/// environment-configured executor (`FREERIDER_THREADS` / all cores).
///
/// `packets` excitation packets of `payload_len` bytes are run at each
/// distance through the full IQ pipeline.
pub fn distance_sweep(
    tech: Technology,
    budget: BackscatterBudget,
    distances: &[f64],
    packets: usize,
    payload_len: usize,
    seed: u64,
) -> Vec<DistancePoint> {
    distance_sweep_on(
        Executor::from_env(),
        tech,
        budget,
        distances,
        packets,
        payload_len,
        seed,
    )
}

/// [`distance_sweep`] on an explicit executor. Every distance runs on its
/// own derived RNG stream, so the result is bit-identical for any worker
/// count — the parallel-equivalence test pins this.
pub fn distance_sweep_on(
    executor: Executor,
    tech: Technology,
    budget: BackscatterBudget,
    distances: &[f64],
    packets: usize,
    payload_len: usize,
    seed: u64,
) -> Vec<DistancePoint> {
    Sweep::over(distances.to_vec())
        .seed(seed)
        .executor(executor)
        .run_with(crate::link::WifiLinkScratch::new, |point, scratch| {
            let d = *point.value;
            // Through-wall deployments see heavier, longer multipath and a
            // weaker specular component than the open hallway.
            let nlos = budget.floor_plan != freerider_channel::FloorPlan::line_of_sight();
            let multipath = if nlos && tech == Technology::Wifi {
                Multipath::office_nlos_20msps()
            } else {
                tech.multipath()
            };
            let fading = if nlos {
                crate::link::Fading::Rician { k_db: 7.0 }
            } else {
                // Hallway LOS links are strongly specular; K = 12 dB keeps
                // deep per-packet fades rare, as the paper's steady
                // close-range throughput implies.
                crate::link::Fading::Rician { k_db: 12.0 }
            };
            let cfg = LinkConfig {
                payload_len,
                packets,
                multipath: Some(multipath),
                phase_noise: 2e-4,
                fading,
                ..LinkConfig::new(budget.clone(), d, point.seed)
            };
            let stats = match tech {
                // The WiFi link threads the per-worker receive arena
                // through; the other PHYs' receivers are cheap enough that
                // a shared arena has not been worth the plumbing yet.
                Technology::Wifi => WifiLink::new(cfg).run_with(scratch),
                Technology::Zigbee => ZigbeeLink::new(cfg).run(),
                Technology::Ble => BleLink::new(cfg).run(),
            };
            DistancePoint::from_stats(d, &stats)
        })
}

/// One row of the Fig. 14 operational-regime map.
#[derive(Debug, Clone, Copy)]
pub struct RangePoint {
    /// Transmitter-to-tag distance, metres.
    pub d_tx_tag_m: f64,
    /// Maximum tag-to-receiver distance at which the link budget clears
    /// the receiver's sync sensitivity, metres (0 when even 0.5 m fails).
    pub max_d_tag_rx_m: f64,
}

/// Computes the operational regime (Fig. 14): for each TX-to-tag distance,
/// the maximum receiver distance where the backscatter RSSI clears the
/// receiver sensitivity. Determined by the same header-detection budget
/// that gates the full simulation (§4.2.1), so it can be computed directly
/// from the budget with a bisection.
pub fn range_map(
    tech: Technology,
    budget: &BackscatterBudget,
    d_tx_tag: &[f64],
) -> Vec<RangePoint> {
    range_map_on(Executor::from_env(), tech, budget, d_tx_tag)
}

/// [`range_map`] on an explicit executor (the map is deterministic, so
/// parallelism only changes wall-clock, never values).
pub fn range_map_on(
    executor: Executor,
    tech: Technology,
    budget: &BackscatterBudget,
    d_tx_tag: &[f64],
) -> Vec<RangePoint> {
    let sens = tech.sensitivity_dbm();
    executor.map(d_tx_tag, |_, &d1| {
        let ok = |d2: f64| budget.rssi_dbm(d1, d2) >= sens;
        let max = if !budget.tag_operational(d1) || !ok(0.5) {
            0.0
        } else {
            let (mut lo, mut hi) = (0.5f64, 0.5f64);
            while ok(hi) && hi < 200.0 {
                hi *= 2.0;
            }
            for _ in 0..40 {
                let mid = (lo + hi) / 2.0;
                if ok(mid) {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            lo
        };
        RangePoint {
            d_tx_tag_m: d1,
            max_d_tag_rx_m: max,
        }
    })
}

/// One point of the Fig. 4 PLM-accuracy curve.
#[derive(Debug, Clone, Copy)]
pub struct PlmAccuracyPoint {
    /// Transmitter-to-tag distance, metres.
    pub distance_m: f64,
    /// Fraction of scheduling messages decoded completely.
    pub accuracy: f64,
}

/// Configuration of the PLM accuracy experiment (Fig. 4).
#[derive(Debug, Clone, Copy)]
pub struct PlmAccuracyConfig {
    /// Transmit power, dBm (15 dBm in the paper's run).
    pub tx_power_dbm: f64,
    /// Path loss on the TX→tag control link.
    pub pl0_db: f64,
    /// Path-loss exponent.
    pub exponent: f64,
    /// Envelope-detector comparator threshold, dBm (the "reference
    /// voltage"; 1.8 V in the paper's run).
    pub threshold_dbm: f64,
    /// Log-normal shadowing sigma per pulse, dB (lecture-hall multipath).
    pub shadow_sigma_db: f64,
    /// Probability an ambient transmission corrupts a given pulse.
    pub ambient_corruption: f64,
    /// Bits per scheduling message (preamble + payload).
    pub message_bits: usize,
    /// Messages per distance point.
    pub trials: usize,
}

impl Default for PlmAccuracyConfig {
    fn default() -> Self {
        PlmAccuracyConfig {
            tx_power_dbm: 15.0,
            pl0_db: 35.0,
            exponent: 1.75,
            threshold_dbm: -55.0,
            shadow_sigma_db: 2.5,
            ambient_corruption: 0.018,
            message_bits: 18, // 8-bit preamble + 10-bit control message
            trials: 2000,
        }
    }
}

/// Runs the Fig. 4 experiment: scheduling-message decode accuracy vs
/// distance. A message succeeds when every pulse (a) clears the envelope
/// threshold despite per-pulse shadowing and (b) escapes ambient
/// corruption.
pub fn plm_accuracy(
    cfg: &PlmAccuracyConfig,
    distances: &[f64],
    seed: u64,
) -> Vec<PlmAccuracyPoint> {
    plm_accuracy_on(Executor::from_env(), cfg, distances, seed)
}

/// [`plm_accuracy`] on an explicit executor; each distance point draws
/// from its own derived stream.
pub fn plm_accuracy_on(
    executor: Executor,
    cfg: &PlmAccuracyConfig,
    distances: &[f64],
    seed: u64,
) -> Vec<PlmAccuracyPoint> {
    Sweep::over(distances.to_vec())
        .seed(seed)
        .executor(executor)
        .run(|point| {
            let d = *point.value;
            let mut rng = point.rng();
            let p_rx = cfg.tx_power_dbm - (cfg.pl0_db + 10.0 * cfg.exponent * d.max(0.1).log10());
            let mut ok = 0usize;
            for _ in 0..cfg.trials {
                let mut success = true;
                for _ in 0..cfg.message_bits {
                    let shadow = rng.gauss() * cfg.shadow_sigma_db;
                    if p_rx + shadow < cfg.threshold_dbm || rng.bernoulli(cfg.ambient_corruption) {
                        success = false;
                        break;
                    }
                }
                if success {
                    ok += 1;
                }
            }
            PlmAccuracyPoint {
                distance_m: d,
                accuracy: ok as f64 / cfg.trials as f64,
            }
        })
}

/// The Fig. 3 analysis: ambient packet-duration PDF and the PLM confusion
/// probability.
pub struct AmbientAnalysis {
    /// Histogram bin centres, seconds.
    pub bin_centers: Vec<f64>,
    /// PDF values per bin.
    pub pdf: Vec<f64>,
    /// Probability an ambient packet is mistaken for an L₀ pulse.
    pub confusion_l0: f64,
    /// Probability an ambient packet is mistaken for an L₁ pulse.
    pub confusion_l1: f64,
}

/// Runs the Fig. 3 analysis over `n` synthetic ambient packets.
pub fn ambient_analysis(n: usize, seed: u64) -> AmbientAnalysis {
    let plm = freerider_tag::plm::PlmConfig::default();
    let (bin_centers, pdf) = AmbientTraffic::new(derive_seed(seed, 0)).histogram(n, 0.1e-3, 3e-3);
    let confusion_l0 = AmbientTraffic::new(derive_seed(seed, 1)).confusion_probability(
        plm.l0_s,
        plm.tolerance_s,
        n,
    );
    let confusion_l1 = AmbientTraffic::new(derive_seed(seed, 2)).confusion_probability(
        plm.l1_s,
        plm.tolerance_s,
        n,
    );
    AmbientAnalysis {
        bin_centers,
        pdf,
        confusion_l0,
        confusion_l1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_map_matches_headline_numbers() {
        // Fig. 14 / §4.3: WiFi reaches ~42 m at d₁ = 1 m and only ~8 m at
        // d₁ = 4 m; ZigBee's and Bluetooth's regimes are much smaller.
        let wifi = range_map(
            Technology::Wifi,
            &BackscatterBudget::wifi_los(),
            &[1.0, 4.0],
        );
        assert!((wifi[0].max_d_tag_rx_m - 42.0).abs() < 4.0, "{:?}", wifi[0]);
        assert!(
            (wifi[1].max_d_tag_rx_m - 8.0).abs() < 4.0,
            "4 m: {:?}",
            wifi[1]
        );

        let zig = range_map(
            Technology::Zigbee,
            &BackscatterBudget::zigbee_los(),
            &[1.0, 2.5],
        );
        assert!((zig[0].max_d_tag_rx_m - 22.0).abs() < 4.0, "{:?}", zig[0]);
        // §4.3: ZigBee's maximum TX-to-tag distance is ~2 m — past that the
        // 5 dBm excitation cannot power the tag's front end at all.
        assert_eq!(zig[1].max_d_tag_rx_m, 0.0, "{:?}", zig[1]);

        let ble = range_map(Technology::Ble, &BackscatterBudget::ble_los(), &[1.0, 2.0]);
        assert!((ble[0].max_d_tag_rx_m - 12.0).abs() < 3.0, "{:?}", ble[0]);
        // §4.3: Bluetooth's maximum TX-to-tag distance is ~1.5 m.
        assert_eq!(ble[1].max_d_tag_rx_m, 0.0, "{:?}", ble[1]);
    }

    #[test]
    fn range_shrinks_with_tx_distance() {
        let pts = range_map(
            Technology::Wifi,
            &BackscatterBudget::wifi_los(),
            &[0.5, 1.0, 2.0, 3.0, 4.0],
        );
        for w in pts.windows(2) {
            assert!(w[0].max_d_tag_rx_m > w[1].max_d_tag_rx_m);
        }
    }

    #[test]
    fn plm_accuracy_matches_fig4_shape() {
        let pts = plm_accuracy(&PlmAccuracyConfig::default(), &[2.0, 25.0, 50.0, 80.0], 3);
        // >70 % below 4 m; ≈50 % at 50 m; collapsing beyond.
        assert!(pts[0].accuracy > 0.7, "near: {}", pts[0].accuracy);
        assert!(
            pts[2].accuracy > 0.3 && pts[2].accuracy < 0.7,
            "50 m: {}",
            pts[2].accuracy
        );
        assert!(pts[3].accuracy < pts[2].accuracy);
        // Monotone non-increasing overall (± Monte-Carlo noise: both near
        // points sit on the ambient-corruption ceiling).
        assert!(pts[0].accuracy >= pts[1].accuracy - 0.03);
        assert!(pts[1].accuracy >= pts[2].accuracy - 0.03);
    }

    #[test]
    fn ambient_confusion_is_small() {
        let a = ambient_analysis(200_000, 4);
        assert!(a.confusion_l0 < 0.01, "L0 confusion {}", a.confusion_l0);
        assert!(a.confusion_l1 < 0.01, "L1 confusion {}", a.confusion_l1);
        let total: f64 = a.pdf.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    // Full IQ distance sweeps are exercised (with more packets) by the
    // bench harness; here a single cheap point per technology keeps the
    // test suite fast while covering the plumbing.
    #[test]
    fn sweep_plumbing_works_per_technology() {
        let pts = distance_sweep(
            Technology::Wifi,
            BackscatterBudget::wifi_los(),
            &[2.0],
            2,
            120,
            5,
        );
        assert_eq!(pts.len(), 1);
        assert!(pts[0].prr > 0.99);
        assert!(pts[0].throughput_bps > 30e3);

        let pz = distance_sweep(
            Technology::Zigbee,
            BackscatterBudget::zigbee_los(),
            &[2.0],
            2,
            40,
            6,
        );
        assert!(pz[0].prr > 0.99);

        let pb = distance_sweep(
            Technology::Ble,
            BackscatterBudget::ble_los(),
            &[2.0],
            3,
            37,
            7,
        );
        assert!(pb[0].prr > 0.99);
    }
}
