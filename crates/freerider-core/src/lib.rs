//! # freerider-core
//!
//! The FreeRider system itself (CoNEXT'17): backscatter communication over
//! commodity 802.11g/n WiFi, ZigBee and Bluetooth radios while those
//! radios carry productive traffic, plus the multi-tag network built on
//! the Framed-Slotted-Aloha MAC.
//!
//! This crate composes the substrates (`freerider-wifi` / `-zigbee` /
//! `-ble` PHYs, `freerider-tag`, `freerider-channel`, `freerider-mac`)
//! into end-to-end links and the experiments of the paper's §4:
//!
//! * [`decoder`] — tag-data extraction: the XOR of the two receivers'
//!   decoded streams with per-tag-bit majority voting (Table 1, §2.2.1),
//!   plus the ZigBee symbol-translation variant and the quaternary phase
//!   decoder (Eq. 5).
//! * [`link`] — single-tag end-to-end pipelines: excitation TX → channel →
//!   tag (codeword translation) → channel → commodity RX → XOR decode.
//! * [`experiments`] — the distance sweeps, range maps and PLM accuracy
//!   runs behind Figs. 4 and 10–14.
//! * [`coexist`] — the WiFi-coexistence CDFs of Figs. 15 and 16.
//! * [`network`] — the multi-tag system of Fig. 17 (MAC + real control
//!   messages + tag state machines).
//! * [`metrics`] — throughput/BER/CDF accumulators.
//! * [`env`] — the registry of every `FREERIDER_*` environment knob
//!   (enforced by `freerider-lint` rule D3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coexist;
pub mod decoder;
pub mod env;
pub mod experiments;
pub mod link;
pub mod metrics;
pub mod network;

pub use link::{BleLink, LinkConfig, WifiLink, WifiLinkScratch, ZigbeeLink};
pub use metrics::{Cdf, LinkStats};
