//! The central registry of every `FREERIDER_*` environment variable.
//!
//! Environment knobs are how operators steer a run without recompiling —
//! and exactly the kind of surface that drifts: a crate grows a quietly
//! read variable, nothing documents it, and a year later nobody can say
//! why two "identical" runs differ. This table is the single source of
//! truth; `freerider-lint` rule **D3** (`env-registry`) fails the build
//! when any `FREERIDER_*` name appears in workspace code without being
//! listed here.
//!
//! The *defining* constants stay next to their implementations
//! ([`freerider_rt::executor::THREADS_ENV`], `freerider_telemetry`'s
//! `LOG_ENV` / `TRACE_ENV`) because the dependency graph points the other
//! way — this crate sits above them. The registry duplicates the names on
//! purpose, and the lint keeps the copies honest: an entry here without a
//! matching read is stale documentation, a read without an entry is a
//! build failure.

/// One documented environment knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvKnob {
    /// The variable name (always `FREERIDER_*`).
    pub name: &'static str,
    /// Where the value is consumed.
    pub consumer: &'static str,
    /// Behaviour when unset.
    pub default: &'static str,
    /// What the knob does and which values it accepts.
    pub doc: &'static str,
}

/// Every registered knob, sorted by name.
pub const REGISTRY: &[EnvKnob] = &[
    EnvKnob {
        name: "FREERIDER_BENCH_THRESHOLD",
        consumer: "scripts/bench_diff.py",
        default: "50 (percent)",
        doc: "Regression threshold for the bench-baseline diff: the verify \
              gate fails when a kernel median slows down by more than this \
              percentage over benchmarks/latest.json.",
    },
    EnvKnob {
        name: "FREERIDER_LOG",
        consumer: "freerider-telemetry::log",
        default: "off",
        doc: "Leveled stderr event log: error, warn, info, or debug. \
              Diagnostics only — never feeds deterministic output.",
    },
    EnvKnob {
        name: "FREERIDER_PROFILE",
        consumer: "freerider-telemetry::profile",
        default: "off",
        doc: "Hierarchical stage profiler: 1/on/true enables RAII scope \
              trees over the RX pipelines, DSP and coding kernels. The \
              work-counter section of the report is deterministic \
              (byte-identical across FREERIDER_THREADS); stage timings \
              are wall-clock and reported separately.",
    },
    EnvKnob {
        name: "FREERIDER_SERVE_ADDR",
        consumer: "freerider-serve::server",
        default: "127.0.0.1:7973",
        doc: "Listen address for the freerider-serve deployment-simulation \
              service. Port 0 binds an ephemeral port (printed on startup, \
              used by the verify-gate smoke test).",
    },
    EnvKnob {
        name: "FREERIDER_SERVE_MAX_SUBS",
        consumer: "freerider-serve::server",
        default: "64",
        doc: "Per-job subscriber cap for the serve streaming channel. \
              Additional Subscribe requests are refused with an Error \
              frame. Subscribers never affect simulation results.",
    },
    EnvKnob {
        name: "FREERIDER_SERVE_QUEUE",
        consumer: "freerider-serve::server",
        default: "256 (frames)",
        doc: "Per-subscriber stream queue capacity. A full queue evicts \
              its oldest frame (drop-oldest backpressure) so slow readers \
              lose history, never freshness; evictions are counted in \
              telemetry as serve.sub.evictions.",
    },
    EnvKnob {
        name: "FREERIDER_SERVE_STATS_EVERY",
        consumer: "freerider-serve::server",
        default: "0 (off)",
        doc: "Broadcast a Stats metrics snapshot frame to every stream \
              subscriber after each this-many completed simulation rounds. \
              0 disables the push; GetStats polling always works. Enabling \
              it makes byte/frame counters timing-dependent — the counters \
              determinism contract holds only at 0.",
    },
    EnvKnob {
        name: "FREERIDER_THREADS",
        consumer: "freerider-rt::executor",
        default: "all cores",
        doc: "Worker count for the parallel sweep executor. Results are \
              bit-identical for every value; 1 forces serial execution.",
    },
    EnvKnob {
        name: "FREERIDER_TRACE",
        consumer: "freerider-telemetry::trace",
        default: "off",
        doc: "Per-packet flight recorder: off, failures (ring of failed \
              packets), or all. Forensic output is deterministic; only \
              the separately-reported span timings read the clock.",
    },
];

/// Looks a knob up by exact name.
pub fn lookup(name: &str) -> Option<&'static EnvKnob> {
    REGISTRY.iter().find(|k| k.name == name)
}

/// True when `name` is a registered knob.
pub fn is_registered(name: &str) -> bool {
    lookup(name).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_unique_and_well_formed() {
        for pair in REGISTRY.windows(2) {
            assert!(pair[0].name < pair[1].name, "registry must stay sorted");
        }
        for k in REGISTRY {
            assert!(k.name.starts_with("FREERIDER_"), "{}", k.name);
            assert!(!k.consumer.is_empty() && !k.default.is_empty() && !k.doc.is_empty());
        }
    }

    #[test]
    fn registry_covers_the_defining_constants() {
        assert!(is_registered(freerider_rt::executor::THREADS_ENV));
        assert!(is_registered(freerider_telemetry::log::LOG_ENV));
        assert!(is_registered(freerider_telemetry::trace::TRACE_ENV));
        assert!(is_registered(freerider_telemetry::profile::PROFILE_ENV));
    }

    #[test]
    fn lookup_is_exact() {
        assert_eq!(
            lookup("FREERIDER_THREADS").map(|k| k.name),
            Some("FREERIDER_THREADS")
        );
        assert!(lookup("FREERIDER_THREAD").is_none());
        assert!(lookup("freerider_threads").is_none());
    }
}
