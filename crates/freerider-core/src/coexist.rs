//! WiFi-coexistence experiments (§4.4, Figs. 15 and 16).
//!
//! Two directions:
//!
//! * **Does backscatter impact WiFi?** (Fig. 15) A productive WiFi link on
//!   channel 6 is modelled at the SINR level with rate adaptation; a tag
//!   backscattering on channel 13 contributes only its spectral-mask
//!   leakage, which is ~45 dB down and far below the noise floor — the
//!   throughput CDFs with and without the tag overlap, as the paper
//!   measures (37.4 vs 36.8–37.9 Mbps medians).
//!
//! * **Does WiFi impact backscatter?** (Fig. 16) The full IQ backscatter
//!   chain runs with a duty-cycled channel-6 interferer leaking into the
//!   backscatter channel. The wideband WiFi backscatter receiver sees the
//!   most leakage (visible CDF tail, ≈35 kbps for ~10 % of windows); the
//!   narrowband ZigBee/Bluetooth receivers filter most of it out (1–2 kbps
//!   shift), matching §4.4.2.

use crate::decoder;
use crate::metrics::Cdf;
use freerider_channel::channel::{Channel, Fading};
use freerider_channel::interference::Interferer;
use freerider_channel::BackscatterBudget;
use freerider_rt::{derive_seed, stream, Executor, Rng64};
use freerider_tag::translator::{FskTranslator, PhaseTranslator};

/// SNR→rate table for 802.11g with ~70 % MAC efficiency: `(snr_db, mbps)`.
const RATE_TABLE: [(f64, f64); 8] = [
    (6.0, 6.0),
    (7.8, 9.0),
    (9.0, 12.0),
    (10.8, 18.0),
    (17.0, 24.0),
    (18.8, 36.0),
    (24.0, 48.0),
    (24.6, 54.0),
];

/// MAC-layer efficiency of a saturated 802.11g link (DIFS/SIFS/ACK/backoff
/// overhead at 1500-byte frames).
const MAC_EFFICIENCY: f64 = 0.7;

/// The Fig. 15 experiment: WiFi TCP-style throughput samples with an
/// optional FreeRider tag backscattering on channel 13 nearby.
///
/// * `tag_leak_dbm` — `None` = no backscatter; `Some(p)` = the tag's
///   leakage power into channel 6 at the WiFi receiver.
pub fn wifi_throughput_cdf(tag_leak_dbm: Option<f64>, windows: usize, seed: u64) -> Cdf {
    let mut rng = Rng64::new(seed);
    let mut cdf = Cdf::new();
    // A healthy office link: mean SNR 26 dB with per-window variation.
    let noise_dbm = -95.0f64;
    for _ in 0..windows {
        let snr_sig = 26.0 + 3.0 * rng.gauss();
        // Interference adds to the noise floor.
        let noise_mw = freerider_dsp::db::dbm_to_mw(noise_dbm)
            + tag_leak_dbm.map_or(0.0, freerider_dsp::db::dbm_to_mw);
        let sinr = noise_dbm + snr_sig - freerider_dsp::db::mw_to_dbm(noise_mw);
        let rate = RATE_TABLE
            .iter()
            .rev()
            .find(|(thr, _)| sinr >= *thr)
            .map_or(0.0, |(_, r)| *r);
        // Small per-window contention jitter.
        let goodput = rate * MAC_EFFICIENCY * (1.0 + 0.03 * rng.gauss());
        cdf.push(goodput.max(0.0));
    }
    cdf
}

/// The leakage a FreeRider tag 1 m from the WiFi receiver injects into
/// channel 6: backscattered power ≈ −29 dBm (11 dBm excitation, 1 m to
/// tag, ~6 dB conversion, 1 m to receiver ≈ −65 dBm) minus ~45 dB of
/// spectral-mask + receiver selectivity ≈ −110 dBm — 15 dB below the
/// noise floor.
pub const TAG_LEAK_INTO_WIFI_DBM: f64 = -110.0;

/// Result of one Fig. 16 run: backscatter throughput CDFs with the WiFi
/// interferer absent and present.
pub struct BackscatterCoexistResult {
    /// Per-window throughput without WiFi traffic, bits/second.
    pub absent: Cdf,
    /// Per-window throughput with WiFi traffic on channel 6, bits/second.
    pub present: Cdf,
}

/// Which excitation the Fig. 16 run backscatters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoexistTech {
    /// 802.11g/n excitation; backscatter on channel 13.
    Wifi,
    /// ZigBee excitation; backscatter near 2.48 GHz.
    Zigbee,
    /// Bluetooth excitation; backscatter near 2.48 GHz.
    Ble,
}

impl CoexistTech {
    /// WiFi-interferer leakage into this technology's backscatter
    /// receiver, dBm — a 15 dBm laptop a couple of metres from the
    /// receiver, after the 802.11 spectral mask. The wideband (20 MHz)
    /// WiFi receiver integrates the whole leak; the 2 MHz ZigBee and
    /// 1 MHz Bluetooth channel filters keep only a sliver.
    fn interferer_leak_dbm(self) -> f64 {
        match self {
            CoexistTech::Wifi => -69.0,
            CoexistTech::Zigbee => -85.0,
            CoexistTech::Ble => -89.0,
        }
    }
}

/// Runs the Fig. 16 experiment for one technology: `windows` measurement
/// windows of `packets_per_window` packets each, with and without the
/// channel-6 interferer (50 % duty cycle).
pub fn backscatter_coexistence(
    tech: CoexistTech,
    windows: usize,
    packets_per_window: usize,
    seed: u64,
) -> BackscatterCoexistResult {
    backscatter_coexistence_on(
        Executor::from_env(),
        tech,
        windows,
        packets_per_window,
        seed,
    )
}

/// [`backscatter_coexistence`] on an explicit executor: windows fan out in
/// parallel, each on its own derived stream, and both CDFs are assembled
/// in window order (bit-identical for any worker count).
pub fn backscatter_coexistence_on(
    executor: Executor,
    tech: CoexistTech,
    windows: usize,
    packets_per_window: usize,
    seed: u64,
) -> BackscatterCoexistResult {
    let window_ids: Vec<u64> = (0..windows as u64).collect();
    let pairs = executor.map(&window_ids, |_, &w| {
        let s = derive_seed(seed, w);
        (
            coexist_window(tech, packets_per_window, None, s, false),
            coexist_window(
                tech,
                packets_per_window,
                Some(tech.interferer_leak_dbm()),
                s,
                false,
            ),
        )
    });
    let mut absent = Cdf::new();
    let mut present = Cdf::new();
    for (a, p) in pairs {
        absent.push(a);
        present.push(p);
    }
    BackscatterCoexistResult { absent, present }
}

/// Airtime overhead of an RTS/CTS exchange reserving the medium for one
/// excitation packet (RTS + SIFS + CTS + SIFS at basic rate ≈ 120 µs).
pub const RTS_CTS_OVERHEAD_S: f64 = 120e-6;

/// The §4.4.2 mitigation: "use RTS-CTS to reserve the channel for
/// backscatter". The interferer defers during reserved packets, removing
/// the Fig. 16(a) tail at the cost of the reservation airtime.
///
/// Returns the per-window throughput CDF with the interferer present but
/// every excitation packet protected by RTS/CTS.
pub fn backscatter_with_rts_cts(
    tech: CoexistTech,
    windows: usize,
    packets_per_window: usize,
    seed: u64,
) -> Cdf {
    backscatter_with_rts_cts_on(
        Executor::from_env(),
        tech,
        windows,
        packets_per_window,
        seed,
    )
}

/// [`backscatter_with_rts_cts`] on an explicit executor.
pub fn backscatter_with_rts_cts_on(
    executor: Executor,
    tech: CoexistTech,
    windows: usize,
    packets_per_window: usize,
    seed: u64,
) -> Cdf {
    let window_ids: Vec<u64> = (0..windows as u64).collect();
    // Reservation means the interferer never overlaps our packets.
    let samples = executor.map(&window_ids, |_, &w| {
        coexist_window(tech, packets_per_window, None, derive_seed(seed, w), true)
    });
    let mut cdf = Cdf::new();
    for t in samples {
        cdf.push(t);
    }
    cdf
}

/// One measurement window: returns tag throughput in bits/second.
/// `rts_cts` adds the reservation overhead to every packet's airtime.
fn coexist_window(
    tech: CoexistTech,
    packets: usize,
    interferer_leak_dbm: Option<f64>,
    seed: u64,
    rts_cts: bool,
) -> f64 {
    let mut rng = Rng64::derive(seed, stream::PAYLOAD);
    // File-transfer traffic is bursty: most measurement windows see
    // little of it, some are hammered — which is exactly how Fig. 16(a)
    // keeps its median while growing a 10 % tail.
    let mut interferer = interferer_leak_dbm.map(|leak| {
        Interferer::new(
            leak,
            0.0,
            0.18,
            12_000,
            derive_seed(seed, stream::INTERFERER),
        )
    });

    let mut correct = 0u64;
    let mut airtime = 0.0f64;
    match tech {
        CoexistTech::Wifi => {
            use freerider_wifi::{Mpdu, Receiver, RxConfig, Transmitter, TxConfig};
            let budget = BackscatterBudget::wifi_los();
            let tx = Transmitter::new(TxConfig::default());
            let rx_ref = Receiver::new(RxConfig {
                sensitivity_dbm: -200.0,
                ..RxConfig::default()
            });
            let rx = Receiver::new(RxConfig::default());
            let translator = PhaseTranslator::wifi_binary();
            let rssi = budget.rssi_dbm(1.0, 2.0);
            let mut ch_ref = Channel::new(
                -45.0,
                budget.noise_floor_dbm,
                Fading::None,
                derive_seed(seed, stream::REF_CHANNEL),
            );
            let mut ch = Channel::new(
                rssi,
                budget.noise_floor_dbm,
                Fading::None,
                derive_seed(seed, stream::BACK_CHANNEL),
            );
            for _ in 0..packets {
                let payload: Vec<u8> = (0..1000).map(|_| rng.byte()).collect();
                let frame = Mpdu::build(
                    freerider_wifi::frame::MacAddr::local(1),
                    freerider_wifi::frame::MacAddr::local(2),
                    0,
                    &payload,
                );
                // lint: allow(panic) — fixed 100-byte payload is below the PHY maximum
                let wave = tx.transmit(frame.as_bytes()).expect("fits");
                airtime += wave.len() as f64 / freerider_wifi::SAMPLE_RATE;
                let original = match rx_ref.receive(&ch_ref.propagate(&wave)) {
                    Ok(p) => p,
                    Err(_) => continue,
                };
                let bits: Vec<u8> = (0..translator.capacity(wave.len()))
                    .map(|_| rng.bit())
                    .collect();
                let (tagged, _) = translator.translate(&wave, &bits);
                let mut rx_wave = ch.propagate_padded(&tagged, 200);
                if let Some(i) = interferer.as_mut() {
                    i.add_to(&mut rx_wave);
                }
                if let Ok(pkt) = rx.receive(&rx_wave) {
                    let decoded = decoder::decode_wifi_binary(
                        &original.data_bits,
                        &pkt.data_bits,
                        24,
                        translator.symbols_per_step,
                        1,
                    );
                    correct += count_correct(&bits, &decoded);
                }
            }
        }
        CoexistTech::Zigbee => {
            use freerider_zigbee::{Receiver, RxConfig, Transmitter};
            let budget = BackscatterBudget::zigbee_los();
            let tx = Transmitter::new();
            let rx_ref = Receiver::new(RxConfig {
                sensitivity_dbm: -200.0,
                ..RxConfig::default()
            });
            let rx = Receiver::new(RxConfig::default());
            let translator = PhaseTranslator::zigbee_binary();
            let rssi = budget.rssi_dbm(1.0, 2.0);
            let mut ch_ref = Channel::new(
                -45.0,
                budget.noise_floor_dbm,
                Fading::None,
                derive_seed(seed, stream::REF_CHANNEL),
            );
            let mut ch = Channel::new(
                rssi,
                budget.noise_floor_dbm,
                Fading::None,
                derive_seed(seed, stream::BACK_CHANNEL),
            );
            for _ in 0..packets {
                let payload: Vec<u8> = (0..100).map(|_| rng.byte()).collect();
                // lint: allow(panic) — fixed 100-byte payload is below the PHY maximum
                let wave = tx.transmit(&payload).expect("fits");
                airtime += wave.len() as f64 / freerider_zigbee::SAMPLE_RATE;
                let original = match rx_ref.receive(&ch_ref.propagate(&wave)) {
                    Ok(p) => p,
                    Err(_) => continue,
                };
                let bits: Vec<u8> = (0..translator.capacity(wave.len()))
                    .map(|_| rng.bit())
                    .collect();
                let (tagged, _) = translator.translate(&wave, &bits);
                let mut rx_wave = ch.propagate_padded(&tagged, 150);
                if let Some(i) = interferer.as_mut() {
                    i.add_to(&mut rx_wave);
                }
                if let Ok(pkt) = rx.receive(&rx_wave) {
                    let decoded = decoder::decode_zigbee_binary(
                        &original.psdu_symbols,
                        &pkt.psdu_symbols,
                        translator.symbols_per_step,
                    );
                    correct += count_correct(&bits, &decoded);
                }
            }
        }
        CoexistTech::Ble => {
            use freerider_ble::{Receiver, RxConfig, Transmitter};
            let budget = BackscatterBudget::ble_los();
            let tx = Transmitter::new();
            let rx_ref = Receiver::new(RxConfig {
                sensitivity_dbm: -200.0,
                ..RxConfig::default()
            });
            let rx = Receiver::new(RxConfig::default());
            let translator = FskTranslator::ble();
            let rssi = budget.rssi_dbm(1.0, 2.0);
            let mut ch_ref = Channel::new(
                -45.0,
                budget.noise_floor_dbm,
                Fading::None,
                derive_seed(seed, stream::REF_CHANNEL),
            );
            let mut ch = Channel::new(
                rssi,
                budget.noise_floor_dbm,
                Fading::None,
                derive_seed(seed, stream::BACK_CHANNEL),
            );
            for _ in 0..packets {
                let payload: Vec<u8> = (0..37).map(|_| rng.byte()).collect();
                // lint: allow(panic) — fixed 37-byte payload is below the PHY maximum
                let wave = tx.transmit(&payload).expect("fits");
                airtime += wave.len() as f64 / freerider_ble::SAMPLE_RATE;
                let original = match rx_ref.receive(&ch_ref.propagate(&wave)) {
                    Ok(p) => p,
                    Err(_) => continue,
                };
                let bits: Vec<u8> = (0..translator.capacity(wave.len()))
                    .map(|_| rng.bit())
                    .collect();
                let (tagged, _) = translator.translate(&wave, &bits);
                let mut rx_wave = ch.propagate_padded(&tagged, 200);
                if let Some(i) = interferer.as_mut() {
                    i.add_to(&mut rx_wave);
                }
                if let Ok(pkt) = rx.receive(&rx_wave) {
                    let decoded = decoder::decode_ble_binary(
                        &original.pdu_bits,
                        &pkt.pdu_bits,
                        translator.bits_per_tag_bit,
                        16,
                    );
                    correct += count_correct(&bits, &decoded);
                }
            }
        }
    }
    if rts_cts {
        airtime += packets as f64 * RTS_CTS_OVERHEAD_S;
    }
    if airtime > 0.0 {
        correct as f64 / airtime
    } else {
        0.0
    }
}

fn count_correct(sent: &[u8], decoded: &[u8]) -> u64 {
    sent.iter()
        .zip(decoded.iter())
        .filter(|(a, b)| (**a & 1) == (**b & 1))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15_backscatter_does_not_hurt_wifi() {
        let mut without = wifi_throughput_cdf(None, 500, 1);
        let mut with = wifi_throughput_cdf(Some(TAG_LEAK_INTO_WIFI_DBM), 500, 1);
        let m0 = without.median();
        let m1 = with.median();
        // Paper: 37.4 Mbps without vs 36.8–37.9 Mbps with.
        assert!((m0 - 37.4).abs() < 2.0, "median without {m0}");
        assert!((m1 - m0).abs() < 1.0, "tag shifted the median: {m0} → {m1}");
    }

    #[test]
    fn fig15_co_channel_interference_would_hurt() {
        // Sanity inversion: a −90 dBm co-channel leak (no mask rejection)
        // must visibly degrade the link — the CDF machinery is sensitive.
        let mut clean = wifi_throughput_cdf(None, 500, 2);
        let mut loud = wifi_throughput_cdf(Some(-90.0), 500, 2);
        assert!(loud.median() < clean.median() - 1.0);
    }

    // Fig. 16 runs the full IQ chain; tests keep the sample counts small
    // and the bench harness runs the real sizes.
    #[test]
    fn fig16_wifi_interferer_creates_a_tail() {
        let r = backscatter_coexistence(CoexistTech::Wifi, 6, 2, 3);
        let mut absent = r.absent;
        let mut present = r.present;
        // Median stays healthy both ways (the paper's 61.8 kbps point is
        // with 1500-byte frames; our 1000-byte frames sit nearby).
        assert!(absent.median() > 45e3, "absent median {}", absent.median());
        // The interferer can only lower throughput.
        assert!(present.quantile(0.1) <= absent.quantile(0.1) + 1e3);
    }

    #[test]
    fn fig16_narrowband_links_barely_notice() {
        let rz = backscatter_coexistence(CoexistTech::Zigbee, 4, 2, 4);
        let mut za = rz.absent;
        let mut zp = rz.present;
        let shift = za.median() - zp.median();
        assert!(
            shift.abs() < 2.5e3,
            "ZigBee shift {shift} should be ~1–2 kbps"
        );

        let rb = backscatter_coexistence(CoexistTech::Ble, 4, 2, 5);
        let mut ba = rb.absent;
        let mut bp = rb.present;
        let shift = ba.median() - bp.median();
        assert!(shift.abs() < 4e3, "BLE shift {shift} should be small");
    }
}

#[cfg(test)]
mod rts_tests {
    use super::*;

    #[test]
    fn rts_cts_restores_the_tail_at_a_small_cost() {
        // §4.4.2: reservation removes interference-induced losses; the
        // price is the reservation airtime (~6 % for 1000-byte frames).
        let r = backscatter_coexistence(CoexistTech::Wifi, 6, 2, 9);
        let mut present = r.present;
        let mut protected = backscatter_with_rts_cts(CoexistTech::Wifi, 6, 2, 9);
        // The protected tail is at least as good as the unprotected one.
        assert!(
            protected.quantile(0.1) >= present.quantile(0.1) - 1e3,
            "protected p10 {} vs open p10 {}",
            protected.quantile(0.1),
            present.quantile(0.1)
        );
        // And the median pays only the reservation overhead (≲ 10 %).
        let mut absent = r.absent;
        let cost = 1.0 - protected.median() / absent.median();
        assert!((0.0..0.12).contains(&cost), "reservation cost {cost}");
    }
}
