//! Tag-data extraction from the two receivers' decoded streams.
//!
//! FreeRider's receiver architecture (Fig. 1 of the paper): receiver 1
//! decodes the original excitation packet, receiver 2 (on the adjacent
//! channel) decodes the backscattered copy. "The decoded bits streams from
//! the two receivers are compared to obtain the tag data" — Table 1's XOR
//! logic, hardened by majority voting over each tag bit's redundancy
//! window (the price of the scrambler/coder run-length effects, §3.2.1).

use freerider_dsp::bits::majority;
use freerider_dsp::Complex;
use freerider_telemetry as telemetry;
use freerider_telemetry::trace;

/// Records one majority-vote decision: the window size and how decisive
/// the vote was (|ones − zeros|; 0 = a coin toss, `len` = unanimous).
/// A tied vote is a decode failure class — the flight recorder marks the
/// current packet failed so the black box retains its full trace.
fn record_vote(kind: &'static str, window: &[u8]) {
    let ones = window.iter().filter(|&&b| b == 1).count();
    let margin = (2 * ones).abs_diff(window.len());
    telemetry::count(kind);
    telemetry::record("core.decode.vote_margin", margin as u64);
    trace::value_u64("core.decode.vote_margin", margin as u64);
    if margin == 0 {
        trace::fail("core.decode.vote_tie");
    }
}

/// Decodes WiFi tag bits by XOR + majority over OFDM-symbol windows.
///
/// * `original` / `backscattered` — the descrambled DATA-field bit streams
///   from the two receivers (`RxPacket::data_bits`), `n_dbps` bits per
///   OFDM symbol.
/// * `symbols_per_step` — the tag's redundancy window (4 at 6 Mbps).
/// * `start_symbol` — the first data symbol the tag modulated (1 with the
///   stock [`freerider_tag::translator::PhaseTranslator::wifi_binary`]
///   timing, which leaves the SERVICE symbol clean).
pub fn decode_wifi_binary(
    original: &[u8],
    backscattered: &[u8],
    n_dbps: usize,
    symbols_per_step: usize,
    start_symbol: usize,
) -> Vec<u8> {
    assert!(n_dbps > 0 && symbols_per_step > 0);
    let _stage = trace::stage("core.decode.wifi");
    let n = original.len().min(backscattered.len());
    let step_bits = n_dbps * symbols_per_step;
    let mut out = Vec::new();
    let mut pos = start_symbol * n_dbps;
    while pos + step_bits <= n {
        let window: Vec<u8> = (pos..pos + step_bits)
            .map(|k| original[k] ^ backscattered[k])
            .collect();
        record_vote("core.decode.wifi.windows", &window);
        out.push(majority(&window));
        pos += step_bits;
    }
    out
}

/// Decodes ZigBee tag bits: a backscattered data symbol that *differs*
/// from the original marks a flipped window (the complement of an
/// 802.15.4 chip sequence never decodes to itself — see
/// `freerider_zigbee::chips::complement_decode_table`).
///
/// * `original` / `backscattered` — PSDU data-symbol streams
///   (`RxPacket::psdu_symbols`).
/// * `symbols_per_step` — the tag's redundancy window (N of §3.2.2).
pub fn decode_zigbee_binary(
    original: &[u8],
    backscattered: &[u8],
    symbols_per_step: usize,
) -> Vec<u8> {
    assert!(symbols_per_step > 0);
    let _stage = trace::stage("core.decode.zigbee");
    let n = original.len().min(backscattered.len());
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + symbols_per_step <= n {
        let window: Vec<u8> = (pos..pos + symbols_per_step)
            .map(|k| u8::from(original[k] != backscattered[k]))
            .collect();
        record_vote("core.decode.zigbee.windows", &window);
        out.push(majority(&window));
        pos += symbols_per_step;
    }
    out
}

/// Decodes Bluetooth tag bits by XOR + majority over fixed bit windows.
///
/// * `original` / `backscattered` — dewhitened PDU bit streams
///   (`RxPacket::pdu_bits`).
/// * `window` — excitation bits per tag bit (16 with the stock
///   [`freerider_tag::translator::FskTranslator::ble`]).
/// * `start` — first PDU bit the tag modulated (16 with the stock
///   translator, which leaves the length header clean).
pub fn decode_ble_binary(
    original: &[u8],
    backscattered: &[u8],
    window: usize,
    start: usize,
) -> Vec<u8> {
    assert!(window > 0);
    let _stage = trace::stage("core.decode.ble");
    let n = original.len().min(backscattered.len());
    let mut out = Vec::new();
    let mut pos = start;
    while pos + window <= n {
        let w: Vec<u8> = (pos..pos + window)
            .map(|k| original[k] ^ backscattered[k])
            .collect();
        record_vote("core.decode.ble.windows", &w);
        out.push(majority(&w));
        pos += window;
    }
    out
}

/// Decodes quaternary (Eq. 5) WiFi tag data from the two receivers'
/// equalised constellation streams: the per-window common rotation is
/// estimated as `arg Σ b·conj(a)` and quantised to the nearest multiple of
/// `delta_theta`; each window yields two tag bits (MSB first).
pub fn decode_wifi_quaternary(
    original: &[[Complex; 48]],
    backscattered: &[[Complex; 48]],
    symbols_per_step: usize,
    start_symbol: usize,
    delta_theta: f64,
) -> Vec<u8> {
    assert!(symbols_per_step > 0 && delta_theta > 0.0);
    let _stage = trace::stage("core.decode.quaternary");
    let n = original.len().min(backscattered.len());
    let levels = (2.0 * std::f64::consts::PI / delta_theta).round() as i64;
    // The two receivers' residual carrier drifts differ and accumulate
    // over the packet, while the tag's rotations are exact multiples of
    // Δθ. The measured rotation r_w = tag·Δθ + drift_w, so `r_w mod Δθ`
    // exposes the drift alone; tracking it differentially (wrapped into
    // ±Δθ/2 so the tag steps fold out) reconstructs the smooth drift to
    // subtract — the same decision-directed idea the BPSK receiver uses.
    let wrap_q = |x: f64| x - delta_theta * (x / delta_theta).round();
    let mut out = Vec::new();
    let mut pos = start_symbol;
    let mut drift = 0.0f64;
    let mut prev_frac = None::<f64>;
    while pos + symbols_per_step <= n {
        let mut acc = Complex::ZERO;
        for s in pos..pos + symbols_per_step {
            for k in 0..48 {
                acc += backscattered[s][k] * original[s][k].conj();
            }
        }
        let r = acc.arg();
        let frac = wrap_q(r);
        match prev_frac {
            None => drift = frac, // drift ≈ 0 at the first window
            Some(p) => drift += wrap_q(frac - p),
        }
        prev_frac = Some(frac);
        let q = ((r - drift) / delta_theta).round() as i64;
        let value = q.rem_euclid(levels) as usize;
        telemetry::count("core.decode.quaternary.windows");
        // Two bits, MSB first (matches PhaseTranslator's bit packing).
        out.push(((value >> 1) & 1) as u8);
        out.push((value & 1) as u8);
        pos += symbols_per_step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_logic() {
        // Table 1 of the paper, expressed over 1-symbol windows: decoded
        // codeword != excitation codeword ⇔ tag bit 1.
        let orig = [0, 0, 1, 1];
        let back = [0, 1, 1, 0];
        let tag = decode_wifi_binary(&orig, &back, 1, 1, 0);
        assert_eq!(tag, vec![0, 1, 0, 1]);
    }

    #[test]
    fn wifi_majority_absorbs_boundary_errors() {
        // A 24-bit symbol × 4-symbol window with a few XOR errors at the
        // window edges must still decode correctly — the §3.2.1 mechanism.
        let n_dbps = 24;
        let orig = vec![0u8; n_dbps * 9];
        let mut back = orig.clone();
        // Tag bit pattern 1,0 starting at symbol 1: symbols 1–4 flipped.
        for b in back[n_dbps..5 * n_dbps].iter_mut() {
            *b ^= 1;
        }
        // Boundary damage: 5 wrong bits at each edge.
        for k in 0..5 {
            back[n_dbps + k] ^= 1;
            back[5 * n_dbps - 1 - k] ^= 1;
            back[5 * n_dbps + k] ^= 1;
        }
        let tag = decode_wifi_binary(&orig, &back, n_dbps, 4, 1);
        assert_eq!(tag, vec![1, 0]);
    }

    #[test]
    fn wifi_start_symbol_offsets_window() {
        let orig = vec![0u8; 6 * 2];
        let mut back = orig.clone();
        for b in back[2..4].iter_mut() {
            *b ^= 1; // symbol 1 flipped
        }
        assert_eq!(
            decode_wifi_binary(&orig, &back, 2, 1, 1),
            vec![1, 0, 0, 0, 0]
        );
        assert_eq!(
            decode_wifi_binary(&orig, &back, 2, 1, 0),
            vec![0, 1, 0, 0, 0, 0]
        );
    }

    #[test]
    fn zigbee_symbol_differences_mark_ones() {
        let orig = [3u8, 7, 1, 12, 5, 5, 9, 0];
        let back = [3u8, 7, 9, 4, 5, 5, 9, 0]; // symbols 2,3 translated
        assert_eq!(decode_zigbee_binary(&orig, &back, 2), vec![0, 1, 0, 0]);
    }

    #[test]
    fn zigbee_majority_tolerates_one_bad_symbol() {
        let orig = [1u8, 1, 1, 1, 2, 2, 2, 2];
        // Window 0 flipped but one symbol decoded back to the original by
        // chance; window 1 clean but one symbol corrupted.
        let back = [9u8, 9, 9, 1, 2, 2, 2, 7];
        assert_eq!(decode_zigbee_binary(&orig, &back, 4), vec![1, 0]);
    }

    #[test]
    fn ble_window_xor() {
        let orig = vec![0u8; 32];
        let mut back = orig.clone();
        for b in back[16..32].iter_mut() {
            *b ^= 1;
        }
        // 12/16 flips in window 1 (imperfect, as GFSK gives us).
        back[16] ^= 1;
        back[20] ^= 1;
        back[25] ^= 1;
        back[30] ^= 1;
        assert_eq!(decode_ble_binary(&orig, &back, 16, 0), vec![0, 1]);
    }

    #[test]
    fn truncated_streams_yield_whole_windows_only() {
        let orig = vec![0u8; 50];
        let back = vec![1u8; 47];
        let tag = decode_ble_binary(&orig, &back, 16, 0);
        assert_eq!(tag.len(), 2); // 47/16 = 2 whole windows
        assert_eq!(tag, vec![1, 1]);
    }

    #[test]
    fn quaternary_recovers_two_bits_per_window() {
        let base = [Complex::new(1.0, 0.0); 48];
        let original = vec![base; 5];
        let theta = std::f64::consts::FRAC_PI_2;
        // Windows (after symbol 1) rotated by 0°, 90°, 180°, 270°.
        let mut backscattered = original.clone();
        for (w, rot) in [(1usize, 0i32), (2, 1), (3, 2), (4, 3)] {
            let r = Complex::cis(theta * rot as f64);
            for k in 0..48 {
                backscattered[w][k] = base[k] * r;
            }
        }
        let bits = decode_wifi_quaternary(&original, &backscattered, 1, 1, theta);
        assert_eq!(bits, vec![0, 0, 0, 1, 1, 0, 1, 1]);
    }

    #[test]
    fn quaternary_tolerates_noise() {
        let base: Vec<Complex> = (0..48).map(|k| Complex::cis(k as f64)).collect();
        let mut orig_sym = [Complex::ZERO; 48];
        orig_sym.copy_from_slice(&base);
        let original = vec![orig_sym; 3];
        let mut backscattered = original.clone();
        let r = Complex::cis(std::f64::consts::FRAC_PI_2);
        for k in 0..48 {
            // 90° rotation plus small perturbation.
            backscattered[1][k] = original[1][k] * r + Complex::new(0.05, -0.03);
            backscattered[2][k] = original[2][k] * r + Complex::new(-0.04, 0.02);
        }
        let bits =
            decode_wifi_quaternary(&original, &backscattered, 2, 1, std::f64::consts::FRAC_PI_2);
        assert_eq!(bits, vec![0, 1]);
    }

    #[test]
    fn empty_inputs() {
        assert!(decode_wifi_binary(&[], &[], 24, 4, 1).is_empty());
        assert!(decode_zigbee_binary(&[], &[], 4).is_empty());
        assert!(decode_ble_binary(&[], &[], 16, 0).is_empty());
    }
}
