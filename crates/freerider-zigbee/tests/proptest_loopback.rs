//! Property: any payload survives the full 802.15.4 chain; any whole-symbol
//! phase flip translates deterministically per the complement table.

use freerider_zigbee::{Receiver, RxConfig, Transmitter};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_payload_round_trips(payload in prop::collection::vec(any::<u8>(), 0..120)) {
        let tx = Transmitter::new();
        let wave = tx.transmit(&payload).unwrap();
        let rx = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        let pkt = rx.receive(&wave).unwrap();
        prop_assert!(pkt.fcs_valid);
        prop_assert_eq!(pkt.ppdu.payload(), &payload[..]);
    }

    #[test]
    fn flipped_symbols_follow_the_complement_table(
        payload in prop::collection::vec(any::<u8>(), 10..60),
        flip_sym in 2usize..12,
    ) {
        let tx = Transmitter::new();
        let wave = tx.transmit(&payload).unwrap();
        let rx = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        let clean = rx.receive(&wave).unwrap();
        // Flip one interior PSDU symbol (plus a neighbour for the Q-rail
        // overhang, then check only the fully-flipped one).
        let s0 = (12 + flip_sym) * 64;
        let mut tagged = wave.clone();
        for z in tagged[s0..s0 + 128].iter_mut() {
            *z = -*z;
        }
        let t = rx.receive(&tagged).unwrap();
        let table = freerider_zigbee::chips::complement_decode_table();
        // The first of the two flipped symbols is fully flipped (its
        // trailing Q-rail overhang lands inside the flipped region); the
        // second one's last chip straddles the flip boundary, so only the
        // first is checked against the complement table.
        let orig = clean.psdu_symbols[flip_sym];
        prop_assert_eq!(t.psdu_symbols[flip_sym], table[orig as usize]);
        // Symbols well away from the flip are untouched.
        for k in 0..flip_sym.saturating_sub(1) {
            prop_assert_eq!(t.psdu_symbols[k], clean.psdu_symbols[k]);
        }
    }
}
