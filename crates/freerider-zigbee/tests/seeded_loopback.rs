//! Seeded-randomized properties: any payload survives the full 802.15.4
//! chain; any whole-symbol phase flip translates deterministically per the
//! complement table.

use freerider_rt::Rng64;
use freerider_zigbee::{Receiver, RxConfig, Transmitter};

const CASES: u64 = 24;
const SUITE_SEED: u64 = 0x2154_0001;

#[test]
fn any_payload_round_trips() {
    for case in 0..CASES {
        let mut rng = Rng64::derive(SUITE_SEED, case);
        let n = rng.index(120);
        let payload = rng.bytes(n);
        let tx = Transmitter::new();
        let wave = tx.transmit(&payload).unwrap();
        let rx = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        let pkt = rx.receive(&wave).unwrap();
        assert!(pkt.fcs_valid, "case {case}");
        assert_eq!(pkt.ppdu.payload(), &payload[..], "case {case}");
    }
}

#[test]
fn flipped_symbols_follow_the_complement_table() {
    for case in 0..CASES {
        let mut rng = Rng64::derive(SUITE_SEED ^ 1, case);
        let n = 10 + rng.index(50);
        let payload = rng.bytes(n);
        let flip_sym = 2 + rng.index(10);

        let tx = Transmitter::new();
        let wave = tx.transmit(&payload).unwrap();
        let rx = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        let clean = rx.receive(&wave).unwrap();
        // Flip one interior PSDU symbol (plus a neighbour for the Q-rail
        // overhang, then check only the fully-flipped one).
        let s0 = (12 + flip_sym) * 64;
        let mut tagged = wave.clone();
        for z in tagged[s0..s0 + 128].iter_mut() {
            *z = -*z;
        }
        let t = rx.receive(&tagged).unwrap();
        let table = freerider_zigbee::chips::complement_decode_table();
        // The first of the two flipped symbols is fully flipped (its
        // trailing Q-rail overhang lands inside the flipped region); the
        // second one's last chip straddles the flip boundary, so only the
        // first is checked against the complement table.
        let orig = clean.psdu_symbols[flip_sym];
        assert_eq!(
            t.psdu_symbols[flip_sym], table[orig as usize],
            "case {case}"
        );
        // Symbols well away from the flip are untouched.
        for k in 0..flip_sym.saturating_sub(1) {
            assert_eq!(
                t.psdu_symbols[k], clean.psdu_symbols[k],
                "case {case} sym {k}"
            );
        }
    }
}
