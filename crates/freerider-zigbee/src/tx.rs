//! The 802.15.4 O-QPSK transmitter.

use crate::chips::chip_sequence;
use crate::frame::{FrameError, Ppdu};
use crate::oqpsk::modulate_chips;
use freerider_dsp::IqBuf;

/// The 802.15.4 transmitter: payload bytes → 4 Msps complex baseband.
#[derive(Debug, Clone, Default)]
pub struct Transmitter;

impl Transmitter {
    /// Creates a transmitter.
    pub fn new() -> Self {
        Transmitter
    }

    /// Generates the PPDU waveform for `payload` (CRC appended internally).
    pub fn transmit(&self, payload: &[u8]) -> Result<IqBuf, FrameError> {
        let ppdu = Ppdu::build(payload)?;
        Ok(self.transmit_ppdu(&ppdu))
    }

    /// Generates the waveform for an already-framed PPDU.
    pub fn transmit_ppdu(&self, ppdu: &Ppdu) -> IqBuf {
        let symbols = ppdu.to_symbols();
        let mut chips = Vec::with_capacity(symbols.len() * 32);
        for &s in &symbols {
            chips.extend_from_slice(&chip_sequence(s));
        }
        modulate_chips(&chips)
    }

    /// Waveform length in samples for a `payload_len`-byte payload.
    pub fn ppdu_len_samples(&self, payload_len: usize) -> usize {
        let n_sym = 8 + 2 + 2 + 2 * (payload_len + 2);
        n_sym * crate::SAMPLES_PER_SYMBOL + crate::SAMPLES_PER_CHIP
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freerider_dsp::db;

    #[test]
    fn waveform_length() {
        let tx = Transmitter::new();
        let wave = tx.transmit(b"0123456789").unwrap();
        assert_eq!(wave.len(), tx.ppdu_len_samples(10));
        // 10+2 bytes PSDU → 24 symbols + 12 SHR/PHR symbols = 36 symbols
        // of 64 samples (+ 2-sample Q overhang).
        assert_eq!(wave.len(), 36 * 64 + 2);
    }

    #[test]
    fn near_unit_envelope() {
        let tx = Transmitter::new();
        let wave = tx.transmit(&[0xAA; 20]).unwrap();
        let p = db::mean_power(&wave);
        assert!((p - 1.0).abs() < 0.1, "power {p}");
    }

    #[test]
    fn airtime_matches_250kbps() {
        // 32-byte payload + 2 FCS = 34 bytes = 68 symbols of 16 µs
        // → 1088 µs for the PSDU alone; plus 12 SHR/PHR symbols = 192 µs.
        let tx = Transmitter::new();
        let wave = tx.transmit(&[0u8; 32]).unwrap();
        let us = wave.len() as f64 / 4.0;
        assert!((us - (1088.0 + 192.0)).abs() < 1.0, "airtime {us}");
    }
}
