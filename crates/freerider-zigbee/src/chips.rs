//! The sixteen 802.15.4 pseudo-noise chip sequences
//! (IEEE 802.15.4-2011 Table 73).
//!
//! Symbols 0–7 are 4-chip cyclic rotations of a base sequence; symbols
//! 8–15 are symbols 0–7 with the odd-indexed chips inverted.

use crate::CHIPS_PER_SYMBOL;

/// Base chip sequence for data symbol 0 (c₀ … c₃₁).
pub const BASE: [u8; 32] = [
    1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0,
];

/// Returns the 32-chip sequence for data symbol `symbol` (0–15).
///
/// # Panics
/// Panics if `symbol > 15`.
pub fn chip_sequence(symbol: u8) -> [u8; 32] {
    assert!(symbol < 16, "802.15.4 data symbols are 0–15");
    let rot = (symbol as usize % 8) * 4;
    let mut out = [0u8; 32];
    for (n, o) in out.iter_mut().enumerate() {
        // Right cyclic rotation by `rot` chips.
        *o = BASE[(n + CHIPS_PER_SYMBOL - rot) % CHIPS_PER_SYMBOL];
    }
    if symbol >= 8 {
        for (n, o) in out.iter_mut().enumerate() {
            if n % 2 == 1 {
                *o ^= 1;
            }
        }
    }
    out
}

/// All 16 sequences as bipolar (±1) vectors, for correlation receivers.
pub fn bipolar_table() -> [[f64; 32]; 16] {
    let mut t = [[0.0; 32]; 16];
    for (s, row) in t.iter_mut().enumerate() {
        let seq = chip_sequence(s as u8);
        for (n, v) in row.iter_mut().enumerate() {
            *v = if seq[n] == 1 { 1.0 } else { -1.0 };
        }
    }
    t
}

/// Correlates a soft bipolar chip vector against all 16 codes and returns
/// `(best_symbol, best_score)` by maximum real correlation.
pub fn correlate(soft_chips: &[f64; 32]) -> (u8, f64) {
    let table = bipolar_table();
    let mut best = (0u8, f64::NEG_INFINITY);
    for (s, row) in table.iter().enumerate() {
        let score: f64 = row.iter().zip(soft_chips.iter()).map(|(a, b)| a * b).sum();
        if score > best.1 {
            best = (s as u8, score);
        }
    }
    best
}

/// The deterministic "complement translation" table: which symbol a
/// correlation receiver decodes when all 32 chips of symbol `s` are
/// inverted (what a FreeRider tag's 180° flip produces). Computed, not
/// hard-coded, so it always matches [`correlate`].
pub fn complement_decode_table() -> [u8; 16] {
    let mut out = [0u8; 16];
    for (s, o) in out.iter_mut().enumerate() {
        let seq = chip_sequence(s as u8);
        let mut soft = [0.0f64; 32];
        for (n, v) in soft.iter_mut().enumerate() {
            // Inverted bipolar chips.
            *v = if seq[n] == 1 { -1.0 } else { 1.0 };
        }
        *o = correlate(&soft).0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_distinct() {
        for a in 0..16u8 {
            for b in (a + 1)..16 {
                assert_ne!(chip_sequence(a), chip_sequence(b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn rotation_structure() {
        let s0 = chip_sequence(0);
        let s1 = chip_sequence(1);
        // Symbol 1 is symbol 0 right-rotated by 4 chips.
        for n in 0..32 {
            assert_eq!(s1[(n + 4) % 32], s0[n]);
        }
    }

    #[test]
    fn upper_symbols_invert_odd_chips() {
        for s in 0..8u8 {
            let lo = chip_sequence(s);
            let hi = chip_sequence(s + 8);
            for n in 0..32 {
                if n % 2 == 0 {
                    assert_eq!(lo[n], hi[n]);
                } else {
                    assert_eq!(lo[n] ^ 1, hi[n]);
                }
            }
        }
    }

    #[test]
    fn autocorrelation_dominates_cross_correlation() {
        let table = bipolar_table();
        for a in 0..16 {
            for b in 0..16 {
                let c: f64 = table[a].iter().zip(&table[b]).map(|(x, y)| x * y).sum();
                if a == b {
                    assert_eq!(c, 32.0);
                } else {
                    assert!(c.abs() <= 16.0, "cross-corr {a},{b} = {c}");
                }
            }
        }
    }

    #[test]
    fn clean_chips_decode_correctly() {
        let table = bipolar_table();
        for s in 0..16u8 {
            let (dec, score) = correlate(&table[s as usize]);
            assert_eq!(dec, s);
            assert_eq!(score, 32.0);
        }
    }

    #[test]
    fn complement_is_not_a_codeword_but_translates_deterministically() {
        let t = complement_decode_table();
        for s in 0..16u8 {
            // The complement never decodes back to itself…
            assert_ne!(t[s as usize], s, "symbol {s}");
        }
        // …and the translation is stable (pure function).
        assert_eq!(t, complement_decode_table());
        // The FreeRider XOR decoder relies on translate(s) ≠ s for every s,
        // which the loop above established.
    }

    #[test]
    #[should_panic]
    fn symbol_out_of_range_panics() {
        let _ = chip_sequence(16);
    }
}
