//! # freerider-zigbee
//!
//! A complete software IEEE 802.15.4 2.4 GHz O-QPSK physical layer
//! ("ZigBee" PHY): 250 kbps, 32-chip DSSS at 2 Mchip/s, half-sine pulse
//! shaping, at 4 Msps complex baseband (2 samples/chip).
//!
//! This is the ZigBee excitation/reception substrate for FreeRider
//! (paper §2.3.2, §3.2.2, §4.2.2):
//!
//! * [`chips`] — the 16 pseudo-noise chip sequences and their correlation
//!   structure.
//! * [`oqpsk`] — half-sine O-QPSK chip modulation and demodulation.
//! * [`frame`] — PPDU assembly (preamble, SFD, PHR, PSDU + CRC-16).
//! * [`tx::Transmitter`] / [`rx::Receiver`] — the full chains.
//!
//! ## FreeRider-relevant behaviour
//!
//! A tag's 180° phase flip inverts **all 32 chips** of a symbol. The
//! complement of a valid chip sequence is *not* one of the 16 codewords, so
//! the correlation receiver maps it to whichever codeword the complement is
//! closest to — a deterministic translation with a much smaller correlation
//! margin than a clean symbol. That is exactly why the paper measures a
//! higher tag BER on ZigBee (~5e-2, Fig. 12b) than on WiFi, and why §3.2.2
//! spreads one tag bit over N symbols (N=8 suffices; we default to 4 to
//! match the reported ~15 kbps at 250 kbps excitation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chips;
pub mod frame;
pub mod oqpsk;
pub mod rx;
pub mod tx;

pub use rx::{Receiver, RxConfig, RxError, RxPacket};
pub use tx::Transmitter;

/// Baseband sample rate: 2 samples per chip at 2 Mchip/s.
pub const SAMPLE_RATE: f64 = 4e6;

/// Samples per chip.
pub const SAMPLES_PER_CHIP: usize = 2;

/// Chips per data symbol.
pub const CHIPS_PER_SYMBOL: usize = 32;

/// Samples per data symbol (16 µs).
pub const SAMPLES_PER_SYMBOL: usize = CHIPS_PER_SYMBOL * SAMPLES_PER_CHIP;

/// Data symbol duration in seconds.
pub const SYMBOL_TIME: f64 = 16e-6;
