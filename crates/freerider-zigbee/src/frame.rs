//! 802.15.4 PPDU framing: preamble, SFD, PHR and PSDU with CRC-16 FCS.

use freerider_coding::crc;

/// Number of zero symbols in the synchronisation preamble (4 octets).
pub const PREAMBLE_SYMBOLS: usize = 8;

/// The start-of-frame delimiter octet.
pub const SFD: u8 = 0xA7;

/// Maximum PSDU size (aMaxPHYPacketSize).
pub const MAX_PSDU_LEN: usize = 127;

/// Errors from [`Ppdu::build`] / [`Ppdu::parse_after_sfd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// PSDU larger than 127 bytes.
    TooLong(usize),
    /// Symbol stream shorter than the PHR-declared length.
    Truncated,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLong(n) => write!(f, "PSDU of {n} bytes exceeds 127"),
            FrameError::Truncated => write!(f, "PPDU truncated"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Converts octets to 4-bit data symbols, low nibble first.
pub fn bytes_to_symbols(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(b & 0x0F);
        out.push(b >> 4);
    }
    out
}

/// Converts 4-bit symbols back to octets (low nibble first). Odd trailing
/// symbols are dropped.
pub fn symbols_to_bytes(symbols: &[u8]) -> Vec<u8> {
    symbols
        .chunks_exact(2)
        .map(|p| (p[0] & 0x0F) | ((p[1] & 0x0F) << 4))
        .collect()
}

/// An 802.15.4 PPDU at the symbol level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ppdu {
    /// The MPDU (payload + 2-byte FCS).
    pub psdu: Vec<u8>,
}

impl Ppdu {
    /// Builds a PPDU around `payload`, appending the CRC-16 FCS.
    pub fn build(payload: &[u8]) -> Result<Ppdu, FrameError> {
        if payload.len() + 2 > MAX_PSDU_LEN {
            return Err(FrameError::TooLong(payload.len() + 2));
        }
        let mut psdu = payload.to_vec();
        crc::append_crc16(&mut psdu);
        Ok(Ppdu { psdu })
    }

    /// The full symbol stream: preamble, SFD, PHR, PSDU.
    pub fn to_symbols(&self) -> Vec<u8> {
        let mut sym = vec![0u8; PREAMBLE_SYMBOLS];
        sym.extend(bytes_to_symbols(&[SFD]));
        sym.extend(bytes_to_symbols(&[self.psdu.len() as u8 & 0x7F]));
        sym.extend(bytes_to_symbols(&self.psdu));
        sym
    }

    /// Parses a symbol stream beginning at the PHR (i.e. after the SFD).
    /// Returns the PPDU and the number of symbols consumed.
    pub fn parse_after_sfd(symbols: &[u8]) -> Result<(Ppdu, usize), FrameError> {
        if symbols.len() < 2 {
            return Err(FrameError::Truncated);
        }
        let len = (symbols_to_bytes(&symbols[..2])[0] & 0x7F) as usize;
        let need = 2 + 2 * len;
        if symbols.len() < need {
            return Err(FrameError::Truncated);
        }
        let psdu = symbols_to_bytes(&symbols[2..need]);
        Ok((Ppdu { psdu }, need))
    }

    /// Whether the trailing FCS matches.
    pub fn fcs_valid(&self) -> bool {
        crc::check_crc16(&self.psdu)
    }

    /// Payload without the FCS (empty if the PSDU is impossibly short).
    pub fn payload(&self) -> &[u8] {
        if self.psdu.len() >= 2 {
            &self.psdu[..self.psdu.len() - 2]
        } else {
            &[]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nibble_round_trip() {
        let data = [0x12, 0xAF, 0x00, 0xFF];
        assert_eq!(symbols_to_bytes(&bytes_to_symbols(&data)), data);
        assert_eq!(bytes_to_symbols(&[0xA7]), vec![0x7, 0xA]);
    }

    #[test]
    fn build_and_parse() {
        let p = Ppdu::build(b"zigbee payload").unwrap();
        assert!(p.fcs_valid());
        let symbols = p.to_symbols();
        assert_eq!(symbols.len(), 8 + 2 + 2 + 2 * p.psdu.len());
        // Preamble is zeros, SFD follows.
        assert!(symbols[..8].iter().all(|&s| s == 0));
        assert_eq!(&symbols[8..10], &[0x7, 0xA]);
        let (parsed, used) = Ppdu::parse_after_sfd(&symbols[10..]).unwrap();
        assert_eq!(used, symbols.len() - 10);
        assert_eq!(parsed, p);
        assert_eq!(parsed.payload(), b"zigbee payload");
    }

    #[test]
    fn corrupted_fcs_detected() {
        let mut p = Ppdu::build(b"abc").unwrap();
        p.psdu[0] ^= 0x10;
        assert!(!p.fcs_valid());
    }

    #[test]
    fn oversize_rejected() {
        assert_eq!(
            Ppdu::build(&[0u8; 126]).unwrap_err(),
            FrameError::TooLong(128)
        );
        // 125 + 2 FCS = 127 is the maximum.
        assert!(Ppdu::build(&[0u8; 125]).is_ok());
    }

    #[test]
    fn truncated_rejected() {
        let p = Ppdu::build(b"0123456789").unwrap();
        let symbols = p.to_symbols();
        assert_eq!(
            Ppdu::parse_after_sfd(&symbols[10..symbols.len() - 3]).unwrap_err(),
            FrameError::Truncated
        );
        assert_eq!(
            Ppdu::parse_after_sfd(&[0x5]).unwrap_err(),
            FrameError::Truncated
        );
    }
}
