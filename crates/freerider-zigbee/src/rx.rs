//! The 802.15.4 O-QPSK receiver.
//!
//! Synchronisation: cross-correlate the incoming baseband with the known
//! waveform of two preamble (symbol-0) periods; estimate the carrier phase
//! from the complex correlation peak; derotate; then walk the symbol grid,
//! despread each 32-chip block against the 16 codes, find the SFD and
//! decode PHR + PSDU.
//!
//! The phase estimate is made **once, from the preamble** — the receiver
//! does not continuously re-track phase. This models the commodity ZigBee
//! receivers in the paper, and is precisely why a FreeRider tag's mid-frame
//! 180° flips survive to the despreader (§3.2.2).

use crate::chips::{chip_sequence, correlate};
use crate::frame::{Ppdu, MAX_PSDU_LEN, SFD};
use crate::oqpsk::{demodulate_chips, modulate_chips};
use crate::{CHIPS_PER_SYMBOL, SAMPLES_PER_SYMBOL};
use freerider_dsp::{corr, db, Complex};
use freerider_telemetry as telemetry;
use freerider_telemetry::{profile, trace};

/// Receiver configuration.
#[derive(Debug, Clone, Copy)]
pub struct RxConfig {
    /// Normalised preamble-correlation threshold in `[0, 1]`.
    pub detection_threshold: f64,
    /// Minimum RSSI (dBm) for synchronisation — the CC2650-class receiver
    /// sensitivity that limits ZigBee backscatter to ~22 m in Fig. 12.
    pub sensitivity_dbm: f64,
}

impl Default for RxConfig {
    fn default() -> Self {
        RxConfig {
            detection_threshold: 0.62,
            sensitivity_dbm: -97.0,
        }
    }
}

/// Errors from [`Receiver::receive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxError {
    /// No preamble above threshold/sensitivity.
    NoPreamble,
    /// Preamble found but no SFD followed.
    NoSfd,
    /// Buffer ended mid-frame.
    Truncated,
}

impl std::fmt::Display for RxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RxError::NoPreamble => write!(f, "no 802.15.4 preamble detected"),
            RxError::NoSfd => write!(f, "SFD not found after preamble"),
            RxError::Truncated => write!(f, "PPDU truncated"),
        }
    }
}

impl std::error::Error for RxError {}

/// A received 802.15.4 frame.
#[derive(Debug, Clone)]
pub struct RxPacket {
    /// The decoded PPDU (PSDU with FCS).
    pub ppdu: Ppdu,
    /// Whether the CRC-16 FCS matched.
    pub fcs_valid: bool,
    /// The raw decoded data symbols of the PSDU (two per byte), before
    /// nibble packing — the stream the FreeRider XOR decoder compares.
    pub psdu_symbols: Vec<u8>,
    /// Per-symbol despreading correlation scores (max 32); low scores mark
    /// tag-flipped symbols, which correlate weakly (complements are not
    /// codewords).
    pub symbol_scores: Vec<f64>,
    /// Preamble RSSI in dBm.
    pub rssi_dbm: f64,
    /// Sample index of the first preamble symbol.
    pub start: usize,
    /// Sample index one past the last PSDU symbol.
    pub end: usize,
}

/// The 802.15.4 receiver.
#[derive(Debug, Clone)]
pub struct Receiver {
    config: RxConfig,
    sync_ref: Vec<Complex>,
}

impl Receiver {
    /// Creates a receiver.
    pub fn new(config: RxConfig) -> Self {
        // Reference: two symbol-0 periods of the preamble.
        let mut chips = Vec::with_capacity(64);
        chips.extend_from_slice(&chip_sequence(0));
        chips.extend_from_slice(&chip_sequence(0));
        let mut sync_ref = modulate_chips(&chips);
        sync_ref.truncate(2 * SAMPLES_PER_SYMBOL);
        Receiver { config, sync_ref }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RxConfig {
        &self.config
    }

    /// Receives the first frame found in `samples`.
    pub fn receive(&self, samples: &[Complex]) -> Result<RxPacket, RxError> {
        telemetry::count("zigbee.rx.receive.calls");
        let _span = telemetry::span("zigbee.rx.receive");
        let _stage = trace::stage("zigbee.rx.receive");
        let _prof = profile::scope("zigbee.rx");
        profile::items(samples.len() as u64);
        // --- Detect the preamble. ---
        let prof_detect = profile::scope("detect");
        let c = corr::normalized_correlation(samples, &self.sync_ref);
        let thr = self.config.detection_threshold;
        let i = match corr::first_above(&c, thr) {
            Some(i) => i,
            None => return Err(RxError::NoPreamble),
        };
        telemetry::count("zigbee.rx.preamble.locks");
        // Refine to the local peak.
        let mut best = i;
        for j in i..(i + 4).min(c.len()) {
            if c[j] > c[best] {
                best = j;
            }
        }
        let start = best;

        let rssi_dbm = db::mean_power_dbm(
            &samples[start..(start + 8 * SAMPLES_PER_SYMBOL).min(samples.len())],
        );
        if rssi_dbm < self.config.sensitivity_dbm {
            telemetry::count("zigbee.rx.sensitivity_drops");
            return Err(RxError::NoPreamble);
        }
        drop(prof_detect);

        // --- Phase estimate from the complex correlation at the peak. ---
        let prof_sync = profile::scope("sync");
        let refc = &self.sync_ref;
        let mut acc = Complex::ZERO;
        for (k, &r) in refc.iter().enumerate() {
            if start + k >= samples.len() {
                break;
            }
            acc += samples[start + k] * r.conj();
        }
        let phase = acc.arg();
        trace::value_f64("zigbee.rx.phase", phase);
        let derot = Complex::cis(-phase);
        // lint: allow(a1) — one per-packet derotation buffer, sized once before the symbol loop
        let corrected: Vec<Complex> = samples[start..].iter().map(|&z| z * derot).collect();
        drop(prof_sync);

        let prof_despread = profile::scope("despread");
        // --- Walk the symbol grid looking for the SFD. ---
        // The preamble has 8 zero symbols; the correlator may have locked
        // onto any of them, so scan up to 10 symbols for the SFD pair (7, A).
        let decode_symbol = |idx: usize| -> Option<(u8, f64)> {
            let soft = demodulate_chips(&corrected, idx * SAMPLES_PER_SYMBOL, CHIPS_PER_SYMBOL)?;
            let mut arr = [0.0f64; 32];
            arr.copy_from_slice(&soft);
            Some(correlate(&arr))
        };
        let sfd_syms = [SFD & 0x0F, SFD >> 4];
        let mut sfd_at = None;
        for idx in 0..10 {
            match (decode_symbol(idx), decode_symbol(idx + 1)) {
                (Some((a, _)), Some((b, _))) if a == sfd_syms[0] && b == sfd_syms[1] => {
                    sfd_at = Some(idx);
                    break;
                }
                (None, _) | (_, None) => return Err(RxError::Truncated),
                _ => {}
            }
        }
        let sfd_at = sfd_at.ok_or_else(|| {
            telemetry::count("zigbee.rx.sfd.misses");
            RxError::NoSfd
        })?;
        telemetry::count("zigbee.rx.sfd.locks");

        // --- PHR. ---
        let phr_idx = sfd_at + 2;
        let (l0, _) = decode_symbol(phr_idx).ok_or(RxError::Truncated)?;
        let (l1, _) = decode_symbol(phr_idx + 1).ok_or(RxError::Truncated)?;
        let psdu_len = ((l0 as usize) | ((l1 as usize) << 4)) & 0x7F;
        let n_psdu_sym = 2 * psdu_len;

        // --- PSDU. ---
        // `psdu_len` is masked to 7 bits, so at most 254 data symbols:
        // the despread loop fills fixed stack arrays and the packet's
        // owned buffers are built once, after the hot loop, in
        // `own_symbol_buffers`.
        let mut sym_arr = [0u8; 2 * MAX_PSDU_LEN];
        let mut score_arr = [0.0f64; 2 * MAX_PSDU_LEN];
        for k in 0..n_psdu_sym {
            let (s, score) = decode_symbol(phr_idx + 2 + k).ok_or(RxError::Truncated)?;
            sym_arr[k] = s;
            score_arr[k] = score;
        }
        let (psdu_symbols, symbol_scores) =
            own_symbol_buffers(&sym_arr[..n_psdu_sym], &score_arr[..n_psdu_sym]);
        telemetry::count_n("zigbee.rx.despread.symbols", (4 + n_psdu_sym) as u64);
        profile::work("despread.symbols", (4 + n_psdu_sym) as u64);
        if trace::in_packet() && !symbol_scores.is_empty() {
            trace::value_f64s("zigbee.rx.symbol_scores", &symbol_scores);
        }
        drop(prof_despread);
        let prof_fcs = profile::scope("fcs");
        let psdu = crate::frame::symbols_to_bytes(&psdu_symbols);
        let ppdu = Ppdu { psdu };
        let fcs_valid = ppdu.fcs_valid();
        telemetry::count(if fcs_valid {
            "zigbee.rx.fcs.ok"
        } else {
            "zigbee.rx.fcs.bad"
        });
        drop(prof_fcs);
        trace::value_str("zigbee.rx.fcs", if fcs_valid { "ok" } else { "bad" });
        telemetry::count("zigbee.rx.packets");
        profile::bits(8 * psdu_len as u64);
        telemetry::record("zigbee.rx.psdu_bytes", psdu_len as u64);
        telemetry::event!(
            Debug,
            "zigbee.rx",
            "packet: {psdu_len} B, FCS {}",
            if fcs_valid { "ok" } else { "BAD" }
        );
        let end = start + (phr_idx + 2 + n_psdu_sym) * SAMPLES_PER_SYMBOL;
        Ok(RxPacket {
            ppdu,
            fcs_valid,
            psdu_symbols,
            symbol_scores,
            rssi_dbm,
            start,
            end,
        })
    }
}

/// Builds the packet's owned symbol/score buffers from the despread
/// loop's stack arrays. The one unavoidable per-packet output allocation
/// lives here, outside the A1-designated receive kernel.
fn own_symbol_buffers(symbols: &[u8], scores: &[f64]) -> (Vec<u8>, Vec<f64>) {
    (symbols.to_vec(), scores.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::Transmitter;
    use freerider_dsp::noise::NoiseSource;

    fn rx_test() -> Receiver {
        Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        })
    }

    #[test]
    fn noiseless_loopback() {
        let tx = Transmitter::new();
        let mut buf = vec![Complex::ZERO; 77];
        buf.extend(tx.transmit(b"hello zigbee").unwrap());
        buf.extend(vec![Complex::ZERO; 50]);
        let pkt = rx_test().receive(&buf).unwrap();
        assert!(pkt.fcs_valid);
        assert_eq!(pkt.ppdu.payload(), b"hello zigbee");
        assert!(pkt.symbol_scores.iter().all(|&s| s > 30.0));
    }

    #[test]
    fn loopback_with_noise() {
        let tx = Transmitter::new();
        let mut buf = vec![Complex::ZERO; 33];
        buf.extend(tx.transmit(&[0x42; 30]).unwrap());
        NoiseSource::new(4, 0.25).add_to(&mut buf); // ~6 dB chip SNR
        let pkt = rx_test().receive(&buf).unwrap();
        assert!(pkt.fcs_valid, "DSSS gain should carry 6 dB chip SNR");
        assert_eq!(pkt.ppdu.payload(), &[0x42; 30]);
    }

    #[test]
    fn loopback_with_phase_offset() {
        let tx = Transmitter::new();
        let wave = tx.transmit(b"rotated").unwrap();
        let rot = Complex::cis(1.1);
        let rotated: Vec<Complex> = wave.iter().map(|&z| z * rot).collect();
        let pkt = rx_test().receive(&rotated).unwrap();
        assert!(pkt.fcs_valid);
        assert_eq!(pkt.ppdu.payload(), b"rotated");
    }

    #[test]
    fn noise_only_no_preamble() {
        let buf = NoiseSource::new(8, 1.0).take(3000);
        assert_eq!(rx_test().receive(&buf).unwrap_err(), RxError::NoPreamble);
    }

    #[test]
    fn sensitivity_gate() {
        let tx = Transmitter::new();
        let wave = tx.transmit(b"weak").unwrap();
        let weak: Vec<Complex> = wave
            .iter()
            .map(|&z| z * freerider_dsp::db::field_scale(-99.0))
            .collect();
        let rx = Receiver::new(RxConfig::default()); // −97 dBm sensitivity
        assert_eq!(rx.receive(&weak).unwrap_err(), RxError::NoPreamble);
    }

    #[test]
    fn truncated_frame() {
        let tx = Transmitter::new();
        let wave = tx.transmit(&[7u8; 40]).unwrap();
        let cut = &wave[..wave.len() / 2];
        assert_eq!(rx_test().receive(cut).unwrap_err(), RxError::Truncated);
    }

    #[test]
    fn midframe_phase_flip_changes_symbols_deterministically() {
        // Flip a 4-symbol run in the middle of the PSDU by 180° and check
        // the receiver decodes different symbols there (the complement
        // translation) with reduced correlation scores — the FreeRider
        // ZigBee mechanism.
        let tx = Transmitter::new();
        let payload = [0x5Au8; 20];
        let wave = tx.transmit(&payload).unwrap();
        let clean = rx_test().receive(&wave).unwrap();

        // PSDU starts after 12 symbols (8 preamble + 2 SFD + 2 PHR).
        let flip_from = 12 + 6;
        let flip_to = 12 + 10;
        let mut tagged_wave = wave.clone();
        for z in
            tagged_wave[flip_from * SAMPLES_PER_SYMBOL..flip_to * SAMPLES_PER_SYMBOL].iter_mut()
        {
            *z = -*z;
        }
        let tagged = rx_test().receive(&tagged_wave).unwrap();
        assert!(!tagged.fcs_valid);
        let table = crate::chips::complement_decode_table();
        // Interior flipped symbols (skip the boundary symbols, which are
        // only partially flipped because of the Q-rail offset).
        for k in 7..9 {
            let orig = clean.psdu_symbols[k];
            let got = tagged.psdu_symbols[k];
            assert_eq!(got, table[orig as usize], "symbol {k}");
            assert!(got != orig, "symbol {k} must translate");
            assert!(
                tagged.symbol_scores[k] < 31.0,
                "flipped symbol should correlate below a clean one"
            );
        }
        // Symbols outside the run decode unchanged.
        for k in 0..5 {
            assert_eq!(clean.psdu_symbols[k], tagged.psdu_symbols[k]);
        }
        for k in 11..tagged.psdu_symbols.len() {
            assert_eq!(clean.psdu_symbols[k], tagged.psdu_symbols[k]);
        }
    }
}

impl RxPacket {
    /// Link quality indicator in the 802.15.4 style: the mean despreading
    /// correlation mapped to 0–255 (255 = every chip matched). Tag-flipped
    /// symbols drag LQI down because complements are not codewords — a
    /// cheap backscatter-presence hint a coordinator could use.
    pub fn lqi(&self) -> u8 {
        if self.symbol_scores.is_empty() {
            return 0;
        }
        let mean: f64 = self.symbol_scores.iter().sum::<f64>() / self.symbol_scores.len() as f64;
        ((mean / 32.0).clamp(0.0, 1.0) * 255.0).round() as u8
    }
}

#[cfg(test)]
mod lqi_tests {
    use super::*;
    use crate::tx::Transmitter;

    #[test]
    fn clean_frames_have_high_lqi() {
        let tx = Transmitter::new();
        let wave = tx.transmit(&[0x42; 20]).unwrap();
        let rx = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        let pkt = rx.receive(&wave).unwrap();
        assert!(pkt.lqi() > 245, "clean LQI {}", pkt.lqi());
    }

    #[test]
    fn tag_flips_reduce_lqi() {
        let tx = Transmitter::new();
        let wave = tx.transmit(&[0x42; 20]).unwrap();
        let rx = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        let clean = rx.receive(&wave).unwrap();
        // Flip half of the PSDU region.
        let mut tagged = wave.clone();
        let psdu_start = 12 * SAMPLES_PER_SYMBOL;
        let mid = psdu_start + (wave.len() - psdu_start) / 2;
        for z in tagged[psdu_start..mid].iter_mut() {
            *z = -*z;
        }
        let t = rx.receive(&tagged).unwrap();
        assert!(
            t.lqi() < clean.lqi() - 40,
            "tagged LQI {} vs clean {}",
            t.lqi(),
            clean.lqi()
        );
    }
}
