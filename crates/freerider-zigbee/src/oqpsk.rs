//! Half-sine O-QPSK chip modulation and demodulation.
//!
//! Even-indexed chips ride the I rail, odd-indexed chips the Q rail, offset
//! by one chip period Tc (half the pulse duration). Each chip is shaped as
//! a half-sine spanning 2·Tc, so the composite signal is constant-envelope
//! (MSK-equivalent). The offset prevents 180° transitions *between
//! neighbouring chips* — the PAPR property §3.2.2 of the paper says a tag
//! flip momentarily violates, which is why one tag bit spans N symbols.

use crate::{SAMPLES_PER_CHIP, SAMPLES_PER_SYMBOL};
use freerider_dsp::Complex;

/// Half-sine pulse sample at sub-pulse position `k` of `2·SAMPLES_PER_CHIP`.
#[inline]
fn pulse(k: usize) -> f64 {
    (std::f64::consts::PI * k as f64 / (2 * SAMPLES_PER_CHIP) as f64).sin()
}

/// Modulates a chip stream (values 0/1, even chips → I, odd chips → Q) into
/// complex baseband. Output length is
/// `chips.len()/2 × 2·SAMPLES_PER_CHIP + SAMPLES_PER_CHIP` samples: the Q
/// rail's one-chip offset extends past the last I pulse.
///
/// # Panics
/// Panics if `chips.len()` is odd.
pub fn modulate_chips(chips: &[u8]) -> Vec<Complex> {
    assert!(
        chips.len().is_multiple_of(2),
        "need an even number of chips"
    );
    let n_pairs = chips.len() / 2;
    let pulse_len = 2 * SAMPLES_PER_CHIP;
    let out_len = n_pairs * pulse_len + SAMPLES_PER_CHIP;
    let mut out = vec![Complex::ZERO; out_len];
    for i in 0..n_pairs {
        let ci = if chips[2 * i] == 1 { 1.0 } else { -1.0 };
        let cq = if chips[2 * i + 1] == 1 { 1.0 } else { -1.0 };
        let i_start = i * pulse_len;
        let q_start = i_start + SAMPLES_PER_CHIP; // Tc offset
        for k in 0..pulse_len {
            out[i_start + k].re += ci * pulse(k);
            out[q_start + k].im += cq * pulse(k);
        }
    }
    out
}

/// Recovers soft bipolar chips from a baseband O-QPSK waveform starting at
/// `offset` (the first I pulse's first sample), reading `n_chips` chips.
/// Uses a per-pulse matched filter (dot product with the half-sine).
///
/// Returns `None` if the buffer is too short.
pub fn demodulate_chips(samples: &[Complex], offset: usize, n_chips: usize) -> Option<Vec<f64>> {
    let pulse_len = 2 * SAMPLES_PER_CHIP;
    let energy: f64 = (0..pulse_len).map(|k| pulse(k) * pulse(k)).sum();
    let mut chips = Vec::with_capacity(n_chips);
    for c in 0..n_chips {
        let pair = c / 2;
        let start = if c % 2 == 0 {
            offset + pair * pulse_len
        } else {
            offset + pair * pulse_len + SAMPLES_PER_CHIP
        };
        if start + pulse_len > samples.len() {
            return None;
        }
        let mut acc = 0.0;
        for k in 0..pulse_len {
            let s = samples[start + k];
            acc += pulse(k) * if c % 2 == 0 { s.re } else { s.im };
        }
        chips.push(acc / energy);
    }
    Some(chips)
}

/// Number of baseband samples occupied by `n` whole symbols (excluding the
/// trailing Q-rail overhang).
pub fn symbol_span(n: usize) -> usize {
    n * SAMPLES_PER_SYMBOL
}

#[cfg(test)]
mod tests {
    use super::*;
    use freerider_dsp::noise::NoiseSource;

    #[test]
    fn round_trip_clean() {
        let chips: Vec<u8> = (0..64).map(|i| ((i * 11) % 3 == 0) as u8).collect();
        let wave = modulate_chips(&chips);
        let soft = demodulate_chips(&wave, 0, 64).unwrap();
        for (i, (&c, &s)) in chips.iter().zip(soft.iter()).enumerate() {
            let hard = u8::from(s > 0.0);
            assert_eq!(hard, c, "chip {i} soft {s}");
            assert!(s.abs() > 0.8, "weak chip {i}: {s}");
        }
    }

    #[test]
    fn round_trip_under_noise() {
        let chips: Vec<u8> = (0..128).map(|i| (i % 2) as u8).collect();
        let mut wave = modulate_chips(&chips);
        NoiseSource::new(1, 0.05).add_to(&mut wave);
        let soft = demodulate_chips(&wave, 0, 128).unwrap();
        let errors = chips
            .iter()
            .zip(soft.iter())
            .filter(|(&c, &s)| u8::from(s > 0.0) != c)
            .count();
        assert_eq!(errors, 0, "20+ dB chip SNR must be error-free");
    }

    #[test]
    fn envelope_is_nearly_constant() {
        // MSK property: |s(t)| ≈ 1 once both rails are active.
        let chips: Vec<u8> = (0..64).map(|i| ((i * 7) % 5 < 2) as u8).collect();
        let wave = modulate_chips(&chips);
        for (k, z) in wave
            .iter()
            .enumerate()
            .skip(SAMPLES_PER_CHIP)
            .take(wave.len() - 2 * SAMPLES_PER_CHIP)
        {
            assert!((z.abs() - 1.0).abs() < 0.01, "envelope at {k}: {}", z.abs());
        }
    }

    #[test]
    fn phase_flip_inverts_all_chips() {
        // A tag's 180° rotation inverts both rails ⇒ every chip flips.
        let chips: Vec<u8> = (0..32).map(|i| ((i * 3) % 7 < 4) as u8).collect();
        let wave = modulate_chips(&chips);
        let flipped: Vec<Complex> = wave.iter().map(|&z| -z).collect();
        let soft = demodulate_chips(&flipped, 0, 32).unwrap();
        for (&c, &s) in chips.iter().zip(soft.iter()) {
            assert_eq!(u8::from(s > 0.0), c ^ 1);
        }
    }

    #[test]
    fn too_short_buffer_is_none() {
        let wave = modulate_chips(&[1, 0]);
        assert!(demodulate_chips(&wave, 0, 4).is_none());
    }
}
