//! The per-server metrics registry behind the `Stats`/`Health` frames.
//!
//! Every [`crate::server::Server`] / [`crate::server::Loopback`] owns one
//! [`ServerMetrics`] (via its [`crate::job::JobManager`]) — deliberately
//! *not* the process-global `freerider-telemetry` registry, so two
//! servers in one process (common in tests) never see each other's
//! traffic. Counters are lock-free atomics on the hot path; the one lock
//! is around the frame-handling latency histogram, taken once per
//! request frame.
//!
//! The determinism contract follows the PR 2 telemetry split: the
//! **counters** section of a [`StatsReport`] is a pure function of the
//! frames a server exchanged and the jobs it ran, so for the same
//! workload it is byte-identical across `FREERIDER_THREADS` once
//! encoded. **Gauges** (point-in-time levels, queue high-water marks)
//! and **latency** (wall-clock) are timing-dependent and live in their
//! own sections that consumers must not diff.

use crate::frame::{FrameType, ALL_TYPES, HEADER_LEN};
use crate::job::JobState;
use freerider_telemetry::LogHistogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Schema tag carried by every `Stats` payload.
pub const STATS_SCHEMA: &str = "freerider-serve-stats/1";

const N_TYPES: usize = ALL_TYPES.len();

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn zeroed() -> [AtomicU64; N_TYPES] {
    std::array::from_fn(|_| AtomicU64::new(0))
}

/// One server instance's operational counters, gauges and latency.
pub struct ServerMetrics {
    /// Frames decoded off the wire, by type (index = [`FrameType::index`]).
    frames_rx: [AtomicU64; N_TYPES],
    /// Frames successfully written to the wire, by type.
    frames_tx: [AtomicU64; N_TYPES],
    bytes_rx: AtomicU64,
    bytes_tx: AtomicU64,
    /// Frames rejected before dispatch: bad version, unknown type, or an
    /// over-cap length. Transport errors and clean hangups don't count.
    frames_malformed: AtomicU64,
    sessions_accepted: AtomicU64,
    sessions_closed: AtomicU64,
    /// Sessions still parked in a read when shutdown tore them down.
    sessions_idle_shutdown: AtomicU64,
    sessions_active: AtomicU64,
    subs_attached: AtomicU64,
    sub_evictions: AtomicU64,
    /// Frames enqueued into subscriber queues (broadcast + replay).
    frames_broadcast: AtomicU64,
    /// Deepest any subscriber queue has been (gauge, max-updated).
    queue_depth_hwm: AtomicU64,
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_cancelled: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_running: AtomicU64,
    /// Periodic `Stats` frames pushed into streams (`stats_every`).
    stats_pushed: AtomicU64,
    /// Per-request-frame handling time, nanoseconds (all types pooled).
    frame_ns: Mutex<LogHistogram>,
    /// Per-request-frame handling time broken out by frame type
    /// (index = [`FrameType::index`]); feeds the `frame.handle_ns.<type>`
    /// latency rows and the client `top` per-type columns.
    frame_type_ns: [Mutex<LogHistogram>; N_TYPES],
    /// Per-job stage wall-clock budget: profile-scope path → histogram of
    /// per-job stage totals (only populated while `FREERIDER_PROFILE` is
    /// on). Feeds the `job.stage.<path>` latency rows.
    job_stage_ns: Mutex<BTreeMap<String, LogHistogram>>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics {
            frames_rx: zeroed(),
            frames_tx: zeroed(),
            bytes_rx: AtomicU64::new(0),
            bytes_tx: AtomicU64::new(0),
            frames_malformed: AtomicU64::new(0),
            sessions_accepted: AtomicU64::new(0),
            sessions_closed: AtomicU64::new(0),
            sessions_idle_shutdown: AtomicU64::new(0),
            sessions_active: AtomicU64::new(0),
            subs_attached: AtomicU64::new(0),
            sub_evictions: AtomicU64::new(0),
            frames_broadcast: AtomicU64::new(0),
            queue_depth_hwm: AtomicU64::new(0),
            jobs_submitted: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_running: AtomicU64::new(0),
            stats_pushed: AtomicU64::new(0),
            frame_ns: Mutex::new(LogHistogram::new()),
            frame_type_ns: std::array::from_fn(|_| Mutex::new(LogHistogram::new())),
            job_stage_ns: Mutex::new(BTreeMap::new()),
        }
    }
}

#[inline]
fn inc(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

impl ServerMetrics {
    /// A fresh, all-zero registry.
    pub fn new() -> Self {
        ServerMetrics::default()
    }

    /// A frame arrived and decoded. `payload_len` excludes the header.
    pub fn frame_rx(&self, kind: FrameType, payload_len: usize) {
        inc(&self.frames_rx[kind.index()]);
        self.bytes_rx
            .fetch_add((HEADER_LEN + payload_len) as u64, Ordering::Relaxed);
    }

    /// A frame went out on the wire. `payload_len` excludes the header.
    pub fn frame_tx(&self, kind: FrameType, payload_len: usize) {
        inc(&self.frames_tx[kind.index()]);
        self.bytes_tx
            .fetch_add((HEADER_LEN + payload_len) as u64, Ordering::Relaxed);
    }

    /// A frame was rejected before dispatch (bad version/type/length).
    pub fn malformed(&self) {
        inc(&self.frames_malformed);
    }

    /// A session opened. Returns a dense per-server session ordinal
    /// (1-based), used as the `serve.session` trace packet id.
    pub fn session_opened(&self) -> u64 {
        inc(&self.sessions_active);
        self.sessions_accepted.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// A session ended (peer hangup, error, or shutdown).
    pub fn session_closed(&self) {
        inc(&self.sessions_closed);
        self.sessions_active.fetch_sub(1, Ordering::Relaxed);
    }

    /// A still-idle session was torn down by server shutdown.
    pub fn session_idle_shutdown(&self) {
        inc(&self.sessions_idle_shutdown);
    }

    /// A subscriber queue was attached to a job (live or replay).
    pub fn sub_attached(&self) {
        inc(&self.subs_attached);
    }

    /// A subscriber queue evicted its oldest frame (backpressure).
    pub fn sub_evicted(&self) {
        inc(&self.sub_evictions);
    }

    /// A frame was enqueued into one subscriber queue; `depth` is the
    /// queue's length right after the push (feeds the high-water mark).
    pub fn sub_frame_pushed(&self, depth: u64) {
        inc(&self.frames_broadcast);
        self.queue_depth_hwm.fetch_max(depth, Ordering::Relaxed);
    }

    /// A job was accepted.
    pub fn job_submitted(&self) {
        inc(&self.jobs_submitted);
    }

    /// A job's worker thread started simulating.
    pub fn job_started(&self) {
        inc(&self.jobs_running);
    }

    /// A job reached a terminal state. Call **before** its terminal
    /// frames are broadcast, so a client that saw `StreamEnd` is
    /// guaranteed to see the transition in its next `Stats` snapshot.
    pub fn job_finished(&self, state: JobState) {
        self.jobs_running.fetch_sub(1, Ordering::Relaxed);
        match state {
            JobState::Done => inc(&self.jobs_completed),
            JobState::Cancelled => inc(&self.jobs_cancelled),
            JobState::Failed => inc(&self.jobs_failed),
            JobState::Queued | JobState::Running => {}
        }
    }

    /// A periodic `Stats` frame was pushed into streams.
    pub fn stats_push(&self) {
        inc(&self.stats_pushed);
    }

    /// Records one request frame's handling time, both pooled and broken
    /// out by frame type.
    pub fn frame_handled_ns(&self, kind: FrameType, ns: u64) {
        lock(&self.frame_ns).record(ns);
        lock(&self.frame_type_ns[kind.index()]).record(ns);
    }

    /// Records one finished job's wall-clock spent in profile stage
    /// `path` (a root-level scope path such as `wifi.rx`). No-op traffic
    /// never reaches here; callers gate on `profile::enabled()`.
    pub fn job_stage_ns(&self, path: &str, ns: u64) {
        let mut stages = lock(&self.job_stage_ns);
        stages.entry(path.to_string()).or_default().record(ns);
    }

    fn jobs_counts(&self) -> (u64, u64, u64, u64, u64) {
        let submitted = self.jobs_submitted.load(Ordering::Relaxed);
        let completed = self.jobs_completed.load(Ordering::Relaxed);
        let cancelled = self.jobs_cancelled.load(Ordering::Relaxed);
        let failed = self.jobs_failed.load(Ordering::Relaxed);
        let running = self.jobs_running.load(Ordering::Relaxed);
        (submitted, completed, cancelled, failed, running)
    }

    /// Jobs accepted but not yet running or finished.
    pub fn jobs_queued(&self) -> u64 {
        let (submitted, completed, cancelled, failed, running) = self.jobs_counts();
        submitted.saturating_sub(completed + cancelled + failed + running)
    }

    /// A full snapshot, ready for [`crate::wire::encode_stats`].
    pub fn report(&self) -> StatsReport {
        let mut counters: Vec<(String, u64)> = Vec::new();
        let mut c = |name: String, v: u64| {
            if v > 0 {
                counters.push((name, v));
            }
        };
        c(
            "bytes.rx".to_string(),
            self.bytes_rx.load(Ordering::Relaxed),
        );
        c(
            "bytes.tx".to_string(),
            self.bytes_tx.load(Ordering::Relaxed),
        );
        c(
            "frames.malformed".to_string(),
            self.frames_malformed.load(Ordering::Relaxed),
        );
        for t in ALL_TYPES {
            c(
                format!("frames.rx.{}", t.name()),
                self.frames_rx[t.index()].load(Ordering::Relaxed),
            );
            c(
                format!("frames.tx.{}", t.name()),
                self.frames_tx[t.index()].load(Ordering::Relaxed),
            );
        }
        let (submitted, completed, cancelled, failed, _) = self.jobs_counts();
        c("jobs.cancelled".to_string(), cancelled);
        c("jobs.completed".to_string(), completed);
        c("jobs.failed".to_string(), failed);
        c("jobs.submitted".to_string(), submitted);
        c(
            "sessions.accepted".to_string(),
            self.sessions_accepted.load(Ordering::Relaxed),
        );
        c(
            "sessions.closed".to_string(),
            self.sessions_closed.load(Ordering::Relaxed),
        );
        c(
            "sessions.idle_shutdown".to_string(),
            self.sessions_idle_shutdown.load(Ordering::Relaxed),
        );
        c(
            "stats.pushed".to_string(),
            self.stats_pushed.load(Ordering::Relaxed),
        );
        c(
            "subs.attached".to_string(),
            self.subs_attached.load(Ordering::Relaxed),
        );
        c(
            "subs.broadcast".to_string(),
            self.frames_broadcast.load(Ordering::Relaxed),
        );
        c(
            "subs.evictions".to_string(),
            self.sub_evictions.load(Ordering::Relaxed),
        );
        counters.sort_unstable_by(|a, b| a.0.cmp(&b.0));

        let gauges = vec![
            ("jobs.queued".to_string(), self.jobs_queued()),
            (
                "jobs.running".to_string(),
                self.jobs_running.load(Ordering::Relaxed),
            ),
            (
                "queue.depth_hwm".to_string(),
                self.queue_depth_hwm.load(Ordering::Relaxed),
            ),
            (
                "sessions.active".to_string(),
                self.sessions_active.load(Ordering::Relaxed),
            ),
        ];

        let mut latency = vec![(
            "frame.handle_ns".to_string(),
            summarize(&lock(&self.frame_ns)),
        )];
        // Per-type breakouts and per-job stage budgets ride along as
        // additional named rows: the wire format iterates `latency` as an
        // open map, so clients that don't know these names skip them.
        for t in ALL_TYPES {
            let h = lock(&self.frame_type_ns[t.index()]);
            if !h.is_empty() {
                latency.push((format!("frame.handle_ns.{}", t.name()), summarize(&h)));
            }
        }
        for (path, h) in lock(&self.job_stage_ns).iter() {
            latency.push((format!("job.stage.{path}"), summarize(h)));
        }
        latency.sort_by(|a, b| a.0.cmp(&b.0));
        StatsReport {
            counters,
            gauges,
            latency,
        }
    }

    /// The cheap liveness/readiness view: a handful of atomic loads, no
    /// lock, no allocation beyond the struct.
    pub fn health(&self) -> HealthInfo {
        let mut frames_rx = 0u64;
        let mut frames_tx = 0u64;
        for i in 0..N_TYPES {
            frames_rx += self.frames_rx[i].load(Ordering::Relaxed);
            frames_tx += self.frames_tx[i].load(Ordering::Relaxed);
        }
        HealthInfo {
            ok: true,
            jobs_queued: self.jobs_queued(),
            jobs_running: self.jobs_running.load(Ordering::Relaxed),
            sessions_active: self.sessions_active.load(Ordering::Relaxed),
            frames_rx,
            frames_tx,
        }
    }
}

/// Summarises one histogram into the wire-facing percentile struct.
fn summarize(h: &LogHistogram) -> LatencySummary {
    LatencySummary {
        count: h.count,
        sum: h.sum,
        min: if h.is_empty() { 0 } else { h.min },
        max: h.max,
        p50: h.p50().unwrap_or(0),
        p90: h.p90().unwrap_or(0),
        p99: h.p99().unwrap_or(0),
    }
}

/// Percentile summary of one latency histogram, nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 while empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// A point-in-time server metrics snapshot, as plain data.
///
/// `counters` is the deterministic subset: sorted by name, zero values
/// omitted, every value a monotonic event count. `gauges` are
/// point-in-time levels and `latency` is wall-clock — both reported,
/// neither diffable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsReport {
    /// Monotonic counters, sorted by name, zeros omitted.
    pub counters: Vec<(String, u64)>,
    /// Point-in-time levels (always present, sorted by name).
    pub gauges: Vec<(String, u64)>,
    /// Wall-clock latency summaries, sorted by name.
    pub latency: Vec<(String, LatencySummary)>,
}

impl StatsReport {
    /// The value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// The value of gauge `name` (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }
}

/// The liveness/readiness probe payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthInfo {
    /// The server is up and dispatching frames.
    pub ok: bool,
    /// Jobs accepted but not yet running or finished.
    pub jobs_queued: u64,
    /// Jobs currently simulating.
    pub jobs_running: u64,
    /// Sessions currently open.
    pub sessions_active: u64,
    /// Total frames received, all types.
    pub frames_rx: u64,
    /// Total frames sent, all types.
    pub frames_tx: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_sorted_and_skip_zeros() {
        let m = ServerMetrics::new();
        m.frame_rx(FrameType::SubmitJob, 10);
        m.frame_tx(FrameType::JobAccepted, 12);
        m.job_submitted();
        let r = m.report();
        let names: Vec<&str> = r.counters.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "counters must come out sorted");
        assert!(
            r.counters.iter().all(|&(_, v)| v > 0),
            "zeros must be omitted"
        );
        assert_eq!(r.counter("frames.rx.submit_job"), 1);
        assert_eq!(r.counter("frames.tx.job_accepted"), 1);
        assert_eq!(
            r.counter("bytes.rx"),
            (HEADER_LEN + 10) as u64,
            "bytes include the header"
        );
        assert_eq!(
            r.counter("frames.rx.get_stats"),
            0,
            "absent counter reads 0"
        );
    }

    #[test]
    fn job_lifecycle_derives_queued() {
        let m = ServerMetrics::new();
        m.job_submitted();
        m.job_submitted();
        m.job_submitted();
        assert_eq!(m.jobs_queued(), 3);
        m.job_started();
        assert_eq!(m.jobs_queued(), 2);
        m.job_finished(JobState::Done);
        assert_eq!(m.jobs_queued(), 2);
        m.job_started();
        m.job_finished(JobState::Cancelled);
        m.job_started();
        m.job_finished(JobState::Failed);
        assert_eq!(m.jobs_queued(), 0);
        let r = m.report();
        assert_eq!(r.counter("jobs.submitted"), 3);
        assert_eq!(r.counter("jobs.completed"), 1);
        assert_eq!(r.counter("jobs.cancelled"), 1);
        assert_eq!(r.counter("jobs.failed"), 1);
        assert_eq!(r.gauge("jobs.running"), 0);
    }

    #[test]
    fn queue_depth_high_water_is_a_max() {
        let m = ServerMetrics::new();
        m.sub_frame_pushed(3);
        m.sub_frame_pushed(9);
        m.sub_frame_pushed(5);
        let r = m.report();
        assert_eq!(r.gauge("queue.depth_hwm"), 9);
        assert_eq!(r.counter("subs.broadcast"), 3);
    }

    #[test]
    fn session_ordinals_are_dense_and_active_balances() {
        let m = ServerMetrics::new();
        assert_eq!(m.session_opened(), 1);
        assert_eq!(m.session_opened(), 2);
        m.session_closed();
        let r = m.report();
        assert_eq!(r.counter("sessions.accepted"), 2);
        assert_eq!(r.counter("sessions.closed"), 1);
        assert_eq!(r.gauge("sessions.active"), 1);
    }

    #[test]
    fn latency_summary_tracks_percentiles() {
        let m = ServerMetrics::new();
        for ns in [100u64, 200, 400, 800, 100_000] {
            m.frame_handled_ns(FrameType::GetStats, ns);
        }
        let r = m.report();
        let (name, l) = &r.latency[0];
        assert_eq!(name, "frame.handle_ns");
        assert_eq!(l.count, 5);
        assert_eq!(l.min, 100);
        assert_eq!(l.max, 100_000);
        assert!(l.p50 >= 100 && l.p99 <= 100_000);
    }

    #[test]
    fn latency_breaks_out_per_frame_type() {
        let m = ServerMetrics::new();
        m.frame_handled_ns(FrameType::GetStats, 100);
        m.frame_handled_ns(FrameType::GetStats, 300);
        m.frame_handled_ns(FrameType::SubmitJob, 5_000);
        let r = m.report();
        let find = |n: &str| {
            r.latency
                .iter()
                .find(|(k, _)| k == n)
                .map(|(_, l)| *l)
                .unwrap_or_else(|| panic!("missing latency row {n}"))
        };
        assert_eq!(find("frame.handle_ns").count, 3, "pooled row sees all");
        assert_eq!(find("frame.handle_ns.get_stats").count, 2);
        assert_eq!(find("frame.handle_ns.submit_job").count, 1);
        // Types that saw no traffic are omitted entirely.
        assert!(!r
            .latency
            .iter()
            .any(|(k, _)| k == "frame.handle_ns.get_health"));
        // Rows stay sorted by name (clients binary-search or scan-merge).
        let names: Vec<&str> = r.latency.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn job_stage_budgets_become_latency_rows() {
        let m = ServerMetrics::new();
        m.job_stage_ns("wifi.rx", 2_000_000);
        m.job_stage_ns("wifi.rx", 3_000_000);
        m.job_stage_ns("wifi.rx/decode", 1_500_000);
        let r = m.report();
        let row = r
            .latency
            .iter()
            .find(|(k, _)| k == "job.stage.wifi.rx")
            .expect("stage row present");
        assert_eq!(row.1.count, 2);
        assert!(r
            .latency
            .iter()
            .any(|(k, _)| k == "job.stage.wifi.rx/decode"));
    }

    #[test]
    fn health_is_cheap_and_truthful() {
        let m = ServerMetrics::new();
        m.session_opened();
        m.frame_rx(FrameType::GetHealth, 0);
        m.frame_tx(FrameType::Health, 20);
        m.job_submitted();
        let h = m.health();
        assert!(h.ok);
        assert_eq!(h.sessions_active, 1);
        assert_eq!(h.jobs_queued, 1);
        assert_eq!(h.frames_rx, 1);
        assert_eq!(h.frames_tx, 1);
    }
}
