//! # freerider-serve
//!
//! The deployment simulator as a long-running service: a zero-dependency
//! framed TCP protocol hosting `freerider-net`'s Monte-Carlo engine, so
//! an operator can submit deployment studies, watch per-round progress
//! and per-tag snapshots stream in, and cancel what stopped being
//! interesting — without relinking or re-launching anything.
//!
//! ## Protocol
//!
//! Every message is one frame: `[version:u8][type:u8][len:u32 BE]` then
//! a UTF-8 JSON payload ([`frame`]). Requests are `SubmitJob`,
//! `JobStatus`, `CancelJob`, `ListJobs`, `Subscribe`, `Shutdown`,
//! `GetStats`, `GetHealth`; streams carry `Progress`, `TagSnapshot`,
//! `JobResult`, `StreamEnd` (and, with `FREERIDER_SERVE_STATS_EVERY`
//! set, periodic `Stats`) frames. Payload codecs live in [`wire`].
//!
//! ## Guarantees
//!
//! * **Determinism** — a job's final `JobResult` payload is byte-
//!   identical to encoding the report of the same `SimConfig` +
//!   `Deployment` run directly in-process, regardless of
//!   `FREERIDER_THREADS` and regardless of how many subscribers watch.
//! * **Bounded memory** — each subscriber owns a bounded [`queue`] with
//!   drop-oldest backpressure; a slow reader loses history, never
//!   freshness, and never stalls the simulation or other subscribers.
//! * **No sockets needed** — [`server::Loopback`] serves the identical
//!   dispatch path over an in-process [`pipe`], which is how the
//!   integration tests and the `net/serve_fanout` benchmarks run.
//! * **Observable** — every server owns a [`metrics::ServerMetrics`]
//!   registry (frames by type, bytes, sessions, jobs, evictions,
//!   latency percentiles) served over `GetStats`/`GetHealth`; the
//!   counters section is byte-identical across `FREERIDER_THREADS`,
//!   per the workspace determinism contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod job;
pub mod metrics;
pub mod pipe;
pub mod queue;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, StreamEvent};
pub use frame::{Frame, FrameError, FrameType};
pub use job::{JobId, JobManager, JobState};
pub use metrics::{HealthInfo, LatencySummary, ServerMetrics, StatsReport, STATS_SCHEMA};
pub use queue::SubQueue;
pub use server::{Loopback, ServeConfig, Server};
pub use wire::{JobSpec, StatusInfo, WireError};
