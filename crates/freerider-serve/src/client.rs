//! The client half of the protocol: typed requests over any transport.
//!
//! [`Client`] wraps a `Read + Write` transport (a `TcpStream`, or a
//! [`crate::pipe::PipeEnd`] from [`crate::server::Loopback`]) and speaks
//! the request/response exchanges; [`Client::next_event`] pulls stream
//! frames during a subscription. The raw `JobResult` payload bytes are
//! surfaced alongside the decoded report so callers can assert
//! byte-identity against an in-process run.

use crate::frame::{read_frame, write_frame, Frame, FrameError, FrameType};
use crate::metrics::{HealthInfo, StatsReport};
use crate::wire::{self, JobSpec, StatusInfo, WireError};
use freerider_net::{DeploymentReport, RoundProgress, TagReport};
use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport/framing failure.
    Frame(FrameError),
    /// The response payload did not decode.
    Wire(WireError),
    /// The server answered with an `Error` frame.
    Server(String),
    /// The server answered with a frame type this call cannot accept.
    Unexpected(FrameType),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Unexpected(t) => write!(f, "unexpected frame type {t:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// One frame of a job's stream, decoded.
#[derive(Debug, Clone)]
pub enum StreamEvent {
    /// Per-round progress.
    Progress(RoundProgress),
    /// Periodic per-tag snapshot.
    Tags {
        /// Round the snapshot was taken after.
        round: usize,
        /// Every tag's state so far.
        tags: Vec<TagReport>,
    },
    /// The job's final report.
    Result {
        /// The exact payload bytes as served (byte-identity checks).
        raw: Vec<u8>,
        /// The decoded report.
        report: DeploymentReport,
    },
    /// A periodic server metrics snapshot (`FREERIDER_SERVE_STATS_EVERY`).
    Stats(StatsReport),
    /// End of the stream.
    End {
        /// The job whose stream ended.
        job: u64,
    },
}

/// A protocol client over any `Read + Write` transport.
pub struct Client<S: Read + Write> {
    stream: S,
}

impl Client<TcpStream> {
    /// Connects over TCP.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client<TcpStream>> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
        })
    }
}

impl<S: Read + Write> Client<S> {
    /// Wraps an already-connected transport.
    pub fn over(stream: S) -> Client<S> {
        Client { stream }
    }

    fn call(&mut self, request: Frame) -> Result<Frame, ClientError> {
        write_frame(&mut self.stream, &request)?;
        self.recv()
    }

    fn recv(&mut self) -> Result<Frame, ClientError> {
        let f = read_frame(&mut self.stream)?;
        if f.kind == FrameType::Error {
            return Err(ClientError::Server(wire::decode_error(&f.payload)?));
        }
        Ok(f)
    }

    fn request(&mut self, request: Frame, kind: FrameType) -> Result<Frame, ClientError> {
        let f = self.call(request)?;
        if f.kind != kind {
            return Err(ClientError::Unexpected(f.kind));
        }
        Ok(f)
    }

    /// Submits a job; returns its id. When `spec.stream` is true the
    /// server follows the acknowledgement with the job's stream — pull
    /// it with [`Client::next_event`] until [`StreamEvent::End`].
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, ClientError> {
        let f = self.request(
            Frame::new(FrameType::SubmitJob, wire::encode_submit(spec)),
            FrameType::JobAccepted,
        )?;
        Ok(wire::decode_job_id(&f.payload)?)
    }

    /// The next stream frame, decoded. Call only while a stream is
    /// active (after a streaming submit or a subscribe).
    pub fn next_event(&mut self) -> Result<StreamEvent, ClientError> {
        let f = self.recv()?;
        Ok(match f.kind {
            FrameType::Progress => StreamEvent::Progress(wire::decode_progress(&f.payload)?),
            FrameType::TagSnapshot => {
                let (round, tags) = wire::decode_tags(&f.payload)?;
                StreamEvent::Tags { round, tags }
            }
            FrameType::JobResult => {
                let report = wire::decode_report(&f.payload)?;
                StreamEvent::Result {
                    raw: f.payload,
                    report,
                }
            }
            FrameType::Stats => StreamEvent::Stats(wire::decode_stats(&f.payload)?),
            FrameType::StreamEnd => StreamEvent::End {
                job: wire::decode_job_id(&f.payload)?,
            },
            other => return Err(ClientError::Unexpected(other)),
        })
    }

    /// Drains a stream to its end; returns all events in order.
    pub fn drain_stream(&mut self) -> Result<Vec<StreamEvent>, ClientError> {
        let mut events = Vec::new();
        loop {
            let e = self.next_event()?;
            let done = matches!(e, StreamEvent::End { .. });
            events.push(e);
            if done {
                return Ok(events);
            }
        }
    }

    /// One job's status.
    pub fn status(&mut self, job: u64) -> Result<StatusInfo, ClientError> {
        let f = self.request(
            Frame::new(FrameType::JobStatus, wire::encode_job_id(job)),
            FrameType::Status,
        )?;
        Ok(wire::decode_status(&f.payload)?)
    }

    /// Requests cancellation; returns whether it landed before the job
    /// finished.
    pub fn cancel(&mut self, job: u64) -> Result<bool, ClientError> {
        let f = self.request(
            Frame::new(FrameType::CancelJob, wire::encode_job_id(job)),
            FrameType::Cancelled,
        )?;
        Ok(wire::decode_cancelled(&f.payload)?.1)
    }

    /// Every job's status, ascending by id.
    pub fn list(&mut self) -> Result<Vec<StatusInfo>, ClientError> {
        let f = self.request(Frame::bare(FrameType::ListJobs), FrameType::Jobs)?;
        Ok(wire::decode_jobs(&f.payload)?)
    }

    /// Subscribes to a job's stream; pull with [`Client::next_event`].
    /// A finished job replays its final frames immediately.
    pub fn subscribe(&mut self, job: u64) -> Result<(), ClientError> {
        write_frame(
            &mut self.stream,
            &Frame::new(FrameType::Subscribe, wire::encode_job_id(job)),
        )?;
        Ok(())
    }

    /// The server's full metrics snapshot, decoded. For byte-identity
    /// assertions use [`Client::stats_raw`] instead.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        Ok(wire::decode_stats(&self.stats_raw()?)?)
    }

    /// The raw `Stats` payload bytes exactly as served.
    pub fn stats_raw(&mut self) -> Result<Vec<u8>, ClientError> {
        let f = self.request(Frame::bare(FrameType::GetStats), FrameType::Stats)?;
        Ok(f.payload)
    }

    /// The server's liveness/readiness probe.
    pub fn health(&mut self) -> Result<HealthInfo, ClientError> {
        let f = self.request(Frame::bare(FrameType::GetHealth), FrameType::Health)?;
        Ok(wire::decode_health(&f.payload)?)
    }

    /// Asks the server to shut down; resolves once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(Frame::bare(FrameType::Shutdown), FrameType::ShuttingDown)?;
        Ok(())
    }
}
