//! Bounded per-subscriber frame queues with drop-oldest backpressure.
//!
//! Every subscriber to a job's stream owns one [`SubQueue`]. The job
//! thread pushes each stream frame into every queue; a slow subscriber's
//! writer thread drains its own queue at whatever pace its socket allows.
//! When a queue is full the *oldest* frame is evicted — late-joining or
//! slow readers lose history, never freshness, and the job thread never
//! blocks on a slow consumer. Evictions are counted (per queue and in the
//! telemetry registry as `serve.sub.evictions`) so load tests can prove
//! backpressure engaged.

use crate::frame::Frame;
use crate::metrics::ServerMetrics;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Locks a mutex, recovering from poisoning.
///
/// A panicking job thread must not wedge every subscriber: the queued
/// frames are plain data, valid regardless of where the pusher died.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct Inner {
    frames: VecDeque<Frame>,
    closed: bool,
}

/// A bounded MPSC frame queue: many pushers, one blocking popper.
pub struct SubQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
    cap: usize,
    pushed: AtomicU64,
    evicted: AtomicU64,
    /// The owning server's registry, when this queue was handed out by a
    /// [`crate::job::JobManager`]; bare `SubQueue::new` queues (unit
    /// tests) have none and only feed the process-global telemetry.
    metrics: Option<Arc<ServerMetrics>>,
}

impl SubQueue {
    /// A queue holding at most `cap` frames (`cap` ≥ 1 is enforced).
    pub fn new(cap: usize) -> Self {
        SubQueue::with_metrics(cap, None)
    }

    /// A queue that additionally reports evictions and depth high-water
    /// marks into a server's [`ServerMetrics`].
    pub fn with_metrics(cap: usize, metrics: Option<Arc<ServerMetrics>>) -> Self {
        SubQueue {
            inner: Mutex::new(Inner {
                frames: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
            pushed: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            metrics,
        }
    }

    /// Enqueues a frame, evicting the oldest if the queue is full.
    /// Never blocks. A push to a closed queue is dropped silently.
    pub fn push(&self, frame: Frame) {
        let mut g = lock(&self.inner);
        if g.closed {
            return;
        }
        if g.frames.len() == self.cap {
            g.frames.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
            freerider_telemetry::count("serve.sub.evictions");
            if let Some(m) = &self.metrics {
                m.sub_evicted();
            }
        }
        g.frames.push_back(frame);
        self.pushed.fetch_add(1, Ordering::Relaxed);
        freerider_telemetry::record("serve.sub.queue_depth", g.frames.len() as u64);
        if let Some(m) = &self.metrics {
            m.sub_frame_pushed(g.frames.len() as u64);
        }
        drop(g);
        self.ready.notify_one();
    }

    /// Dequeues the next frame, blocking until one arrives. Returns
    /// `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<Frame> {
        let mut g = lock(&self.inner);
        loop {
            if let Some(f) = g.frames.pop_front() {
                return Some(f);
            }
            if g.closed {
                return None;
            }
            g = self
                .ready
                .wait(g)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Closes the queue: queued frames stay poppable, new pushes are
    /// dropped, and `pop` returns `None` after the drain.
    pub fn close(&self) {
        lock(&self.inner).closed = true;
        self.ready.notify_all();
    }

    /// How many frames were evicted by backpressure so far.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// How many frames were accepted (enqueued) so far. Pushes dropped
    /// because the queue was already closed are *not* counted, so the
    /// books always balance: `pushed == popped + evicted + still-queued`.
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameType;
    use std::sync::Arc;

    fn tagged(n: u8) -> Frame {
        Frame::new(FrameType::Progress, vec![n])
    }

    #[test]
    fn fifo_order_and_close_semantics() {
        let q = SubQueue::new(8);
        q.push(tagged(1));
        q.push(tagged(2));
        q.close();
        q.push(tagged(3)); // dropped: already closed
        assert_eq!(q.pop(), Some(tagged(1)));
        assert_eq!(q.pop(), Some(tagged(2)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.evicted(), 0);
    }

    #[test]
    fn full_queue_evicts_oldest() {
        let q = SubQueue::new(3);
        for n in 1..=5 {
            q.push(tagged(n));
        }
        assert_eq!(q.evicted(), 2);
        q.close();
        // 1 and 2 were evicted; 3..5 survive in order.
        assert_eq!(q.pop(), Some(tagged(3)));
        assert_eq!(q.pop(), Some(tagged(4)));
        assert_eq!(q.pop(), Some(tagged(5)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_push_from_another_thread() {
        let q = Arc::new(SubQueue::new(4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        q.push(tagged(7));
        assert_eq!(popper.join().unwrap(), Some(tagged(7)));
    }

    #[test]
    fn pushed_counter_balances_pops_and_evictions() {
        let q = SubQueue::new(3);
        for n in 1..=7 {
            q.push(tagged(n));
        }
        q.close();
        q.push(tagged(99)); // closed: dropped, not counted as pushed
        let mut popped = 0u64;
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(q.pushed(), 7);
        assert_eq!(q.pushed(), popped + q.evicted());
    }

    #[test]
    fn metrics_hook_sees_evictions_and_depth() {
        let m = Arc::new(ServerMetrics::new());
        let q = SubQueue::with_metrics(2, Some(Arc::clone(&m)));
        for n in 1..=5 {
            q.push(tagged(n));
        }
        let r = m.report();
        assert_eq!(r.counter("subs.evictions"), 3);
        assert_eq!(r.counter("subs.evictions"), q.evicted());
        assert_eq!(r.counter("subs.broadcast"), 5);
        assert_eq!(r.gauge("queue.depth_hwm"), 2);
    }

    #[test]
    fn close_wakes_a_blocked_popper() {
        let q = Arc::new(SubQueue::new(4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        q.close();
        assert_eq!(popper.join().unwrap(), None);
    }
}
