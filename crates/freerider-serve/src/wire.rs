//! Payload codecs: typed messages ⇄ RFC 8259 JSON bytes.
//!
//! Encoding uses [`freerider_telemetry::JsonWriter`] (compact, shortest
//! round-trip floats, fully deterministic — equal inputs give byte-equal
//! payloads, which is what lets integration tests assert a served result
//! is *byte-identical* to an in-process run). Decoding uses
//! [`freerider_telemetry::JsonValue`], the writer's parser twin.
//!
//! `TagReport::mean_latency_s` is an `Option`: a tag that never delivered
//! a report encodes as `null`, never NaN — NaN is not representable in
//! JSON and would poison the document.

use crate::metrics::{HealthInfo, LatencySummary, StatsReport, STATS_SCHEMA};
use freerider_channel::geometry::{Point, Site, Wall};
use freerider_channel::PathLoss;
use freerider_net::deployment::{Exciter, ReceiverNode, TagNode};
use freerider_net::{Deployment, DeploymentReport, RoundProgress, SimConfig, TagReport};
use freerider_telemetry::{JsonValue, JsonWriter};
use std::fmt;

/// A decode failure: message plus context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What went wrong.
    pub msg: String,
}

impl WireError {
    fn new(msg: impl Into<String>) -> Self {
        WireError { msg: msg.into() }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.msg)
    }
}

impl std::error::Error for WireError {}

/// A complete job submission: what to simulate and how to observe it.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Simulator configuration.
    pub config: SimConfig,
    /// The deployment scene.
    pub deployment: Deployment,
    /// Stream progress/snapshots back on the submitting connection.
    pub stream: bool,
    /// Emit a per-tag snapshot every this many rounds (0 = never).
    pub snapshot_every: usize,
}

/// One job's externally visible status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusInfo {
    /// Job id.
    pub job: u64,
    /// State name: `queued`, `running`, `done`, `cancelled`, or `failed`.
    pub state: String,
    /// Rounds completed so far.
    pub rounds_done: u64,
    /// Rounds configured.
    pub rounds: u64,
    /// Tags in the deployment.
    pub tags: u64,
}

// ---------------------------------------------------------------------
// Helpers.

fn parse_payload(payload: &[u8]) -> Result<JsonValue, WireError> {
    let text =
        std::str::from_utf8(payload).map_err(|_| WireError::new("payload is not valid UTF-8"))?;
    JsonValue::parse(text).map_err(|e| WireError::new(e.to_string()))
}

fn need<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, WireError> {
    v.get(key)
        .ok_or_else(|| WireError::new(format!("missing member `{key}`")))
}

fn need_f64(v: &JsonValue, key: &str) -> Result<f64, WireError> {
    need(v, key)?
        .as_f64()
        .ok_or_else(|| WireError::new(format!("`{key}` must be a number")))
}

fn need_u64(v: &JsonValue, key: &str) -> Result<u64, WireError> {
    need(v, key)?
        .as_u64()
        .ok_or_else(|| WireError::new(format!("`{key}` must be a non-negative integer")))
}

fn need_usize(v: &JsonValue, key: &str) -> Result<usize, WireError> {
    Ok(need_u64(v, key)? as usize)
}

fn need_bool(v: &JsonValue, key: &str) -> Result<bool, WireError> {
    need(v, key)?
        .as_bool()
        .ok_or_else(|| WireError::new(format!("`{key}` must be a boolean")))
}

fn need_array<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], WireError> {
    need(v, key)?
        .as_array()
        .ok_or_else(|| WireError::new(format!("`{key}` must be an array")))
}

fn finite(name: &str, x: f64) -> Result<f64, WireError> {
    if x.is_finite() {
        Ok(x)
    } else {
        Err(WireError::new(format!("`{name}` must be finite")))
    }
}

// ---------------------------------------------------------------------
// Job submission.

/// Encodes a [`JobSpec`] as the `SubmitJob` payload.
pub fn encode_submit(spec: &JobSpec) -> Vec<u8> {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("stream").bool(spec.stream);
    w.key("snapshot_every").u64(spec.snapshot_every as u64);
    w.key("config").begin_object();
    w.key("rounds").u64(spec.config.rounds as u64);
    w.key("slot_s").f64(spec.config.slot_s);
    w.key("bits_per_slot").u64(spec.config.bits_per_slot as u64);
    w.key("report_interval_s")
        .f64(spec.config.report_interval_s);
    w.key("report_bits").u64(spec.config.report_bits as u64);
    w.key("plm_bps").f64(spec.config.plm_bps);
    w.key("capture_prob").f64(spec.config.capture_prob);
    w.key("seed").u64(spec.config.seed);
    w.end_object();
    let d = &spec.deployment;
    w.key("deployment").begin_object();
    w.key("path_loss").begin_object();
    w.key("pl0_db").f64(d.site.path_loss.pl0_db);
    w.key("exponent").f64(d.site.path_loss.exponent);
    w.end_object();
    w.key("walls").begin_array();
    for wall in &d.site.walls {
        w.begin_object();
        w.key("ax").f64(wall.a.x);
        w.key("ay").f64(wall.a.y);
        w.key("bx").f64(wall.b.x);
        w.key("by").f64(wall.b.y);
        w.key("loss_db").f64(wall.loss_db);
        w.end_object();
    }
    w.end_array();
    w.key("exciter").begin_object();
    w.key("x").f64(d.exciter.position.x);
    w.key("y").f64(d.exciter.position.y);
    w.key("tx_power_dbm").f64(d.exciter.tx_power_dbm);
    w.end_object();
    w.key("receivers").begin_array();
    for r in &d.receivers {
        w.begin_object();
        w.key("x").f64(r.position.x);
        w.key("y").f64(r.position.y);
        w.key("sensitivity_dbm").f64(r.sensitivity_dbm);
        w.end_object();
    }
    w.end_array();
    w.key("tags").begin_array();
    for t in &d.tags {
        w.begin_object();
        w.key("x").f64(t.position.x);
        w.key("y").f64(t.position.y);
        w.key("sensitivity_dbm").f64(t.sensitivity_dbm);
        w.end_object();
    }
    w.end_array();
    w.key("backscatter_loss_db").f64(d.backscatter_loss_db);
    w.end_object();
    w.end_object();
    w.finish().into_bytes()
}

/// Decodes a `SubmitJob` payload, validating ranges.
pub fn decode_submit(payload: &[u8]) -> Result<JobSpec, WireError> {
    let v = parse_payload(payload)?;
    let c = need(&v, "config")?;
    let config = SimConfig {
        rounds: need_usize(c, "rounds")?,
        slot_s: finite("slot_s", need_f64(c, "slot_s")?)?,
        bits_per_slot: need_usize(c, "bits_per_slot")?,
        report_interval_s: finite("report_interval_s", need_f64(c, "report_interval_s")?)?,
        report_bits: need_usize(c, "report_bits")?,
        plm_bps: finite("plm_bps", need_f64(c, "plm_bps")?)?,
        capture_prob: finite("capture_prob", need_f64(c, "capture_prob")?)?,
        seed: need_u64(c, "seed")?,
    };
    if config.rounds == 0 {
        return Err(WireError::new("`rounds` must be positive"));
    }
    if config.bits_per_slot == 0 || config.report_bits == 0 {
        return Err(WireError::new("bit sizes must be positive"));
    }
    if config.slot_s <= 0.0 || config.plm_bps <= 0.0 {
        return Err(WireError::new("durations and rates must be positive"));
    }
    if !(0.0..=1.0).contains(&config.capture_prob) {
        return Err(WireError::new("`capture_prob` must be in [0, 1]"));
    }

    let d = need(&v, "deployment")?;
    let pl = need(d, "path_loss")?;
    let pl0_db = finite("pl0_db", need_f64(pl, "pl0_db")?)?;
    let exponent = finite("exponent", need_f64(pl, "exponent")?)?;
    if pl0_db < 0.0 || exponent <= 0.0 {
        return Err(WireError::new("path loss must have pl0 ≥ 0, exponent > 0"));
    }
    let mut site = Site::open(PathLoss { pl0_db, exponent });
    for wall in need_array(d, "walls")? {
        site = site.with_wall(Wall::new(
            Point::new(need_f64(wall, "ax")?, need_f64(wall, "ay")?),
            Point::new(need_f64(wall, "bx")?, need_f64(wall, "by")?),
            need_f64(wall, "loss_db")?,
        ));
    }
    let ex = need(d, "exciter")?;
    let exciter = Exciter {
        position: Point::new(need_f64(ex, "x")?, need_f64(ex, "y")?),
        tx_power_dbm: need_f64(ex, "tx_power_dbm")?,
    };
    let mut receivers = Vec::new();
    for r in need_array(d, "receivers")? {
        receivers.push(ReceiverNode {
            position: Point::new(need_f64(r, "x")?, need_f64(r, "y")?),
            sensitivity_dbm: need_f64(r, "sensitivity_dbm")?,
        });
    }
    let mut tags = Vec::new();
    for t in need_array(d, "tags")? {
        tags.push(TagNode {
            position: Point::new(need_f64(t, "x")?, need_f64(t, "y")?),
            sensitivity_dbm: need_f64(t, "sensitivity_dbm")?,
        });
    }
    if tags.is_empty() {
        return Err(WireError::new("deployment has no tags"));
    }
    let deployment = Deployment {
        site,
        exciter,
        receivers,
        tags,
        backscatter_loss_db: finite("backscatter_loss_db", need_f64(d, "backscatter_loss_db")?)?,
    };
    Ok(JobSpec {
        config,
        deployment,
        stream: need_bool(&v, "stream")?,
        snapshot_every: need_usize(&v, "snapshot_every")?,
    })
}

// ---------------------------------------------------------------------
// Job ids, errors, statuses.

/// Encodes `{"job": id}` (used by `JobAccepted`, `Subscribe`, `JobStatus`,
/// `CancelJob`, `StreamEnd`).
pub fn encode_job_id(id: u64) -> Vec<u8> {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("job").u64(id);
    w.end_object();
    w.finish().into_bytes()
}

/// Decodes `{"job": id}`.
pub fn decode_job_id(payload: &[u8]) -> Result<u64, WireError> {
    need_u64(&parse_payload(payload)?, "job")
}

/// Encodes `{"job": id, "cancelled": bool}`.
pub fn encode_cancelled(id: u64, cancelled: bool) -> Vec<u8> {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("job").u64(id);
    w.key("cancelled").bool(cancelled);
    w.end_object();
    w.finish().into_bytes()
}

/// Decodes the `Cancelled` payload into `(job, cancelled)`.
pub fn decode_cancelled(payload: &[u8]) -> Result<(u64, bool), WireError> {
    let v = parse_payload(payload)?;
    Ok((need_u64(&v, "job")?, need_bool(&v, "cancelled")?))
}

/// Encodes an `Error` payload.
pub fn encode_error(msg: &str) -> Vec<u8> {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("error").string(msg);
    w.end_object();
    w.finish().into_bytes()
}

/// Decodes an `Error` payload.
pub fn decode_error(payload: &[u8]) -> Result<String, WireError> {
    let v = parse_payload(payload)?;
    need(&v, "error")?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| WireError::new("`error` must be a string"))
}

fn write_status(w: &mut JsonWriter, s: &StatusInfo) {
    w.begin_object();
    w.key("job").u64(s.job);
    w.key("state").string(&s.state);
    w.key("rounds_done").u64(s.rounds_done);
    w.key("rounds").u64(s.rounds);
    w.key("tags").u64(s.tags);
    w.end_object();
}

fn read_status(v: &JsonValue) -> Result<StatusInfo, WireError> {
    Ok(StatusInfo {
        job: need_u64(v, "job")?,
        state: need(v, "state")?
            .as_str()
            .ok_or_else(|| WireError::new("`state` must be a string"))?
            .to_string(),
        rounds_done: need_u64(v, "rounds_done")?,
        rounds: need_u64(v, "rounds")?,
        tags: need_u64(v, "tags")?,
    })
}

/// Encodes one `Status` payload.
pub fn encode_status(s: &StatusInfo) -> Vec<u8> {
    let mut w = JsonWriter::new();
    write_status(&mut w, s);
    w.finish().into_bytes()
}

/// Decodes one `Status` payload.
pub fn decode_status(payload: &[u8]) -> Result<StatusInfo, WireError> {
    read_status(&parse_payload(payload)?)
}

/// Encodes the `Jobs` payload (all jobs, ascending id).
pub fn encode_jobs(jobs: &[StatusInfo]) -> Vec<u8> {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("jobs").begin_array();
    for s in jobs {
        write_status(&mut w, s);
    }
    w.end_array();
    w.end_object();
    w.finish().into_bytes()
}

/// Decodes the `Jobs` payload.
pub fn decode_jobs(payload: &[u8]) -> Result<Vec<StatusInfo>, WireError> {
    let v = parse_payload(payload)?;
    need_array(&v, "jobs")?.iter().map(read_status).collect()
}

// ---------------------------------------------------------------------
// Stream frames.

/// Encodes a [`RoundProgress`] as the `Progress` payload.
pub fn encode_progress(p: &RoundProgress) -> Vec<u8> {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("round").u64(p.round as u64);
    w.key("rounds").u64(p.rounds as u64);
    w.key("time_s").f64(p.time_s);
    w.key("n_slots").u64(p.n_slots as u64);
    w.key("participants").u64(p.participants as u64);
    w.key("delivered_slots").u64(p.delivered_slots as u64);
    w.key("delivered_bits").u64(p.delivered_bits);
    w.key("reports_delivered").u64(p.reports_delivered);
    w.end_object();
    w.finish().into_bytes()
}

/// Decodes a `Progress` payload.
pub fn decode_progress(payload: &[u8]) -> Result<RoundProgress, WireError> {
    let v = parse_payload(payload)?;
    Ok(RoundProgress {
        round: need_usize(&v, "round")?,
        rounds: need_usize(&v, "rounds")?,
        time_s: need_f64(&v, "time_s")?,
        n_slots: u16::try_from(need_u64(&v, "n_slots")?)
            .map_err(|_| WireError::new("`n_slots` out of range for u16"))?,
        participants: need_usize(&v, "participants")?,
        delivered_slots: need_usize(&v, "delivered_slots")?,
        delivered_bits: need_u64(&v, "delivered_bits")?,
        reports_delivered: need_u64(&v, "reports_delivered")?,
    })
}

fn write_tag(w: &mut JsonWriter, t: &TagReport) {
    w.begin_object();
    w.key("delivered_bits").u64(t.delivered_bits);
    w.key("reports_delivered").u64(t.reports_delivered as u64);
    w.key("mean_latency_s");
    match t.mean_latency_s {
        Some(lat) => w.f64(lat),
        None => w.null(),
    };
    w.key("servable").bool(t.servable);
    w.key("plm_reach").f64(t.plm_reach);
    w.end_object();
}

fn read_tag(v: &JsonValue) -> Result<TagReport, WireError> {
    let lat = need(v, "mean_latency_s")?;
    Ok(TagReport {
        delivered_bits: need_u64(v, "delivered_bits")?,
        reports_delivered: need_usize(v, "reports_delivered")?,
        mean_latency_s: if lat.is_null() {
            None
        } else {
            Some(
                lat.as_f64()
                    .ok_or_else(|| WireError::new("`mean_latency_s` must be a number or null"))?,
            )
        },
        servable: need_bool(v, "servable")?,
        plm_reach: need_f64(v, "plm_reach")?,
    })
}

/// Encodes a `TagSnapshot` payload: the round plus every tag's state.
pub fn encode_tags(round: usize, tags: &[TagReport]) -> Vec<u8> {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("round").u64(round as u64);
    w.key("tags").begin_array();
    for t in tags {
        write_tag(&mut w, t);
    }
    w.end_array();
    w.end_object();
    w.finish().into_bytes()
}

/// Decodes a `TagSnapshot` payload into `(round, tags)`.
pub fn decode_tags(payload: &[u8]) -> Result<(usize, Vec<TagReport>), WireError> {
    let v = parse_payload(payload)?;
    let tags = need_array(&v, "tags")?
        .iter()
        .map(read_tag)
        .collect::<Result<Vec<_>, _>>()?;
    Ok((need_usize(&v, "round")?, tags))
}

/// Encodes a [`DeploymentReport`] as the `JobResult` payload.
///
/// Deterministic: equal reports give byte-equal payloads, so a served
/// result can be compared byte-for-byte against an in-process run.
pub fn encode_report(r: &DeploymentReport) -> Vec<u8> {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("tags").begin_array();
    for t in &r.tags {
        write_tag(&mut w, t);
    }
    w.end_array();
    w.key("aggregate_bps").f64(r.aggregate_bps);
    w.key("fairness").f64(r.fairness);
    w.key("total_time_s").f64(r.total_time_s);
    w.end_object();
    w.finish().into_bytes()
}

// ---------------------------------------------------------------------
// Server observability: Stats and Health.

fn need_object<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [(String, JsonValue)], WireError> {
    match need(v, key)? {
        JsonValue::Object(members) => Ok(members),
        _ => Err(WireError::new(format!("`{key}` must be an object"))),
    }
}

fn write_u64_map(w: &mut JsonWriter, entries: &[(String, u64)]) {
    w.begin_object();
    for (k, v) in entries {
        w.key(k).u64(*v);
    }
    w.end_object();
}

fn read_u64_map(
    members: &[(String, JsonValue)],
    what: &str,
) -> Result<Vec<(String, u64)>, WireError> {
    members
        .iter()
        .map(|(k, v)| {
            v.as_u64().map(|n| (k.clone(), n)).ok_or_else(|| {
                WireError::new(format!("`{what}.{k}` must be a non-negative integer"))
            })
        })
        .collect()
}

/// Encodes just the `counters` object of a [`StatsReport`] — the
/// deterministic subset. Loopback tests pin these bytes across
/// `FREERIDER_THREADS`; gauges and latency are deliberately excluded.
pub fn encode_stats_counters(r: &StatsReport) -> Vec<u8> {
    let mut w = JsonWriter::new();
    write_u64_map(&mut w, &r.counters);
    w.finish().into_bytes()
}

/// Encodes a [`StatsReport`] as the `Stats` payload
/// (schema [`STATS_SCHEMA`]).
pub fn encode_stats(r: &StatsReport) -> Vec<u8> {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema").string(STATS_SCHEMA);
    w.key("counters");
    write_u64_map(&mut w, &r.counters);
    w.key("gauges");
    write_u64_map(&mut w, &r.gauges);
    w.key("latency").begin_object();
    for (k, l) in &r.latency {
        w.key(k).begin_object();
        w.key("count").u64(l.count);
        w.key("sum").u64(l.sum);
        w.key("min").u64(l.min);
        w.key("max").u64(l.max);
        w.key("p50").u64(l.p50);
        w.key("p90").u64(l.p90);
        w.key("p99").u64(l.p99);
        w.end_object();
    }
    w.end_object();
    w.end_object();
    w.finish().into_bytes()
}

/// Decodes a `Stats` payload, rejecting unknown schemas.
pub fn decode_stats(payload: &[u8]) -> Result<StatsReport, WireError> {
    let v = parse_payload(payload)?;
    let schema = need(&v, "schema")?
        .as_str()
        .ok_or_else(|| WireError::new("`schema` must be a string"))?;
    if schema != STATS_SCHEMA {
        return Err(WireError::new(format!(
            "unknown stats schema `{schema}` (this peer speaks `{STATS_SCHEMA}`)"
        )));
    }
    let counters = read_u64_map(need_object(&v, "counters")?, "counters")?;
    let gauges = read_u64_map(need_object(&v, "gauges")?, "gauges")?;
    let latency = need_object(&v, "latency")?
        .iter()
        .map(|(k, l)| {
            Ok((
                k.clone(),
                LatencySummary {
                    count: need_u64(l, "count")?,
                    sum: need_u64(l, "sum")?,
                    min: need_u64(l, "min")?,
                    max: need_u64(l, "max")?,
                    p50: need_u64(l, "p50")?,
                    p90: need_u64(l, "p90")?,
                    p99: need_u64(l, "p99")?,
                },
            ))
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    Ok(StatsReport {
        counters,
        gauges,
        latency,
    })
}

/// Encodes a [`HealthInfo`] as the `Health` payload. Deliberately tiny
/// and uptime-free: monotonic totals only, no wall-clock anywhere.
pub fn encode_health(h: &HealthInfo) -> Vec<u8> {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("ok").bool(h.ok);
    w.key("jobs_queued").u64(h.jobs_queued);
    w.key("jobs_running").u64(h.jobs_running);
    w.key("sessions_active").u64(h.sessions_active);
    w.key("frames_rx").u64(h.frames_rx);
    w.key("frames_tx").u64(h.frames_tx);
    w.end_object();
    w.finish().into_bytes()
}

/// Decodes a `Health` payload.
pub fn decode_health(payload: &[u8]) -> Result<HealthInfo, WireError> {
    let v = parse_payload(payload)?;
    Ok(HealthInfo {
        ok: need_bool(&v, "ok")?,
        jobs_queued: need_u64(&v, "jobs_queued")?,
        jobs_running: need_u64(&v, "jobs_running")?,
        sessions_active: need_u64(&v, "sessions_active")?,
        frames_rx: need_u64(&v, "frames_rx")?,
        frames_tx: need_u64(&v, "frames_tx")?,
    })
}

/// Decodes a `JobResult` payload.
pub fn decode_report(payload: &[u8]) -> Result<DeploymentReport, WireError> {
    let v = parse_payload(payload)?;
    let tags = need_array(&v, "tags")?
        .iter()
        .map(read_tag)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(DeploymentReport {
        tags,
        aggregate_bps: need_f64(&v, "aggregate_bps")?,
        fairness: need_f64(&v, "fairness")?,
        total_time_s: need_f64(&v, "total_time_s")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use freerider_net::LinkModel;

    fn spec() -> JobSpec {
        let mut d = Deployment::open_plan()
            .with_receiver(6.0, 0.0)
            .with_receiver(-6.0, 0.25)
            .with_tag(1.0, 2.0)
            .with_tag(-2.5, 0.5);
        d.site =
            d.site
                .clone()
                .with_wall(Wall::new(Point::new(3.0, -4.0), Point::new(3.0, 4.0), 7.5));
        JobSpec {
            config: SimConfig::default(),
            deployment: d,
            stream: true,
            snapshot_every: 25,
        }
    }

    #[test]
    fn submit_round_trips_byte_identically() {
        let s = spec();
        let bytes = encode_submit(&s);
        let back = decode_submit(&bytes).unwrap();
        // Deployment lacks PartialEq; byte equality of a re-encode is the
        // stronger statement anyway.
        assert_eq!(encode_submit(&back), bytes);
        assert_eq!(back.config, s.config);
        assert!(back.stream);
        assert_eq!(back.snapshot_every, 25);
    }

    #[test]
    fn submit_validation_rejects_nonsense() {
        let mut s = spec();
        s.config.rounds = 0;
        assert!(decode_submit(&encode_submit(&s)).is_err());
        let mut s = spec();
        s.config.capture_prob = 1.5;
        assert!(decode_submit(&encode_submit(&s)).is_err());
        let mut s = spec();
        s.deployment.tags.clear();
        assert!(decode_submit(&encode_submit(&s)).is_err());
        assert!(decode_submit(b"not json").is_err());
        assert!(decode_submit(br#"{"stream":true}"#).is_err());
    }

    #[test]
    fn zero_delivery_tag_round_trips_as_null() {
        // The NaN-leakage regression: a tag that never delivered a report
        // must serialize as `null` and come back as `None`.
        let report = DeploymentReport {
            tags: vec![TagReport {
                delivered_bits: 0,
                reports_delivered: 0,
                mean_latency_s: None,
                servable: false,
                plm_reach: 0.0,
            }],
            aggregate_bps: 0.0,
            fairness: 1.0,
            total_time_s: 3.5,
        };
        let bytes = encode_report(&report);
        let text = std::str::from_utf8(&bytes).unwrap();
        assert!(
            text.contains(r#""mean_latency_s":null"#),
            "expected null latency in {text}"
        );
        assert!(!text.contains("NaN"), "NaN leaked into JSON: {text}");
        let back = decode_report(&bytes).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn served_report_encoding_matches_in_process_run() {
        let s = spec();
        let sim = DeploymentSimHelper::run(&s);
        let bytes = encode_report(&sim);
        let back = decode_report(&bytes).unwrap();
        assert_eq!(encode_report(&back), bytes);
    }

    /// Tiny helper so the test above reads clearly.
    struct DeploymentSimHelper;
    impl DeploymentSimHelper {
        fn run(s: &JobSpec) -> DeploymentReport {
            freerider_net::DeploymentSim::new(
                s.deployment.clone(),
                LinkModel::default(),
                s.config.clone(),
            )
            .run()
        }
    }

    #[test]
    fn progress_and_tags_round_trip() {
        let p = RoundProgress {
            round: 7,
            rounds: 100,
            time_s: 0.375,
            n_slots: 16,
            participants: 9,
            delivered_slots: 5,
            delivered_bits: 12_345,
            reports_delivered: 42,
        };
        assert_eq!(decode_progress(&encode_progress(&p)).unwrap(), p);

        let tags = vec![
            TagReport {
                delivered_bits: 100,
                reports_delivered: 2,
                mean_latency_s: Some(0.125),
                servable: true,
                plm_reach: 0.97,
            },
            TagReport {
                delivered_bits: 0,
                reports_delivered: 0,
                mean_latency_s: None,
                servable: false,
                plm_reach: 0.0,
            },
        ];
        let (round, back) = decode_tags(&encode_tags(7, &tags)).unwrap();
        assert_eq!(round, 7);
        assert_eq!(back, tags);
    }

    #[test]
    fn progress_rejects_out_of_range_n_slots() {
        // A mismatched or malicious server could claim more slots than
        // `u16` holds; that must be a decode error, not a truncation.
        let payload = br#"{"round":1,"rounds":2,"time_s":0.1,"n_slots":70000,
            "participants":1,"delivered_slots":1,"delivered_bits":1,
            "reports_delivered":1}"#;
        let err = decode_progress(payload).unwrap_err();
        assert!(err.msg.contains("n_slots"), "unexpected error: {err}");
    }

    #[test]
    fn status_and_jobs_round_trip() {
        let s = StatusInfo {
            job: 3,
            state: "running".to_string(),
            rounds_done: 17,
            rounds: 400,
            tags: 1000,
        };
        assert_eq!(decode_status(&encode_status(&s)).unwrap(), s);
        let jobs = vec![s.clone(), StatusInfo { job: 4, ..s }];
        assert_eq!(decode_jobs(&encode_jobs(&jobs)).unwrap(), jobs);
    }

    #[test]
    fn small_payloads_round_trip() {
        assert_eq!(decode_job_id(&encode_job_id(9)).unwrap(), 9);
        assert_eq!(
            decode_cancelled(&encode_cancelled(9, true)).unwrap(),
            (9, true)
        );
        assert_eq!(decode_error(&encode_error("nope")).unwrap(), "nope");
    }

    #[test]
    fn stats_round_trips_and_pins_the_schema() {
        let r = StatsReport {
            counters: vec![
                ("bytes.rx".to_string(), 123),
                ("frames.rx.submit_job".to_string(), 1),
            ],
            gauges: vec![
                ("jobs.running".to_string(), 0),
                ("sessions.active".to_string(), 2),
            ],
            latency: vec![(
                "frame.handle_ns".to_string(),
                LatencySummary {
                    count: 4,
                    sum: 4000,
                    min: 500,
                    max: 2000,
                    p50: 900,
                    p90: 1800,
                    p99: 2000,
                },
            )],
        };
        let bytes = encode_stats(&r);
        let text = std::str::from_utf8(&bytes).unwrap();
        assert!(
            text.starts_with(r#"{"schema":"freerider-serve-stats/1""#),
            "{text}"
        );
        let back = decode_stats(&bytes).unwrap();
        assert_eq!(back, r);
        assert_eq!(encode_stats(&back), bytes);
        // The counters-only encoding is a strict prefix-free subset.
        assert_eq!(
            encode_stats_counters(&r),
            br#"{"bytes.rx":123,"frames.rx.submit_job":1}"#.to_vec()
        );
        // Unknown schema must be rejected, not silently misread.
        let other = text.replace("freerider-serve-stats/1", "somebody-else/9");
        assert!(decode_stats(other.as_bytes()).is_err());
    }

    #[test]
    fn health_round_trips() {
        let h = HealthInfo {
            ok: true,
            jobs_queued: 1,
            jobs_running: 2,
            sessions_active: 3,
            frames_rx: 40,
            frames_tx: 50,
        };
        let bytes = encode_health(&h);
        assert_eq!(decode_health(&bytes).unwrap(), h);
        assert!(std::str::from_utf8(&bytes)
            .unwrap()
            .starts_with(r#"{"ok":true"#));
    }
}
