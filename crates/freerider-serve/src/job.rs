//! Job lifecycle: submission, execution threads, subscribers, results.
//!
//! A [`JobManager`] owns every job the server has accepted. Each
//! submission spawns one OS thread that drives
//! [`freerider_net::DeploymentSim::run_observed`] over a `freerider-rt`
//! executor; the observer fans each stream event out to every attached
//! [`SubQueue`]. Stream frames are encoded **once per event** and cloned
//! per subscriber, and subscribers never influence the simulation —
//! the final report is byte-identical whether zero or fifty connections
//! watch, and whatever `FREERIDER_THREADS` says (the simulator's
//! determinism contract, see `freerider-net::sim`).
//!
//! Completed jobs keep their final `JobResult` + `StreamEnd` frames so a
//! late subscriber still receives the result instead of a silent hangup —
//! up to [`MAX_RETAINED_FINISHED`] of them; older finished jobs are
//! pruned on submission so a long-running server never grows without
//! bound.

use crate::frame::{Frame, FrameType};
use crate::metrics::ServerMetrics;
use crate::queue::SubQueue;
use crate::wire::{self, JobSpec, StatusInfo};
use freerider_net::{DeploymentSim, LinkModel, SimEvent};
use freerider_rt::{CancelToken, Executor};
use freerider_telemetry::{profile, trace};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Job identifier: dense, ascending, never reused within a server run.
pub type JobId = u64;

/// Finished jobs retained for late `JobStatus`/`Subscribe` queries.
/// Beyond this the oldest finished jobs — and their terminal frames,
/// which can run to megabytes for large deployments — are dropped at the
/// next submission, so a long-running server's memory stays bounded.
pub const MAX_RETAINED_FINISHED: usize = 64;

/// Smallest per-subscriber queue capacity the manager will hand out. A
/// stream ends with up to two terminal frames (`JobResult`/`Error` +
/// `StreamEnd`); with a smaller queue, drop-oldest eviction could evict
/// the result itself and a streaming client would never see it.
pub const MIN_QUEUE_CAP: usize = 4;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, worker thread not yet running the simulation.
    Queued,
    /// Simulation in progress.
    Running,
    /// Finished; result frames retained.
    Done,
    /// Cancelled before completion; no result.
    Cancelled,
    /// The worker thread died; no result.
    Failed,
}

impl JobState {
    /// Wire name of the state.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    fn finished(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Cancelled | JobState::Failed
        )
    }
}

struct Meta {
    state: JobState,
    rounds_done: u64,
    rounds: u64,
    tags: u64,
}

/// Subscribers and the stream's terminal frames, under one lock so that
/// "attach a subscriber" and "finish the stream" serialize: a subscriber
/// either joins the live broadcast or replays the terminal frames —
/// never neither.
struct Subs {
    queues: Vec<Arc<SubQueue>>,
    finished: bool,
    /// Terminal frames (`JobResult` and/or `StreamEnd`) replayed to
    /// subscribers that attach after the job finished.
    terminal: Vec<Frame>,
}

/// One accepted job.
pub struct Job {
    id: JobId,
    cancel: CancelToken,
    meta: Mutex<Meta>,
    subs: Mutex<Subs>,
}

impl Job {
    /// The job's id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// A status snapshot.
    pub fn status(&self) -> StatusInfo {
        let m = lock(&self.meta);
        StatusInfo {
            job: self.id,
            state: m.state.name().to_string(),
            rounds_done: m.rounds_done,
            rounds: m.rounds,
            tags: m.tags,
        }
    }

    /// Requests cancellation. Returns `false` if the job had already
    /// finished (the request is then a no-op).
    pub fn cancel(&self) -> bool {
        if lock(&self.meta).state.finished() {
            return false;
        }
        self.cancel.cancel();
        true
    }

    /// Whether any subscriber is attached (used to skip frame encoding
    /// when nobody listens).
    fn has_subs(&self) -> bool {
        !lock(&self.subs).queues.is_empty()
    }

    fn broadcast(&self, frame: Frame) {
        let subs = lock(&self.subs);
        for s in subs.queues.iter() {
            s.push(frame.clone());
        }
    }

    fn finish(&self, state: JobState, terminal: Vec<Frame>) {
        lock(&self.meta).state = state;
        let mut subs = lock(&self.subs);
        subs.finished = true;
        for f in &terminal {
            for s in subs.queues.iter() {
                s.push(f.clone());
            }
        }
        subs.terminal = terminal;
        for s in subs.queues.drain(..) {
            s.close();
        }
    }
}

/// Owns all jobs; spawns and tracks their worker threads.
pub struct JobManager {
    jobs: Mutex<BTreeMap<JobId, Arc<Job>>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    next_id: AtomicU64,
    /// Executor width for job threads (0 = honour `FREERIDER_THREADS`).
    threads: usize,
    /// Per-subscriber queue capacity.
    queue_cap: usize,
    /// Subscriber cap per job.
    max_subs: usize,
    /// Push a `Stats` frame into streams every this many rounds (0 = off).
    stats_every: usize,
    /// This server's observability registry; shared with every session
    /// and every queue the manager hands out.
    metrics: Arc<ServerMetrics>,
}

impl JobManager {
    /// A manager with the given executor width (0 = from env), queue
    /// capacity (clamped to [`MIN_QUEUE_CAP`]), and per-job subscriber
    /// cap. Periodic stats pushes start off; see
    /// [`JobManager::with_stats_every`].
    pub fn new(threads: usize, queue_cap: usize, max_subs: usize) -> Self {
        JobManager {
            jobs: Mutex::new(BTreeMap::new()),
            workers: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            threads,
            queue_cap: queue_cap.max(MIN_QUEUE_CAP),
            max_subs: max_subs.max(1),
            stats_every: 0,
            metrics: Arc::new(ServerMetrics::new()),
        }
    }

    /// Enables periodic `Stats` stream frames: one is broadcast to every
    /// subscriber after each `every` completed rounds (0 disables). With
    /// pushes enabled, byte counters become timing-dependent — the
    /// determinism contract on the counters section only holds at 0.
    pub fn with_stats_every(mut self, every: usize) -> Self {
        self.stats_every = every;
        self
    }

    /// The per-subscriber queue capacity this manager hands out.
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }

    /// This server's metrics registry.
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// A fresh subscriber queue wired into this server's metrics.
    pub fn new_queue(&self) -> Arc<SubQueue> {
        Arc::new(SubQueue::with_metrics(
            self.queue_cap,
            Some(Arc::clone(&self.metrics)),
        ))
    }

    /// Joins worker threads that have already exited. Submission is the
    /// natural hook: handle count only grows when jobs are submitted.
    fn reap_workers(&self) {
        let mut workers = lock(&self.workers);
        let mut i = 0;
        while i < workers.len() {
            if workers[i].is_finished() {
                let _ = workers.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
    }

    /// Drops the oldest finished jobs past [`MAX_RETAINED_FINISHED`].
    /// Unfinished jobs are never touched, so ids stay dense and live
    /// streams are unaffected.
    fn prune_finished(&self) {
        let mut jobs = lock(&self.jobs);
        let finished: Vec<JobId> = jobs
            .iter()
            .filter(|(_, j)| lock(&j.meta).state.finished())
            .map(|(id, _)| *id)
            .collect();
        if finished.len() > MAX_RETAINED_FINISHED {
            for id in &finished[..finished.len() - MAX_RETAINED_FINISHED] {
                jobs.remove(id);
            }
        }
    }

    /// Accepts a job and spawns its worker thread. When `initial_sub` is
    /// given it is attached *before* the thread starts, so that
    /// subscriber observes every stream frame from round zero.
    pub fn submit(&self, spec: JobSpec, initial_sub: Option<Arc<SubQueue>>) -> JobId {
        self.reap_workers();
        self.prune_finished();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed); // lint: allow(o1) — unique-ID tick; uniqueness needs only RMW atomicity
        let job = Arc::new(Job {
            id,
            cancel: CancelToken::new(),
            meta: Mutex::new(Meta {
                state: JobState::Queued,
                rounds_done: 0,
                rounds: spec.config.rounds as u64,
                tags: spec.deployment.tags.len() as u64,
            }),
            subs: Mutex::new(Subs {
                queues: initial_sub.into_iter().collect(),
                finished: false,
                terminal: Vec::new(),
            }),
        });
        lock(&self.jobs).insert(id, Arc::clone(&job));
        freerider_telemetry::count("serve.jobs.submitted");
        self.metrics.job_submitted();
        if job.has_subs() {
            self.metrics.sub_attached();
        }

        let threads = self.threads;
        let stats_every = self.stats_every;
        let metrics = Arc::clone(&self.metrics);
        let handle = std::thread::spawn(move || run_job(job, spec, threads, metrics, stats_every));
        lock(&self.workers).push(handle);
        id
    }

    /// A new subscriber queue for `id`. A finished job immediately
    /// replays its terminal frames; a missing job or a job already at
    /// its subscriber cap is an error.
    pub fn subscribe(&self, id: JobId) -> Result<Arc<SubQueue>, String> {
        let job = self.get(id).ok_or_else(|| format!("no such job {id}"))?;
        let q = self.new_queue();
        let mut subs = lock(&job.subs);
        if subs.finished {
            for f in subs.terminal.iter() {
                q.push(f.clone());
            }
            q.close();
            self.metrics.sub_attached();
            return Ok(q);
        }
        if subs.queues.len() >= self.max_subs {
            return Err(format!(
                "job {id} already has {} subscribers (cap)",
                subs.queues.len()
            ));
        }
        subs.queues.push(Arc::clone(&q));
        self.metrics.sub_attached();
        Ok(q)
    }

    /// Looks a job up.
    pub fn get(&self, id: JobId) -> Option<Arc<Job>> {
        lock(&self.jobs).get(&id).cloned()
    }

    /// Every job's status, ascending by id.
    pub fn list(&self) -> Vec<StatusInfo> {
        lock(&self.jobs).values().map(|j| j.status()).collect()
    }

    /// Requests cancellation of `id`. `None` = no such job; otherwise
    /// whether the request landed before the job finished.
    pub fn cancel(&self, id: JobId) -> Option<bool> {
        let job = self.get(id)?;
        let landed = job.cancel();
        if landed {
            freerider_telemetry::count("serve.jobs.cancelled");
        }
        Some(landed)
    }

    /// Cancels every unfinished job and joins all worker threads.
    pub fn shutdown(&self) {
        for job in lock(&self.jobs).values() {
            job.cancel();
        }
        let workers = std::mem::take(&mut *lock(&self.workers));
        for h in workers {
            let _ = h.join();
        }
    }
}

impl Drop for JobManager {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The worker thread body: runs the simulation, streaming to subscribers.
fn run_job(
    job: Arc<Job>,
    spec: JobSpec,
    threads: usize,
    metrics: Arc<ServerMetrics>,
    stats_every: usize,
) {
    let _scope = trace::packet("serve.job", job.id);
    trace::value_u64("rounds", spec.config.rounds as u64);
    trace::value_u64("tags", spec.deployment.tags.len() as u64);
    lock(&job.meta).state = JobState::Running;
    metrics.job_started();
    let exec = if threads == 0 {
        Executor::from_env()
    } else {
        Executor::new(threads)
    };
    let sim = DeploymentSim::new(spec.deployment, LinkModel::default(), spec.config);
    let cancel = job.cancel.clone();
    let job_obs = Arc::clone(&job);
    let metrics_obs = Arc::clone(&metrics);
    let snapshot_every = spec.snapshot_every;

    // Per-job stage budget: when the profiler is on, diff the profile
    // report around the run and feed each stage's wall-clock delta into
    // the server's `job.stage.<path>` latency rows. The report is
    // process-global, so overlapping jobs see each other's time — the
    // budget is exact with one job in flight and approximate under
    // concurrency (the common single-job deployment either way).
    let stage_before = if profile::enabled() {
        Some(profile::report())
    } else {
        None
    };

    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sim.run_observed(&exec, &cancel, snapshot_every, &mut |event| match event {
            SimEvent::Round(p) => {
                let round_done = p.round as u64 + 1;
                lock(&job_obs.meta).rounds_done = round_done;
                // Encode once, clone per subscriber; skip the encode
                // entirely when nobody is listening.
                if job_obs.has_subs() {
                    job_obs.broadcast(Frame::new(FrameType::Progress, wire::encode_progress(&p)));
                    // The FREERIDER_SERVE_STATS_EVERY periodic snapshot:
                    // subscribers watching a long job see server load
                    // evolve without polling GetStats on a second
                    // connection.
                    if stats_every > 0 && round_done.is_multiple_of(stats_every as u64) {
                        metrics_obs.stats_push();
                        job_obs.broadcast(Frame::new(
                            FrameType::Stats,
                            wire::encode_stats(&metrics_obs.report()),
                        ));
                    }
                }
            }
            SimEvent::Tags { round, tags } => {
                if job_obs.has_subs() {
                    job_obs.broadcast(Frame::new(
                        FrameType::TagSnapshot,
                        wire::encode_tags(round, tags),
                    ));
                }
            }
        })
    }));

    if let Some(before) = stage_before {
        let after = profile::report();
        for (path, stat) in &after {
            let prev = before.get(path).map(|s| s.total_ns).unwrap_or(0);
            let delta = stat.total_ns.saturating_sub(prev);
            if delta > 0 {
                metrics.job_stage_ns(path, delta);
            }
        }
    }

    let end = Frame::new(FrameType::StreamEnd, wire::encode_job_id(job.id));
    // Record the terminal transition *before* broadcasting the terminal
    // frames: a client that saw `StreamEnd` must find the job already
    // counted as finished in its next `Stats` snapshot.
    match outcome {
        Ok(Some(report)) => {
            let result = Frame::new(FrameType::JobResult, wire::encode_report(&report));
            metrics.job_finished(JobState::Done);
            job.finish(JobState::Done, vec![result, end]);
            freerider_telemetry::count("serve.jobs.completed");
        }
        Ok(None) => {
            metrics.job_finished(JobState::Cancelled);
            job.finish(JobState::Cancelled, vec![end]);
        }
        Err(_) => {
            trace::fail("job worker panicked");
            let err = Frame::new(FrameType::Error, wire::encode_error("job worker panicked"));
            metrics.job_finished(JobState::Failed);
            job.finish(JobState::Failed, vec![err, end]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freerider_net::{Deployment, SimConfig};

    fn tiny_spec(rounds: usize) -> JobSpec {
        let mut d = Deployment::open_plan().with_receiver(4.0, 0.0);
        for i in 0..8 {
            d = d.with_tag(i as f64 * 0.4 - 1.6, 1.0);
        }
        JobSpec {
            config: SimConfig {
                rounds,
                ..SimConfig::default()
            },
            deployment: d,
            stream: true,
            snapshot_every: 0,
        }
    }

    fn drain(q: &SubQueue) -> Vec<Frame> {
        let mut frames = Vec::new();
        while let Some(f) = q.pop() {
            frames.push(f);
        }
        frames
    }

    #[test]
    fn job_runs_to_done_and_streams_every_round() {
        let mgr = JobManager::new(1, 256, 8);
        let sub = Arc::new(SubQueue::new(256));
        let id = mgr.submit(tiny_spec(20), Some(Arc::clone(&sub)));
        let frames = drain(&sub);
        let progress = frames
            .iter()
            .filter(|f| f.kind == FrameType::Progress)
            .count();
        assert_eq!(progress, 20);
        assert_eq!(frames[frames.len() - 2].kind, FrameType::JobResult);
        assert_eq!(frames[frames.len() - 1].kind, FrameType::StreamEnd);
        let status = mgr.get(id).map(|j| j.status());
        assert_eq!(status.map(|s| s.state), Some("done".to_string()));
    }

    #[test]
    fn late_subscriber_replays_the_result() {
        let mgr = JobManager::new(1, 256, 8);
        let sub = Arc::new(SubQueue::new(256));
        let id = mgr.submit(tiny_spec(5), Some(Arc::clone(&sub)));
        drain(&sub); // job is definitely finished once the stream ends
        let late = mgr.subscribe(id).unwrap();
        let frames = drain(&late);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].kind, FrameType::JobResult);
        assert_eq!(frames[1].kind, FrameType::StreamEnd);
    }

    #[test]
    fn cancel_yields_cancelled_state_and_bare_stream_end() {
        let mgr = JobManager::new(1, 16, 8);
        let sub = Arc::new(SubQueue::new(16));
        // Large job so the cancel lands mid-run; even if it raced to
        // completion the assertions below would still need the states to
        // be coherent, so pick something slow.
        let id = mgr.submit(tiny_spec(100_000), Some(Arc::clone(&sub)));
        assert_eq!(mgr.cancel(id), Some(true));
        mgr.shutdown();
        let s = mgr.get(id).map(|j| j.status());
        assert_eq!(s.map(|s| s.state), Some("cancelled".to_string()));
        let frames = drain(&sub);
        assert_eq!(frames.last().map(|f| f.kind), Some(FrameType::StreamEnd));
        assert!(frames.iter().all(|f| f.kind != FrameType::JobResult));
        assert_eq!(mgr.cancel(9999), None);
    }

    #[test]
    fn subscriber_cap_is_enforced() {
        let mgr = JobManager::new(1, 16, 2);
        let id = mgr.submit(tiny_spec(200_000), None);
        let _a = mgr.subscribe(id).unwrap();
        let _b = mgr.subscribe(id).unwrap();
        assert!(mgr.subscribe(id).is_err());
        mgr.cancel(id);
        mgr.shutdown();
    }

    #[test]
    fn queue_cap_is_clamped_and_tiny_caps_still_deliver_the_result() {
        // FREERIDER_SERVE_QUEUE=1 used to let drop-oldest eviction push
        // the JobResult out of the queue behind StreamEnd.
        let mgr = JobManager::new(1, 1, 8);
        assert_eq!(mgr.queue_cap(), MIN_QUEUE_CAP);
        let sub = Arc::new(SubQueue::new(mgr.queue_cap()));
        let id = mgr.submit(tiny_spec(20), Some(Arc::clone(&sub)));
        // Don't drain until the job is done, so eviction definitely ran.
        for _ in 0..20_000 {
            let done = mgr
                .get(id)
                .map(|j| lock(&j.meta).state.finished())
                .unwrap_or(false);
            if done {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let frames = drain(&sub);
        assert!(sub.evicted() >= 16, "evicted only {}", sub.evicted());
        assert!(frames.iter().any(|f| f.kind == FrameType::JobResult));
        assert_eq!(frames.last().map(|f| f.kind), Some(FrameType::StreamEnd));
    }

    #[test]
    fn finished_jobs_are_pruned_beyond_the_retention_cap() {
        let mgr = JobManager::new(1, 16, 8);
        let first = {
            let sub = Arc::new(SubQueue::new(16));
            let id = mgr.submit(tiny_spec(1), Some(Arc::clone(&sub)));
            drain(&sub); // StreamEnd popped ⇒ the job is finished
            id
        };
        let mut newest = first;
        for _ in 0..MAX_RETAINED_FINISHED + 5 {
            let sub = Arc::new(SubQueue::new(16));
            newest = mgr.submit(tiny_spec(1), Some(Arc::clone(&sub)));
            drain(&sub);
        }
        mgr.shutdown();
        let ids: Vec<u64> = mgr.list().iter().map(|s| s.job).collect();
        assert!(
            ids.len() <= MAX_RETAINED_FINISHED + 1,
            "{} jobs retained",
            ids.len()
        );
        assert!(ids.contains(&newest));
        assert!(!ids.contains(&first), "oldest finished job not pruned");
    }

    #[test]
    fn list_is_ascending_by_id() {
        let mgr = JobManager::new(1, 16, 8);
        let a = mgr.submit(tiny_spec(1), None);
        let b = mgr.submit(tiny_spec(1), None);
        mgr.shutdown();
        let ids: Vec<u64> = mgr.list().iter().map(|s| s.job).collect();
        assert_eq!(ids, vec![a, b]);
    }
}
