//! The wire framing: `[version:u8][type:u8][len:u32 BE][payload]`.
//!
//! Every message on a `freerider-serve` connection is one frame. The
//! 6-byte header carries the protocol version (connections with a version
//! mismatch fail fast, before any payload is trusted), a frame type, and
//! the payload length in bytes, big-endian. Payloads are UTF-8 JSON
//! documents produced by [`freerider_telemetry::JsonWriter`] and parsed
//! by [`freerider_telemetry::JsonValue`] — see [`crate::wire`].
//!
//! The length field is bounded by [`MAX_PAYLOAD`]: a corrupt or hostile
//! header can never make the peer allocate unbounded memory.

use std::fmt;
use std::io::{self, Read, Write};

/// Protocol version carried in every frame header.
pub const VERSION: u8 = 1;

/// Frame header size in bytes.
pub const HEADER_LEN: usize = 6;

/// Upper bound on a frame payload (16 MiB — a 100k-tag snapshot fits).
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Every frame type the protocol speaks.
///
/// Requests are `0x0_`, responses `0x1_`, stream frames `0x2_`. A
/// request/response exchange is strictly one frame each way; a
/// subscription turns the connection into a stream of `0x2_` frames
/// terminated by [`FrameType::StreamEnd`], after which the connection is
/// again free for requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Request: submit a job (`SimConfig` + `Deployment` spec).
    SubmitJob = 0x01,
    /// Request: query one job's status.
    JobStatus = 0x02,
    /// Request: cancel a job.
    CancelJob = 0x03,
    /// Request: list all jobs.
    ListJobs = 0x04,
    /// Request: subscribe to a job's stream.
    Subscribe = 0x05,
    /// Request: shut the server down.
    Shutdown = 0x06,
    /// Request: full server metrics snapshot.
    GetStats = 0x07,
    /// Request: cheap liveness/readiness probe.
    GetHealth = 0x08,

    /// Response: job accepted, payload carries the id.
    JobAccepted = 0x10,
    /// Response: one job's status.
    Status = 0x11,
    /// Response: all jobs' statuses.
    Jobs = 0x12,
    /// Response: cancel outcome.
    Cancelled = 0x13,
    /// Response: request failed, payload carries the message.
    Error = 0x14,
    /// Response: shutdown acknowledged.
    ShuttingDown = 0x15,
    /// Response *and* stream: server metrics snapshot
    /// (schema `freerider-serve-stats/1`). Sent in answer to
    /// [`FrameType::GetStats`], and pushed into subscriber streams every
    /// `FREERIDER_SERVE_STATS_EVERY` rounds when that knob is set.
    Stats = 0x16,
    /// Response: liveness/readiness probe result.
    Health = 0x17,

    /// Stream: per-round progress.
    Progress = 0x20,
    /// Stream: periodic per-tag snapshot.
    TagSnapshot = 0x21,
    /// Stream: the job's final `DeploymentReport`.
    JobResult = 0x22,
    /// Stream: end of stream (job finished or was cancelled).
    StreamEnd = 0x23,
}

/// Every frame type, in wire-byte order. [`crate::metrics::ServerMetrics`]
/// indexes its per-type counters by position in this list, and the stats
/// snapshot iterates it so counter names come out in a fixed order.
pub const ALL_TYPES: [FrameType; 20] = [
    FrameType::SubmitJob,
    FrameType::JobStatus,
    FrameType::CancelJob,
    FrameType::ListJobs,
    FrameType::Subscribe,
    FrameType::Shutdown,
    FrameType::GetStats,
    FrameType::GetHealth,
    FrameType::JobAccepted,
    FrameType::Status,
    FrameType::Jobs,
    FrameType::Cancelled,
    FrameType::Error,
    FrameType::ShuttingDown,
    FrameType::Stats,
    FrameType::Health,
    FrameType::Progress,
    FrameType::TagSnapshot,
    FrameType::JobResult,
    FrameType::StreamEnd,
];

impl FrameType {
    /// Decodes a wire byte.
    pub fn from_byte(b: u8) -> Option<FrameType> {
        use FrameType::*;
        Some(match b {
            0x01 => SubmitJob,
            0x02 => JobStatus,
            0x03 => CancelJob,
            0x04 => ListJobs,
            0x05 => Subscribe,
            0x06 => Shutdown,
            0x07 => GetStats,
            0x08 => GetHealth,
            0x10 => JobAccepted,
            0x11 => Status,
            0x12 => Jobs,
            0x13 => Cancelled,
            0x14 => Error,
            0x15 => ShuttingDown,
            0x16 => Stats,
            0x17 => Health,
            0x20 => Progress,
            0x21 => TagSnapshot,
            0x22 => JobResult,
            0x23 => StreamEnd,
            _ => return None,
        })
    }

    /// A stable lower-snake name, used in metric keys
    /// (`serve.frames.rx.<name>`) and trace scopes (`serve.frame.<name>`).
    pub fn name(self) -> &'static str {
        use FrameType::*;
        match self {
            SubmitJob => "submit_job",
            JobStatus => "job_status",
            CancelJob => "cancel_job",
            ListJobs => "list_jobs",
            Subscribe => "subscribe",
            Shutdown => "shutdown",
            GetStats => "get_stats",
            GetHealth => "get_health",
            JobAccepted => "job_accepted",
            Status => "status",
            Jobs => "jobs",
            Cancelled => "cancelled",
            Error => "error",
            ShuttingDown => "shutting_down",
            Stats => "stats",
            Health => "health",
            Progress => "progress",
            TagSnapshot => "tag_snapshot",
            JobResult => "job_result",
            StreamEnd => "stream_end",
        }
    }

    /// The flight-recorder scope for frames of this type. Trace scopes
    /// must be `&'static str`, so the `serve.frame.` prefix is baked in
    /// here rather than formatted at runtime.
    pub fn trace_scope(self) -> &'static str {
        use FrameType::*;
        match self {
            SubmitJob => "serve.frame.submit_job",
            JobStatus => "serve.frame.job_status",
            CancelJob => "serve.frame.cancel_job",
            ListJobs => "serve.frame.list_jobs",
            Subscribe => "serve.frame.subscribe",
            Shutdown => "serve.frame.shutdown",
            GetStats => "serve.frame.get_stats",
            GetHealth => "serve.frame.get_health",
            JobAccepted => "serve.frame.job_accepted",
            Status => "serve.frame.status",
            Jobs => "serve.frame.jobs",
            Cancelled => "serve.frame.cancelled",
            Error => "serve.frame.error",
            ShuttingDown => "serve.frame.shutting_down",
            Stats => "serve.frame.stats",
            Health => "serve.frame.health",
            Progress => "serve.frame.progress",
            TagSnapshot => "serve.frame.tag_snapshot",
            JobResult => "serve.frame.job_result",
            StreamEnd => "serve.frame.stream_end",
        }
    }

    /// Position of this type in [`ALL_TYPES`] — a dense index for
    /// per-type counter arrays.
    pub fn index(self) -> usize {
        // ALL_TYPES is wire-byte ordered: requests 0x01..=0x08 first,
        // then responses 0x10..=0x17, then stream frames 0x20..=0x23.
        let b = self as u8;
        match b {
            0x01..=0x08 => (b - 0x01) as usize,
            0x10..=0x17 => (b - 0x10) as usize + 8,
            _ => (b - 0x20) as usize + 16,
        }
    }
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame type.
    pub kind: FrameType,
    /// The (possibly empty) JSON payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with a payload.
    pub fn new(kind: FrameType, payload: Vec<u8>) -> Self {
        Frame { kind, payload }
    }

    /// A payload-less frame.
    pub fn bare(kind: FrameType) -> Self {
        Frame {
            kind,
            payload: Vec::new(),
        }
    }
}

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying transport failure.
    Io(io::Error),
    /// The peer closed the connection cleanly (EOF at a frame boundary).
    Closed,
    /// Header announced an unknown protocol version.
    BadVersion(u8),
    /// Header announced an unknown frame type.
    BadType(u8),
    /// Header announced a payload above [`MAX_PAYLOAD`].
    TooLarge(u32),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::BadVersion(v) => {
                write!(f, "protocol version {v} (this peer speaks {VERSION})")
            }
            FrameError::BadType(t) => write!(f, "unknown frame type 0x{t:02x}"),
            FrameError::TooLarge(n) => {
                write!(f, "frame payload {n} bytes exceeds the {MAX_PAYLOAD} cap")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (header + payload) and flushes.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), FrameError> {
    if frame.payload.len() as u64 > MAX_PAYLOAD as u64 {
        return Err(FrameError::TooLarge(frame.payload.len() as u32));
    }
    let mut header = [0u8; HEADER_LEN];
    header[0] = VERSION;
    header[1] = frame.kind as u8;
    header[2..6].copy_from_slice(&(frame.payload.len() as u32).to_be_bytes());
    w.write_all(&header)?;
    w.write_all(&frame.payload)?;
    w.flush()?;
    freerider_telemetry::count("serve.frames.tx");
    Ok(())
}

/// Reads one frame. A clean EOF before the first header byte is
/// [`FrameError::Closed`]; EOF mid-frame is an I/O error.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    // Distinguish "peer hung up between frames" from a torn header.
    let mut got = 0usize;
    while got < HEADER_LEN {
        let n = r.read(&mut header[got..])?;
        if n == 0 {
            return if got == 0 {
                Err(FrameError::Closed)
            } else {
                Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                )))
            };
        }
        got += n;
    }
    if header[0] != VERSION {
        return Err(FrameError::BadVersion(header[0]));
    }
    let kind = FrameType::from_byte(header[1]).ok_or(FrameError::BadType(header[1]))?;
    let len = u32::from_be_bytes([header[2], header[3], header[4], header[5]]);
    if len > MAX_PAYLOAD {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    freerider_telemetry::count("serve.frames.rx");
    Ok(Frame { kind, payload })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trips_through_a_buffer() {
        let mut buf = Vec::new();
        let frames = [
            Frame::bare(FrameType::ListJobs),
            Frame::new(FrameType::SubmitJob, br#"{"x":1}"#.to_vec()),
            Frame::new(FrameType::Progress, vec![b'a'; 10_000]),
        ];
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut cur = Cursor::new(buf);
        for f in &frames {
            assert_eq!(&read_frame(&mut cur).unwrap(), f);
        }
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Closed)));
    }

    #[test]
    fn header_layout_is_exact() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::new(FrameType::SubmitJob, vec![1, 2, 3])).unwrap();
        assert_eq!(&buf, &[VERSION, 0x01, 0, 0, 0, 3, 1, 2, 3]);
    }

    #[test]
    fn rejects_bad_version_type_and_length() {
        let mut bad_version = vec![9, 0x01, 0, 0, 0, 0];
        assert!(matches!(
            read_frame(&mut Cursor::new(&mut bad_version)),
            Err(FrameError::BadVersion(9))
        ));
        let mut bad_type = vec![VERSION, 0xEE, 0, 0, 0, 0];
        assert!(matches!(
            read_frame(&mut Cursor::new(&mut bad_type)),
            Err(FrameError::BadType(0xEE))
        ));
        let mut too_large = vec![VERSION, 0x01, 0xFF, 0xFF, 0xFF, 0xFF];
        assert!(matches!(
            read_frame(&mut Cursor::new(&mut too_large)),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn torn_header_is_an_io_error_not_closed() {
        let mut torn = vec![VERSION, 0x01, 0];
        assert!(matches!(
            read_frame(&mut Cursor::new(&mut torn)),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn every_type_round_trips_its_byte() {
        for t in ALL_TYPES {
            assert_eq!(FrameType::from_byte(t as u8), Some(t));
        }
        assert_eq!(FrameType::from_byte(0x00), None);
    }

    #[test]
    fn index_is_dense_and_matches_all_types_order() {
        for (i, t) in ALL_TYPES.iter().enumerate() {
            assert_eq!(t.index(), i, "{t:?}");
        }
    }

    #[test]
    fn names_are_unique_and_wire_safe() {
        let mut names: Vec<&str> = ALL_TYPES.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate frame-type name");
        for n in names {
            assert!(n
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '_' || c.is_ascii_digit()));
        }
    }
}
