//! In-process duplex byte stream: the loopback transport.
//!
//! [`duplex`] returns two connected [`PipeEnd`]s; bytes written to one
//! are read from the other, exactly like a socketpair but with no file
//! descriptors, so the full server session logic is exercisable in unit
//! tests and benchmarks without binding a port. Dropping an end closes
//! its write direction; the peer's reads then drain and return `Ok(0)`,
//! matching TCP half-close semantics closely enough for the framed
//! protocol (which treats EOF at a frame boundary as a clean hang-up).

use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct Direction {
    buf: Mutex<(Vec<u8>, bool)>, // (pending bytes, closed)
    ready: Condvar,
}

impl Direction {
    fn new() -> Arc<Direction> {
        Arc::new(Direction {
            buf: Mutex::new((Vec::new(), false)),
            ready: Condvar::new(),
        })
    }

    fn write(&self, data: &[u8]) -> io::Result<usize> {
        let mut g = lock(&self.buf);
        if g.1 {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "peer closed the pipe",
            ));
        }
        g.0.extend_from_slice(data);
        drop(g);
        self.ready.notify_one();
        Ok(data.len())
    }

    fn read(&self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut g = lock(&self.buf);
        loop {
            if !g.0.is_empty() {
                let n = g.0.len().min(out.len());
                out[..n].copy_from_slice(&g.0[..n]);
                g.0.drain(..n);
                return Ok(n);
            }
            if g.1 {
                return Ok(0); // clean EOF
            }
            g = self
                .ready
                .wait(g)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    fn close(&self) {
        lock(&self.buf).1 = true;
        self.ready.notify_all();
    }
}

/// One end of an in-process duplex stream. Implements `Read` + `Write`;
/// dropping it closes both directions so a blocked peer wakes up.
pub struct PipeEnd {
    rx: Arc<Direction>,
    tx: Arc<Direction>,
}

/// Creates a connected pair of pipe ends.
pub fn duplex() -> (PipeEnd, PipeEnd) {
    let a_to_b = Direction::new();
    let b_to_a = Direction::new();
    (
        PipeEnd {
            rx: Arc::clone(&b_to_a),
            tx: Arc::clone(&a_to_b),
        },
        PipeEnd {
            rx: a_to_b,
            tx: b_to_a,
        },
    )
}

impl Read for PipeEnd {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        self.rx.read(out)
    }
}

impl Write for PipeEnd {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.tx.write(data)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeEnd {
    fn drop(&mut self) {
        self.tx.close();
        self.rx.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_cross_the_pipe_both_ways() {
        let (mut a, mut b) = duplex();
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        b.write_all(b"pong").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn drop_gives_clean_eof_after_drain() {
        let (mut a, mut b) = duplex();
        a.write_all(b"bye").unwrap();
        drop(a);
        let mut buf = Vec::new();
        b.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"bye");
        assert_eq!(b.read(&mut [0u8; 8]).unwrap(), 0);
    }

    #[test]
    fn write_after_peer_drop_is_broken_pipe() {
        let (mut a, b) = duplex();
        drop(b);
        assert_eq!(a.write(b"x").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn read_blocks_until_peer_writes() {
        let (mut a, mut b) = duplex();
        let reader = std::thread::spawn(move || {
            let mut buf = [0u8; 5];
            b.read_exact(&mut buf).unwrap();
            buf
        });
        a.write_all(b"hello").unwrap();
        assert_eq!(&reader.join().unwrap(), b"hello");
    }
}
