//! The service: session dispatch, the TCP accept loop, and the
//! in-process loopback used by tests and benchmarks.
//!
//! A session is strictly turn-based: the client sends one request frame,
//! the server answers with one response frame — except for streams
//! (`SubmitJob` with `stream: true`, or `Subscribe`), where the response
//! is followed by `0x2_` frames until `StreamEnd`, after which the
//! connection is again free for requests. The dispatcher is generic over
//! `Read + Write`, so the identical code path serves TCP sockets and the
//! [`crate::pipe`] loopback.

use crate::frame::{read_frame, write_frame, Frame, FrameError, FrameType};
use crate::job::JobManager;
use crate::metrics::ServerMetrics;
use crate::pipe::{duplex, PipeEnd};
use crate::queue::SubQueue;
use crate::wire;
use freerider_telemetry::{trace, Stopwatch};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Listen address knob.
pub const ADDR_ENV: &str = "FREERIDER_SERVE_ADDR";
/// Per-job subscriber cap knob.
pub const MAX_SUBS_ENV: &str = "FREERIDER_SERVE_MAX_SUBS";
/// Per-subscriber queue capacity knob. Values below
/// [`crate::job::MIN_QUEUE_CAP`] are clamped there, so eviction can
/// never discard a stream's terminal `JobResult`/`StreamEnd` frames.
pub const QUEUE_ENV: &str = "FREERIDER_SERVE_QUEUE";
/// Periodic stats-push knob: broadcast a `Stats` frame to every
/// subscriber after each this-many completed rounds (unset/0 = off).
pub const STATS_EVERY_ENV: &str = "FREERIDER_SERVE_STATS_EVERY";

/// Default listen address.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7973";
/// Default per-job subscriber cap.
pub const DEFAULT_MAX_SUBS: usize = 64;
/// Default per-subscriber queue capacity, in frames.
pub const DEFAULT_QUEUE: usize = 256;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 binds an ephemeral port).
    pub addr: String,
    /// Per-job subscriber cap.
    pub max_subs: usize,
    /// Per-subscriber stream queue capacity, in frames.
    pub queue_cap: usize,
    /// Executor width for job threads (0 = honour `FREERIDER_THREADS`).
    pub threads: usize,
    /// Broadcast a `Stats` frame to subscribers every this many rounds
    /// (0 = never). Enabling this makes the byte/frame counters
    /// timing-dependent; the counters determinism contract holds at 0.
    pub stats_every: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: DEFAULT_ADDR.to_string(),
            max_subs: DEFAULT_MAX_SUBS,
            queue_cap: DEFAULT_QUEUE,
            threads: 0,
            stats_every: 0,
        }
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

impl ServeConfig {
    /// Reads `FREERIDER_SERVE_ADDR` / `_MAX_SUBS` / `_QUEUE` /
    /// `_STATS_EVERY`; unset or unparsable values fall back to the
    /// defaults.
    pub fn from_env() -> Self {
        ServeConfig {
            addr: std::env::var(ADDR_ENV).unwrap_or_else(|_| DEFAULT_ADDR.to_string()),
            max_subs: env_usize(MAX_SUBS_ENV, DEFAULT_MAX_SUBS),
            queue_cap: env_usize(QUEUE_ENV, DEFAULT_QUEUE),
            threads: 0,
            stats_every: env_usize(STATS_EVERY_ENV, 0),
        }
    }

    fn manager(&self) -> JobManager {
        JobManager::new(self.threads, self.queue_cap, self.max_subs)
            .with_stats_every(self.stats_every)
    }
}

// ---------------------------------------------------------------------
// Session dispatch (transport-agnostic).

/// Serves one connection until the peer hangs up or asks for shutdown.
/// `on_shutdown` is invoked when a `Shutdown` frame is honoured, after
/// the `ShuttingDown` acknowledgement is on the wire.
///
/// Every decoded frame is counted (by type and bytes) in the server's
/// [`ServerMetrics`]; malformed framing (bad version/type/over-cap
/// length) is counted separately before the session hangs up. With
/// `FREERIDER_TRACE` active, the session runs under a `serve.session`
/// trace packet and each request under a nested `serve.frame.<type>`
/// packet, so a failed or slow request is forensically reconstructable.
pub fn handle_session<S: Read + Write, F: Fn()>(mut stream: S, mgr: &JobManager, on_shutdown: F) {
    let metrics = Arc::clone(mgr.metrics());
    let session = metrics.session_opened();
    let _session_scope = trace::packet("serve.session", session);
    let mut seq = 0u64;
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(FrameError::Closed) | Err(FrameError::Io(_)) => break,
            Err(e) => {
                // The peer's framing is broken — bad version, unknown
                // type, or an over-cap length. Count it, tell the peer
                // if the pipe still works, and hang up: resynchronizing
                // a misaligned byte stream is not possible.
                metrics.malformed();
                trace::fail("malformed frame");
                send_error(&mut stream, &metrics, &e.to_string());
                break;
            }
        };
        metrics.frame_rx(frame.kind, frame.payload.len());
        seq += 1;
        let _frame_scope = trace::packet(frame.kind.trace_scope(), seq);
        let clock = Stopwatch::start();
        // Streaming arms record their own handling latency (response
        // sent, before the open-ended pump); every other arm is timed
        // here, after dispatch.
        let self_timed = matches!(frame.kind, FrameType::SubmitJob | FrameType::Subscribe);
        let keep_going = match frame.kind {
            FrameType::SubmitJob => on_submit(&mut stream, mgr, &frame.payload, &clock),
            FrameType::JobStatus => on_status(&mut stream, mgr, &frame.payload),
            FrameType::CancelJob => on_cancel(&mut stream, mgr, &frame.payload),
            FrameType::ListJobs => send(
                &mut stream,
                &metrics,
                Frame::new(FrameType::Jobs, wire::encode_jobs(&mgr.list())),
            ),
            FrameType::Subscribe => on_subscribe(&mut stream, mgr, &frame.payload, &clock),
            FrameType::GetStats => {
                // Snapshot first, send second: the Stats frame's own tx
                // accounting lands *after* the snapshot, so a snapshot
                // never (self-referentially) counts itself.
                let payload = wire::encode_stats(&metrics.report());
                send(&mut stream, &metrics, Frame::new(FrameType::Stats, payload))
            }
            FrameType::GetHealth => send(
                &mut stream,
                &metrics,
                Frame::new(FrameType::Health, wire::encode_health(&metrics.health())),
            ),
            FrameType::Shutdown => {
                send(&mut stream, &metrics, Frame::bare(FrameType::ShuttingDown));
                on_shutdown();
                false
            }
            other => send_error(
                &mut stream,
                &metrics,
                &format!("frame type {other:?} is not a request"),
            ),
        };
        if !self_timed {
            metrics.frame_handled_ns(frame.kind, clock.elapsed_ns());
        }
        if !keep_going {
            break;
        }
    }
    metrics.session_closed();
}

fn send<S: Write>(stream: &mut S, metrics: &ServerMetrics, frame: Frame) -> bool {
    let ok = write_frame(stream, &frame).is_ok();
    if ok {
        metrics.frame_tx(frame.kind, frame.payload.len());
    }
    ok
}

fn send_error<S: Write>(stream: &mut S, metrics: &ServerMetrics, msg: &str) -> bool {
    send(
        stream,
        metrics,
        Frame::new(FrameType::Error, wire::encode_error(msg)),
    )
}

/// Drains a subscriber queue onto the wire until it closes (the final
/// frame is always `StreamEnd`). Returns `false` when the peer is gone.
fn pump<S: Write>(stream: &mut S, metrics: &ServerMetrics, q: &SubQueue) -> bool {
    while let Some(frame) = q.pop() {
        if !send(stream, metrics, frame) {
            // Writer gone: close so the job thread stops cloning frames
            // into a queue nobody will ever drain.
            q.close();
            return false;
        }
    }
    true
}

fn on_submit<S: Read + Write>(
    stream: &mut S,
    mgr: &JobManager,
    payload: &[u8],
    clock: &Stopwatch,
) -> bool {
    let metrics = mgr.metrics();
    let spec = match wire::decode_submit(payload) {
        Ok(s) => s,
        Err(e) => return send_error(stream, metrics, &e.to_string()),
    };
    if spec.stream {
        // Attach the subscriber *before* the job thread starts so the
        // submitting connection observes every frame from round zero.
        let q = mgr.new_queue();
        let id = mgr.submit(spec, Some(Arc::clone(&q)));
        let accepted = send(
            stream,
            metrics,
            Frame::new(FrameType::JobAccepted, wire::encode_job_id(id)),
        );
        metrics.frame_handled_ns(FrameType::SubmitJob, clock.elapsed_ns());
        if !accepted {
            q.close();
            return false;
        }
        pump(stream, metrics, &q)
    } else {
        let id = mgr.submit(spec, None);
        let ok = send(
            stream,
            metrics,
            Frame::new(FrameType::JobAccepted, wire::encode_job_id(id)),
        );
        metrics.frame_handled_ns(FrameType::SubmitJob, clock.elapsed_ns());
        ok
    }
}

fn on_status<S: Read + Write>(stream: &mut S, mgr: &JobManager, payload: &[u8]) -> bool {
    let metrics = mgr.metrics();
    let id = match wire::decode_job_id(payload) {
        Ok(id) => id,
        Err(e) => return send_error(stream, metrics, &e.to_string()),
    };
    match mgr.get(id) {
        Some(job) => send(
            stream,
            metrics,
            Frame::new(FrameType::Status, wire::encode_status(&job.status())),
        ),
        None => send_error(stream, metrics, &format!("no such job {id}")),
    }
}

fn on_cancel<S: Read + Write>(stream: &mut S, mgr: &JobManager, payload: &[u8]) -> bool {
    let metrics = mgr.metrics();
    let id = match wire::decode_job_id(payload) {
        Ok(id) => id,
        Err(e) => return send_error(stream, metrics, &e.to_string()),
    };
    match mgr.cancel(id) {
        Some(landed) => send(
            stream,
            metrics,
            Frame::new(FrameType::Cancelled, wire::encode_cancelled(id, landed)),
        ),
        None => send_error(stream, metrics, &format!("no such job {id}")),
    }
}

fn on_subscribe<S: Read + Write>(
    stream: &mut S,
    mgr: &JobManager,
    payload: &[u8],
    clock: &Stopwatch,
) -> bool {
    let metrics = mgr.metrics();
    let id = match wire::decode_job_id(payload) {
        Ok(id) => id,
        Err(e) => return send_error(stream, metrics, &e.to_string()),
    };
    match mgr.subscribe(id) {
        Ok(q) => {
            metrics.frame_handled_ns(FrameType::Subscribe, clock.elapsed_ns());
            pump(stream, metrics, &q)
        }
        Err(e) => send_error(stream, metrics, &e),
    }
}

// ---------------------------------------------------------------------
// TCP server.

/// A bound, not-yet-running TCP server.
pub struct Server {
    listener: TcpListener,
    mgr: Arc<JobManager>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds the configured address. Port 0 picks an ephemeral port —
    /// read it back with [`Server::local_addr`].
    pub fn bind(cfg: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        Ok(Server {
            listener,
            mgr: Arc::new(cfg.manager()),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The server's metrics registry (tests and the serve binary read
    /// it after `run` returns).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(self.mgr.metrics())
    }

    /// The actual bound address.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections until a client sends `Shutdown`. Each session
    /// runs on its own thread; on shutdown every unfinished job is
    /// cancelled, every session socket is shut down (so a session parked
    /// in a blocking read on an idle connection wakes up instead of
    /// pinning the server forever), and all session threads are joined.
    pub fn run(self) -> io::Result<()> {
        let addr = self.listener.local_addr()?;
        // Per live session: a socket clone (to unblock its read on
        // shutdown) and the thread handle (to join).
        let mut sessions: Vec<(Option<TcpStream>, std::thread::JoinHandle<()>)> = Vec::new();
        loop {
            let (socket, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(_) if self.stop.load(Ordering::Acquire) => break,
                Err(e) => return Err(e),
            };
            if self.stop.load(Ordering::Acquire) {
                break; // the self-connect that unblocked accept()
            }
            // Reap finished sessions so a long-running server does not
            // accumulate one handle per connection it ever served.
            let mut i = 0;
            while i < sessions.len() {
                if sessions[i].1.is_finished() {
                    let (_, h) = sessions.swap_remove(i);
                    let _ = h.join();
                } else {
                    i += 1;
                }
            }
            freerider_telemetry::count("serve.sessions");
            let peer = socket.try_clone().ok();
            let mgr = Arc::clone(&self.mgr);
            let stop = Arc::clone(&self.stop);
            let handle = std::thread::spawn(move || {
                handle_session(socket, &mgr, || {
                    stop.store(true, Ordering::Release);
                    // Unblock the accept loop so it notices the flag.
                    let _ = TcpStream::connect(addr);
                });
            });
            sessions.push((peer, handle));
        }
        // Order matters: finish the jobs first (closing stream queues, so
        // any session inside `pump` drains out), then shut the sockets so
        // sessions parked in `read_frame` fail their read, then join.
        self.mgr.shutdown();
        for (sock, h) in &sessions {
            if !h.is_finished() {
                // Still parked in a blocking read with no work pending:
                // this shutdown is tearing down an idle connection.
                self.mgr.metrics().session_idle_shutdown();
            }
            if let Some(s) = sock {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
        for (_, h) in sessions {
            let _ = h.join();
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Loopback (in-process) serving.

/// An in-process server: same dispatcher, no sockets. Each
/// [`Loopback::connect`] opens a fresh session over a [`crate::pipe`]
/// duplex, served by its own thread against the shared [`JobManager`].
pub struct Loopback {
    mgr: Arc<JobManager>,
}

impl Loopback {
    /// A loopback server with the given configuration (`addr` unused).
    pub fn new(cfg: &ServeConfig) -> Loopback {
        Loopback {
            mgr: Arc::new(cfg.manager()),
        }
    }

    /// Opens a session; the returned end speaks the frame protocol.
    /// Dropping it hangs the session up.
    pub fn connect(&self) -> PipeEnd {
        let (client_end, server_end) = duplex();
        let mgr = Arc::clone(&self.mgr);
        std::thread::spawn(move || {
            handle_session(server_end, &mgr, || {});
        });
        client_end
    }

    /// Direct access to the job manager (tests assert on job state).
    pub fn manager(&self) -> &JobManager {
        &self.mgr
    }
}
