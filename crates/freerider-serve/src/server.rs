//! The service: session dispatch, the TCP accept loop, and the
//! in-process loopback used by tests and benchmarks.
//!
//! A session is strictly turn-based: the client sends one request frame,
//! the server answers with one response frame — except for streams
//! (`SubmitJob` with `stream: true`, or `Subscribe`), where the response
//! is followed by `0x2_` frames until `StreamEnd`, after which the
//! connection is again free for requests. The dispatcher is generic over
//! `Read + Write`, so the identical code path serves TCP sockets and the
//! [`crate::pipe`] loopback.

use crate::frame::{read_frame, write_frame, Frame, FrameType};
use crate::job::JobManager;
use crate::pipe::{duplex, PipeEnd};
use crate::queue::SubQueue;
use crate::wire;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Listen address knob.
pub const ADDR_ENV: &str = "FREERIDER_SERVE_ADDR";
/// Per-job subscriber cap knob.
pub const MAX_SUBS_ENV: &str = "FREERIDER_SERVE_MAX_SUBS";
/// Per-subscriber queue capacity knob. Values below
/// [`crate::job::MIN_QUEUE_CAP`] are clamped there, so eviction can
/// never discard a stream's terminal `JobResult`/`StreamEnd` frames.
pub const QUEUE_ENV: &str = "FREERIDER_SERVE_QUEUE";

/// Default listen address.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7973";
/// Default per-job subscriber cap.
pub const DEFAULT_MAX_SUBS: usize = 64;
/// Default per-subscriber queue capacity, in frames.
pub const DEFAULT_QUEUE: usize = 256;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 binds an ephemeral port).
    pub addr: String,
    /// Per-job subscriber cap.
    pub max_subs: usize,
    /// Per-subscriber stream queue capacity, in frames.
    pub queue_cap: usize,
    /// Executor width for job threads (0 = honour `FREERIDER_THREADS`).
    pub threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: DEFAULT_ADDR.to_string(),
            max_subs: DEFAULT_MAX_SUBS,
            queue_cap: DEFAULT_QUEUE,
            threads: 0,
        }
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

impl ServeConfig {
    /// Reads `FREERIDER_SERVE_ADDR` / `_MAX_SUBS` / `_QUEUE`; unset or
    /// unparsable values fall back to the defaults.
    pub fn from_env() -> Self {
        ServeConfig {
            addr: std::env::var(ADDR_ENV).unwrap_or_else(|_| DEFAULT_ADDR.to_string()),
            max_subs: env_usize(MAX_SUBS_ENV, DEFAULT_MAX_SUBS),
            queue_cap: env_usize(QUEUE_ENV, DEFAULT_QUEUE),
            threads: 0,
        }
    }
}

// ---------------------------------------------------------------------
// Session dispatch (transport-agnostic).

/// Serves one connection until the peer hangs up or asks for shutdown.
/// `on_shutdown` is invoked when a `Shutdown` frame is honoured, after
/// the `ShuttingDown` acknowledgement is on the wire.
pub fn handle_session<S: Read + Write, F: Fn()>(mut stream: S, mgr: &JobManager, on_shutdown: F) {
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(_) => return, // clean hangup and torn frames end alike
        };
        let keep_going = match frame.kind {
            FrameType::SubmitJob => on_submit(&mut stream, mgr, &frame.payload),
            FrameType::JobStatus => on_status(&mut stream, mgr, &frame.payload),
            FrameType::CancelJob => on_cancel(&mut stream, mgr, &frame.payload),
            FrameType::ListJobs => send(
                &mut stream,
                Frame::new(FrameType::Jobs, wire::encode_jobs(&mgr.list())),
            ),
            FrameType::Subscribe => on_subscribe(&mut stream, mgr, &frame.payload),
            FrameType::Shutdown => {
                send(&mut stream, Frame::bare(FrameType::ShuttingDown));
                on_shutdown();
                return;
            }
            other => send_error(
                &mut stream,
                &format!("frame type {other:?} is not a request"),
            ),
        };
        if !keep_going {
            return;
        }
    }
}

fn send<S: Write>(stream: &mut S, frame: Frame) -> bool {
    write_frame(stream, &frame).is_ok()
}

fn send_error<S: Write>(stream: &mut S, msg: &str) -> bool {
    send(
        stream,
        Frame::new(FrameType::Error, wire::encode_error(msg)),
    )
}

/// Drains a subscriber queue onto the wire until it closes (the final
/// frame is always `StreamEnd`). Returns `false` when the peer is gone.
fn pump<S: Write>(stream: &mut S, q: &SubQueue) -> bool {
    while let Some(frame) = q.pop() {
        if !send(stream, frame) {
            // Writer gone: close so the job thread stops cloning frames
            // into a queue nobody will ever drain.
            q.close();
            return false;
        }
    }
    true
}

fn on_submit<S: Read + Write>(stream: &mut S, mgr: &JobManager, payload: &[u8]) -> bool {
    let spec = match wire::decode_submit(payload) {
        Ok(s) => s,
        Err(e) => return send_error(stream, &e.to_string()),
    };
    if spec.stream {
        // Attach the subscriber *before* the job thread starts so the
        // submitting connection observes every frame from round zero.
        let q = Arc::new(SubQueue::new(mgr.queue_cap()));
        let id = mgr.submit(spec, Some(Arc::clone(&q)));
        if !send(
            stream,
            Frame::new(FrameType::JobAccepted, wire::encode_job_id(id)),
        ) {
            q.close();
            return false;
        }
        pump(stream, &q)
    } else {
        let id = mgr.submit(spec, None);
        send(
            stream,
            Frame::new(FrameType::JobAccepted, wire::encode_job_id(id)),
        )
    }
}

fn on_status<S: Read + Write>(stream: &mut S, mgr: &JobManager, payload: &[u8]) -> bool {
    let id = match wire::decode_job_id(payload) {
        Ok(id) => id,
        Err(e) => return send_error(stream, &e.to_string()),
    };
    match mgr.get(id) {
        Some(job) => send(
            stream,
            Frame::new(FrameType::Status, wire::encode_status(&job.status())),
        ),
        None => send_error(stream, &format!("no such job {id}")),
    }
}

fn on_cancel<S: Read + Write>(stream: &mut S, mgr: &JobManager, payload: &[u8]) -> bool {
    let id = match wire::decode_job_id(payload) {
        Ok(id) => id,
        Err(e) => return send_error(stream, &e.to_string()),
    };
    match mgr.cancel(id) {
        Some(landed) => send(
            stream,
            Frame::new(FrameType::Cancelled, wire::encode_cancelled(id, landed)),
        ),
        None => send_error(stream, &format!("no such job {id}")),
    }
}

fn on_subscribe<S: Read + Write>(stream: &mut S, mgr: &JobManager, payload: &[u8]) -> bool {
    let id = match wire::decode_job_id(payload) {
        Ok(id) => id,
        Err(e) => return send_error(stream, &e.to_string()),
    };
    match mgr.subscribe(id) {
        Ok(q) => pump(stream, &q),
        Err(e) => send_error(stream, &e),
    }
}

// ---------------------------------------------------------------------
// TCP server.

/// A bound, not-yet-running TCP server.
pub struct Server {
    listener: TcpListener,
    mgr: Arc<JobManager>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds the configured address. Port 0 picks an ephemeral port —
    /// read it back with [`Server::local_addr`].
    pub fn bind(cfg: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        Ok(Server {
            listener,
            mgr: Arc::new(JobManager::new(cfg.threads, cfg.queue_cap, cfg.max_subs)),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actual bound address.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections until a client sends `Shutdown`. Each session
    /// runs on its own thread; on shutdown every unfinished job is
    /// cancelled, every session socket is shut down (so a session parked
    /// in a blocking read on an idle connection wakes up instead of
    /// pinning the server forever), and all session threads are joined.
    pub fn run(self) -> io::Result<()> {
        let addr = self.listener.local_addr()?;
        // Per live session: a socket clone (to unblock its read on
        // shutdown) and the thread handle (to join).
        let mut sessions: Vec<(Option<TcpStream>, std::thread::JoinHandle<()>)> = Vec::new();
        loop {
            let (socket, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(_) if self.stop.load(Ordering::Acquire) => break,
                Err(e) => return Err(e),
            };
            if self.stop.load(Ordering::Acquire) {
                break; // the self-connect that unblocked accept()
            }
            // Reap finished sessions so a long-running server does not
            // accumulate one handle per connection it ever served.
            let mut i = 0;
            while i < sessions.len() {
                if sessions[i].1.is_finished() {
                    let (_, h) = sessions.swap_remove(i);
                    let _ = h.join();
                } else {
                    i += 1;
                }
            }
            freerider_telemetry::count("serve.sessions");
            let peer = socket.try_clone().ok();
            let mgr = Arc::clone(&self.mgr);
            let stop = Arc::clone(&self.stop);
            let handle = std::thread::spawn(move || {
                handle_session(socket, &mgr, || {
                    stop.store(true, Ordering::Release);
                    // Unblock the accept loop so it notices the flag.
                    let _ = TcpStream::connect(addr);
                });
            });
            sessions.push((peer, handle));
        }
        // Order matters: finish the jobs first (closing stream queues, so
        // any session inside `pump` drains out), then shut the sockets so
        // sessions parked in `read_frame` fail their read, then join.
        self.mgr.shutdown();
        for (sock, _) in &sessions {
            if let Some(s) = sock {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
        for (_, h) in sessions {
            let _ = h.join();
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Loopback (in-process) serving.

/// An in-process server: same dispatcher, no sockets. Each
/// [`Loopback::connect`] opens a fresh session over a [`crate::pipe`]
/// duplex, served by its own thread against the shared [`JobManager`].
pub struct Loopback {
    mgr: Arc<JobManager>,
}

impl Loopback {
    /// A loopback server with the given configuration (`addr` unused).
    pub fn new(cfg: &ServeConfig) -> Loopback {
        Loopback {
            mgr: Arc::new(JobManager::new(cfg.threads, cfg.queue_cap, cfg.max_subs)),
        }
    }

    /// Opens a session; the returned end speaks the frame protocol.
    /// Dropping it hangs the session up.
    pub fn connect(&self) -> PipeEnd {
        let (client_end, server_end) = duplex();
        let mgr = Arc::clone(&self.mgr);
        std::thread::spawn(move || {
            handle_session(server_end, &mgr, || {});
        });
        client_end
    }

    /// Direct access to the job manager (tests assert on job state).
    pub fn manager(&self) -> &JobManager {
        &self.mgr
    }
}
