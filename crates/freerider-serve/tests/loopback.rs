//! End-to-end protocol tests over the in-process loopback transport —
//! plus one real-TCP smoke test.
//!
//! The headline assertion: a 1000-tag job submitted through the service
//! streams ≥ 10 progress frames and a final `JobResult` whose payload is
//! **byte-identical** to encoding the report of the same `SimConfig` +
//! `Deployment` run directly in-process — at executor widths 1 and 4,
//! and with 0 or 3 extra subscribers watching.

use freerider_net::{Deployment, DeploymentSim, LinkModel, SimConfig};
use freerider_serve::client::StreamEvent;
use freerider_serve::server::Loopback;
use freerider_serve::wire::{self, JobSpec};
use freerider_serve::{Client, ClientError, ServeConfig};

/// A 1000-tag office: tags on a 40 × 25 grid around the exciter.
fn thousand_tag_deployment() -> Deployment {
    let mut d = Deployment::open_plan()
        .with_receiver(6.0, 0.0)
        .with_receiver(-6.0, 0.0);
    for gy in 0..25 {
        for gx in 0..40 {
            let x = (gx as f64) * 0.3 - 6.0;
            let y = (gy as f64) * 0.4 - 4.8;
            d = d.with_tag(x, y);
        }
    }
    assert_eq!(d.tags.len(), 1000);
    d
}

fn spec(rounds: usize, stream: bool, snapshot_every: usize) -> JobSpec {
    JobSpec {
        config: SimConfig {
            rounds,
            seed: 0xFEED_F00D,
            ..SimConfig::default()
        },
        deployment: thousand_tag_deployment(),
        stream,
        snapshot_every,
    }
}

fn loopback(threads: usize) -> Loopback {
    Loopback::new(&ServeConfig {
        threads,
        ..ServeConfig::default()
    })
}

/// The reference: run the same job in-process and encode its report.
fn direct_bytes(s: &JobSpec) -> Vec<u8> {
    let report =
        DeploymentSim::new(s.deployment.clone(), LinkModel::default(), s.config.clone()).run();
    wire::encode_report(&report)
}

fn wait_done(client: &mut Client<freerider_serve::pipe::PipeEnd>, job: u64) {
    for _ in 0..20_000 {
        let s = client.status(job).expect("status");
        if s.state == "done" || s.state == "cancelled" || s.state == "failed" {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    panic!("job {job} never finished");
}

#[test]
fn streamed_1000_tag_job_matches_in_process_run_at_widths_1_and_4() {
    let s = spec(40, true, 10);
    let reference = direct_bytes(&s);
    let mut served = Vec::new();

    for threads in [1usize, 4] {
        let server = loopback(threads);
        let mut client = Client::over(server.connect());
        let job = client.submit(&s).expect("submit");
        let events = client.drain_stream().expect("stream");

        let progress = events
            .iter()
            .filter(|e| matches!(e, StreamEvent::Progress(_)))
            .count();
        assert!(
            progress >= 10,
            "want ≥ 10 progress frames, got {progress} (threads={threads})"
        );
        let snapshots = events
            .iter()
            .filter(|e| matches!(e, StreamEvent::Tags { .. }))
            .count();
        assert_eq!(snapshots, 4, "40 rounds / snapshot_every 10");

        let raw = events
            .iter()
            .find_map(|e| match e {
                StreamEvent::Result { raw, .. } => Some(raw.clone()),
                _ => None,
            })
            .expect("stream must carry a JobResult frame");
        assert_eq!(
            raw, reference,
            "served result differs from the in-process run (threads={threads})"
        );
        assert!(matches!(events.last(), Some(StreamEvent::End { job: j }) if *j == job));
        served.push(raw);
    }
    assert_eq!(served[0], served[1], "executor width changed the bytes");
}

#[test]
fn result_is_identical_with_zero_and_three_subscribers() {
    let s_quiet = spec(30, false, 0);
    let reference = direct_bytes(&s_quiet);

    // Zero subscribers: nobody watches the run; the result is replayed
    // to a late subscriber after completion.
    let server = loopback(2);
    let mut client = Client::over(server.connect());
    let job = client.submit(&s_quiet).expect("submit");
    wait_done(&mut client, job);
    let mut sub = Client::over(server.connect());
    sub.subscribe(job).expect("subscribe");
    let events = sub.drain_stream().expect("replay");
    let quiet_raw = events
        .iter()
        .find_map(|e| match e {
            StreamEvent::Result { raw, .. } => Some(raw.clone()),
            _ => None,
        })
        .expect("late subscriber must replay the result");
    assert_eq!(quiet_raw, reference, "0-subscriber run diverged");

    // Three subscribers: the submitting stream plus two attached over
    // separate connections while the job runs (or replayed if it beat
    // them — either way the bytes must match).
    let s_live = spec(30, true, 5);
    let server = loopback(2);
    let mut submitter = Client::over(server.connect());
    let job = submitter.submit(&s_live).expect("submit");
    let mut watchers: Vec<_> = (0..2)
        .map(|_| {
            let mut w = Client::over(server.connect());
            w.subscribe(job).expect("subscribe");
            w
        })
        .collect();
    let mut raws = vec![extract_result(submitter.drain_stream().expect("stream"))];
    for w in watchers.iter_mut() {
        raws.push(extract_result(w.drain_stream().expect("watch")));
    }
    for raw in &raws {
        assert_eq!(raw, &reference, "a subscriber saw different bytes");
    }
}

fn extract_result(events: Vec<StreamEvent>) -> Vec<u8> {
    events
        .into_iter()
        .find_map(|e| match e {
            StreamEvent::Result { raw, .. } => Some(raw),
            _ => None,
        })
        .expect("stream must carry a JobResult frame")
}

#[test]
fn cancel_status_and_list_over_the_wire() {
    let server = loopback(1);
    let mut client = Client::over(server.connect());

    // A job big enough that the cancel lands mid-run.
    let job = client.submit(&spec(500_000, false, 0)).expect("submit");
    let st = client.status(job).expect("status");
    assert!(st.state == "queued" || st.state == "running");
    assert_eq!(st.rounds, 500_000);
    assert_eq!(st.tags, 1000);

    assert!(client.cancel(job).expect("cancel"), "cancel should land");
    wait_done(&mut client, job);
    assert_eq!(client.status(job).expect("status").state, "cancelled");

    // Its stream replays a bare StreamEnd — no result was produced.
    let mut sub = Client::over(server.connect());
    sub.subscribe(job).expect("subscribe");
    let events = sub.drain_stream().expect("replay");
    assert!(events
        .iter()
        .all(|e| !matches!(e, StreamEvent::Result { .. })));
    assert!(matches!(events.last(), Some(StreamEvent::End { .. })));

    let jobs = client.list().expect("list");
    assert_eq!(jobs.len(), 1);
    assert_eq!(jobs[0].job, job);

    // Unknown ids and invalid submissions come back as server errors.
    assert!(matches!(client.status(999), Err(ClientError::Server(_))));
    assert!(matches!(client.cancel(999), Err(ClientError::Server(_))));
    let mut bad = spec(10, false, 0);
    bad.config.rounds = 0;
    assert!(matches!(client.submit(&bad), Err(ClientError::Server(_))));
}

#[test]
fn tcp_round_trip_with_shutdown() {
    use freerider_serve::server::{ServeConfig, Server};

    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let runner = std::thread::spawn(move || server.run());

    let s = spec(12, true, 0);
    let reference = direct_bytes(&s);
    let mut client = Client::<std::net::TcpStream>::connect(addr).expect("connect");
    client.submit(&s).expect("submit");
    let events = client.drain_stream().expect("stream");
    let raw = extract_result(events.clone());
    assert_eq!(raw, reference, "TCP-served result diverged");
    assert!(
        events
            .iter()
            .filter(|e| matches!(e, StreamEvent::Progress(_)))
            .count()
            >= 10
    );

    client.shutdown().expect("shutdown");
    runner.join().expect("join").expect("server run");
}

#[test]
fn stats_and_health_report_live_activity() {
    let server = loopback(2);
    let mut client = Client::over(server.connect());
    let job = client.submit(&spec(20, true, 0)).expect("submit");
    let events = client.drain_stream().expect("stream");
    assert!(matches!(events.last(), Some(StreamEvent::End { job: j }) if *j == job));

    // The raw payload must be valid JSON (round-trips through jsonv)
    // and decode into a report that reflects the traffic just made.
    let raw = client.stats_raw().expect("stats raw");
    let text = std::str::from_utf8(&raw).expect("stats payload is UTF-8");
    freerider_telemetry::jsonv::JsonValue::parse(text).expect("stats payload is JSON");
    let stats = wire::decode_stats(&raw).expect("decode stats");

    assert_eq!(stats.counter("frames.rx.submit_job"), 1);
    assert_eq!(stats.counter("frames.tx.job_accepted"), 1);
    assert!(stats.counter("frames.tx.progress") >= 10);
    assert_eq!(stats.counter("frames.tx.job_result"), 1);
    assert_eq!(stats.counter("sessions.accepted"), 1);
    assert_eq!(stats.counter("jobs.submitted"), 1);
    assert_eq!(stats.counter("jobs.completed"), 1);
    assert_eq!(stats.counter("subs.attached"), 1);
    assert!(stats.counter("bytes.rx") > 0);
    assert!(stats.counter("bytes.tx") > 0);
    assert_eq!(stats.gauge("jobs.running"), 0);
    assert_eq!(stats.gauge("jobs.queued"), 0);
    assert_eq!(stats.gauge("sessions.active"), 1, "this session is open");
    assert_eq!(stats.counter("frames.malformed"), 0);
    // Frame handling latency was measured for every request frame.
    let (name, lat) = &stats.latency[0];
    assert_eq!(name, "frame.handle_ns");
    // The snapshot is taken before its own frame's latency lands, so
    // at minimum the submit has been measured.
    assert!(lat.count >= 1, "submit at minimum, got {}", lat.count);

    let h = client.health().expect("health");
    assert!(h.ok);
    assert_eq!(h.jobs_running, 0);
    assert_eq!(h.sessions_active, 1);
    assert!(h.frames_rx >= 3 && h.frames_tx > h.frames_rx);
}

#[test]
fn stats_counters_are_byte_identical_across_executor_widths() {
    // The acceptance pin: the deterministic counter subset of a Stats
    // snapshot must not depend on FREERIDER_THREADS. Identical request
    // sequence, fresh server each time, widths 1 and 4.
    let s = spec(40, true, 10);
    let mut payloads = Vec::new();
    for threads in [1usize, 4] {
        let server = loopback(threads);
        let mut client = Client::over(server.connect());
        client.submit(&s).expect("submit");
        client.drain_stream().expect("stream");
        let report = client.stats().expect("stats");
        payloads.push(wire::encode_stats_counters(&report));
    }
    assert!(
        payloads[0]
            .windows(b"frames.rx.submit_job".len())
            .any(|w| w == b"frames.rx.submit_job"),
        "snapshot must carry the session's traffic"
    );
    assert_eq!(
        String::from_utf8_lossy(&payloads[0]),
        String::from_utf8_lossy(&payloads[1]),
        "counter subset diverged between executor widths 1 and 4"
    );
}

#[test]
fn eviction_counters_match_dropped_frames_through_the_clamp() {
    use freerider_serve::job::MIN_QUEUE_CAP;
    use std::sync::Arc;

    // queue_cap 1 is clamped to MIN_QUEUE_CAP by the manager; a
    // subscriber that never pops retains exactly that many frames and
    // evicts every earlier one — and the metrics registry must agree
    // with the per-queue counters frame-for-frame.
    let server = Loopback::new(&ServeConfig {
        threads: 2,
        queue_cap: 1,
        ..ServeConfig::default()
    });
    let mgr = server.manager();
    assert_eq!(mgr.queue_cap(), MIN_QUEUE_CAP, "clamp engaged");

    let lazy = mgr.new_queue();
    let job = mgr.submit(spec(50, false, 0), Some(Arc::clone(&lazy)));
    let mut client = Client::over(server.connect());
    wait_done(&mut client, job);

    // 50 progress + JobResult + StreamEnd were pushed; cap survive.
    let expected_pushed = 50 + 2;
    assert_eq!(lazy.pushed(), expected_pushed);
    assert_eq!(lazy.evicted(), expected_pushed - MIN_QUEUE_CAP as u64);

    // A post-completion subscriber replays only the terminal frames —
    // too few to evict — so the registry total stays the lazy queue's.
    let replay = mgr.subscribe(job).expect("replay subscribe");
    let mut replayed = 0u64;
    while replay.pop().is_some() {
        replayed += 1;
    }
    assert_eq!(replayed, 2, "JobResult + StreamEnd");
    assert_eq!(replay.evicted(), 0);

    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.counter("subs.evictions"),
        lazy.evicted() + replay.evicted()
    );
    assert_eq!(
        stats.counter("subs.broadcast"),
        lazy.pushed() + replay.pushed()
    );
    assert_eq!(
        stats.gauge("queue.depth_hwm"),
        MIN_QUEUE_CAP as u64,
        "high-water mark is the clamped capacity"
    );

    // The books balance exactly: every accepted frame was either
    // popped, evicted, or is still queued (here: still queued = cap).
    lazy.close();
    let mut popped = 0u64;
    while lazy.pop().is_some() {
        popped += 1;
    }
    assert_eq!(popped, MIN_QUEUE_CAP as u64);
    assert_eq!(lazy.pushed(), popped + lazy.evicted());
}

#[test]
fn shutdown_completes_with_an_idle_connection_open() {
    use freerider_serve::server::{ServeConfig, Server};

    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let runner = std::thread::spawn(move || server.run());

    // An idle session: connected, never sends a frame. Its thread parks
    // in a blocking read; shutdown used to join it and hang forever.
    let idle = std::net::TcpStream::connect(addr).expect("idle connect");

    let mut client = Client::<std::net::TcpStream>::connect(addr).expect("connect");
    client.shutdown().expect("shutdown");
    runner.join().expect("join").expect("server run");
    drop(idle);
}
