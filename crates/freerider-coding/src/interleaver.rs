//! The 802.11 per-OFDM-symbol block interleaver.
//!
//! IEEE 802.11-2012 §18.3.5.7: coded bits are interleaved within one OFDM
//! symbol (N_CBPS bits) by two permutations — the first spreads adjacent
//! coded bits across nonadjacent subcarriers; the second alternates bits
//! between more and less significant constellation positions.
//!
//! The FreeRider-relevant property (§3.2.1 of the paper): interleaving is
//! strictly **per symbol**, so a tag modification confined to whole OFDM
//! symbols never smears across symbol boundaries. This is why the tag's
//! redundancy unit is "K OFDM symbols" and not "K bits".

/// Per-symbol interleaver for a given (N_CBPS, N_BPSC) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interleaver {
    /// Coded bits per OFDM symbol.
    n_cbps: usize,
    /// Forward permutation: output position of input bit k.
    fwd: Vec<usize>,
    /// Inverse permutation.
    inv: Vec<usize>,
}

impl Interleaver {
    /// Creates an interleaver.
    ///
    /// * `n_cbps` — coded bits per symbol (48, 96, 192 or 288 for 802.11g).
    /// * `n_bpsc` — coded bits per subcarrier (1, 2, 4, 6).
    ///
    /// # Panics
    /// Panics if `n_cbps` is not a multiple of 16 or `n_bpsc` doesn't divide it.
    pub fn new(n_cbps: usize, n_bpsc: usize) -> Self {
        assert!(
            n_cbps >= 16 && n_cbps.is_multiple_of(16),
            "invalid N_CBPS {n_cbps}"
        );
        assert!(
            n_bpsc >= 1 && n_cbps.is_multiple_of(n_bpsc),
            "invalid N_BPSC {n_bpsc}"
        );
        let s = (n_bpsc / 2).max(1);
        let mut fwd = vec![0usize; n_cbps];
        #[allow(clippy::needless_range_loop)] // k is the standard's bit index
        for k in 0..n_cbps {
            // First permutation.
            let i = (n_cbps / 16) * (k % 16) + k / 16;
            // Second permutation.
            let j = s * (i / s) + (i + n_cbps - (16 * i) / n_cbps) % s;
            fwd[k] = j;
        }
        let mut inv = vec![0usize; n_cbps];
        for (k, &j) in fwd.iter().enumerate() {
            inv[j] = k;
        }
        Interleaver { n_cbps, fwd, inv }
    }

    /// Coded bits per symbol this interleaver operates on.
    pub fn block_size(&self) -> usize {
        self.n_cbps
    }

    /// Interleaves exactly one symbol's worth of bits.
    ///
    /// # Panics
    /// Panics if `bits.len() != N_CBPS`.
    pub fn interleave_symbol(&self, bits: &[u8]) -> Vec<u8> {
        assert_eq!(bits.len(), self.n_cbps, "symbol size mismatch");
        let mut out = vec![0u8; self.n_cbps];
        for (k, &b) in bits.iter().enumerate() {
            out[self.fwd[k]] = b;
        }
        out
    }

    /// Deinterleaves exactly one symbol's worth of bits.
    pub fn deinterleave_symbol(&self, bits: &[u8]) -> Vec<u8> {
        assert_eq!(bits.len(), self.n_cbps, "symbol size mismatch");
        let mut out = vec![0u8; self.n_cbps];
        for (j, &b) in bits.iter().enumerate() {
            out[self.inv[j]] = b;
        }
        out
    }

    /// Interleaves a multi-symbol stream (length must be a whole number of
    /// symbols).
    pub fn interleave(&self, bits: &[u8]) -> Vec<u8> {
        assert_eq!(bits.len() % self.n_cbps, 0, "not a whole number of symbols");
        bits.chunks(self.n_cbps)
            .flat_map(|c| self.interleave_symbol(c))
            .collect()
    }

    /// Deinterleaves a multi-symbol stream.
    pub fn deinterleave(&self, bits: &[u8]) -> Vec<u8> {
        assert_eq!(bits.len() % self.n_cbps, 0, "not a whole number of symbols");
        bits.chunks(self.n_cbps)
            .flat_map(|c| self.deinterleave_symbol(c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CONFIGS: &[(usize, usize)] = &[(48, 1), (96, 2), (192, 4), (288, 6)];

    #[test]
    fn is_a_permutation() {
        for &(n_cbps, n_bpsc) in CONFIGS {
            let il = Interleaver::new(n_cbps, n_bpsc);
            let mut seen = vec![false; n_cbps];
            for &j in &il.fwd {
                assert!(!seen[j], "duplicate output position {j}");
                seen[j] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn round_trips() {
        for &(n_cbps, n_bpsc) in CONFIGS {
            let il = Interleaver::new(n_cbps, n_bpsc);
            let bits: Vec<u8> = (0..n_cbps).map(|i| ((i * 31) % 7 < 3) as u8).collect();
            assert_eq!(il.deinterleave_symbol(&il.interleave_symbol(&bits)), bits);
            assert_eq!(il.interleave_symbol(&il.deinterleave_symbol(&bits)), bits);
        }
    }

    #[test]
    fn bpsk_first_positions_match_standard() {
        // For N_CBPS=48, N_BPSC=1 (6 Mbps BPSK): s=1 so the second
        // permutation is identity and k→3(k mod 16)+⌊k/16⌋.
        let il = Interleaver::new(48, 1);
        assert_eq!(il.fwd[0], 0);
        assert_eq!(il.fwd[1], 3);
        assert_eq!(il.fwd[2], 6);
        assert_eq!(il.fwd[16], 1);
        assert_eq!(il.fwd[47], 47);
    }

    #[test]
    fn adjacent_bits_are_spread() {
        // Adjacent coded bits must land ≥3 positions apart (that is the
        // point of interleaving: burst errors don't hit consecutive coded
        // bits).
        let il = Interleaver::new(192, 4);
        for k in 0..191 {
            let d = il.fwd[k].abs_diff(il.fwd[k + 1]);
            assert!(d >= 3, "positions {k},{} too close: {d}", k + 1);
        }
    }

    #[test]
    fn multi_symbol_is_per_symbol() {
        // Interleaving two symbols equals interleaving each separately —
        // the property the FreeRider tag depends on (§3.2.1).
        let il = Interleaver::new(48, 1);
        let s1: Vec<u8> = (0..48).map(|i| (i % 3 == 0) as u8).collect();
        let s2: Vec<u8> = (0..48).map(|i| (i % 5 == 0) as u8).collect();
        let mut both = s1.clone();
        both.extend_from_slice(&s2);
        let joint = il.interleave(&both);
        let mut separate = il.interleave_symbol(&s1);
        separate.extend(il.interleave_symbol(&s2));
        assert_eq!(joint, separate);
    }

    #[test]
    fn symbol_flip_stays_in_symbol() {
        // Complementing one whole symbol before interleaving complements
        // exactly that symbol after interleaving.
        let il = Interleaver::new(96, 2);
        let bits: Vec<u8> = (0..192).map(|i| ((i * 13) % 11 < 5) as u8).collect();
        let mut flipped = bits.clone();
        for b in flipped[96..192].iter_mut() {
            *b ^= 1;
        }
        let a = il.interleave(&bits);
        let b = il.interleave(&flipped);
        assert_eq!(&a[..96], &b[..96]);
        for i in 96..192 {
            assert_eq!(a[i] ^ 1, b[i]);
        }
    }

    #[test]
    #[should_panic]
    fn wrong_symbol_size_panics() {
        let il = Interleaver::new(48, 1);
        let _ = il.interleave_symbol(&[0u8; 47]);
    }
}

impl Interleaver {
    /// Deinterleaves one symbol of soft values (same permutation as
    /// [`Interleaver::deinterleave_symbol`], over `f64`).
    pub fn deinterleave_symbol_soft(&self, values: &[f64]) -> Vec<f64> {
        assert_eq!(values.len(), self.n_cbps, "symbol size mismatch");
        let mut out = vec![0.0f64; self.n_cbps];
        self.deinterleave_symbol_soft_into(values, &mut out);
        out
    }

    /// [`Interleaver::deinterleave_symbol_soft`] into a caller-provided
    /// exact-size slice (the allocation-free RX path appends one symbol at
    /// a time to its coded-LLR buffer and scatters into the tail window).
    ///
    /// # Panics
    /// Panics if `values.len() != N_CBPS` or `out.len() != N_CBPS`.
    pub fn deinterleave_symbol_soft_into(&self, values: &[f64], out: &mut [f64]) {
        assert_eq!(values.len(), self.n_cbps, "symbol size mismatch");
        assert_eq!(out.len(), self.n_cbps, "output size mismatch");
        for (j, &v) in values.iter().enumerate() {
            out[self.inv[j]] = v;
        }
    }

    /// The cached deinterleave scatter map: position `j` of a received
    /// (interleaved) symbol lands at position `inverse_map()[j]` of the
    /// deinterleaved symbol. Exposed so demappers can fuse the scatter
    /// into LLR production instead of round-tripping a separate pass
    /// (see `freerider-wifi`'s batched demap). Always a permutation of
    /// `0..block_size()`.
    pub fn inverse_map(&self) -> &[usize] {
        &self.inv
    }
}

#[cfg(test)]
mod soft_tests {
    use super::*;

    #[test]
    fn soft_matches_hard_permutation() {
        let il = Interleaver::new(96, 2);
        let bits: Vec<u8> = (0..96).map(|i| (i % 3 == 0) as u8).collect();
        let soft: Vec<f64> = bits
            .iter()
            .map(|&b| if b == 1 { 1.0 } else { -1.0 })
            .collect();
        let hard_out = il.deinterleave_symbol(&bits);
        let soft_out = il.deinterleave_symbol_soft(&soft);
        for (h, s) in hard_out.iter().zip(soft_out.iter()) {
            assert_eq!(*h == 1, *s > 0.0);
        }
    }
}
