//! Bluetooth LE data whitening.
//!
//! BLE whitens PDU+CRC bits with a 7-bit LFSR (polynomial x⁷+x⁴+1 — the
//! same polynomial as the 802.11 scrambler, in a different wiring)
//! initialised from the RF channel index: `state = 0b1 || channel[5..0]`
//! (position 0 set to 1, positions 1..6 from the channel index MSB-first).
//!
//! Like the 802.11 scrambler, whitening is data-independent, so it has the
//! complement-run property FreeRider needs: a tag-induced FSK codeword swap
//! (bit flip) on the air XORs straight through to the dewhitened output.

/// BLE whitening engine.
#[derive(Debug, Clone)]
pub struct Whitener {
    state: u8, // 7 bits: position1 = bit6 ... position7 = bit0
}

impl Whitener {
    /// Creates a whitener for the given BLE RF channel index (0–39).
    ///
    /// # Panics
    /// Panics if `channel > 39`.
    pub fn for_channel(channel: u8) -> Self {
        assert!(channel <= 39, "BLE channel index 0–39, got {channel}");
        // Position 0 ← 1, positions 1..=6 ← channel bits MSB-first.
        // Register layout here: bit6 = position0 … bit0 = position6.
        let mut state = 0x40; // position0 = 1
        for i in 0..6 {
            let ch_bit = (channel >> (5 - i)) & 1;
            state |= ch_bit << (5 - i);
        }
        Whitener { state }
    }

    /// Advances one step, returning the whitening bit (position 6 output).
    #[inline]
    fn step(&mut self) -> u8 {
        let out = self.state & 1; // position 6
        self.state >>= 1;
        if out != 0 {
            // Feedback into position 0 (bit6) and XOR into position 4 (bit2).
            self.state ^= 0x40 | 0x04;
        }
        out
    }

    /// Whitens (or dewhitens — involution) a bit sequence.
    pub fn whiten(&mut self, bits: &[u8]) -> Vec<u8> {
        bits.iter().map(|&b| (b ^ self.step()) & 1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn involution() {
        let bits: Vec<u8> = (0..200).map(|i| ((i * 3) % 7 < 4) as u8).collect();
        for ch in [0u8, 11, 37, 39] {
            let w = Whitener::for_channel(ch).whiten(&bits);
            let back = Whitener::for_channel(ch).whiten(&w);
            assert_eq!(back, bits, "channel {ch}");
            if ch != 0 {
                assert_ne!(w, bits, "whitening must alter data on channel {ch}");
            }
        }
    }

    #[test]
    fn channels_differ() {
        let zeros = vec![0u8; 64];
        let a = Whitener::for_channel(37).whiten(&zeros);
        let b = Whitener::for_channel(38).whiten(&zeros);
        assert_ne!(a, b);
    }

    #[test]
    fn sequence_period_is_127() {
        let mut w = Whitener::for_channel(37);
        let seq = w.whiten(&vec![0u8; 254]);
        assert_eq!(&seq[..127], &seq[127..]);
    }

    #[test]
    fn complement_run_property() {
        // Whitening is data-independent ⇒ flipping a run of input bits flips
        // exactly that run of output bits — the BLE leg of Table 1.
        let bits: Vec<u8> = (0..100).map(|i| (i % 2) as u8).collect();
        let mut flipped = bits.clone();
        for b in flipped[20..60].iter_mut() {
            *b ^= 1;
        }
        let a = Whitener::for_channel(5).whiten(&bits);
        let b = Whitener::for_channel(5).whiten(&flipped);
        for k in 0..100 {
            if (20..60).contains(&k) {
                assert_eq!(a[k] ^ 1, b[k]);
            } else {
                assert_eq!(a[k], b[k]);
            }
        }
    }

    #[test]
    #[should_panic]
    fn invalid_channel_panics() {
        let _ = Whitener::for_channel(40);
    }
}
