//! The 802.11 frame-synchronous scrambler.
//!
//! Implements Figure 7 / Equation 8 of the FreeRider paper (IEEE 802.11-2012
//! §18.3.5.5): a 7-bit LFSR with generator `S(x) = x⁷ + x⁴ + 1`. The
//! transmitter XORs the data with the LFSR output to whiten it (avoiding
//! long runs that would hurt the PA's peak-to-average ratio); the receiver
//! runs the identical structure to descramble.
//!
//! Scrambling is an involution for a given seed: `scramble(scramble(x)) == x`.

/// The 802.11 scrambler/descrambler.
#[derive(Debug, Clone)]
pub struct Scrambler {
    state: u8, // 7 bits
}

impl Scrambler {
    /// Creates a scrambler with the given 7-bit initial state.
    ///
    /// The 802.11 standard requires a pseudo-random nonzero seed per frame;
    /// the receiver recovers it from the 7 zero SERVICE bits.
    ///
    /// # Panics
    /// Panics if `seed` is zero or wider than 7 bits.
    pub fn new(seed: u8) -> Self {
        assert!(seed != 0, "scrambler seed must be nonzero");
        assert!(seed < 0x80, "scrambler seed is 7 bits");
        Scrambler { state: seed }
    }

    /// The scrambler seed conventionally used across this workspace's tests
    /// and examples (any nonzero value is valid).
    pub const DEFAULT_SEED: u8 = 0b1011101;

    /// Advances the LFSR one step and returns the whitening bit
    /// `x[k] = s[k−4] ⊕ s[k−7]`.
    #[inline]
    fn step(&mut self) -> u8 {
        let x = ((self.state >> 3) ^ (self.state >> 6)) & 1;
        self.state = ((self.state << 1) | x) & 0x7F;
        x
    }

    /// Scrambles (or descrambles — same operation) a bit sequence in place.
    ///
    /// Long inputs (a DATA field is thousands of bits) take a batched
    /// path: the LFSR output is periodic with period 127 for any nonzero
    /// state, so one lap of [`Scrambler::step`] materialises the whole
    /// whitening sequence and the data is XORed against it in
    /// autovectorisable byte sweeps — bit-for-bit the values the
    /// step-per-bit loop produces, without its serial feedback chain.
    // lint: hot-path
    pub fn scramble_in_place(&mut self, bits: &mut [u8]) {
        const PERIOD: usize = 127;
        if bits.len() < 2 * PERIOD {
            for b in bits.iter_mut() {
                *b = (*b ^ self.step()) & 1;
            }
            return;
        }
        // One full period of whitening bits, starting from the current
        // state. The register returns to its starting value afterwards
        // (maximal-length sequence), so each chunk reuses the same lap.
        let mut seq = [0u8; PERIOD];
        for x in seq.iter_mut() {
            *x = self.step();
        }
        for chunk in bits.chunks_mut(PERIOD) {
            for (b, &x) in chunk.iter_mut().zip(seq.iter()) {
                *b = (*b ^ x) & 1;
            }
        }
        // Leave the register where the per-bit loop would have: advance by
        // the partial tail (full periods are identity).
        for _ in 0..bits.len() % PERIOD {
            let _ = self.step();
        }
    }

    /// Scrambles a bit sequence, returning a new vector.
    pub fn scramble(&mut self, bits: &[u8]) -> Vec<u8> {
        let mut out = bits.to_vec();
        self.scramble_in_place(&mut out);
        out
    }

    /// Recovers the transmitter's seed from the first 7 descrambled-to-zero
    /// SERVICE bits of a received (still scrambled) stream, as a real 802.11
    /// receiver does. Returns `None` if fewer than 7 bits are provided or the
    /// recovered state is zero (an impossible/corrupt seed).
    ///
    /// Since SERVICE bits are transmitted as zeros, the first 7 scrambled
    /// bits *are* the whitening sequence, from which the LFSR state can be
    /// reconstructed directly.
    pub fn recover_seed(scrambled_service: &[u8]) -> Option<Scrambler> {
        if scrambled_service.len() < 7 {
            return None;
        }
        // The whitening sequence x[1..=7] satisfies x[k] = s[k−4] ⊕ s[k−7].
        // After 7 steps the register holds exactly the last 7 whitening
        // bits (newest in bit0... we shift left, so newest is bit 0).
        let mut state = 0u8;
        for &x in scrambled_service[..7].iter() {
            state = ((state << 1) | (x & 1)) & 0x7F;
        }
        if state == 0 {
            return None;
        }
        Some(Scrambler { state })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn involution() {
        let bits: Vec<u8> = (0..503).map(|i| ((i * 7) % 3 == 0) as u8).collect();
        let mut s1 = Scrambler::new(Scrambler::DEFAULT_SEED);
        let mut s2 = Scrambler::new(Scrambler::DEFAULT_SEED);
        let scrambled = s1.scramble(&bits);
        assert_ne!(scrambled, bits, "scrambler must change the data");
        let back = s2.scramble(&scrambled);
        assert_eq!(back, bits);
    }

    #[test]
    fn whitening_sequence_has_period_127() {
        // All-zero input exposes the raw whitening sequence.
        let mut s = Scrambler::new(0x7F);
        let seq = s.scramble(&vec![0u8; 254]);
        assert_eq!(&seq[..127], &seq[127..]);
        // ...and it's balanced-ish (maximal length: 64 ones, 63 zeros).
        let ones: usize = seq[..127].iter().map(|&b| b as usize).sum();
        assert_eq!(ones, 64);
    }

    #[test]
    fn standard_first_bits_for_all_ones_seed() {
        // IEEE 802.11-2012 Annex: seed 1011101 repeatedly generates the
        // 127-bit sequence starting 00000111...; check the documented prefix
        // for the all-ones state instead (first 7 outputs of state 1111111
        // are 0,0,0,0,1,1,1 per the x⁷+x⁴+1 recurrence... we verify the
        // recurrence property directly: x[k] = x[k−4] ⊕ x[k−7] for k > 7.
        let mut s = Scrambler::new(0x7F);
        let seq = s.scramble(&[0u8; 200]);
        for k in 7..200 {
            assert_eq!(seq[k], seq[k - 4] ^ seq[k - 7], "recurrence at {k}");
        }
    }

    #[test]
    fn complement_run_property() {
        // The FreeRider enabler (§3.2.1): complementing a run of input bits
        // complements the corresponding run of output bits, because the
        // whitening sequence is independent of the data.
        let bits: Vec<u8> = (0..96).map(|i| (i % 5 == 0) as u8).collect();
        let mut flipped = bits.clone();
        for b in flipped[32..64].iter_mut() {
            *b ^= 1;
        }
        let a = Scrambler::new(0x5D).scramble(&bits);
        let b = Scrambler::new(0x5D).scramble(&flipped);
        for k in 0..96 {
            if (32..64).contains(&k) {
                assert_eq!(a[k] ^ 1, b[k], "inside run at {k}");
            } else {
                assert_eq!(a[k], b[k], "outside run at {k}");
            }
        }
    }

    #[test]
    fn seed_recovery_from_service_bits() {
        for seed in [1u8, 0x2A, 0x7F, Scrambler::DEFAULT_SEED] {
            let mut tx = Scrambler::new(seed);
            // 16 SERVICE bits transmitted as zeros; scrambled output follows.
            let mut frame = vec![0u8; 16];
            frame.extend((0..64).map(|i| (i % 3 == 0) as u8));
            let scrambled = tx.scramble(&frame);
            let mut rx = Scrambler::recover_seed(&scrambled[..7]).expect("recoverable");
            let descrambled = rx.scramble(&scrambled[7..]);
            assert_eq!(&descrambled[..9], &frame[7..16], "service tail zeroed");
            assert_eq!(&descrambled[9..], &frame[16..], "payload recovered");
        }
    }

    #[test]
    fn batched_path_matches_per_bit() {
        // Lengths straddling the 2·127 batching threshold, including
        // non-multiple-of-period tails: the batched sweep must agree with
        // the step-per-bit loop bit for bit and leave the same register
        // state behind (so a later call continues identically).
        for len in [0usize, 1, 126, 253, 254, 255, 381, 500, 8144] {
            let bits: Vec<u8> = (0..len).map(|i| ((i * 31 + 7) % 5 == 0) as u8).collect();
            let mut a = bits.clone();
            let mut b = bits;
            let mut s_batch = Scrambler::new(0x2B);
            let mut s_ref = Scrambler::new(0x2B);
            s_batch.scramble_in_place(&mut a);
            for bit in b.iter_mut() {
                *bit = (*bit ^ s_ref.step()) & 1;
            }
            assert_eq!(a, b, "bits at len {len}");
            assert_eq!(s_batch.state, s_ref.state, "state after len {len}");
        }
    }

    #[test]
    fn seed_recovery_rejects_short_or_zero() {
        assert!(Scrambler::recover_seed(&[0, 1, 0]).is_none());
        assert!(Scrambler::recover_seed(&[0; 7]).is_none());
    }

    #[test]
    #[should_panic]
    fn zero_seed_panics() {
        let _ = Scrambler::new(0);
    }
}
