//! The 802.11 convolutional code with hard- and soft-decision Viterbi
//! decoders.
//!
//! Encoder: constraint length K=7, generators g₀ = 133₈, g₁ = 171₈ — this is
//! Equation 9 of the FreeRider paper:
//!
//! ```text
//! C1[k] = b[k] ⊕ b[k−2] ⊕ b[k−3] ⊕ b[k−5] ⊕ b[k−6]
//! C2[k] = b[k] ⊕ b[k−1] ⊕ b[k−2] ⊕ b[k−3] ⊕ b[k−6]
//! ```
//!
//! Rate 1/2 natively; rates 2/3 and 3/4 by the standard puncturing patterns.
//!
//! Both generators have **odd weight (5 taps)** — the linear-algebraic fact
//! the FreeRider tag exploits: complementing a long run of inputs
//! complements the outputs inside the run, so a 180° phase flip at the tag
//! re-encodes to *another valid codeword* whose decode is the bitwise
//! complement (§3.2.1 of the paper). See `complement_run_property`.

/// Code rates supported by 802.11a/g.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeRate {
    /// Rate 1/2 (no puncturing).
    Half,
    /// Rate 2/3 (puncture every 4th output bit).
    TwoThirds,
    /// Rate 3/4.
    ThreeQuarters,
}

impl CodeRate {
    /// Numerator/denominator of the rate.
    pub fn as_fraction(self) -> (usize, usize) {
        match self {
            CodeRate::Half => (1, 2),
            CodeRate::TwoThirds => (2, 3),
            CodeRate::ThreeQuarters => (3, 4),
        }
    }

    /// Puncturing pattern over the rate-1/2 output stream (A1 B1 A2 B2 …);
    /// `true` = transmit, `false` = puncture. Patterns per IEEE 802.11-2012
    /// §18.3.5.6.
    fn pattern(self) -> &'static [bool] {
        match self {
            CodeRate::Half => &[true, true],
            // A1 B1 A2 (B2 punctured)
            CodeRate::TwoThirds => &[true, true, true, false],
            // A1 B1 A2 B3 (B2, A3 punctured)
            CodeRate::ThreeQuarters => &[true, true, true, false, false, true],
        }
    }
}

const K: usize = 7;
const NSTATES: usize = 1 << (K - 1); // 64
const G0: u8 = 0o133;
const G1: u8 = 0o171;

// The XOR-3 butterfly shortcut in `viterbi_decode_soft_scratch` requires
// both generators to tap the input bit (bit 6) and the oldest register
// bit (bit 0); true for the 802.11 pair (133, 171 octal), guarded here
// in case the polynomials ever change.
const _: () = assert!(G0 & 1 == 1 && (G0 >> 6) & 1 == 1 && G1 & 1 == 1 && (G1 >> 6) & 1 == 1);

#[inline]
fn parity(x: u8) -> u8 {
    (x.count_ones() & 1) as u8
}

/// Encodes `bits` at rate 1/2 (two output bits per input bit, A then B).
/// The encoder starts from the all-zero state; callers append `K−1 = 6`
/// zero tail bits if they need the trellis terminated.
pub fn encode_half(bits: &[u8]) -> Vec<u8> {
    let mut state: u8 = 0; // shift register of previous 6 bits
    let mut out = Vec::with_capacity(bits.len() * 2);
    for &b in bits {
        let reg = ((b & 1) << 6) | state; // b[k] in MSB position of 7-bit window
        out.push(parity(reg & G0));
        out.push(parity(reg & G1));
        state = reg >> 1;
    }
    out
}

/// Encodes at the given rate (encode 1/2 then puncture).
pub fn encode(bits: &[u8], rate: CodeRate) -> Vec<u8> {
    let full = encode_half(bits);
    let pat = rate.pattern();
    full.iter()
        .enumerate()
        .filter(|(i, _)| pat[i % pat.len()])
        .map(|(_, &b)| b)
        .collect()
}

/// Depunctures a received hard-bit stream back to the rate-1/2 lattice,
/// marking punctured positions as erasures (`None`).
fn depuncture(bits: &[u8], rate: CodeRate) -> Vec<Option<u8>> {
    let pat = rate.pattern();
    let mut out = Vec::new();
    let mut it = bits.iter();
    'outer: loop {
        for &keep in pat {
            if keep {
                match it.next() {
                    Some(&b) => out.push(Some(b & 1)),
                    None => break 'outer,
                }
            } else {
                out.push(None);
            }
        }
    }
    // Trim dangling erasures that extend past the last real bit pair.
    while out.len() % 2 != 0 {
        out.pop();
    }
    out
}

/// Hard-decision Viterbi decoder for the (133,171) code.
///
/// `coded` is the punctured bit stream; returns the maximum-likelihood input
/// sequence (`coded_pairs` input bits). The decoder runs a full traceback
/// (packets in this workspace are short); the survivor matrix is O(N·64) u8.
pub fn viterbi_decode(coded: &[u8], rate: CodeRate) -> Vec<u8> {
    let llrs: Vec<f64> = coded
        .iter()
        .map(|&b| if b & 1 == 1 { 1.0 } else { -1.0 })
        .collect();
    viterbi_decode_soft(&llrs, rate)
}

/// Depunctures soft values back to the rate-1/2 lattice, writing into
/// `out` (cleared first), marking punctured positions as zero-confidence
/// erasures.
///
/// The output length is computed exactly up front and `out` reserves
/// exactly that much: no erasure is emitted past the last input value's
/// bit pair, and no odd tail is pushed only to be popped again. The
/// resulting values are identical to [`reference::depuncture_soft`] —
/// pinned by `depuncture_matches_reference_and_pins_lengths`.
pub fn depuncture_soft_into(llrs: &[f64], rate: CodeRate, out: &mut Vec<f64>) {
    out.clear();
    let pat = rate.pattern();
    if llrs.is_empty() {
        return;
    }
    // Kept (transmitted) slots per pattern period.
    let keeps = pat.iter().filter(|&&k| k).count();
    let full = llrs.len() / keeps;
    let rem = llrs.len() % keeps;
    // Walk the final partial period the way the reference loop does —
    // consuming `rem` inputs and passing punctured slots — to find where
    // the stream ends, then trim a dangling half pair.
    let mut len = full * pat.len();
    if rem > 0 {
        let mut seen = 0usize;
        let mut i = 0usize;
        loop {
            if pat[i] {
                if seen == rem {
                    break;
                }
                seen += 1;
            }
            len += 1;
            i += 1;
            if i == pat.len() {
                i = 0;
            }
        }
        if !len.is_multiple_of(2) {
            len -= 1;
        }
    }
    out.reserve_exact(len);
    let mut it = llrs.iter();
    'outer: while out.len() < len {
        for &keep in pat {
            if out.len() == len {
                break 'outer;
            }
            if keep {
                match it.next() {
                    Some(&v) => out.push(v),
                    None => break 'outer,
                }
            } else {
                out.push(0.0);
            }
        }
    }
    debug_assert_eq!(out.len(), len);
}

/// Soft-decision Viterbi decoder.
///
/// `llrs` are per-coded-bit soft values: positive = bit 1, negative =
/// bit 0, magnitude = confidence. In the OFDM receiver the magnitude
/// carries the subcarrier's channel gain, so bits on faded subcarriers
/// contribute little to the path metric — the standard soft-decoding gain
/// (~2 dB AWGN, far more on frequency-selective channels) that commodity
/// 802.11 chips rely on.
pub fn viterbi_decode_soft(llrs: &[f64], rate: CodeRate) -> Vec<u8> {
    viterbi_decode_soft_with_metric(llrs, rate).0
}

/// [`viterbi_decode_soft`], also returning the winning path's final
/// metric (lower = closer to a valid codeword; 0 on noiseless input with
/// unit-magnitude LLRs is `−2·nsteps`). The metric is the per-packet
/// decode-confidence figure the flight recorder records.
///
/// **Not a hot path**: this convenience wrapper builds a fresh
/// [`ViterbiScratch`] and copies the decoded bits out on every call.
/// Steady-state callers (the receivers, the benchmarks) go through
/// [`viterbi_decode_soft_scratch`] instead.
pub fn viterbi_decode_soft_with_metric(llrs: &[f64], rate: CodeRate) -> (Vec<u8>, f64) {
    let mut scratch = ViterbiScratch::new();
    let (decoded, metric) = viterbi_decode_soft_scratch(llrs, rate, &mut scratch);
    (decoded.to_vec(), metric)
}

/// Reusable working memory for [`viterbi_decode_soft_scratch`]: the
/// depunctured lattice, the bit-packed survivor matrix and the
/// decoded-bit buffer (the two path-metric rows are small enough to live
/// on the stack). One scratch amortises every
/// allocation across repeated decodes (the RX hot loop decodes two
/// codewords per packet, thousands of packets per sweep point).
#[derive(Debug, Clone, Default)]
pub struct ViterbiScratch {
    lattice: Vec<f64>,
    /// One u64 per trellis step: bit `s` is the survivor branch choice
    /// for next-state `s` (0 = even predecessor, 1 = odd predecessor).
    surv: Vec<u64>,
    decoded: Vec<u8>,
}

impl ViterbiScratch {
    /// An empty scratch; buffers grow to the packet size on first use and
    /// are reused thereafter.
    pub fn new() -> Self {
        ViterbiScratch::default()
    }
}

/// Per-next-state branch data, precomputed once at compile time.
///
/// For next-state `ns`, the input bit is forced (`b = ns >> 5`: the newest
/// register bit) and the two predecessors are `(ns << 1) & 63` and
/// `((ns << 1) & 63) | 1` (the shifted-out oldest bit). `BRANCH_SYMS[ns]`
/// holds the expected coded symbol `(a << 1) | b_out` for each of the two,
/// indexing into the four per-step branch-metric pairs (±ra, ±rb).
const fn branch_syms() -> [[u8; 2]; NSTATES] {
    let mut t = [[0u8; 2]; NSTATES];
    let mut ns = 0;
    while ns < NSTATES {
        let b = (ns >> 5) as u8;
        let ps0 = ((ns << 1) & (NSTATES - 1)) as u8;
        let mut j = 0;
        while j < 2 {
            let reg = (b << 6) | ps0 | j as u8;
            let ea = ((reg & G0).count_ones() & 1) as u8;
            let eb = ((reg & G1).count_ones() & 1) as u8;
            t[ns][j] = (ea << 1) | eb;
            j += 1;
        }
        ns += 1;
    }
    t
}

const BRANCH_SYMS: [[u8; 2]; NSTATES] = branch_syms();

/// IEEE-754 sign bit, used to negate branch-metric addends exactly.
const SIGN_BIT: u64 = 1 << 63;

/// Per-butterfly sign masks for the SoA lane kernel, derived from
/// [`BRANCH_SYMS`] at compile time: entry `j` of the first (second) array
/// is [`SIGN_BIT`] when butterfly `j`'s even-predecessor branch expects
/// coded bit A (B) to be 1, so the addend is `−ra` (`−rb`). XOR-ing the
/// mask into the raw LLR's bit pattern is an exact IEEE negation —
/// bit-identical to the scalar kernel's `bm` table lookup, but a pure
/// integer op the autovectoriser handles in SoA form.
const fn branch_sign_masks() -> ([u64; NSTATES / 2], [u64; NSTATES / 2]) {
    let mut ma = [0u64; NSTATES / 2];
    let mut mb = [0u64; NSTATES / 2];
    let mut j = 0;
    while j < NSTATES / 2 {
        let sym = BRANCH_SYMS[j][0];
        if (sym >> 1) & 1 == 1 {
            ma[j] = SIGN_BIT;
        }
        if sym & 1 == 1 {
            mb[j] = SIGN_BIT;
        }
        j += 1;
    }
    (ma, mb)
}

const BRANCH_SIGN_MASKS: ([u64; NSTATES / 2], [u64; NSTATES / 2]) = branch_sign_masks();

/// Lane widths the workspace compiles [`viterbi_decode_soft_scratch_lanes`]
/// at. `bench-baseline --lanes` emits an A/B row per width (plus the scalar
/// comparator) so [`DEFAULT_VITERBI_LANES`] stays a measured claim.
pub const VITERBI_LANE_WIDTHS: [usize; 3] = [2, 4, 8];

/// The measured-fastest lane width on the reference machine (see
/// `benchmarks/latest.json` `lanes` section and DESIGN §11);
/// [`viterbi_decode_soft_scratch`] dispatches here.
pub const DEFAULT_VITERBI_LANES: usize = 2;

/// The flattened, table-driven soft Viterbi kernel.
///
/// Same decode as [`reference::viterbi_decode_soft_with_metric`] — pinned
/// bit-for-bit by `table_viterbi_matches_reference` — but restructured for
/// speed:
///
/// - the 4 possible branch metric pairs `(±ra, ±rb)` are formed once per
///   trellis step instead of per transition;
/// - the ACS loop iterates over *next* states through the compile-time
///   [`BRANCH_SYMS`] table, so each state is written exactly once, with
///   no `pm >= INF` skip (INF absorbs any physical LLR exactly:
///   `INF + x == INF` for `|x| < ~1e291`, so unreached states stay at INF
///   through the same arithmetic);
/// - survivors compress to one bit per (step, state) — the branch choice;
///   the predecessor and input bit are recomputed from the state in
///   traceback — shrinking the survivor matrix 16× to one u64 per step;
/// - all working memory lives in the caller's [`ViterbiScratch`], so
///   repeated decodes allocate nothing.
///
/// The returned slice borrows the scratch's decoded-bit buffer.
///
/// Dispatches to the lane-batched kernel at the measured default width
/// ([`DEFAULT_VITERBI_LANES`]); the scalar formulation is retained as
/// [`viterbi_decode_soft_scratch_scalar`] for A/B benchmarking. Every
/// compiled width decodes bit-identically (see
/// `lane_viterbi_matches_reference_at_every_width`).
// lint: hot-path
#[inline]
pub fn viterbi_decode_soft_scratch<'s>(
    llrs: &[f64],
    rate: CodeRate,
    scratch: &'s mut ViterbiScratch,
) -> (&'s [u8], f64) {
    viterbi_decode_soft_scratch_lanes::<DEFAULT_VITERBI_LANES>(llrs, rate, scratch)
}

/// Shared kernel prologue: depuncture into the scratch lattice, account
/// the deterministic ACS work, and size the survivor matrix. Returns the
/// number of trellis steps (0 = nothing to decode).
///
/// At unpunctured rates (every pattern slot kept) depuncturing is the
/// identity, so the copy is skipped and the lattice left *empty*: the
/// kernels read branch pairs straight from `llrs` (same values, same
/// order — bit-identical, minus a packet-sized memory round trip).
#[inline]
fn viterbi_prologue(llrs: &[f64], rate: CodeRate, scratch: &mut ViterbiScratch) -> usize {
    let nsteps = if rate.pattern().iter().all(|&k| k) {
        scratch.lattice.clear();
        llrs.len() / 2
    } else {
        depuncture_soft_into(llrs, rate, &mut scratch.lattice);
        scratch.lattice.len() / 2
    };
    scratch.decoded.clear();
    if nsteps == 0 {
        return 0;
    }
    // Deterministic profiler work counter: one add-compare-select per
    // (trellis step, next state).
    freerider_telemetry::profile::work("viterbi.acs_ops", (nsteps * NSTATES) as u64);
    scratch.surv.clear();
    scratch.surv.resize(nsteps, 0);
    nsteps
}

/// Shared traceback: pick the best final state and walk the bit-packed
/// survivor matrix backwards, reconstructing predecessor and input bit
/// from the state alone.
fn viterbi_traceback<'s>(
    scratch: &'s mut ViterbiScratch,
    nsteps: usize,
    metric: &[f64; NSTATES],
) -> (&'s [u8], f64) {
    let (mut state, best_metric) = metric
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(s, &m)| (s, m))
        .unwrap_or((0, 0.0));
    scratch.decoded.resize(nsteps, 0);
    for t in (0..nsteps).rev() {
        scratch.decoded[t] = (state >> 5) as u8;
        let tb = ((scratch.surv[t] >> state) & 1) as usize;
        state = ((state << 1) & (NSTATES - 1)) | tb;
    }
    (&scratch.decoded, best_metric)
}

/// The scalar (pre-lane) table-driven kernel, retained verbatim as the
/// A/B comparator for the lane-batched rewrite: `bench-baseline --lanes`
/// measures it against every compiled lane width.
// lint: hot-path
pub fn viterbi_decode_soft_scratch_scalar<'s>(
    llrs: &[f64],
    rate: CodeRate,
    scratch: &'s mut ViterbiScratch,
) -> (&'s [u8], f64) {
    let nsteps = viterbi_prologue(llrs, rate, scratch);
    if nsteps == 0 {
        return (&scratch.decoded, 0.0);
    }
    const INF: f64 = f64::MAX / 4.0;
    // Two path-metric rows live on the stack (1 KiB total): fixed-size
    // arrays let the compiler elide every bounds check in the ACS loop,
    // and the rows "swap" by reference, never by copy.
    let mut row_a = [INF; NSTATES];
    row_a[0] = 0.0; // encoder starts in state 0
    let mut row_b = [INF; NSTATES];
    let (mut metric, mut next) = (&mut row_a, &mut row_b);
    let ViterbiScratch { lattice, surv, .. } = &mut *scratch;
    // Empty lattice = unpunctured rate: the prologue left the branch
    // pairs in place and they stream straight from the caller's LLRs.
    let lat: &[f64] = if lattice.is_empty() {
        &llrs[..2 * nsteps]
    } else {
        lattice
    };
    for (t, pair) in lat.chunks_exact(2).enumerate() {
        let (ra, rb) = (pair[0], pair[1]);
        // Branch metric addend pairs, indexed by expected symbol
        // (a << 1) | b: cost of llr r for expected bit e is −r if e=1,
        // +r if e=0. Kept as a pair and applied as two sequential adds so
        // the summation order (pm + a) + b matches the reference exactly.
        let bm = [(ra, rb), (ra, -rb), (-ra, rb), (-ra, -rb)];
        let mut bits = 0u64;
        // Butterfly pairing: next-states `j` and `j + 32` share the same
        // two predecessors (`2j`, `2j + 1`), so each metric entry is
        // loaded once per pair instead of twice. Because both generator
        // polynomials tap the input bit and the oldest register bit
        // (asserted at compile time below), flipping either flips both
        // output bits: the odd predecessor's symbol and the high state's
        // symbols are each `XOR 3` of the even/low one. An XOR-3 symbol
        // negates both addends, and IEEE negation is exact, so one 2-bit
        // lookup per butterfly yields all four branch costs bit-identical
        // to the reference's four independent lookups.
        for j in 0..NSTATES / 2 {
            let m0 = metric[2 * j];
            let m1 = metric[2 * j + 1];
            let hi = j + NSTATES / 2;
            let (a, b) = bm[(BRANCH_SYMS[j][0] & 3) as usize];
            let (na, nb) = (-a, -b);
            let c0 = (m0 + a) + b;
            let c1 = (m1 + na) + nb;
            // Strict `<`: on a tie the even predecessor wins, matching the
            // reference's visit order (ps ascending, strict improvement).
            let lo_take1 = c1 < c0;
            next[j] = if lo_take1 { c1 } else { c0 };
            bits |= (lo_take1 as u64) << j;
            let d0 = (m0 + na) + nb;
            let d1 = (m1 + a) + b;
            let hi_take1 = d1 < d0;
            next[hi] = if hi_take1 { d1 } else { d0 };
            bits |= (hi_take1 as u64) << hi;
        }
        surv[t] = bits;
        std::mem::swap(&mut metric, &mut next);
    }
    viterbi_traceback(scratch, nsteps, metric)
}

/// One lane-batched ACS trellis step over all 32 butterflies, `LANES`
/// butterflies at a time in straight-line, bounds-check-free sub-loops
/// the autovectoriser handles:
///
/// - the per-butterfly branch addends materialise in-lane by XOR-ing
///   [`BRANCH_SIGN_MASKS`] into the raw LLR bit patterns (exact IEEE
///   negation), and the even/odd predecessor metrics load straight from
///   the interleaved row — fused into the compute loop so no per-step
///   SoA staging arrays round-trip through memory;
/// - each butterfly forms its four candidate costs with the `(pm + a) + b`
///   summation order the reference uses, then branchless strict-`<`
///   selects (ties keep the even predecessor, matching the reference's
///   visit order) pick survivors, whose bits fold per sub-lane and merge.
///
/// The step performs the exact arithmetic of the scalar kernel on the
/// same values in the same order — lane width changes scheduling, never
/// results.
// lint: hot-path
#[inline]
fn acs_step_lanes<const LANES: usize>(
    metric: &[f64; NSTATES],
    next: &mut [f64; NSTATES],
    ra: f64,
    rb: f64,
) -> u64 {
    const HALF: usize = NSTATES / 2;
    let (ma, mb) = (&BRANCH_SIGN_MASKS.0, &BRANCH_SIGN_MASKS.1);
    let (ra_bits, rb_bits) = (ra.to_bits(), rb.to_bits());
    let mut bits = 0u64;
    let mut base = 0;
    while base < HALF {
        let mut c0 = [0.0f64; LANES];
        let mut c1 = [0.0f64; LANES];
        let mut d0 = [0.0f64; LANES];
        let mut d1 = [0.0f64; LANES];
        for l in 0..LANES {
            let j = base + l;
            let a = f64::from_bits(ra_bits ^ ma[j]);
            let b = f64::from_bits(rb_bits ^ mb[j]);
            let (x0, x1) = (metric[2 * j], metric[2 * j + 1]);
            // IEEE subtraction is addition of the exact negation, so
            // `(x − a) − b` is bit-identical to the scalar `(x + na) + nb`.
            c0[l] = (x0 + a) + b;
            c1[l] = (x1 - a) - b;
            d0[l] = (x0 - a) - b;
            d1[l] = (x1 + a) + b;
        }
        let mut lo_bits = 0u64;
        let mut hi_bits = 0u64;
        for l in 0..LANES {
            let lo_take1 = c1[l] < c0[l];
            next[base + l] = if lo_take1 { c1[l] } else { c0[l] };
            lo_bits |= (lo_take1 as u64) << l;
            let hi_take1 = d1[l] < d0[l];
            next[HALF + base + l] = if hi_take1 { d1[l] } else { d0[l] };
            hi_bits |= (hi_take1 as u64) << l;
        }
        bits |= (lo_bits << base) | (hi_bits << (HALF + base));
        base += LANES;
    }
    bits
}

/// The lane-batched soft Viterbi kernel: [`viterbi_decode_soft_scratch_scalar`]
/// with the ACS inner loop restructured into fixed-width `[f64; LANES]`
/// sub-lanes over SoA branch-metric planes (see [`acs_step_lanes`]).
/// Decodes bit-identically to the scalar kernel — and therefore to
/// [`reference::viterbi_decode_soft_with_metric`] — at every compiled
/// width; only throughput varies.
// lint: hot-path
pub fn viterbi_decode_soft_scratch_lanes<'s, const LANES: usize>(
    llrs: &[f64],
    rate: CodeRate,
    scratch: &'s mut ViterbiScratch,
) -> (&'s [u8], f64) {
    const {
        assert!(
            LANES > 0 && LANES.is_power_of_two() && LANES <= NSTATES / 2,
            "lane width must be a power of two dividing the butterfly count"
        )
    };
    let nsteps = viterbi_prologue(llrs, rate, scratch);
    if nsteps == 0 {
        return (&scratch.decoded, 0.0);
    }
    const INF: f64 = f64::MAX / 4.0;
    let mut row_a = [INF; NSTATES];
    row_a[0] = 0.0; // encoder starts in state 0
    let mut row_b = [INF; NSTATES];
    let (mut metric, mut next) = (&mut row_a, &mut row_b);
    let ViterbiScratch { lattice, surv, .. } = &mut *scratch;
    // Empty lattice = unpunctured rate: branch pairs stream straight
    // from the caller's LLRs (see `viterbi_prologue`).
    let lat: &[f64] = if lattice.is_empty() {
        &llrs[..2 * nsteps]
    } else {
        lattice
    };
    for (t, pair) in lat.chunks_exact(2).enumerate() {
        surv[t] = acs_step_lanes::<LANES>(metric, next, pair[0], pair[1]);
        std::mem::swap(&mut metric, &mut next);
    }
    viterbi_traceback(scratch, nsteps, metric)
}

/// The original (pre-table-driven) soft-decision kernels, retained
/// verbatim as the bit-exactness oracle the seeded property tests compare
/// the optimised paths against.
pub mod reference {
    use super::{parity, CodeRate, G0, G1, NSTATES};

    /// Depunctures soft values back to the rate-1/2 lattice, marking
    /// punctured positions as zero-confidence erasures. Original
    /// push-then-trim formulation.
    pub fn depuncture_soft(llrs: &[f64], rate: CodeRate) -> Vec<f64> {
        let pat = rate.pattern();
        let mut out = Vec::new();
        let mut it = llrs.iter();
        'outer: loop {
            for &keep in pat {
                if keep {
                    match it.next() {
                        Some(&v) => out.push(v),
                        None => break 'outer,
                    }
                } else {
                    out.push(0.0);
                }
            }
        }
        while out.len() % 2 != 0 {
            out.pop();
        }
        out
    }

    /// The original per-previous-state ACS soft Viterbi decoder.
    #[allow(clippy::needless_range_loop)] // `b` is the encoder input bit, not a mere index
    pub fn viterbi_decode_soft_with_metric(llrs: &[f64], rate: CodeRate) -> (Vec<u8>, f64) {
        let lattice = depuncture_soft(llrs, rate);
        let nsteps = lattice.len() / 2;
        if nsteps == 0 {
            return (Vec::new(), 0.0);
        }

        const INF: f64 = f64::MAX / 4.0;
        let mut metric = vec![INF; NSTATES];
        metric[0] = 0.0; // encoder starts in state 0
        let mut next = vec![INF; NSTATES];
        let mut surv_bit = vec![0u8; nsteps * NSTATES];
        let mut surv_prev = vec![0u8; nsteps * NSTATES];

        // Transition table, as in the hard decoder.
        let mut trans = [[(0u8, 0u8, 0u8); 2]; NSTATES];
        for (ps, row) in trans.iter_mut().enumerate() {
            for (b, entry) in row.iter_mut().enumerate() {
                let reg = ((b as u8) << 6) | ps as u8;
                *entry = (parity(reg & G0), parity(reg & G1), (reg >> 1));
            }
        }

        for t in 0..nsteps {
            let ra = lattice[2 * t];
            let rb = lattice[2 * t + 1];
            next.iter_mut().for_each(|m| *m = INF);
            for ps in 0..NSTATES {
                let pm = metric[ps];
                if pm >= INF {
                    continue;
                }
                for b in 0..2 {
                    let (ea, eb, ns) = trans[ps][b];
                    // Cost of receiving llr r when bit e was sent: −r if
                    // e=1, +r if e=0 (maximise agreement = minimise cost).
                    let mut cost = pm;
                    cost += if ea == 1 { -ra } else { ra };
                    cost += if eb == 1 { -rb } else { rb };
                    let nsu = ns as usize;
                    if cost < next[nsu] {
                        next[nsu] = cost;
                        surv_bit[t * NSTATES + nsu] = b as u8;
                        surv_prev[t * NSTATES + nsu] = ps as u8;
                    }
                }
            }
            std::mem::swap(&mut metric, &mut next);
        }

        let (mut state, best_metric) = metric
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(s, &m)| (s, m))
            .unwrap_or((0, 0.0));
        let mut decoded = vec![0u8; nsteps];
        for t in (0..nsteps).rev() {
            decoded[t] = surv_bit[t * NSTATES + state];
            state = surv_prev[t * NSTATES + state] as usize;
        }
        (decoded, best_metric)
    }
}

/// The original hard-decision path, retained for spot-checks and tests.
#[allow(clippy::needless_range_loop)] // `b` is the encoder input bit, not a mere index
pub fn viterbi_decode_hard(coded: &[u8], rate: CodeRate) -> Vec<u8> {
    let lattice = depuncture(coded, rate);
    let nsteps = lattice.len() / 2;
    if nsteps == 0 {
        return Vec::new();
    }

    const INF: u32 = u32::MAX / 2;
    let mut metric = vec![INF; NSTATES];
    metric[0] = 0; // encoder starts in state 0
    let mut next = vec![INF; NSTATES];
    // survivors[t][s] = input bit that led to state s at step t, plus prev state.
    let mut surv_bit = vec![0u8; nsteps * NSTATES];
    let mut surv_prev = vec![0u8; nsteps * NSTATES];

    // Precompute expected outputs: for (prev_state, input) → (a, b, next_state).
    // prev_state holds bits b[k-1]..b[k-6] with b[k-1] at MSB (bit 5).
    let mut trans = [[(0u8, 0u8, 0u8); 2]; NSTATES];
    for (ps, row) in trans.iter_mut().enumerate() {
        for (b, entry) in row.iter_mut().enumerate() {
            let reg = ((b as u8) << 6) | ps as u8;
            let a = parity(reg & G0);
            let bb = parity(reg & G1);
            let ns = reg >> 1;
            *entry = (a, bb, ns);
        }
    }

    for t in 0..nsteps {
        let ra = lattice[2 * t];
        let rb = lattice[2 * t + 1];
        next.iter_mut().for_each(|m| *m = INF);
        for ps in 0..NSTATES {
            let pm = metric[ps];
            if pm >= INF {
                continue;
            }
            for b in 0..2 {
                let (ea, eb, ns) = trans[ps][b];
                let mut cost = pm;
                if let Some(r) = ra {
                    cost += u32::from(r != ea);
                }
                if let Some(r) = rb {
                    cost += u32::from(r != eb);
                }
                let nsu = ns as usize;
                if cost < next[nsu] {
                    next[nsu] = cost;
                    surv_bit[t * NSTATES + nsu] = b as u8;
                    surv_prev[t * NSTATES + nsu] = ps as u8;
                }
            }
        }
        std::mem::swap(&mut metric, &mut next);
    }

    // Traceback from the best final state.
    let mut state = metric
        .iter()
        .enumerate()
        .min_by_key(|(_, &m)| m)
        .map(|(s, _)| s)
        .unwrap_or(0);
    let mut decoded = vec![0u8; nsteps];
    for t in (0..nsteps).rev() {
        decoded[t] = surv_bit[t * NSTATES + state];
        state = surv_prev[t * NSTATES + state] as usize;
    }
    decoded
}

#[cfg(test)]
mod tests {
    use super::*;
    use freerider_rt::Rng64;

    fn random_bits(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = Rng64::new(seed);
        (0..n).map(|_| rng.bit()).collect()
    }

    #[test]
    fn encoder_matches_equation_9() {
        // C1[k] = b[k]⊕b[k−2]⊕b[k−3]⊕b[k−5]⊕b[k−6]
        // C2[k] = b[k]⊕b[k−1]⊕b[k−2]⊕b[k−3]⊕b[k−6]
        let b = random_bits(64, 1);
        let coded = encode_half(&b);
        let at = |k: isize| -> u8 {
            if k < 0 {
                0
            } else {
                b[k as usize]
            }
        };
        for k in 0..64isize {
            let c1 = at(k) ^ at(k - 2) ^ at(k - 3) ^ at(k - 5) ^ at(k - 6);
            let c2 = at(k) ^ at(k - 1) ^ at(k - 2) ^ at(k - 3) ^ at(k - 6);
            assert_eq!(coded[2 * k as usize], c1, "C1 at {k}");
            assert_eq!(coded[2 * k as usize + 1], c2, "C2 at {k}");
        }
    }

    #[test]
    fn viterbi_inverts_encoder_noiselessly() {
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let mut bits = random_bits(120, 7);
            bits.extend_from_slice(&[0; 6]); // tail
            let coded = encode(&bits, rate);
            let decoded = viterbi_decode(&coded, rate);
            assert_eq!(&decoded[..bits.len()], &bits[..], "rate {rate:?}");
        }
    }

    #[test]
    fn viterbi_corrects_scattered_errors() {
        let mut bits = random_bits(200, 3);
        bits.extend_from_slice(&[0; 6]);
        let mut coded = encode(&bits, CodeRate::Half);
        // Flip well-separated bits: free distance is 10, so isolated single
        // errors are easily corrected.
        for i in [5usize, 60, 121, 240, 333] {
            coded[i] ^= 1;
        }
        let decoded = viterbi_decode(&coded, CodeRate::Half);
        assert_eq!(&decoded[..bits.len()], &bits[..]);
    }

    #[test]
    fn viterbi_corrects_errors_at_punctured_rates() {
        let mut bits = random_bits(120, 9);
        bits.extend_from_slice(&[0; 6]);
        let mut coded = encode(&bits, CodeRate::ThreeQuarters);
        coded[40] ^= 1;
        coded[110] ^= 1;
        let decoded = viterbi_decode(&coded, CodeRate::ThreeQuarters);
        assert_eq!(&decoded[..bits.len()], &bits[..]);
    }

    #[test]
    fn rates_have_expected_lengths() {
        let bits = random_bits(24, 5);
        assert_eq!(encode(&bits, CodeRate::Half).len(), 48);
        assert_eq!(encode(&bits, CodeRate::TwoThirds).len(), 36);
        assert_eq!(encode(&bits, CodeRate::ThreeQuarters).len(), 32);
    }

    #[test]
    fn generators_have_odd_weight() {
        // The property the whole paper rests on (§3.2.1).
        assert_eq!(G0.count_ones() % 2, 1, "g0 must have odd weight");
        assert_eq!(G1.count_ones() % 2, 1, "g1 must have odd weight");
    }

    #[test]
    fn complement_run_property() {
        // Complementing a run of ≥K input bits complements the outputs in
        // the run's interior (all taps see flipped bits ⇒ odd number of
        // flips ⇒ output flips). Boundary effects span at most K−1=6 bits.
        let bits = random_bits(100, 11);
        let mut flipped = bits.clone();
        for b in flipped[30..70].iter_mut() {
            *b ^= 1;
        }
        let ca = encode_half(&bits);
        let cb = encode_half(&flipped);
        // Interior of the run: inputs k ∈ [36, 69] have all taps inside.
        for k in 36..70 {
            assert_eq!(ca[2 * k] ^ 1, cb[2 * k], "C1 interior at {k}");
            assert_eq!(ca[2 * k + 1] ^ 1, cb[2 * k + 1], "C2 interior at {k}");
        }
        // Far outside the run the outputs are identical.
        for k in 0..30 {
            assert_eq!(ca[2 * k], cb[2 * k]);
        }
        for k in 76..100 {
            assert_eq!(ca[2 * k], cb[2 * k]);
        }
    }

    #[test]
    fn complemented_codeword_decodes_to_complement() {
        // Stronger end-to-end form: flipping ALL coded bits decodes to the
        // complement of the message — i.e. the complement of a codeword is a
        // codeword. This is what makes the backscattered 802.11 signal
        // decodable by an unmodified receiver.
        let mut bits = random_bits(80, 13);
        bits.extend_from_slice(&[0; 6]);
        let coded = encode_half(&bits);
        let flipped: Vec<u8> = coded.iter().map(|b| b ^ 1).collect();
        let decoded = viterbi_decode(&flipped, CodeRate::Half);
        let expect: Vec<u8> = bits.iter().map(|b| b ^ 1).collect();
        // The encoder is forced to start in state 0, so the first ≤K−1 bits
        // of the complemented stream sit a few Hamming units away from the
        // nearest codeword; likewise the tail. The interior — which is what
        // the tag's majority-vote decoder uses — must be the exact
        // complement. This is the boundary effect that gives FreeRider its
        // residual ~1e-3 tag BER.
        assert_eq!(&decoded[8..80], &expect[8..80]);
    }

    #[test]
    fn empty_input() {
        assert!(encode_half(&[]).is_empty());
        assert!(viterbi_decode(&[], CodeRate::Half).is_empty());
    }
}

#[cfg(test)]
mod soft_tests {
    use super::*;
    use freerider_rt::Rng64;

    fn random_bits(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = Rng64::new(seed);
        (0..n).map(|_| rng.bit()).collect()
    }

    #[test]
    fn soft_matches_hard_on_clean_input() {
        let mut bits = random_bits(150, 21);
        bits.extend_from_slice(&[0; 6]);
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let coded = encode(&bits, rate);
            assert_eq!(
                viterbi_decode(&coded, rate),
                viterbi_decode_hard(&coded, rate),
                "{rate:?}"
            );
        }
    }

    #[test]
    fn soft_information_beats_hard_decisions() {
        // Corrupt bits with *low-confidence* noise: flip several bits but
        // mark them weak. The soft decoder must recover where equal-weight
        // hard decisions would be at the correction limit.
        let mut bits = random_bits(200, 22);
        bits.extend_from_slice(&[0; 6]);
        let coded = encode(&bits, CodeRate::Half);
        let mut llrs: Vec<f64> = coded
            .iter()
            .map(|&b| if b == 1 { 1.0 } else { -1.0 })
            .collect();
        // Dense burst of 8 flipped-but-weak bits (a faded subcarrier).
        for llr in llrs[100..108].iter_mut() {
            *llr = -*llr * 0.05;
        }
        let decoded = viterbi_decode_soft(&llrs, CodeRate::Half);
        assert_eq!(&decoded[..bits.len()], &bits[..]);
    }

    #[test]
    fn path_metric_tracks_channel_quality() {
        let mut bits = random_bits(120, 24);
        bits.extend_from_slice(&[0; 6]);
        let coded = encode(&bits, CodeRate::Half);
        let clean: Vec<f64> = coded
            .iter()
            .map(|&b| if b == 1 { 1.0 } else { -1.0 })
            .collect();
        let (decoded, m_clean) = viterbi_decode_soft_with_metric(&clean, CodeRate::Half);
        assert_eq!(&decoded[..bits.len()], &bits[..]);
        // Noiseless unit LLRs: every step agrees on both bits, cost −2/step.
        assert!((m_clean - (-2.0 * clean.len() as f64 / 2.0)).abs() < 1e-9);
        // A few flipped bits raise (worsen) the best path metric.
        let mut noisy = clean.clone();
        for k in [10usize, 77, 150] {
            noisy[k] = -noisy[k];
        }
        let (_, m_noisy) = viterbi_decode_soft_with_metric(&noisy, CodeRate::Half);
        assert!(m_noisy > m_clean);
    }

    #[test]
    fn depuncture_matches_reference_and_pins_lengths() {
        // Exact output length for every rate and input length: the new
        // exact-capacity depuncturer must agree with the reference
        // push-then-trim formulation value for value, and the lengths
        // follow closed forms per rate.
        let mut rng = Rng64::new(0xDE9);
        let mut out = Vec::new();
        for n in 0..64usize {
            let llrs: Vec<f64> = (0..n).map(|_| rng.gauss()).collect();
            for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
                let expect = reference::depuncture_soft(&llrs, rate);
                depuncture_soft_into(&llrs, rate, &mut out);
                assert_eq!(out.len(), expect.len(), "{rate:?} n={n}");
                for (a, b) in out.iter().zip(&expect) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{rate:?} n={n}");
                }
                // Closed-form length pins (trellis steps = len/2).
                let pinned = match rate {
                    CodeRate::Half => n & !1,
                    CodeRate::TwoThirds => (n / 3) * 4 + if n % 3 == 2 { 2 } else { 0 },
                    CodeRate::ThreeQuarters => {
                        (n / 4) * 6
                            + match n % 4 {
                                1 => 0,
                                2 => 2,
                                3 => 4,
                                _ => 0,
                            }
                    }
                };
                assert_eq!(out.len(), pinned, "{rate:?} n={n}");
            }
        }
    }

    #[test]
    fn table_viterbi_matches_reference() {
        // Seeded random LLRs at every code rate — including lengths that
        // leave punctured-erasure tails — must decode to bit-identical
        // outputs and bit-identical path metrics through the flattened
        // table-driven kernel and the retained reference kernel.
        let mut scratch = ViterbiScratch::new();
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            for trial in 0..24u64 {
                let mut rng = Rng64::derive(0x56AB, trial * 3 + rate as u64);
                let n = 1 + (rng.next_u64() % 400) as usize;
                let llrs: Vec<f64> = (0..n).map(|_| rng.gauss() * 2.0).collect();
                let (expect_bits, expect_metric) =
                    reference::viterbi_decode_soft_with_metric(&llrs, rate);
                let (got_bits, got_metric) = viterbi_decode_soft_scratch(&llrs, rate, &mut scratch);
                assert_eq!(got_bits, &expect_bits[..], "{rate:?} trial={trial} n={n}");
                assert_eq!(
                    got_metric.to_bits(),
                    expect_metric.to_bits(),
                    "{rate:?} trial={trial} n={n}"
                );
            }
        }
    }

    #[test]
    fn lane_viterbi_matches_reference_at_every_width() {
        // Bit-identity pin for the lane-batched ACS kernel: every compiled
        // lane width, the retained scalar kernel, and the dispatching
        // entry point must decode seeded random LLR streams to the exact
        // bits AND the exact (to_bits) path metric of the reference
        // decoder — at every code rate, including the all-tie stream
        // (every LLR zero, where the strict `<` even-predecessor tie
        // break is the only thing separating paths) and saturated LLRs
        // large enough to drive metrics near the INF sentinel without
        // absorbing into it.
        let mut scratch = ViterbiScratch::new();
        let make_stream = |case: usize, rng: &mut Rng64, n: usize| -> Vec<f64> {
            match case {
                0 => (0..n).map(|_| rng.gauss() * 2.0).collect(),
                1 => vec![0.0; n],
                _ => (0..n)
                    .map(|_| if rng.bit() == 1 { 1e290 } else { -1e290 })
                    .collect(),
            }
        };
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            for case in 0..3usize {
                for trial in 0..8u64 {
                    let mut rng = Rng64::derive(0x1A9E, trial * 16 + case as u64 * 4 + rate as u64);
                    let n = 1 + (rng.next_u64() % 300) as usize;
                    let llrs = make_stream(case, &mut rng, n);
                    let (expect_bits, expect_metric) =
                        reference::viterbi_decode_soft_with_metric(&llrs, rate);
                    let mut check = |got_bits: &[u8], got_metric: f64, who: &str| {
                        assert_eq!(
                            got_bits,
                            &expect_bits[..],
                            "{who} {rate:?} case={case} trial={trial}"
                        );
                        assert_eq!(
                            got_metric.to_bits(),
                            expect_metric.to_bits(),
                            "{who} {rate:?} case={case} trial={trial}"
                        );
                    };
                    let (b, m) = viterbi_decode_soft_scratch_scalar(&llrs, rate, &mut scratch);
                    let (b, m) = (b.to_vec(), m);
                    check(&b, m, "scalar");
                    let (b, m) = viterbi_decode_soft_scratch_lanes::<2>(&llrs, rate, &mut scratch);
                    let (b, m) = (b.to_vec(), m);
                    check(&b, m, "lanes_2");
                    let (b, m) = viterbi_decode_soft_scratch_lanes::<4>(&llrs, rate, &mut scratch);
                    let (b, m) = (b.to_vec(), m);
                    check(&b, m, "lanes_4");
                    let (b, m) = viterbi_decode_soft_scratch_lanes::<8>(&llrs, rate, &mut scratch);
                    let (b, m) = (b.to_vec(), m);
                    check(&b, m, "lanes_8");
                    let (b, m) = viterbi_decode_soft_scratch(&llrs, rate, &mut scratch);
                    let (b, m) = (b.to_vec(), m);
                    check(&b, m, "dispatch");
                }
            }
        }
    }

    #[test]
    fn table_viterbi_matches_reference_on_noisy_codewords() {
        // Same comparison on realistic inputs: actual codewords through
        // soft noise, where the decode is meaningful rather than random.
        let mut scratch = ViterbiScratch::new();
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            for trial in 0..8u64 {
                let mut rng = Rng64::derive(0xC0DE, trial ^ (rate as u64) << 32);
                let mut bits: Vec<u8> = (0..150).map(|_| rng.bit()).collect();
                bits.extend_from_slice(&[0; 6]);
                let coded = encode(&bits, rate);
                let llrs: Vec<f64> = coded
                    .iter()
                    .map(|&b| (if b == 1 { 1.0 } else { -1.0 }) + 0.4 * rng.gauss())
                    .collect();
                let (expect_bits, expect_metric) =
                    reference::viterbi_decode_soft_with_metric(&llrs, rate);
                let (got_bits, got_metric) = viterbi_decode_soft_scratch(&llrs, rate, &mut scratch);
                assert_eq!(got_bits, &expect_bits[..], "{rate:?} trial={trial}");
                assert_eq!(
                    got_metric.to_bits(),
                    expect_metric.to_bits(),
                    "{rate:?} trial={trial}"
                );
            }
        }
    }

    #[test]
    fn erasures_are_neutral() {
        // Zero-LLR positions carry no information; the decoder must still
        // recover from the surrounding strong bits.
        let mut bits = random_bits(120, 23);
        bits.extend_from_slice(&[0; 6]);
        let coded = encode(&bits, CodeRate::Half);
        let mut llrs: Vec<f64> = coded
            .iter()
            .map(|&b| if b == 1 { 1.0 } else { -1.0 })
            .collect();
        for k in (0..llrs.len()).step_by(7) {
            llrs[k] = 0.0;
        }
        let decoded = viterbi_decode_soft(&llrs, CodeRate::Half);
        assert_eq!(&decoded[..bits.len()], &bits[..]);
    }
}
