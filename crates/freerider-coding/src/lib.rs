//! # freerider-coding
//!
//! Channel-coding substrate: every bit-domain transform that sits between
//! payload bytes and modulated symbols in the three commodity PHYs that
//! FreeRider backscatters on.
//!
//! * [`scrambler`] — the 802.11 frame-synchronous scrambler (x⁷+x⁴+1,
//!   Eq. 8 of the paper).
//! * [`convolutional`] — the 802.11 K=7 (133,171) convolutional encoder with
//!   puncturing (Eq. 9) and hard-/soft-decision Viterbi decoders.
//! * [`interleaver`] — the per-OFDM-symbol two-permutation block interleaver.
//! * [`whitening`] — BLE data whitening.
//! * [`crc`] — CRC-32 (802.11 FCS), CRC-16 (802.15.4 FCS), CRC-24 (BLE).
//!
//! ## Why this crate matters to FreeRider
//!
//! The paper's §3.2.1 observes that the scrambler and convolutional encoder
//! both *commute with complementation over runs of bits*: because their tap
//! sets have odd weight, feeding `b[k]⊕1` over a long run produces exactly
//! `C[k]⊕1` inside the run. That is the algebraic fact that lets a
//! frequency-flat 180° phase flip — all a backscatter tag can apply —
//! survive the whole 802.11 TX chain and come out of a *commodity* receiver
//! as an XOR-able bit flip. Both properties are unit-tested here
//! (`complement_run_*` tests) because the entire system rests on them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convolutional;
pub mod crc;
pub mod interleaver;
pub mod scrambler;
pub mod whitening;
