//! Frame check sequences for the three PHYs.
//!
//! * [`crc32`] — IEEE 802.3/802.11 FCS (reflected, init/xorout `0xFFFFFFFF`).
//! * [`crc16_itu`] — IEEE 802.15.4 FCS (ITU-T x¹⁶+x¹²+x⁵+1, init 0,
//!   bit-reflected as transmitted LSB-first).
//! * [`crc24_ble`] — Bluetooth LE CRC (poly `0x00065B`, init per connection;
//!   advertising channels use `0x555555`).
//!
//! The monitor-mode trick FreeRider uses (reporting packets with *bad*
//! checksums, §3.1) means these are computed but a failed check does not
//! drop the packet at the backscatter receiver — the workspace mirrors that
//! by exposing validity as data rather than gating on it.

use freerider_telemetry::profile;

/// Deterministic profiler work counter: bytes pushed through any of the
/// three CRC LFSRs.
const CRC_BYTES: &str = "crc.bytes";

/// Byte-at-a-time CRC-32 table for the reflected polynomial `0xEDB88320`:
/// entry `b` is the register after shifting byte `b` through the bitwise
/// LFSR, so the table-driven loop below computes the exact same `u32` as
/// eight explicit shift-and-conditional-XOR steps.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut crc = b as u32;
        let mut k = 0;
        while k < 8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xEDB8_8320; // reflected 0x04C11DB7
            }
            k += 1;
        }
        table[b] = crc;
        b += 1;
    }
    table
};

/// Computes the IEEE 802.11 FCS (CRC-32) over `data`.
// lint: hot-path
pub fn crc32(data: &[u8]) -> u32 {
    profile::work(CRC_BYTES, data.len() as u64);
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// Computes the IEEE 802.15.4 FCS (CRC-16 ITU-T) over `data`.
pub fn crc16_itu(data: &[u8]) -> u16 {
    profile::work(CRC_BYTES, data.len() as u64);
    let mut crc: u16 = 0x0000;
    for &byte in data {
        crc ^= byte as u16;
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0x8408; // reflected 0x1021
            }
        }
    }
    crc
}

/// Computes the Bluetooth LE CRC-24 over `data` with the given init value
/// (`0x555555` on advertising channels).
///
/// BLE processes bits LSB-first through the LFSR defined by
/// x²⁴+x¹⁰+x⁹+x⁶+x⁴+x³+x+1.
pub fn crc24_ble(data: &[u8], init: u32) -> u32 {
    profile::work(CRC_BYTES, data.len() as u64);
    let mut crc = init & 0x00FF_FFFF;
    for &byte in data {
        for i in 0..8 {
            let in_bit = ((byte >> i) & 1) as u32;
            let fb = (crc >> 23) & 1 ^ in_bit;
            crc = (crc << 1) & 0x00FF_FFFF;
            if fb != 0 {
                crc ^= 0x00_065B;
            }
        }
    }
    crc
}

/// Appends a little-endian CRC-32 FCS to a frame body.
pub fn append_crc32(frame: &mut Vec<u8>) {
    let fcs = crc32(frame);
    frame.extend_from_slice(&fcs.to_le_bytes());
}

/// Checks a frame whose last 4 bytes are a little-endian CRC-32 FCS.
pub fn check_crc32(frame: &[u8]) -> bool {
    if frame.len() < 4 {
        return false;
    }
    let (body, fcs) = frame.split_at(frame.len() - 4);
    crc32(body).to_le_bytes() == fcs
}

/// Appends a little-endian CRC-16 FCS (802.15.4).
pub fn append_crc16(frame: &mut Vec<u8>) {
    let fcs = crc16_itu(frame);
    frame.extend_from_slice(&fcs.to_le_bytes());
}

/// Checks a frame whose last 2 bytes are a little-endian CRC-16 FCS.
pub fn check_crc16(frame: &[u8]) -> bool {
    if frame.len() < 2 {
        return false;
    }
    let (body, fcs) = frame.split_at(frame.len() - 2);
    crc16_itu(body).to_le_bytes() == fcs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_check_value() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32_empty() {
        // init 0xFFFFFFFF, no data, final inversion → 0.
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc16_check_value() {
        // CRC-16/KERMIT (ITU-T, reflected, init 0): "123456789" → 0x2189.
        assert_eq!(crc16_itu(b"123456789"), 0x2189);
    }

    #[test]
    fn crc24_known_properties() {
        // Differential: changing one bit changes the CRC.
        let a = crc24_ble(&[0x00, 0x01, 0x02], 0x555555);
        let b = crc24_ble(&[0x00, 0x01, 0x03], 0x555555);
        assert_ne!(a, b);
        // Result fits in 24 bits.
        assert_eq!(a & 0xFF00_0000, 0);
        // Deterministic.
        assert_eq!(a, crc24_ble(&[0x00, 0x01, 0x02], 0x555555));
        // Init matters.
        assert_ne!(a, crc24_ble(&[0x00, 0x01, 0x02], 0x123456));
    }

    #[test]
    fn append_and_check_crc32() {
        let mut frame = b"FreeRider payload".to_vec();
        append_crc32(&mut frame);
        assert!(check_crc32(&frame));
        frame[3] ^= 0x40;
        assert!(!check_crc32(&frame));
    }

    #[test]
    fn append_and_check_crc16() {
        let mut frame = b"zigbee".to_vec();
        append_crc16(&mut frame);
        assert!(check_crc16(&frame));
        frame[0] ^= 1;
        assert!(!check_crc16(&frame));
    }

    #[test]
    fn short_frames_fail_check() {
        assert!(!check_crc32(&[1, 2, 3]));
        assert!(!check_crc16(&[9]));
    }

    #[test]
    fn crc32_detects_all_single_bit_errors() {
        let mut frame = vec![0xA5; 16];
        append_crc32(&mut frame);
        for byte in 0..frame.len() {
            for bit in 0..8 {
                frame[byte] ^= 1 << bit;
                assert!(!check_crc32(&frame), "missed error at {byte}.{bit}");
                frame[byte] ^= 1 << bit;
            }
        }
    }
}
