//! Transmitter-side round coordination: slot-count adaptation.
//!
//! §2.4.1: "The number of slots is inferred by the receiver from how many
//! packets it receives, as well as any collisions. … If the transmitter
//! sees many collisions, it adds slots. It decreases the number of slots
//! if there are many un-utilized."
//!
//! The estimator is the classic framed-Aloha backlog estimate: each
//! collision slot hides ≈ 2.39 tags in expectation, so the next frame is
//! sized to `successes + captures + ⌈2.39 × collisions⌉`, clamped to the
//! PLM message's 1..=64 range.

use crate::aloha::RoundOutcome;

/// Expected number of tags in a collided slot (Schoute's estimate).
pub const TAGS_PER_COLLISION: f64 = 2.39;

/// The round coordinator.
#[derive(Debug, Clone, Copy)]
pub struct Coordinator {
    n_slots: u16,
    min_slots: u16,
    max_slots: u16,
}

impl Coordinator {
    /// Creates a coordinator starting at `initial` slots.
    ///
    /// # Panics
    /// Panics unless `1 ≤ min ≤ initial ≤ max ≤ 64`.
    pub fn new(initial: u16, min_slots: u16, max_slots: u16) -> Self {
        assert!(min_slots >= 1 && min_slots <= initial && initial <= max_slots && max_slots <= 64);
        Coordinator {
            n_slots: initial,
            min_slots,
            max_slots,
        }
    }

    /// A coordinator with the defaults used in the Fig. 17 experiments.
    pub fn with_defaults() -> Self {
        Coordinator::new(4, 2, 64)
    }

    /// Slots to announce for the upcoming round.
    pub fn n_slots(&self) -> u16 {
        self.n_slots
    }

    /// Adapts the slot count from the previous round's outcome.
    pub fn adapt(&mut self, outcome: &RoundOutcome) {
        let backlog = outcome.success as f64
            + outcome.capture as f64
            + TAGS_PER_COLLISION * outcome.collision as f64;
        // Target a frame size slightly above the backlog estimate (frame
        // size = backlog maximises Aloha efficiency at 1/e; a touch more
        // headroom trades a little throughput for stability).
        let target = (backlog * 1.1).ceil() as u16;
        self.n_slots = target.clamp(self.min_slots, self.max_slots);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(empty: usize, success: usize, capture: usize, collision: usize) -> RoundOutcome {
        RoundOutcome {
            empty,
            success,
            capture,
            collision,
        }
    }

    #[test]
    fn collisions_grow_the_frame() {
        let mut c = Coordinator::new(4, 2, 64);
        c.adapt(&outcome(0, 1, 0, 3));
        assert!(c.n_slots() > 4, "got {}", c.n_slots());
    }

    #[test]
    fn empties_shrink_the_frame() {
        let mut c = Coordinator::new(32, 2, 64);
        c.adapt(&outcome(28, 4, 0, 0));
        assert!(c.n_slots() < 32, "got {}", c.n_slots());
        assert!(c.n_slots() >= 4);
    }

    #[test]
    fn clamped_to_bounds() {
        let mut c = Coordinator::new(4, 2, 16);
        c.adapt(&outcome(0, 0, 0, 16)); // backlog ≈ 38 → clamp to 16
        assert_eq!(c.n_slots(), 16);
        c.adapt(&outcome(16, 0, 0, 0)); // backlog 0 → clamp to 2
        assert_eq!(c.n_slots(), 2);
    }

    #[test]
    fn converges_to_tag_count() {
        // Closed loop against the Aloha model: with n tags the frame size
        // should settle near n (± the 1.1 headroom).
        use crate::aloha::{run_round, summarize};
        use freerider_rt::Rng64;
        let mut rng = Rng64::new(9);
        let tags: Vec<usize> = (0..20).collect();
        let mut c = Coordinator::with_defaults();
        let mut sizes = Vec::new();
        for _ in 0..60 {
            let out = summarize(&run_round(&tags, c.n_slots(), 0.0, &mut rng));
            c.adapt(&out);
            sizes.push(c.n_slots());
        }
        let tail: f64 = sizes[30..].iter().map(|&s| s as f64).sum::<f64>() / 30.0;
        assert!((tail - 22.0).abs() < 7.0, "steady-state frame {tail}");
    }

    #[test]
    #[should_panic]
    fn invalid_bounds_panic() {
        let _ = Coordinator::new(1, 2, 64);
    }
}
