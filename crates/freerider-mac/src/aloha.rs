//! One round of Framed Slotted Aloha.

use freerider_rt::Rng64;

/// Outcome of a single slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotOutcome {
    /// No tag transmitted.
    Empty,
    /// Exactly one tag transmitted.
    Success(usize),
    /// Two or more tags transmitted but the strongest was decodable
    /// (near-far capture).
    Capture(usize),
    /// Two or more tags transmitted; nothing decodable.
    Collision(Vec<usize>),
}

/// Summary counts of a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundOutcome {
    /// Slots with no transmission.
    pub empty: usize,
    /// Slots with exactly one transmission.
    pub success: usize,
    /// Collision slots salvaged by capture.
    pub capture: usize,
    /// Unsalvaged collision slots.
    pub collision: usize,
}

impl RoundOutcome {
    /// Slots that delivered data.
    pub fn delivered(&self) -> usize {
        self.success + self.capture
    }
}

/// Runs one round: each tag in `participants` picks a uniform slot in
/// `0..n_slots`; slots with ≥2 tags are salvaged with probability
/// `capture_prob` (the strongest tag wins).
///
/// Returns the per-slot outcomes.
pub fn run_round(
    participants: &[usize],
    n_slots: u16,
    capture_prob: f64,
    rng: &mut Rng64,
) -> Vec<SlotOutcome> {
    assert!(n_slots >= 1);
    let mut slots: Vec<Vec<usize>> = vec![Vec::new(); n_slots as usize];
    for &tag in participants {
        let s = rng.index(n_slots as usize);
        slots[s].push(tag);
    }
    slots
        .into_iter()
        .map(|tags| match tags.len() {
            0 => SlotOutcome::Empty,
            1 => SlotOutcome::Success(tags[0]),
            _ => {
                if rng.bernoulli(capture_prob) {
                    // The "strongest" tag is the winner; with i.i.d.
                    // placement any of them is equally likely.
                    let w = tags[rng.index(tags.len())];
                    SlotOutcome::Capture(w)
                } else {
                    SlotOutcome::Collision(tags)
                }
            }
        })
        .collect()
}

/// Condenses per-slot outcomes into counts.
pub fn summarize(outcomes: &[SlotOutcome]) -> RoundOutcome {
    let mut r = RoundOutcome::default();
    for o in outcomes {
        match o {
            SlotOutcome::Empty => r.empty += 1,
            SlotOutcome::Success(_) => r.success += 1,
            SlotOutcome::Capture(_) => r.capture += 1,
            SlotOutcome::Collision(_) => r.collision += 1,
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_tag_always_succeeds() {
        let mut rng = Rng64::new(1);
        for _ in 0..100 {
            let out = run_round(&[7], 8, 0.0, &mut rng);
            let s = summarize(&out);
            assert_eq!(s.success, 1);
            assert_eq!(s.collision, 0);
            assert_eq!(s.empty, 7);
        }
    }

    #[test]
    fn counts_are_consistent() {
        let mut rng = Rng64::new(2);
        let tags: Vec<usize> = (0..20).collect();
        let out = run_round(&tags, 24, 0.3, &mut rng);
        assert_eq!(out.len(), 24);
        let s = summarize(&out);
        assert_eq!(s.empty + s.success + s.capture + s.collision, 24);
        // Every tag appears exactly once across all slots.
        let mut seen = [0usize; 20];
        for o in &out {
            match o {
                SlotOutcome::Success(t) => seen[*t] += 1,
                SlotOutcome::Capture(t) => seen[*t] += 1,
                SlotOutcome::Collision(ts) => {
                    for &t in ts {
                        seen[t] += 1;
                    }
                }
                SlotOutcome::Empty => {}
            }
        }
        // Captured slots hide the losers, so count only lower bound.
        assert!(seen.iter().all(|&c| c <= 1));
    }

    #[test]
    fn success_rate_near_1_over_e_when_slots_equal_tags() {
        let mut rng = Rng64::new(3);
        let n = 32usize;
        let tags: Vec<usize> = (0..n).collect();
        let mut delivered = 0usize;
        let rounds = 2000;
        for _ in 0..rounds {
            let s = summarize(&run_round(&tags, n as u16, 0.0, &mut rng));
            delivered += s.success;
        }
        let rate = delivered as f64 / (rounds * n) as f64;
        // (1 − 1/n)^{n−1} ≈ 0.374 for n = 32.
        assert!((rate - 0.374).abs() < 0.02, "success rate {rate}");
    }

    #[test]
    fn capture_salvages_collisions() {
        let mut rng = Rng64::new(4);
        let tags: Vec<usize> = (0..32).collect();
        let mut without = 0usize;
        let mut with = 0usize;
        for _ in 0..1000 {
            without += summarize(&run_round(&tags, 32, 0.0, &mut rng)).delivered();
            with += summarize(&run_round(&tags, 32, 0.5, &mut rng)).delivered();
        }
        assert!(with as f64 > without as f64 * 1.15, "{with} vs {without}");
    }

    #[test]
    fn empty_participants_yield_all_empty() {
        let mut rng = Rng64::new(5);
        let s = summarize(&run_round(&[], 10, 0.5, &mut rng));
        assert_eq!(s.empty, 10);
        assert_eq!(s.delivered(), 0);
    }
}
