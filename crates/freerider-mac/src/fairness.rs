//! Jain's fairness index (Fig. 17b).
//!
//! `J(x) = (Σxᵢ)² / (n · Σxᵢ²)` — 1.0 when all tags get equal service,
//! 1/n when one tag gets everything.

/// Computes Jain's fairness index over per-entity allocations.
/// Returns 1.0 for an empty input (vacuously fair) and for all-zero
/// allocations.
pub fn jain_index(allocations: &[f64]) -> f64 {
    if allocations.is_empty() {
        return 1.0;
    }
    let sum: f64 = allocations.iter().sum();
    let sq_sum: f64 = allocations.iter().map(|x| x * x).sum();
    if sq_sum <= 0.0 {
        return 1.0;
    }
    sum * sum / (allocations.len() as f64 * sq_sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_fair_is_one() {
        assert!((jain_index(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monopolised_is_one_over_n() {
        let j = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((j - 0.25).abs() < 1e-12);
    }

    #[test]
    fn intermediate_values() {
        let j = jain_index(&[1.0, 2.0, 3.0, 4.0]);
        // (10)²/(4·30) = 100/120.
        assert!((j - 100.0 / 120.0).abs() < 1e-12);
    }

    #[test]
    fn scale_invariant() {
        let a = jain_index(&[1.0, 2.0, 5.0]);
        let b = jain_index(&[10.0, 20.0, 50.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn edge_cases() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[7.0]) - 1.0).abs() < 1e-12);
    }
}
