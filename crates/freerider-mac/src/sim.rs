//! The multi-round MAC simulator behind Fig. 17.
//!
//! Time accounting per round:
//!
//! ```text
//! T_round = T_carrier_sense + T_control (PLM RoundStart) + n_slots·T_slot + T_idle
//! ```
//!
//! Each slot carries one excitation packet that a scheduled tag
//! backscatters; a delivered slot yields `bits_per_slot` tag bits. The
//! idle gap between rounds is the paper's channel-fairness mechanism
//! ("Each round can have an arbitrary amount of delay before the next.
//! This ensures that the backscatter system does not hog the channel").
//!
//! Defaults are calibrated so the Aloha curve reproduces Fig. 17a
//! (≈6–7 kbps at 4 tags rising toward ≈15 kbps at 20, asymptote ≈18 kbps)
//! and the TDM variant reproduces the ≈40 kbps no-collision asymptote.

use crate::aloha::{run_round, summarize, SlotOutcome};
use crate::coordinator::Coordinator;
use crate::fairness::jain_index;
use crate::messages::{ControlMessage, MESSAGE_BITS};
use freerider_rt::{derive_seed, Rng64};
use freerider_telemetry::trace;

/// Which media-access scheme the round uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacScheme {
    /// Framed Slotted Aloha with coordinator adaptation (the deployed
    /// scheme).
    FramedAloha,
    /// Round-robin TDM (the paper's no-collision comparison; requires an
    /// association process the paper deliberately avoids).
    Tdm,
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Number of tags.
    pub n_tags: usize,
    /// MAC scheme.
    pub scheme: MacScheme,
    /// Rounds to simulate.
    pub rounds: usize,
    /// Slot duration, seconds (excitation packet + guard).
    pub slot_s: f64,
    /// Tag bits delivered by one successful slot.
    pub bits_per_slot: usize,
    /// PLM control-channel bit rate, bits/second (§2.4.2: ≈500 bps).
    pub plm_bps: f64,
    /// Carrier-sensing overhead before each control message, seconds.
    pub carrier_sense_s: f64,
    /// Idle delay after each round, seconds.
    pub inter_round_idle_s: f64,
    /// Probability a tag misses the RoundStart message (PLM decode
    /// failures at range — Fig. 4).
    pub ctrl_loss_prob: f64,
    /// Near-far capture probability for collided slots.
    pub capture_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl NetworkConfig {
    /// The Fig. 17 configuration for `n_tags`.
    pub fn paper_fig17(n_tags: usize, scheme: MacScheme, seed: u64) -> Self {
        NetworkConfig {
            n_tags,
            scheme,
            rounds: 400,
            slot_s: 2.5e-3,
            bits_per_slot: 100,
            plm_bps: 500.0,
            carrier_sense_s: 0.5e-3,
            inter_round_idle_s: 0.0,
            ctrl_loss_prob: 0.02,
            capture_prob: 0.45,
            seed,
        }
    }
}

/// Per-round statistics.
#[derive(Debug, Clone, Copy)]
pub struct RoundStats {
    /// Slots announced.
    pub n_slots: u16,
    /// Tags that heard the announcement and participated.
    pub participants: usize,
    /// Slots that delivered data.
    pub delivered: usize,
    /// Collision slots (unsalvaged).
    pub collisions: usize,
    /// Round duration, seconds.
    pub duration_s: f64,
}

/// Aggregate simulation results.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-tag delivered bits.
    pub per_tag_bits: Vec<u64>,
    /// Total simulated time, seconds.
    pub total_time_s: f64,
    /// Aggregate tag throughput, bits/second.
    pub aggregate_bps: f64,
    /// Jain's fairness index over per-tag delivered bits.
    pub fairness: f64,
    /// Per-round details.
    pub rounds: Vec<RoundStats>,
}

/// The network simulator.
///
/// ```
/// use freerider_mac::{MacScheme, NetworkConfig, NetworkSim};
///
/// let cfg = NetworkConfig::paper_fig17(20, MacScheme::FramedAloha, 7);
/// let report = NetworkSim::new(cfg).run();
/// // Fig. 17(a): ≈ 14–15 kbps aggregate at 20 tags.
/// assert!(report.aggregate_bps > 11e3 && report.aggregate_bps < 18e3);
/// assert!(report.per_tag_bits.iter().all(|&b| b > 0));
/// ```
#[derive(Debug)]
pub struct NetworkSim {
    config: NetworkConfig,
    rng: Rng64,
}

impl NetworkSim {
    /// Creates a simulator.
    pub fn new(config: NetworkConfig) -> Self {
        let rng = Rng64::new(config.seed);
        NetworkSim { config, rng }
    }

    /// Runs the configured number of rounds.
    pub fn run(&mut self) -> SimReport {
        let _span = freerider_telemetry::span("mac.sim.run");
        let cfg = self.config.clone();
        let mut per_tag_bits = vec![0u64; cfg.n_tags];
        let mut total_time = 0.0f64;
        let mut rounds = Vec::with_capacity(cfg.rounds);
        let mut coordinator = Coordinator::with_defaults();
        let control_airtime = MESSAGE_BITS as f64 / cfg.plm_bps;
        let mut rr_next = 0usize; // TDM round-robin pointer

        for round in 0..cfg.rounds {
            // One flight-recorder scope per MAC round (the MAC's unit of
            // air-time, analogous to a PHY packet).
            let _round_scope = trace::packet("mac.round", derive_seed(cfg.seed, round as u64));
            let n_slots = match cfg.scheme {
                MacScheme::FramedAloha => coordinator.n_slots(),
                // TDM sizes the frame exactly to the population (bounded
                // by the message field).
                MacScheme::Tdm => cfg.n_tags.clamp(1, 64) as u16,
            };
            // The control message must decode (it always leaves the
            // transmitter; per-tag loss is applied to participation).
            let announce = ControlMessage::RoundStart { n_slots };
            debug_assert!(ControlMessage::decode(&announce.encode()).is_ok());

            let participants: Vec<usize> = (0..cfg.n_tags)
                .filter(|_| !self.rng.bernoulli(cfg.ctrl_loss_prob))
                .collect();

            let (outcome, delivered_tags): (_, Vec<usize>) = match cfg.scheme {
                MacScheme::FramedAloha => {
                    let slots = run_round(&participants, n_slots, cfg.capture_prob, &mut self.rng);
                    let mut winners = Vec::new();
                    for s in &slots {
                        match s {
                            SlotOutcome::Success(t) | SlotOutcome::Capture(t) => winners.push(*t),
                            _ => {}
                        }
                    }
                    (summarize(&slots), winners)
                }
                MacScheme::Tdm => {
                    // Deterministic assignment: the next n_slots tags in
                    // round-robin order, skipping tags that missed the
                    // announcement.
                    let mut winners = Vec::new();
                    for _ in 0..n_slots {
                        let t = rr_next % cfg.n_tags;
                        rr_next += 1;
                        if participants.contains(&t) {
                            winners.push(t);
                        }
                    }
                    (
                        crate::aloha::RoundOutcome {
                            empty: n_slots as usize - winners.len(),
                            success: winners.len(),
                            capture: 0,
                            collision: 0,
                        },
                        winners,
                    )
                }
            };

            for &t in &delivered_tags {
                per_tag_bits[t] += cfg.bits_per_slot as u64;
            }
            if cfg.scheme == MacScheme::FramedAloha {
                coordinator.adapt(&outcome);
            }

            freerider_telemetry::count("mac.rounds");
            trace::value_u64("mac.round.n_slots", n_slots as u64);
            trace::value_u64("mac.round.participants", participants.len() as u64);
            trace::value_u64("mac.round.slots.success", outcome.success as u64);
            trace::value_u64("mac.round.slots.capture", outcome.capture as u64);
            trace::value_u64("mac.round.slots.collision", outcome.collision as u64);
            trace::value_u64("mac.round.slots.empty", outcome.empty as u64);
            freerider_telemetry::count_n("mac.slots.success", outcome.success as u64);
            freerider_telemetry::count_n("mac.slots.capture", outcome.capture as u64);
            freerider_telemetry::count_n("mac.slots.collision", outcome.collision as u64);
            freerider_telemetry::count_n("mac.slots.empty", outcome.empty as u64);
            freerider_telemetry::count_n(
                "mac.ctrl.missed",
                (cfg.n_tags - participants.len()) as u64,
            );
            let duration = cfg.carrier_sense_s
                + control_airtime
                + n_slots as f64 * cfg.slot_s
                + cfg.inter_round_idle_s;
            total_time += duration;
            rounds.push(RoundStats {
                n_slots,
                participants: participants.len(),
                delivered: outcome.delivered(),
                collisions: outcome.collision,
                duration_s: duration,
            });
        }

        let total_bits: u64 = per_tag_bits.iter().sum();
        let allocations: Vec<f64> = per_tag_bits.iter().map(|&b| b as f64).collect();
        freerider_telemetry::event!(
            Info,
            "mac.sim",
            "{} tags, {} rounds: {:.1} kbps aggregate",
            cfg.n_tags,
            rounds.len(),
            total_bits as f64 / total_time / 1e3
        );
        SimReport {
            aggregate_bps: total_bits as f64 / total_time,
            fairness: jain_index(&allocations),
            per_tag_bits,
            total_time_s: total_time,
            rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(n_tags: usize, scheme: MacScheme, seed: u64) -> SimReport {
        NetworkSim::new(NetworkConfig::paper_fig17(n_tags, scheme, seed)).run()
    }

    #[test]
    fn aggregate_throughput_rises_with_tag_count() {
        // Fig. 17(a): throughput increases from 4 to 20 tags because the
        // fixed control overhead amortises over more slots.
        let t4 = run(4, MacScheme::FramedAloha, 1).aggregate_bps;
        let t12 = run(12, MacScheme::FramedAloha, 1).aggregate_bps;
        let t20 = run(20, MacScheme::FramedAloha, 1).aggregate_bps;
        assert!(t4 < t12 && t12 < t20, "{t4} {t12} {t20}");
        // Calibration: ≈6–8 kbps at 4 tags, ≈12–16 kbps at 20 (paper: ~7/~15).
        assert!((5e3..9e3).contains(&t4), "4 tags: {t4}");
        assert!((11e3..17e3).contains(&t20), "20 tags: {t20}");
    }

    #[test]
    fn aloha_asymptote_is_about_18kbps() {
        // "If we extend our simulation beyond the 20 tags … the throughput
        // asymptotes at about 18 kbps."
        let t = run(60, MacScheme::FramedAloha, 2).aggregate_bps;
        assert!((14e3..21e3).contains(&t), "asymptote {t}");
    }

    #[test]
    fn tdm_asymptote_is_about_40kbps() {
        // "If there are no collisions (i.e. a TDM scheme), the simulation
        // throughput asymptotes at about 40 kbps."
        let t = run(60, MacScheme::Tdm, 3).aggregate_bps;
        assert!((34e3..42e3).contains(&t), "TDM asymptote {t}");
    }

    #[test]
    fn tdm_beats_aloha_everywhere() {
        for n in [4, 8, 12, 16, 20] {
            let a = run(n, MacScheme::FramedAloha, 4).aggregate_bps;
            let t = run(n, MacScheme::Tdm, 4).aggregate_bps;
            assert!(t > a, "{n} tags: TDM {t} vs Aloha {a}");
        }
    }

    #[test]
    fn fairness_is_high_and_stable() {
        // Fig. 17(b): ≈0.85+ across 4–20 tags.
        for n in [4, 8, 12, 16, 20] {
            let r = run(n, MacScheme::FramedAloha, 5);
            assert!(r.fairness > 0.8, "{n} tags: fairness {}", r.fairness);
            assert!(r.fairness <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn every_tag_is_served() {
        // "our MAC scheme can communicate successfully with each of the
        // twenty tags".
        let r = run(20, MacScheme::FramedAloha, 6);
        assert!(r.per_tag_bits.iter().all(|&b| b > 0));
    }

    #[test]
    fn idle_delay_reduces_throughput_but_not_fairness() {
        let mut cfg = NetworkConfig::paper_fig17(10, MacScheme::FramedAloha, 7);
        let base = NetworkSim::new(cfg.clone()).run();
        cfg.inter_round_idle_s = 50e-3;
        let polite = NetworkSim::new(cfg).run();
        assert!(polite.aggregate_bps < base.aggregate_bps * 0.7);
        assert!(polite.fairness > 0.8);
    }

    #[test]
    fn reproducible_with_same_seed() {
        let a = run(10, MacScheme::FramedAloha, 42);
        let b = run(10, MacScheme::FramedAloha, 42);
        assert_eq!(a.per_tag_bits, b.per_tag_bits);
        assert!((a.aggregate_bps - b.aggregate_bps).abs() < 1e-9);
    }

    #[test]
    fn control_loss_hurts_participation() {
        let mut cfg = NetworkConfig::paper_fig17(10, MacScheme::FramedAloha, 8);
        cfg.ctrl_loss_prob = 0.5;
        let r = NetworkSim::new(cfg).run();
        let avg_participants: f64 =
            r.rounds.iter().map(|s| s.participants as f64).sum::<f64>() / r.rounds.len() as f64;
        assert!(
            (avg_participants - 5.0).abs() < 1.0,
            "avg {avg_participants}"
        );
    }
}
