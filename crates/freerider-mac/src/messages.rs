//! Control messages carried transmitter → tags over PLM.
//!
//! Wire format (10 bits, keeping PLM airtime ≈ 20 ms at ~500 bps):
//! `type(2) | n_slots(6, 1..=64 encoded as n−1) | parity(2)`.

/// A transmitter-to-tag control message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlMessage {
    /// Start a round with the given number of slots (1..=64).
    RoundStart {
        /// Slots in the round.
        n_slots: u16,
    },
    /// Stop all backscatter activity.
    Stop,
}

/// Length of an encoded control message in bits.
pub const MESSAGE_BITS: usize = 10;

/// Errors decoding a control message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageError {
    /// Wrong number of bits.
    BadLength(usize),
    /// Parity mismatch.
    BadParity,
    /// Unknown type code.
    BadType(u8),
}

impl std::fmt::Display for MessageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MessageError::BadLength(n) => {
                write!(f, "control message of {n} bits (need {MESSAGE_BITS})")
            }
            MessageError::BadParity => write!(f, "control message parity mismatch"),
            MessageError::BadType(t) => write!(f, "unknown control message type {t}"),
        }
    }
}

impl std::error::Error for MessageError {}

impl ControlMessage {
    /// Encodes to [`MESSAGE_BITS`] bits.
    ///
    /// # Panics
    /// Panics if `n_slots` is outside 1..=64.
    pub fn encode(&self) -> Vec<u8> {
        let (ty, payload): (u8, u8) = match *self {
            ControlMessage::RoundStart { n_slots } => {
                assert!((1..=64).contains(&n_slots), "n_slots 1..=64");
                (0b01, (n_slots - 1) as u8)
            }
            ControlMessage::Stop => (0b10, 0),
        };
        let mut bits = Vec::with_capacity(MESSAGE_BITS);
        bits.push((ty >> 1) & 1);
        bits.push(ty & 1);
        for i in (0..6).rev() {
            bits.push((payload >> i) & 1);
        }
        // Two parity bits: over even- and odd-indexed content bits.
        let even: u8 = bits.iter().step_by(2).sum::<u8>() & 1;
        let odd: u8 = bits.iter().skip(1).step_by(2).sum::<u8>() & 1;
        bits.push(even);
        bits.push(odd);
        bits
    }

    /// Decodes from bits.
    pub fn decode(bits: &[u8]) -> Result<ControlMessage, MessageError> {
        if bits.len() != MESSAGE_BITS {
            return Err(MessageError::BadLength(bits.len()));
        }
        let content = &bits[..8];
        let even: u8 = content.iter().step_by(2).map(|b| b & 1).sum::<u8>() & 1;
        let odd: u8 = content.iter().skip(1).step_by(2).map(|b| b & 1).sum::<u8>() & 1;
        if even != (bits[8] & 1) || odd != (bits[9] & 1) {
            return Err(MessageError::BadParity);
        }
        let ty = ((bits[0] & 1) << 1) | (bits[1] & 1);
        let mut payload = 0u8;
        for &b in &bits[2..8] {
            payload = (payload << 1) | (b & 1);
        }
        match ty {
            0b01 => Ok(ControlMessage::RoundStart {
                n_slots: payload as u16 + 1,
            }),
            0b10 => Ok(ControlMessage::Stop),
            t => Err(MessageError::BadType(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_slot_counts() {
        for n in 1..=64u16 {
            let m = ControlMessage::RoundStart { n_slots: n };
            assert_eq!(ControlMessage::decode(&m.encode()), Ok(m));
        }
        let s = ControlMessage::Stop;
        assert_eq!(ControlMessage::decode(&s.encode()), Ok(s));
    }

    #[test]
    fn parity_detects_single_flips() {
        let bits = ControlMessage::RoundStart { n_slots: 12 }.encode();
        for i in 0..8 {
            let mut b = bits.clone();
            b[i] ^= 1;
            assert_eq!(
                ControlMessage::decode(&b),
                Err(MessageError::BadParity),
                "bit {i}"
            );
        }
    }

    #[test]
    fn wrong_length_rejected() {
        assert_eq!(
            ControlMessage::decode(&[0; 9]),
            Err(MessageError::BadLength(9))
        );
    }

    #[test]
    fn unknown_type_rejected() {
        // type 00 with matching parity.
        let mut bits = vec![0u8; 10];
        bits[8] = 0;
        bits[9] = 0;
        assert_eq!(ControlMessage::decode(&bits), Err(MessageError::BadType(0)));
    }

    #[test]
    #[should_panic]
    fn oversize_slot_count_panics() {
        let _ = ControlMessage::RoundStart { n_slots: 65 }.encode();
    }
}
