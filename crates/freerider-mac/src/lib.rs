//! # freerider-mac
//!
//! The FreeRider MAC layer (§2.4 of the paper): a Framed-Slotted-Aloha
//! random-access scheme coordinated by the excitation transmitter over the
//! packet-length-modulation (PLM) control channel.
//!
//! * [`messages`] — the control-message wire format carried over PLM.
//! * [`aloha`] — one round of framed slotted Aloha: slot selection and
//!   outcome classification (empty / success / collision / capture).
//! * [`coordinator`] — the transmitter-side slot-count adaptation
//!   ("If the transmitter sees many collisions, it adds slots. It
//!   decreases the number of slots if there are many un-utilized").
//! * [`fairness`] — Jain's fairness index (Fig. 17b).
//! * [`sim`] — the multi-round discrete-event simulator behind Fig. 17,
//!   with both the Aloha scheme and the TDM comparison the paper uses as
//!   its no-collision asymptote.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aloha;
pub mod coordinator;
pub mod fairness;
pub mod messages;
pub mod sim;

pub use coordinator::Coordinator;
pub use sim::{MacScheme, NetworkConfig, NetworkSim, RoundStats, SimReport};
