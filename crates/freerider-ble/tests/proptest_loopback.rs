//! Property: any payload survives the GFSK chain with valid CRC.

use freerider_ble::{Receiver, RxConfig, Transmitter};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_payload_round_trips(
        payload in prop::collection::vec(any::<u8>(), 0..=37),
        channel in 0u8..40,
    ) {
        let tx = Transmitter { channel };
        let wave = tx.transmit(&payload).unwrap();
        let rx = Receiver::new(RxConfig {
            channel,
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        let pkt = rx.receive(&wave).unwrap();
        prop_assert!(pkt.crc_valid);
        prop_assert_eq!(pkt.packet.payload, payload);
    }

    #[test]
    fn wrong_whitening_channel_never_validates(
        payload in prop::collection::vec(any::<u8>(), 4..30),
        tx_ch in 0u8..40,
        rx_off in 1u8..39,
    ) {
        let rx_ch = (tx_ch + rx_off) % 40;
        let tx = Transmitter { channel: tx_ch };
        let wave = tx.transmit(&payload).unwrap();
        let rx = Receiver::new(RxConfig {
            channel: rx_ch,
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        // Mis-whitened decode either fails outright or fails CRC.
        if let Ok(pkt) = rx.receive(&wave) {
            prop_assert!(!pkt.crc_valid);
        }
    }
}
