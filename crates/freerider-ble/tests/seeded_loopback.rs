//! Seeded-randomized properties: any payload survives the GFSK chain with
//! valid CRC, and mis-whitened decodes never validate.

use freerider_ble::{Receiver, RxConfig, Transmitter};
use freerider_rt::Rng64;

const CASES: u64 = 24;
const SUITE_SEED: u64 = 0xB1E_0001;

#[test]
fn any_payload_round_trips() {
    for case in 0..CASES {
        let mut rng = Rng64::derive(SUITE_SEED, case);
        let n = rng.index(38);
        let payload = rng.bytes(n);
        let channel = rng.index(40) as u8;

        let tx = Transmitter { channel };
        let wave = tx.transmit(&payload).unwrap();
        let rx = Receiver::new(RxConfig {
            channel,
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        let pkt = rx.receive(&wave).unwrap();
        assert!(pkt.crc_valid, "case {case}");
        assert_eq!(pkt.packet.payload, payload, "case {case}");
    }
}

#[test]
fn wrong_whitening_channel_never_validates() {
    for case in 0..CASES {
        let mut rng = Rng64::derive(SUITE_SEED ^ 1, case);
        let n = 4 + rng.index(26);
        let payload = rng.bytes(n);
        let tx_ch = rng.index(40) as u8;
        let rx_ch = (tx_ch + 1 + rng.index(38) as u8) % 40;

        let tx = Transmitter { channel: tx_ch };
        let wave = tx.transmit(&payload).unwrap();
        let rx = Receiver::new(RxConfig {
            channel: rx_ch,
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        // Mis-whitened decode either fails outright or fails CRC.
        if let Ok(pkt) = rx.receive(&wave) {
            assert!(!pkt.crc_valid, "case {case} ({tx_ch}→{rx_ch})");
        }
    }
}
