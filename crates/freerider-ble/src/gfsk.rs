//! GFSK modulation, discriminator demodulation, and the channel filter.

use crate::{DEVIATION_HZ, SAMPLES_PER_BIT, SAMPLE_RATE};
use freerider_dsp::fir::Fir;
use freerider_dsp::Complex;

/// Modulates bits into a constant-envelope GFSK waveform.
///
/// Bits are mapped to NRZ (0 → −1, 1 → +1), upsampled, shaped with a
/// BT = 0.5 Gaussian filter spanning 3 bit periods, and frequency-modulated
/// at ±[`DEVIATION_HZ`].
pub fn modulate(bits: &[u8]) -> Vec<Complex> {
    let gauss = Fir::gaussian(0.5, SAMPLES_PER_BIT, 3);
    // NRZ impulse train at the sample rate (rectangular bit pulses).
    let mut nrz = Vec::with_capacity(bits.len() * SAMPLES_PER_BIT);
    for &b in bits {
        let v = if b & 1 == 1 { 1.0 } else { -1.0 };
        nrz.extend(std::iter::repeat_n(v, SAMPLES_PER_BIT));
    }
    let shaped = gauss.filter_real(&nrz);
    // Integrate frequency to phase.
    let k = 2.0 * std::f64::consts::PI * DEVIATION_HZ / SAMPLE_RATE;
    let mut phase = 0.0f64;
    shaped
        .iter()
        .map(|&m| {
            phase += k * m;
            Complex::cis(phase)
        })
        .collect()
}

/// Per-sample frequency discriminator: `f[n] = arg(s[n]·conj(s[n−1]))`,
/// normalised so a clean tone at +[`DEVIATION_HZ`] reads ≈ +1.0.
///
/// Output has the same length as the input (first sample is 0).
pub fn discriminate(samples: &[Complex]) -> Vec<f64> {
    let k = 2.0 * std::f64::consts::PI * DEVIATION_HZ / SAMPLE_RATE;
    let mut out = Vec::with_capacity(samples.len());
    out.push(0.0);
    for w in samples.windows(2) {
        out.push((w[1] * w[0].conj()).arg() / k);
    }
    out
}

/// The receiver's channel-select filter: a low-pass whose cutoff keeps the
/// ±250 kHz FSK codewords and rejects energy beyond ~±600 kHz — including
/// the mirror sideband a FreeRider tag creates at ±750 kHz (Eq. 10).
pub fn channel_filter() -> Fir {
    // 560 kHz cutoff at 8 Msps → 0.07 cycles/sample with a sharp 129-tap
    // roll-off: keeps the ±250 kHz codewords (and a tag's frequency-swept
    // transients), while still crushing the tag's ±750 kHz mirror sideband.
    Fir::low_pass(0.07, 129)
}

#[cfg(test)]
mod tests {
    use super::*;
    use freerider_dsp::db;
    use freerider_dsp::osc::SquareWave;

    #[test]
    fn constant_envelope() {
        let bits: Vec<u8> = (0..40).map(|i| (i % 3 == 0) as u8).collect();
        let wave = modulate(&bits);
        for z in &wave {
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn discriminator_recovers_bits() {
        let bits: Vec<u8> = vec![0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0, 0];
        let wave = modulate(&bits);
        let f = discriminate(&wave);
        // Sample at each bit centre (the Gaussian FIR's group delay is
        // already compensated by `filter_real`'s "same" convolution).
        let delay = 0;
        for (i, &b) in bits.iter().enumerate() {
            let idx = delay + i * SAMPLES_PER_BIT + SAMPLES_PER_BIT / 2;
            if idx < f.len() {
                let hard = u8::from(f[idx] > 0.0);
                assert_eq!(hard, b, "bit {i}: freq {}", f[idx]);
            }
        }
    }

    #[test]
    fn deviation_is_250khz() {
        // A long run of ones settles the discriminator at +1.0 (=+250 kHz).
        let bits = vec![1u8; 30];
        let wave = modulate(&bits);
        let f = discriminate(&wave);
        let mid = &f[100..140];
        let avg: f64 = mid.iter().sum::<f64>() / mid.len() as f64;
        assert!((avg - 1.0).abs() < 0.02, "deviation {avg}");
    }

    #[test]
    fn modulation_index_is_half() {
        // h = (f1 − f0)/bitrate = 2·250 kHz / 1 MHz = 0.5.
        let h = 2.0 * DEVIATION_HZ / 1e6;
        assert!((h - 0.5).abs() < 1e-12);
    }

    #[test]
    fn channel_filter_passes_codewords_and_rejects_mirror() {
        let f = channel_filter();
        // Tone at +250 kHz (codeword) passes…
        let tone = |freq_hz: f64| -> f64 {
            let w: Vec<Complex> = (0..4000)
                .map(|n| {
                    Complex::cis(2.0 * std::f64::consts::PI * freq_hz / SAMPLE_RATE * n as f64)
                })
                .collect();
            let y = f.filter(&w);
            db::mean_power(&y[1000..3000])
        };
        assert!(tone(250e3) > 0.9, "codeword attenuated");
        assert!(tone(-250e3) > 0.9, "codeword attenuated");
        // …the tag's unwanted sideband at ±750 kHz is crushed.
        assert!(tone(750e3) < 0.01, "mirror not rejected");
        assert!(tone(-750e3) < 0.01, "mirror not rejected");
    }

    #[test]
    fn square_wave_toggle_swaps_fsk_codewords() {
        // The heart of §2.3.3: multiply a data-one (+250 kHz) GFSK tone by
        // a 500 kHz square wave, channel-filter, and the discriminator
        // reads data-zero (−250 kHz).
        let bits = vec![1u8; 40];
        let wave = modulate(&bits);
        let mut sq = SquareWave::new(500e3 / SAMPLE_RATE);
        let toggled = sq.modulate(&wave);
        let filtered = channel_filter().filter(&toggled);
        let f = discriminate(&filtered);
        let mid = &f[150..250];
        let avg: f64 = mid.iter().sum::<f64>() / mid.len() as f64;
        assert!(
            (avg + 1.0).abs() < 0.1,
            "expected −250 kHz after codeword swap, got {avg}"
        );
        // And the surviving sideband carries ≈ (2/π)² of the power.
        let p = db::mean_power(&filtered[150..250]);
        let expect = SquareWave::FUNDAMENTAL_SIDEBAND_GAIN.powi(2);
        assert!((p - expect).abs() < 0.05, "sideband power {p} vs {expect}");
    }
}
