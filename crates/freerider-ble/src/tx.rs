//! The BLE transmitter.

use crate::gfsk::modulate;
use crate::packet::{BlePacket, PacketError};
use crate::DEFAULT_CHANNEL;
use freerider_dsp::IqBuf;

/// The BLE transmitter: packets → 8 Msps complex baseband GFSK.
#[derive(Debug, Clone, Copy)]
pub struct Transmitter {
    /// Whitening channel index.
    pub channel: u8,
}

impl Default for Transmitter {
    fn default() -> Self {
        Transmitter {
            channel: DEFAULT_CHANNEL,
        }
    }
}

impl Transmitter {
    /// Creates a transmitter on the default advertising channel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generates the waveform for an advertising packet carrying `payload`.
    pub fn transmit(&self, payload: &[u8]) -> Result<IqBuf, PacketError> {
        let pkt = BlePacket::new(0x2, payload)?;
        Ok(self.transmit_packet(&pkt))
    }

    /// Generates the waveform for an assembled packet.
    pub fn transmit_packet(&self, pkt: &BlePacket) -> IqBuf {
        modulate(&pkt.to_air_bits(self.channel))
    }

    /// Waveform length in samples for a payload of `len` bytes.
    pub fn ppdu_len_samples(&self, len: usize) -> usize {
        BlePacket::air_bits_for(len) * crate::SAMPLES_PER_BIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waveform_length_and_airtime() {
        let tx = Transmitter::new();
        let wave = tx.transmit(&[0u8; 20]).unwrap();
        assert_eq!(wave.len(), tx.ppdu_len_samples(20));
        // 8+32+16+160+24 = 240 bits at 1 Mbps = 240 µs = 1920 samples.
        assert_eq!(wave.len(), 1920);
    }

    #[test]
    fn constant_envelope() {
        let tx = Transmitter::new();
        let wave = tx.transmit(b"ble!").unwrap();
        for z in &wave {
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }
}
