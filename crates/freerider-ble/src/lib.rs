//! # freerider-ble
//!
//! A software Bluetooth Low Energy PHY: 1 Mbps GFSK with modulation index
//! 0.5 (±250 kHz deviation) and BT = 0.5 Gaussian shaping, at 8 Msps
//! complex baseband — matching the TI CC2541 radio the FreeRider paper
//! uses as its Bluetooth excitation source (§3.1: "1 Mbps and 0 dBm using
//! FSK modulation with a frequency deviation of 250 kHz and a bandwidth of
//! 1 MHz. The modulation index used is 0.5").
//!
//! * [`gfsk`] — Gaussian-shaped frequency modulation and the discriminator
//!   demodulator, plus the channel-select filter whose stop band is what
//!   removes a tag's unwanted mirror sideband (paper Eq. 10 / Fig. 8).
//! * [`packet`] — BLE framing: preamble, access address, PDU header,
//!   whitening, CRC-24.
//! * [`tx::Transmitter`] / [`rx::Receiver`] — the full chains.
//!
//! ## The FSK codeword swap
//!
//! BLE's codebook has two codewords: a tone at f₁ = +250 kHz (bit 1) and at
//! f₀ = −250 kHz (bit 0). A backscatter tag toggling its RF transistor at
//! Δf = f₁ − f₀ = 500 kHz multiplies the signal by a square wave, creating
//! copies at ±Δf. The copy at −Δf maps f₁ → f₀ and the copy at +Δf maps
//! f₀ → f₁: **one sideband always lands exactly on the other codeword**,
//! while the other sideband lands at ±750 kHz, outside the receiver's
//! channel filter (Eq. 10 with w = 1 MHz, i = 0.5). The receiver therefore
//! decodes the *complement* bit wherever the tag toggled — Table 1 again.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gfsk;
pub mod packet;
pub mod rx;
pub mod tx;

pub use rx::{Receiver, RxConfig, RxError, RxPacket};
pub use tx::Transmitter;

/// Baseband sample rate (8 samples per microsecond-long bit).
pub const SAMPLE_RATE: f64 = 8e6;

/// Samples per bit at 1 Mbps.
pub const SAMPLES_PER_BIT: usize = 8;

/// Frequency deviation in Hz (modulation index 0.5 at 1 Mbps).
pub const DEVIATION_HZ: f64 = 250e3;

/// The advertising-channel access address.
pub const ADVERTISING_AA: u32 = 0x8E89_BED6;

/// Default whitening channel (advertising channel 37).
pub const DEFAULT_CHANNEL: u8 = 37;
