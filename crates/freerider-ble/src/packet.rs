//! BLE link-layer packet framing.
//!
//! On-air format: `preamble(1B) | access address(4B) | PDU header(2B) |
//! payload(≤37B) | CRC-24(3B)`, with whitening applied to header, payload
//! and CRC (not to preamble/AA), all bits LSB-first.

use crate::ADVERTISING_AA;
use freerider_coding::crc::crc24_ble;
use freerider_coding::whitening::Whitener;
use freerider_dsp::bits;

/// Maximum advertising payload length.
pub const MAX_PAYLOAD: usize = 37;

/// CRC init value on advertising channels.
pub const ADV_CRC_INIT: u32 = 0x55_5555;

/// Errors from packet assembly/parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    /// Payload longer than 37 bytes.
    TooLong(usize),
    /// Bit stream shorter than header + declared length + CRC.
    Truncated,
}

impl std::fmt::Display for PacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PacketError::TooLong(n) => write!(f, "payload of {n} bytes exceeds 37"),
            PacketError::Truncated => write!(f, "PDU truncated"),
        }
    }
}

impl std::error::Error for PacketError {}

/// A BLE advertising-style packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlePacket {
    /// PDU type nibble (e.g. 0x2 = ADV_NONCONN_IND).
    pub pdu_type: u8,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl BlePacket {
    /// Builds an advertising packet.
    pub fn new(pdu_type: u8, payload: &[u8]) -> Result<Self, PacketError> {
        if payload.len() > MAX_PAYLOAD {
            return Err(PacketError::TooLong(payload.len()));
        }
        Ok(BlePacket {
            pdu_type: pdu_type & 0x0F,
            payload: payload.to_vec(),
        })
    }

    /// Serialises to the on-air bit stream (LSB-first), whitened for
    /// `channel`.
    pub fn to_air_bits(&self, channel: u8) -> Vec<u8> {
        let mut pdu = vec![self.pdu_type, self.payload.len() as u8];
        pdu.extend_from_slice(&self.payload);
        let crc = crc24_ble(&pdu, ADV_CRC_INIT);
        pdu.push((crc & 0xFF) as u8);
        pdu.push(((crc >> 8) & 0xFF) as u8);
        pdu.push(((crc >> 16) & 0xFF) as u8);

        let mut air = bits::bytes_to_bits_lsb(&[0xAA]); // preamble
        air.extend(bits::bytes_to_bits_lsb(&ADVERTISING_AA.to_le_bytes()));
        let pdu_bits = bits::bytes_to_bits_lsb(&pdu);
        air.extend(Whitener::for_channel(channel).whiten(&pdu_bits));
        air
    }

    /// Parses dewhitened PDU bits (header + payload + CRC). Returns the
    /// packet, CRC validity, and bits consumed.
    pub fn parse_pdu_bits(pdu_bits: &[u8]) -> Result<(BlePacket, bool, usize), PacketError> {
        if pdu_bits.len() < 16 {
            return Err(PacketError::Truncated);
        }
        let header = bits::bits_to_bytes_lsb(&pdu_bits[..16]);
        let len = header[1] as usize;
        let need = 16 + 8 * len + 24;
        if pdu_bits.len() < need {
            return Err(PacketError::Truncated);
        }
        let body = bits::bits_to_bytes_lsb(&pdu_bits[..16 + 8 * len]);
        let crc_bytes = bits::bits_to_bytes_lsb(&pdu_bits[16 + 8 * len..need]);
        let got_crc =
            (crc_bytes[0] as u32) | ((crc_bytes[1] as u32) << 8) | ((crc_bytes[2] as u32) << 16);
        let crc_ok = crc24_ble(&body, ADV_CRC_INIT) == got_crc;
        Ok((
            BlePacket {
                pdu_type: body[0] & 0x0F,
                payload: body[2..].to_vec(),
            },
            crc_ok,
            need,
        ))
    }

    /// Number of on-air bits for a payload of `len` bytes.
    pub fn air_bits_for(len: usize) -> usize {
        8 + 32 + 16 + 8 * len + 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freerider_coding::whitening::Whitener;
    use freerider_dsp::bits as b;

    #[test]
    fn round_trip() {
        let pkt = BlePacket::new(0x2, b"freerider tag data").unwrap();
        let air = pkt.to_air_bits(37);
        assert_eq!(air.len(), BlePacket::air_bits_for(18));
        // Strip preamble + AA, dewhiten, parse.
        let pdu = Whitener::for_channel(37).whiten(&air[40..]);
        let (parsed, crc_ok, used) = BlePacket::parse_pdu_bits(&pdu).unwrap();
        assert!(crc_ok);
        assert_eq!(used, pdu.len());
        assert_eq!(parsed, pkt);
    }

    #[test]
    fn preamble_and_aa_in_clear() {
        let pkt = BlePacket::new(0x2, &[]).unwrap();
        let air = pkt.to_air_bits(37);
        assert_eq!(b::bits_to_bytes_lsb(&air[..8]), vec![0xAA]);
        assert_eq!(
            b::bits_to_bytes_lsb(&air[8..40]),
            crate::ADVERTISING_AA.to_le_bytes().to_vec()
        );
    }

    #[test]
    fn bit_flip_breaks_crc() {
        let pkt = BlePacket::new(0x2, b"x").unwrap();
        let air = pkt.to_air_bits(37);
        let mut pdu = Whitener::for_channel(37).whiten(&air[40..]);
        pdu[20] ^= 1;
        let (_, crc_ok, _) = BlePacket::parse_pdu_bits(&pdu).unwrap();
        assert!(!crc_ok);
    }

    #[test]
    fn oversize_and_truncated() {
        assert_eq!(
            BlePacket::new(0, &[0; 38]).unwrap_err(),
            PacketError::TooLong(38)
        );
        assert_eq!(
            BlePacket::parse_pdu_bits(&[0; 10]).unwrap_err(),
            PacketError::Truncated
        );
    }

    #[test]
    fn empty_payload() {
        let pkt = BlePacket::new(0x2, &[]).unwrap();
        let air = pkt.to_air_bits(0);
        let pdu = Whitener::for_channel(0).whiten(&air[40..]);
        let (parsed, crc_ok, _) = BlePacket::parse_pdu_bits(&pdu).unwrap();
        assert!(crc_ok);
        assert!(parsed.payload.is_empty());
    }
}
