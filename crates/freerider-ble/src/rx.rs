//! The BLE receiver.
//!
//! Front end: channel-select filter (the stage that also strips a
//! backscatter tag's mirror sideband) → frequency discriminator → preamble +
//! access-address correlation for bit timing → bit-centre slicing →
//! dewhitening → CRC check.

use crate::gfsk::{channel_filter, discriminate};
use crate::packet::{BlePacket, PacketError};
use crate::{ADVERTISING_AA, DEFAULT_CHANNEL, SAMPLES_PER_BIT};
use freerider_coding::whitening::Whitener;
use freerider_dsp::{bits, db, Complex};
use freerider_telemetry as telemetry;
use freerider_telemetry::{profile, trace};

/// Receiver configuration.
#[derive(Debug, Clone, Copy)]
pub struct RxConfig {
    /// Whitening channel index.
    pub channel: u8,
    /// Correlation threshold (fraction of the ideal sync-word score).
    pub detection_threshold: f64,
    /// Minimum RSSI (dBm) for sync — CC2541-class sensitivity; the noise
    /// floor at 1 MHz is ≈ −106 dBm, and Fig. 13 shows decoding dying at
    /// ≈ −100 dBm. The gate compares against measured (signal+noise)
    /// power, so the default −99.5 dBm places the cliff at a true signal
    /// level of ≈ −100 dBm.
    pub sensitivity_dbm: f64,
    /// Enable the channel-select front-end filter (on by default; the
    /// `ablation-shifter` bench turns it off to show the mirror sideband
    /// corrupting decoding).
    pub channel_filter: bool,
}

impl Default for RxConfig {
    fn default() -> Self {
        RxConfig {
            channel: DEFAULT_CHANNEL,
            detection_threshold: 0.62,
            sensitivity_dbm: -99.5,
            channel_filter: true,
        }
    }
}

/// Errors from [`Receiver::receive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxError {
    /// Sync word not found.
    NoSync,
    /// Buffer too short for the declared PDU.
    Truncated(PacketError),
}

impl std::fmt::Display for RxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RxError::NoSync => write!(f, "BLE sync word not found"),
            RxError::Truncated(e) => write!(f, "PDU incomplete: {e}"),
        }
    }
}

impl std::error::Error for RxError {}

/// A received BLE packet.
#[derive(Debug, Clone)]
pub struct RxPacket {
    /// The decoded packet.
    pub packet: BlePacket,
    /// Whether the CRC-24 matched.
    pub crc_valid: bool,
    /// Dewhitened PDU bits (header + payload + CRC) — the stream the
    /// FreeRider XOR decoder compares between receivers.
    pub pdu_bits: Vec<u8>,
    /// RSSI over the sync region, dBm.
    pub rssi_dbm: f64,
    /// Sample index of the preamble start.
    pub start: usize,
}

/// The BLE receiver.
#[derive(Debug, Clone)]
pub struct Receiver {
    config: RxConfig,
    /// ±1 template of preamble + access address at one value per bit.
    sync_template: Vec<f64>,
}

impl Receiver {
    /// Creates a receiver.
    pub fn new(config: RxConfig) -> Self {
        let mut sync_bits = bits::bytes_to_bits_lsb(&[0xAA]);
        sync_bits.extend(bits::bytes_to_bits_lsb(&ADVERTISING_AA.to_le_bytes()));
        let sync_template: Vec<f64> = sync_bits
            .iter()
            .map(|&b| if b == 1 { 1.0 } else { -1.0 })
            .collect();
        Receiver {
            config,
            sync_template,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RxConfig {
        &self.config
    }

    /// Receives the first packet in `samples`.
    pub fn receive(&self, samples: &[Complex]) -> Result<RxPacket, RxError> {
        telemetry::count("ble.rx.receive.calls");
        let _span = telemetry::span("ble.rx.receive");
        let _stage = trace::stage("ble.rx.receive");
        let _prof = profile::scope("ble.rx");
        profile::items(samples.len() as u64);
        let prof_sync = profile::scope("sync");
        let filtered;
        let input: &[Complex] = if self.config.channel_filter {
            filtered = channel_filter().filter(samples);
            &filtered
        } else {
            samples
        };
        let freq = discriminate(input);

        // Slide the 40-bit sync template over the frequency track at each
        // sample offset, sampling one value per bit.
        let n_sync = self.sync_template.len();
        let span = n_sync * SAMPLES_PER_BIT;
        if freq.len() < span + 16 * SAMPLES_PER_BIT {
            return Err(RxError::NoSync);
        }
        let t_norm: f64 = self.sync_template.iter().map(|t| t * t).sum::<f64>().sqrt();
        let mut best = (0usize, f64::NEG_INFINITY);
        for off in 0..freq.len() - span {
            let mut acc = 0.0;
            let mut energy = 0.0;
            for (k, &t) in self.sync_template.iter().enumerate() {
                let f = freq[off + k * SAMPLES_PER_BIT + SAMPLES_PER_BIT / 2];
                acc += t * f;
                energy += f * f;
            }
            let score = if energy > 1e-30 {
                acc / (t_norm * energy.sqrt())
            } else {
                0.0
            };
            if score > best.1 {
                best = (off, score);
            }
        }
        if best.1 < self.config.detection_threshold {
            telemetry::count("ble.rx.sync.misses");
            return Err(RxError::NoSync);
        }
        telemetry::count("ble.rx.sync.locks");
        trace::value_f64("ble.rx.sync_score", best.1);
        let start = best.0;

        let rssi_dbm = db::mean_power_dbm(&samples[start..(start + span).min(samples.len())]);
        if rssi_dbm < self.config.sensitivity_dbm {
            telemetry::count("ble.rx.sensitivity_drops");
            return Err(RxError::NoSync);
        }
        drop(prof_sync);

        let prof_slice = profile::scope("slice");
        // Slice PDU bits after the sync word: integrate the discriminator
        // over the central half of each bit (integrate-and-dump), then read
        // the 16-bit header to learn the length, then the rest.
        let bit_at = |n: usize| -> Option<u8> {
            let centre = start + (n_sync + n) * SAMPLES_PER_BIT + SAMPLES_PER_BIT / 2;
            let lo = centre - SAMPLES_PER_BIT / 4;
            let hi = centre + SAMPLES_PER_BIT / 4;
            if hi >= freq.len() {
                return None;
            }
            let acc: f64 = freq[lo..=hi].iter().sum();
            Some(u8::from(acc > 0.0))
        };
        // lint: allow(a1) — 16-bit header scratch; one tiny alloc per detected packet, not per sample
        let mut whitened = Vec::new();
        for n in 0..16 {
            whitened.push(bit_at(n).ok_or(RxError::Truncated(PacketError::Truncated))?);
        }
        // Peek the length by dewhitening the header.
        let header = Whitener::for_channel(self.config.channel).whiten(&whitened);
        let len = bits::bits_to_bytes_lsb(&header[8..16])[0] as usize;
        let total = 16 + 8 * len + 24;
        for n in 16..total {
            whitened.push(bit_at(n).ok_or(RxError::Truncated(PacketError::Truncated))?);
        }
        let pdu_bits = Whitener::for_channel(self.config.channel).whiten(&whitened);
        telemetry::count_n("ble.rx.slice.bits", total as u64);
        profile::work("slice.bits", total as u64);
        drop(prof_slice);
        let prof_crc = profile::scope("crc");
        let (packet, crc_valid, _) =
            BlePacket::parse_pdu_bits(&pdu_bits).map_err(RxError::Truncated)?;
        drop(prof_crc);
        telemetry::count(if crc_valid {
            "ble.rx.crc.ok"
        } else {
            "ble.rx.crc.bad"
        });
        trace::value_str("ble.rx.crc", if crc_valid { "ok" } else { "bad" });
        telemetry::count("ble.rx.packets");
        profile::bits(8 * len as u64);
        telemetry::record("ble.rx.payload_bytes", len as u64);
        telemetry::event!(
            Debug,
            "ble.rx",
            "packet: {len} B payload, CRC {}",
            if crc_valid { "ok" } else { "BAD" }
        );
        Ok(RxPacket {
            packet,
            crc_valid,
            pdu_bits,
            rssi_dbm,
            start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::Transmitter;
    use freerider_dsp::noise::NoiseSource;
    use freerider_dsp::osc::SquareWave;

    fn rx_test() -> Receiver {
        Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        })
    }

    #[test]
    fn noiseless_loopback() {
        let tx = Transmitter::new();
        let mut buf = vec![Complex::ZERO; 123];
        buf.extend(tx.transmit(b"hello bluetooth").unwrap());
        buf.extend(vec![Complex::ZERO; 100]);
        let pkt = rx_test().receive(&buf).unwrap();
        assert!(pkt.crc_valid);
        assert_eq!(pkt.packet.payload, b"hello bluetooth");
    }

    #[test]
    fn loopback_with_noise() {
        let tx = Transmitter::new();
        let mut buf = vec![Complex::ZERO; 60];
        buf.extend(tx.transmit(&[0x99; 25]).unwrap());
        buf.extend(vec![Complex::ZERO; 60]);
        NoiseSource::new(2, 0.05).add_to(&mut buf); // 13 dB SNR
        let pkt = rx_test().receive(&buf).unwrap();
        assert!(pkt.crc_valid);
        assert_eq!(pkt.packet.payload, vec![0x99; 25]);
    }

    #[test]
    fn noise_only_no_sync() {
        let buf = NoiseSource::new(5, 1.0).take(4000);
        assert_eq!(rx_test().receive(&buf).unwrap_err(), RxError::NoSync);
    }

    #[test]
    fn sensitivity_gate() {
        let tx = Transmitter::new();
        let wave = tx.transmit(b"weak").unwrap();
        let weak: Vec<Complex> = wave
            .iter()
            .map(|&z| z * freerider_dsp::db::field_scale(-103.0))
            .collect();
        let rx = Receiver::new(RxConfig::default()); // −100 dBm gate
        assert_eq!(rx.receive(&weak).unwrap_err(), RxError::NoSync);
    }

    #[test]
    fn tag_toggle_flips_bits_in_toggled_region() {
        // Toggle the RF switch at 500 kHz over a run of bits mid-packet:
        // the receiver decodes complemented bits there (Table 1 on FSK).
        let tx = Transmitter::new();
        let payload = [0xF0u8; 16];
        let wave = tx.transmit(&payload).unwrap();
        let clean = rx_test().receive(&wave).unwrap();
        assert!(clean.crc_valid);

        // Flip PDU bits 20..60 (inside the payload).
        let sync_bits = 40;
        let from = (sync_bits + 20) * SAMPLES_PER_BIT;
        let to = (sync_bits + 60) * SAMPLES_PER_BIT;
        let mut tagged_wave = wave.clone();
        let mut sq = SquareWave::new(500e3 / crate::SAMPLE_RATE);
        let toggled = sq.modulate(&wave[from..to]);
        tagged_wave[from..to].copy_from_slice(&toggled);

        let tagged = rx_test().receive(&tagged_wave).unwrap();
        assert!(!tagged.crc_valid, "tag data must break the original CRC");
        // Interior of the toggled region: mostly complemented bits. The
        // flip is imperfect on GFSK because ISI-weakened bits (isolated
        // 0/1s whose Gaussian-shaped deviation never reaches ±250 kHz) get
        // swamped by neighbour leakage through the channel filter once the
        // tag's sideband arithmetic moves them to the filter edge. This is
        // the physical reason the paper measures its highest tag BER on
        // Bluetooth (Fig. 13b: ~1e-2 even at close range, 0.23 at 12 m) and
        // why one tag bit spans many BLE bits. We require a strong majority
        // rather than perfection.
        let flipped: usize = (22..58)
            .filter(|&k| tagged.pdu_bits[k] == clean.pdu_bits[k] ^ 1)
            .count();
        assert!(
            flipped >= 24,
            "only {flipped}/36 interior bits flipped — majority decode would fail"
        );
        // Outside: unchanged.
        let same: usize = (0..18)
            .chain(62..clean.pdu_bits.len())
            .filter(|&k| tagged.pdu_bits[k] == clean.pdu_bits[k])
            .count();
        assert_eq!(same, 18 + clean.pdu_bits.len() - 62);
    }
}
