//! A hand-rolled JSON writer.
//!
//! The workspace builds with no external dependencies, so machine-readable
//! output is produced by this ~100-line streaming writer instead of serde.
//! It emits RFC 8259 JSON: keys and strings are escaped, `u64`/`i64` print
//! exactly, and `f64` uses Rust's shortest round-trip formatting (non-finite
//! values become `null`). Output is fully deterministic — the writer adds
//! no whitespace, so equal inputs give byte-equal documents.

use std::fmt::Write as _;

/// A streaming JSON writer over an owned `String`.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// One entry per open container: `true` until the first element is
    /// written (suppresses the leading comma).
    stack: Vec<bool>,
    /// Set after a key, so the following value is not comma-separated.
    after_key: bool,
}

impl JsonWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn pre(&mut self) {
        if self.after_key {
            self.after_key = false;
            return;
        }
        if let Some(first) = self.stack.last_mut() {
            if *first {
                *first = false;
            } else {
                self.buf.push(',');
            }
        }
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) -> &mut Self {
        self.pre();
        self.buf.push('{');
        self.stack.push(true);
        self
    }

    /// Closes the innermost object (`}`).
    pub fn end_object(&mut self) -> &mut Self {
        self.stack.pop();
        self.buf.push('}');
        self
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) -> &mut Self {
        self.pre();
        self.buf.push('[');
        self.stack.push(true);
        self
    }

    /// Closes the innermost array (`]`).
    pub fn end_array(&mut self) -> &mut Self {
        self.stack.pop();
        self.buf.push(']');
        self
    }

    /// Writes an object key.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.pre();
        escape_into(&mut self.buf, k);
        self.buf.push(':');
        self.after_key = true;
        self
    }

    /// Writes a string value.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.pre();
        escape_into(&mut self.buf, s);
        self
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.pre();
        // lint: allow(panic) — write! to a String cannot fail
        write!(self.buf, "{v}").expect("write to String");
        self
    }

    /// Writes a float value (`null` when not finite).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.pre();
        if v.is_finite() {
            // lint: allow(panic) — write! to a String cannot fail
            write!(self.buf, "{v}").expect("write to String");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Writes a `null` value.
    pub fn null(&mut self) -> &mut Self {
        self.pre();
        self.buf.push_str("null");
        self
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.pre();
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Consumes the writer, returning the document. Panics if containers
    /// are still open — an unbalanced document is a bug, not data.
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "unclosed JSON container");
        self.buf
    }
}

/// Appends `s` as a quoted, escaped JSON string.
pub fn escape_into(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                // lint: allow(panic) — write! to a String cannot fail
                write!(buf, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_document() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name").string("fig10");
        w.key("ok").bool(true);
        w.key("points").begin_array();
        w.u64(1).u64(2);
        w.begin_object().key("d").f64(2.5).end_object();
        w.end_array();
        w.key("none").f64(f64::NAN);
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"fig10","ok":true,"points":[1,2,{"d":2.5}],"none":null}"#
        );
    }

    #[test]
    fn escaping() {
        let mut buf = String::new();
        escape_into(&mut buf, "a\"b\\c\nd\te\u{1}");
        assert_eq!(buf, r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn floats_round_trip_shortest() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.f64(0.1).f64(-3.0).f64(2.5e-3);
        w.end_array();
        assert_eq!(w.finish(), "[0.1,-3,0.0025]");
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn unbalanced_panics() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.finish();
    }
}
