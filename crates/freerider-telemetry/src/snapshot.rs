//! The collector/snapshot data model.
//!
//! A [`Snapshot`] is both the per-thread collector (each worker owns one)
//! and the merged view [`crate::snapshot`] returns: counters, log-binned
//! histograms and span timers keyed by `&'static str` names. Counters and
//! histograms are pure integer accumulations, so merging per-worker
//! collectors in any order yields bit-identical results — the property the
//! workspace's parallel-equivalence guarantee extends to telemetry.
//! Timers carry wall-clock time and are kept in a separate section that is
//! reported but never part of the deterministic comparison.

use crate::hist::LogHistogram;
use crate::json::JsonWriter;
use crate::timer::TimerStat;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A set of named metrics: per-thread collector and merged snapshot alike.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic event counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Log₂-binned value histograms.
    pub histograms: BTreeMap<&'static str, LogHistogram>,
    /// Wall-clock span timers (excluded from determinism guarantees).
    pub timers: BTreeMap<&'static str, TimerStat>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Snapshot::default()
    }

    /// Adds `n` to counter `name`.
    pub fn count(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Records `value` into histogram `name`.
    pub fn record(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// Records a completed span of `ns` nanoseconds under timer `name`.
    pub fn record_span_ns(&mut self, name: &'static str, ns: u64) {
        self.timers.entry(name).or_default().record(ns);
    }

    /// Merges `other` in: counters and histogram bins sum, timers
    /// accumulate. Summation is order-independent, so merging per-worker
    /// collectors gives the same counters/histograms for any worker count.
    pub fn merge(&mut self, other: &Snapshot) {
        for (&k, &v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (&k, h) in &other.histograms {
            self.histograms.entry(k).or_default().merge(h);
        }
        for (&k, t) in &other.timers {
            self.timers.entry(k).or_default().merge(t);
        }
    }

    /// The value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The histogram `name`, if any value was recorded.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.timers.is_empty()
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    }

    /// Writes the **deterministic** metric section (counters +
    /// histograms) as a JSON object. Byte-identical across worker counts
    /// for the same workload; timers are deliberately not here.
    pub fn write_metrics(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("counters").begin_object();
        for (&k, &v) in &self.counters {
            w.key(k).u64(v);
        }
        w.end_object();
        w.key("histograms").begin_object();
        for (&k, h) in &self.histograms {
            w.key(k);
            h.write_json(w);
        }
        w.end_object();
        w.end_object();
    }

    /// Writes the wall-clock timer section as a JSON object. Values vary
    /// run to run; consumers must not diff this section.
    pub fn write_timers(&self, w: &mut JsonWriter) {
        w.begin_object();
        for (&k, t) in &self.timers {
            w.key(k).begin_object();
            w.key("count").u64(t.count);
            w.key("total_ns").u64(t.total_ns);
            w.key("max_ns").u64(t.max_ns);
            w.end_object();
        }
        w.end_object();
    }

    /// The deterministic metric section as a standalone JSON document.
    pub fn metrics_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_metrics(&mut w);
        w.finish()
    }

    /// A human-readable per-stage breakdown (the `repro --metrics` table).
    pub fn table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            writeln!(out, "  {:<44} {:>12}", "counter", "value").unwrap(); // lint: allow(panic) — write! to a String cannot fail
            for (&k, &v) in &self.counters {
                writeln!(out, "  {k:<44} {v:>12}").unwrap(); // lint: allow(panic) — write! to a String cannot fail
            }
        }
        if !self.histograms.is_empty() {
            writeln!(
                out,
                "  {:<44} {:>8} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
                "histogram", "count", "mean", "min", "p50", "p90", "p99", "max"
            )
            .unwrap(); // lint: allow(panic) — write! to a String cannot fail
            for (&k, h) in &self.histograms {
                let (min, max) = if h.is_empty() { (0, 0) } else { (h.min, h.max) };
                writeln!(
                    out,
                    "  {k:<44} {:>8} {:>10.1} {:>8} {:>8} {:>8} {:>8} {:>8}",
                    h.count,
                    h.mean(),
                    min,
                    h.p50().unwrap_or(0),
                    h.p90().unwrap_or(0),
                    h.p99().unwrap_or(0),
                    max
                )
                .unwrap(); // lint: allow(panic) — write! to a String cannot fail
            }
        }
        if !self.timers.is_empty() {
            writeln!(
                out,
                "  {:<44} {:>8} {:>10} {:>10}",
                "timer (wall-clock)", "spans", "total(ms)", "mean(us)"
            )
            .unwrap(); // lint: allow(panic) — write! to a String cannot fail
                       // Stage names are printed in sorted order: the BTreeMap already
                       // iterates that way, but the explicit sort keeps the report
                       // stable even if the backing map type ever changes.
            let mut rows: Vec<(&'static str, &TimerStat)> =
                self.timers.iter().map(|(&k, t)| (k, t)).collect();
            rows.sort_unstable_by_key(|&(k, _)| k);
            for (k, t) in rows {
                writeln!(
                    out,
                    "  {k:<44} {:>8} {:>10.2} {:>10.2}",
                    t.count,
                    t.total_ns as f64 / 1e6,
                    t.mean_ns() / 1e3
                )
                .unwrap(); // lint: allow(panic) — write! to a String cannot fail
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::new();
        s.count("a.hits", 3);
        s.count("b.misses", 1);
        s.record("a.sizes", 5);
        s.record("a.sizes", 9);
        s.record_span_ns("a.time", 1500);
        s
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counter("a.hits"), 6);
        assert_eq!(a.counter("b.misses"), 2);
        assert_eq!(a.histogram("a.sizes").unwrap().count, 4);
        assert_eq!(a.timers["a.time"].count, 2);
        assert_eq!(a.counter_prefix_sum("a."), 6);
    }

    #[test]
    fn merge_is_associative_on_metrics() {
        let (a, b, c) = (sample(), sample(), sample());
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c.metrics_json(), a_bc.metrics_json());
    }

    #[test]
    fn metrics_json_shape() {
        let s = sample();
        let j = s.metrics_json();
        assert!(
            j.starts_with(r#"{"counters":{"a.hits":3,"b.misses":1}"#),
            "{j}"
        );
        assert!(
            j.contains(r#""a.sizes":{"count":2,"sum":14,"min":5,"max":9,"bins":[[4,1],[8,1]]}"#)
        );
        assert!(!j.contains("a.time"), "timers must not leak into metrics");
    }

    #[test]
    fn table_lists_all_sections() {
        let t = sample().table();
        assert!(t.contains("a.hits"));
        assert!(t.contains("a.sizes"));
        assert!(t.contains("a.time"));
        assert!(t.contains("p50"), "histogram header must show percentiles");
    }

    #[test]
    fn table_timing_rows_are_sorted_by_stage_name() {
        let mut s = Snapshot::new();
        s.record_span_ns("z.last", 10);
        s.record_span_ns("a.first", 20);
        s.record_span_ns("m.middle", 30);
        let t = s.table();
        let a = t.find("a.first").unwrap();
        let m = t.find("m.middle").unwrap();
        let z = t.find("z.last").unwrap();
        assert!(a < m && m < z, "timing rows out of order:\n{t}");
    }

    #[test]
    fn empty_snapshot() {
        let s = Snapshot::new();
        assert!(s.is_empty());
        assert_eq!(s.counter("nope"), 0);
        assert_eq!(s.metrics_json(), r#"{"counters":{},"histograms":{}}"#);
        assert!(s.table().is_empty());
    }
}
