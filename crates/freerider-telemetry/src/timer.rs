//! Scoped wall-clock span timers.
//!
//! A [`Span`] measures the wall-clock time between its creation and drop
//! and records it under its name. Timer values are **real elapsed time**:
//! they are reported (JSON `timing` section, breakdown table) but are
//! deliberately excluded from the deterministic metric section — wall
//! clocks differ run to run and across worker counts, while counters and
//! histograms must not.

use std::time::Instant;

/// Aggregate wall-clock statistics for one named span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimerStat {
    /// Completed spans.
    pub count: u64,
    /// Total nanoseconds across all spans (saturating).
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

impl TimerStat {
    /// Records one completed span.
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Merges another stat in (sums and max).
    pub fn merge(&mut self, other: &TimerStat) {
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Mean span duration in nanoseconds (NaN while empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        self.total_ns as f64 / self.count as f64
    }
}

/// A raw monotonic stopwatch — the sanctioned way for other crates to
/// read elapsed wall-clock time without naming `Instant` themselves
/// (keeping the `wallclock` lint's exemption confined to this file).
/// Unlike [`Span`] it records nothing on drop; the caller decides where
/// the reading goes (e.g. a per-server latency histogram).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts the clock.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`] (saturating).
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// An RAII span: created by [`crate::span`], records its elapsed
/// wall-clock time into the thread's collector when dropped.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Instant,
}

impl Span {
    /// Starts a span (prefer [`crate::span`]).
    pub fn start(name: &'static str) -> Self {
        Span {
            name,
            start: Instant::now(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        crate::registry::record_span_ns(self.name, ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_accumulates() {
        let mut t = TimerStat::default();
        assert!(t.mean_ns().is_nan());
        t.record(10);
        t.record(30);
        assert_eq!(t.count, 2);
        assert_eq!(t.total_ns, 40);
        assert_eq!(t.max_ns, 30);
        assert!((t.mean_ns() - 20.0).abs() < 1e-12);
        let mut u = TimerStat::default();
        u.record(100);
        t.merge(&u);
        assert_eq!(t.count, 3);
        assert_eq!(t.max_ns, 100);
    }
}
