//! Structured, zero-dependency telemetry for the FreeRider workspace.
//!
//! The simulation's headline numbers (BER curves, throughput, range) say
//! *what* happened; this crate records *why*: how many frames each RX
//! stage saw and dropped, how codeword-translation votes split, where
//! wall-clock time goes. It provides:
//!
//! - **Counters** — monotonic event counts ([`count`], [`count_n`]).
//! - **Histograms** — log₂-binned `u64` distributions ([`record`]).
//! - **Span timers** — RAII wall-clock scopes ([`span`]).
//! - **Event log** — leveled stderr logging gated by `FREERIDER_LOG`
//!   ([`event!`]).
//! - **JSON** — a hand-rolled RFC 8259 writer ([`JsonWriter`]) used by
//!   `repro --json` for machine-readable results, and its inverse, a
//!   zero-dependency parser ([`JsonValue`]) used by the `freerider-serve`
//!   wire protocol to consume those documents.
//! - **Flight recorder** — per-packet trace scopes gated by
//!   `FREERIDER_TRACE` ([`trace`]), with a deterministic failure-forensics
//!   dump and a Chrome `trace_event` exporter ([`chrome`]).
//! - **Stage profiler** — hierarchical RAII scope trees gated by
//!   `FREERIDER_PROFILE` ([`profile`]): per-stage wall-clock attribution
//!   (p50/p90, percent-of-parent, throughput) alongside deterministic
//!   work counters that are byte-identical across worker counts.
//!
//! # Determinism contract
//!
//! Each thread records into its own collector; [`snapshot`] merges them
//! (plus a graveyard holding finished threads' data) by pure integer
//! addition. The workspace guarantees bit-identical results for any
//! `FREERIDER_THREADS` value, and that guarantee extends to the counter
//! and histogram sections of a snapshot: `Snapshot::metrics_json` is
//! byte-identical across worker counts for the same workload. Wall-clock
//! timers are the deliberate exception — they are reported in a separate
//! `timing` section that consumers must not diff.
//!
//! Like the rest of the workspace, this crate has no external
//! dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod hist;
pub mod json;
pub mod jsonv;
pub mod log;
pub mod profile;
pub mod registry;
pub mod snapshot;
pub mod timer;
pub mod trace;

pub use chrome::chrome_trace_json;
pub use hist::{bin_index, bin_lower_bound, LogHistogram, BINS};
pub use json::JsonWriter;
pub use jsonv::{JsonError, JsonValue};
pub use log::{Level, LOG_ENV};
pub use profile::{ProfileData, StageStat, PROFILE_ENV};
pub use registry::{count, count_n, record, record_span_ns, reset, snapshot, span};
pub use snapshot::Snapshot;
pub use timer::{Span, Stopwatch, TimerStat};
pub use trace::{PacketRecord, TraceMode, TRACE_ENV};
