//! A log₂-binned histogram over `u64` values.
//!
//! Bin `0` holds the value `0`; bin `k ≥ 1` holds values in
//! `[2^(k-1), 2^k)`. 65 bins cover the whole `u64` range, so recording
//! never saturates or reallocates — the collector hot path is a couple of
//! array writes. Because every field is an integer and merging is
//! element-wise addition, merged histograms are bit-identical no matter
//! how the samples were distributed over worker threads.

/// Number of bins: one for zero plus one per possible leading-bit
/// position.
pub const BINS: usize = 65;

/// A log₂-binned histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    /// Samples recorded.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` while empty).
    pub min: u64,
    /// Largest sample (0 while empty).
    pub max: u64,
    bins: [u64; BINS],
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            bins: [0; BINS],
        }
    }
}

/// The bin index a value falls into.
#[inline]
pub fn bin_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The lower bound of bin `index` (inclusive).
pub fn bin_lower_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.bins[bin_index(value)] += 1;
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (NaN while empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        self.sum as f64 / self.count as f64
    }

    /// Element-wise merge: counts, sums and bins add; min/max combine.
    /// Addition is commutative and associative, so any merge order over
    /// any partition of the samples yields the same histogram.
    pub fn merge(&mut self, other: &LogHistogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += *b;
        }
    }

    /// `(bin lower bound, count)` for every non-empty bin, in value order.
    pub fn nonzero_bins(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bin_lower_bound(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_boundaries() {
        assert_eq!(bin_index(0), 0);
        assert_eq!(bin_index(1), 1);
        assert_eq!(bin_index(2), 2);
        assert_eq!(bin_index(3), 2);
        assert_eq!(bin_index(4), 3);
        assert_eq!(bin_index(u64::MAX), 64);
        assert_eq!(bin_lower_bound(0), 0);
        assert_eq!(bin_lower_bound(1), 1);
        assert_eq!(bin_lower_bound(5), 16);
    }

    #[test]
    fn record_tracks_summary_stats() {
        let mut h = LogHistogram::new();
        assert!(h.is_empty());
        assert!(h.mean().is_nan());
        for v in [3u64, 0, 17, 3] {
            h.record(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 23);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 17);
        assert!((h.mean() - 5.75).abs() < 1e-12);
        let bins: Vec<(u64, u64)> = h.nonzero_bins().collect();
        assert_eq!(bins, vec![(0, 1), (2, 2), (16, 1)]);
    }

    #[test]
    fn merge_is_commutative_and_matches_serial() {
        let samples: Vec<u64> = (0..200).map(|k| (k * k * 2654435761u64) >> 32).collect();
        let mut serial = LogHistogram::new();
        for &s in &samples {
            serial.record(s);
        }
        let (left, right) = samples.split_at(73);
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for &s in left {
            a.record(s);
        }
        for &s in right {
            b.record(s);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, serial);
        assert_eq!(ba, serial);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = LogHistogram::new();
        h.record(42);
        let before = h.clone();
        h.merge(&LogHistogram::new());
        assert_eq!(h, before);
    }
}
