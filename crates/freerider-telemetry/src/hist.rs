//! A log₂-binned histogram over `u64` values.
//!
//! Bin `0` holds the value `0`; bin `k ≥ 1` holds values in
//! `[2^(k-1), 2^k)`. 65 bins cover the whole `u64` range, so recording
//! never saturates or reallocates — the collector hot path is a couple of
//! array writes. Because every field is an integer and merging is
//! element-wise addition, merged histograms are bit-identical no matter
//! how the samples were distributed over worker threads.

/// Number of bins: one for zero plus one per possible leading-bit
/// position.
pub const BINS: usize = 65;

/// A log₂-binned histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    /// Samples recorded.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` while empty).
    pub min: u64,
    /// Largest sample (0 while empty).
    pub max: u64,
    bins: [u64; BINS],
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            bins: [0; BINS],
        }
    }
}

/// The bin index a value falls into.
#[inline]
pub fn bin_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The lower bound of bin `index` (inclusive).
pub fn bin_lower_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.bins[bin_index(value)] += 1;
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (NaN while empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        self.sum as f64 / self.count as f64
    }

    /// Element-wise merge: counts, sums and bins add; min/max combine.
    /// Addition is commutative and associative, so any merge order over
    /// any partition of the samples yields the same histogram.
    pub fn merge(&mut self, other: &LogHistogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += *b;
        }
    }

    /// The `p`-th percentile (0–100) by nearest rank over the log₂ bins,
    /// linearly interpolated inside the selected bin and clamped to the
    /// exact `[min, max]` envelope (so single-valued histograms report
    /// that value exactly). `None` while empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let lo = bin_lower_bound(i);
                // Inclusive upper edge; the top bin saturates at u64::MAX.
                let hi = match i {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
                let frac = (rank - cum - 1) as f64 / c as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                let est = if est >= u64::MAX as f64 {
                    u64::MAX
                } else {
                    est.round() as u64
                };
                return Some(est.clamp(self.min, self.max));
            }
            cum += c;
        }
        Some(self.max)
    }

    /// Median (`None` while empty).
    pub fn p50(&self) -> Option<u64> {
        self.percentile(50.0)
    }

    /// 90th percentile (`None` while empty).
    pub fn p90(&self) -> Option<u64> {
        self.percentile(90.0)
    }

    /// 99th percentile (`None` while empty).
    pub fn p99(&self) -> Option<u64> {
        self.percentile(99.0)
    }

    /// Writes the histogram as the workspace's standard JSON object:
    /// `{"count":…,"sum":…,"min":…,"max":…,"bins":[[lo,count]…]}`, with
    /// `min` reported as 0 while empty. Integer fields only and bins in
    /// value order, so the bytes are deterministic — this is the shape
    /// both `Snapshot::write_metrics` and the `freerider-serve` stats
    /// frame emit.
    pub fn write_json(&self, w: &mut crate::json::JsonWriter) {
        w.begin_object();
        w.key("count").u64(self.count);
        w.key("sum").u64(self.sum);
        w.key("min").u64(if self.is_empty() { 0 } else { self.min });
        w.key("max").u64(self.max);
        w.key("bins").begin_array();
        for (lo, c) in self.nonzero_bins() {
            w.begin_array().u64(lo).u64(c).end_array();
        }
        w.end_array();
        w.end_object();
    }

    /// `(bin lower bound, count)` for every non-empty bin, in value order.
    pub fn nonzero_bins(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bin_lower_bound(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_boundaries() {
        assert_eq!(bin_index(0), 0);
        assert_eq!(bin_index(1), 1);
        assert_eq!(bin_index(2), 2);
        assert_eq!(bin_index(3), 2);
        assert_eq!(bin_index(4), 3);
        assert_eq!(bin_index(u64::MAX), 64);
        assert_eq!(bin_lower_bound(0), 0);
        assert_eq!(bin_lower_bound(1), 1);
        assert_eq!(bin_lower_bound(5), 16);
    }

    #[test]
    fn record_tracks_summary_stats() {
        let mut h = LogHistogram::new();
        assert!(h.is_empty());
        assert!(h.mean().is_nan());
        for v in [3u64, 0, 17, 3] {
            h.record(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 23);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 17);
        assert!((h.mean() - 5.75).abs() < 1e-12);
        let bins: Vec<(u64, u64)> = h.nonzero_bins().collect();
        assert_eq!(bins, vec![(0, 1), (2, 2), (16, 1)]);
    }

    #[test]
    fn merge_is_commutative_and_matches_serial() {
        let samples: Vec<u64> = (0..200).map(|k| (k * k * 2654435761u64) >> 32).collect();
        let mut serial = LogHistogram::new();
        for &s in &samples {
            serial.record(s);
        }
        let (left, right) = samples.split_at(73);
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for &s in left {
            a.record(s);
        }
        for &s in right {
            b.record(s);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, serial);
        assert_eq!(ba, serial);
    }

    #[test]
    fn percentile_empty_is_none() {
        let h = LogHistogram::new();
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p90(), None);
        assert_eq!(h.p99(), None);
    }

    #[test]
    fn percentile_single_bin_reports_exact_envelope() {
        // All samples in one bin: the [min, max] clamp must pin every
        // percentile to the one recorded value.
        let mut h = LogHistogram::new();
        for _ in 0..7 {
            h.record(5);
        }
        assert_eq!(h.p50(), Some(5));
        assert_eq!(h.p90(), Some(5));
        assert_eq!(h.p99(), Some(5));
        assert_eq!(h.percentile(0.0), Some(5));
        assert_eq!(h.percentile(100.0), Some(5));
        // Zero is its own bin with a degenerate [0, 0] range.
        let mut z = LogHistogram::new();
        z.record(0);
        assert_eq!(z.p50(), Some(0));
        assert_eq!(z.p99(), Some(0));
    }

    #[test]
    fn percentile_saturated_top_bin_does_not_overflow() {
        // The top bin covers [2^63, u64::MAX]; interpolation near its
        // upper edge must saturate cleanly instead of wrapping.
        let mut h = LogHistogram::new();
        for _ in 0..10 {
            h.record(u64::MAX);
        }
        assert_eq!(h.p50(), Some(u64::MAX));
        assert_eq!(h.p99(), Some(u64::MAX));
        assert_eq!(h.percentile(100.0), Some(u64::MAX));
        // Mixed: one small sample, rest pinned at the top.
        let mut m = LogHistogram::new();
        m.record(1);
        for _ in 0..99 {
            m.record(u64::MAX);
        }
        assert_eq!(m.percentile(0.0), Some(1));
        let p99 = m.p99().unwrap();
        assert!(p99 >= 1u64 << 63, "p99 {p99} fell below the top bin");
    }

    #[test]
    fn percentile_is_monotone_and_bracketed() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 3, 9, 17, 120, 121, 4000, 65000, 70000] {
            h.record(v);
        }
        let mut prev = 0u64;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let q = h.percentile(p).unwrap();
            assert!(q >= prev, "percentile not monotone at p={p}");
            assert!(q >= h.min && q <= h.max);
            prev = q;
        }
        // The median of 10 samples is the 5th by nearest rank (value 17);
        // log-bin interpolation must stay within its bin [16, 31].
        let p50 = h.p50().unwrap();
        assert!((16..=31).contains(&p50), "p50 {p50} outside median bin");
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = LogHistogram::new();
        h.record(42);
        let before = h.clone();
        h.merge(&LogHistogram::new());
        assert_eq!(h, before);
    }

    #[test]
    fn percentile_out_of_range_p_clamps() {
        let mut h = LogHistogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        // p outside [0, 100] must behave as the nearest endpoint, never
        // panic or walk off the bins.
        assert_eq!(h.percentile(-5.0), h.percentile(0.0));
        assert_eq!(h.percentile(250.0), h.percentile(100.0));
        assert_eq!(h.percentile(f64::NEG_INFINITY), h.percentile(0.0));
        assert_eq!(h.percentile(f64::INFINITY), h.percentile(100.0));
    }

    #[test]
    fn percentile_nan_p_is_bracketed() {
        // NaN clamps to an arbitrary endpoint in `f64::clamp`; whatever
        // it picks, the result must stay inside the sample envelope.
        let mut h = LogHistogram::new();
        h.record(7);
        h.record(9);
        let q = h.percentile(f64::NAN).unwrap();
        assert!((7..=9).contains(&q));
    }

    #[test]
    fn percentile_after_merge_matches_serial() {
        // Percentiles are a pure function of the merged bins, so any
        // partition of the samples over collectors must report identical
        // percentiles after merging.
        let samples: Vec<u64> = (1..500u64).map(|k| k * 37 % 8192).collect();
        let mut serial = LogHistogram::new();
        for &s in &samples {
            serial.record(s);
        }
        let mut parts = [
            LogHistogram::new(),
            LogHistogram::new(),
            LogHistogram::new(),
        ];
        for (k, &s) in samples.iter().enumerate() {
            parts[k % 3].record(s);
        }
        let mut merged = parts[0].clone();
        merged.merge(&parts[1]);
        merged.merge(&parts[2]);
        for p in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(merged.percentile(p), serial.percentile(p), "p={p}");
        }
    }

    #[test]
    fn percentile_min_clamp_beats_bin_lower_bound() {
        // min sits mid-bin: low percentiles must clamp up to min, not
        // report the bin's lower bound.
        let mut h = LogHistogram::new();
        for _ in 0..10 {
            h.record(24); // bin [16, 31]
        }
        h.record(1000);
        assert_eq!(h.percentile(0.0), Some(24));
        assert!(h.p50().unwrap() >= 24);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum, u64::MAX, "sum must saturate");
        assert_eq!(h.count, 2);
        let mut other = LogHistogram::new();
        other.record(u64::MAX);
        h.merge(&other);
        assert_eq!(h.sum, u64::MAX, "merged sum must saturate too");
        assert_eq!(h.count, 3);
    }
}
