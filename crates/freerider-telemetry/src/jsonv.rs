//! A hand-rolled JSON parser: the read half of [`crate::json`].
//!
//! The workspace's machine-readable output is produced by the streaming
//! [`crate::JsonWriter`]; this module is its inverse, so services (the
//! `freerider-serve` wire protocol) can *consume* those documents with the
//! same zero-dependency discipline. It parses RFC 8259 JSON into a
//! [`JsonValue`] tree; objects keep insertion order (a `Vec` of pairs, not
//! a hash map — iteration order must be deterministic).
//!
//! Numbers are held as `f64`, which round-trips every value the writer
//! emits (`u64`s above 2^53 would lose precision, but the workspace never
//! writes counters that large into wire payloads; [`JsonValue::as_u64`]
//! rejects non-integral values rather than truncating).
//!
//! Container nesting is capped at [`MAX_DEPTH`] levels: the parser is
//! recursive-descent (one stack frame per level) and its inputs are
//! network-supplied frame payloads, so unbounded `[[[[…` input would
//! otherwise overflow the parsing thread's stack.

use std::fmt;

/// Maximum object/array nesting depth; deeper input is a [`JsonError`],
/// not a stack overflow. Every document the workspace's writer produces
/// is a handful of levels deep, so 128 is purely a safety margin.
pub const MAX_DEPTH: usize = 128;

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in insertion order.
    Object(Vec<(String, JsonValue)>),
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(s: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Member lookup on an object (first match; `None` otherwise).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float (numbers only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer; rejects negatives and fractions.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// True for `null` (distinct from a missing member).
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", c as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(c @ (b'{' | b'[')) => {
                if self.depth >= MAX_DEPTH {
                    return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
                }
                self.depth += 1;
                let v = if c == b'{' {
                    self.object()
                } else {
                    self.array()
                };
                self.depth -= 1;
                v
            }
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.consume(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\u` + low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            // hex4 leaves pos past the digits; skip the
                            // shared `pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let start = self.pos;
                    let len = utf8_len(self.bytes[start]);
                    let end = (start + len).min(self.bytes.len());
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid utf-8")),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JsonWriter;

    #[test]
    fn scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            JsonValue::parse(" -3.5e2 ").unwrap(),
            JsonValue::Num(-350.0)
        );
        assert_eq!(
            JsonValue::parse(r#""a\nb""#).unwrap(),
            JsonValue::Str("a\nb".to_string())
        );
    }

    #[test]
    fn nested_document_round_trips_from_writer() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name").string("fig10");
        w.key("ok").bool(true);
        w.key("points").begin_array();
        w.u64(1).u64(2);
        w.begin_object().key("d").f64(2.5).end_object();
        w.end_array();
        w.key("none").f64(f64::NAN);
        w.end_object();
        let doc = w.finish();
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("fig10"));
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
        let points = v.get("points").and_then(JsonValue::as_array).unwrap();
        assert_eq!(points[0].as_u64(), Some(1));
        assert_eq!(points[2].get("d").and_then(JsonValue::as_f64), Some(2.5));
        assert!(v.get("none").unwrap().is_null());
    }

    #[test]
    fn object_order_is_preserved() {
        let v = JsonValue::parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        match v {
            JsonValue::Object(members) => {
                let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["z", "a", "m"]);
            }
            other => panic!("not an object: {other:?}"),
        }
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            JsonValue::parse(r#""é😀""#).unwrap(),
            JsonValue::Str("é😀".to_string())
        );
        assert!(JsonValue::parse(r#""\uD800""#).is_err());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a"}"#,
            "tru",
            "1 2",
            r#""unterminated"#,
            "{]",
            "nul",
            "[1,]",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        // A network peer can send megabytes of `[[[[…`; the parser must
        // fail cleanly instead of exhausting the thread stack.
        for open in ["[", "{\"k\":"] {
            let bomb = open.repeat(100_000);
            let e = JsonValue::parse(&bomb).unwrap_err();
            assert!(e.msg.contains("nesting"), "unexpected error: {e}");
        }
        // Exactly MAX_DEPTH levels still parse…
        let ok = format!("{}{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(JsonValue::parse(&ok).is_ok());
        // …one more does not.
        let over = format!("{}{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        assert!(JsonValue::parse(&over).is_err());
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(JsonValue::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(JsonValue::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("-7").unwrap().as_u64(), None);
    }

    #[test]
    fn float_shortest_form_round_trips() {
        for x in [0.1f64, -3.0, 2.5e-3, 1.0 / 3.0, f64::MAX] {
            let mut w = JsonWriter::new();
            w.begin_array();
            w.f64(x);
            w.end_array();
            let v = JsonValue::parse(&w.finish()).unwrap();
            let back = v.as_array().unwrap()[0].as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
    }
}
