//! Chrome `trace_event` export for flight-recorder packet records.
//!
//! Converts [`PacketRecord`]s into the JSON Object Format understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): a
//! `{"traceEvents":[...]}` document of complete-span (`"ph":"X"`) and
//! instant (`"ph":"i"`) events. Records are grouped into processes — one
//! `pid` per experiment (or any grouping the caller chooses), labelled via
//! `process_name` metadata — and each recording thread's lane becomes a
//! `tid`, so concurrent packet decodes render as parallel tracks.
//!
//! Unlike the forensic dump ([`crate::trace::write_forensics`]), this
//! export keeps wall-clock timestamps and thread lanes: it is a
//! visualisation artefact, explicitly outside the determinism contract.

use crate::json::JsonWriter;
use crate::trace::{EventKind, PacketRecord, Value};

fn us(t_ns: u64) -> f64 {
    t_ns as f64 / 1000.0
}

fn write_common(w: &mut JsonWriter, name: &str, ph: &str, pid: u64, tid: u64, ts_us: f64) {
    w.key("name").string(name);
    w.key("ph").string(ph);
    w.key("pid").u64(pid);
    w.key("tid").u64(tid);
    w.key("ts").f64(ts_us);
}

fn write_instant_args(w: &mut JsonWriter, value: &Value) {
    w.key("s").string("t");
    w.key("args").begin_object();
    match value {
        Value::None => {}
        Value::U64(v) => {
            w.key("value").u64(*v);
        }
        Value::F64(v) => {
            w.key("value").f64(*v);
        }
        Value::F64s(vs) => {
            w.key("value").begin_array();
            for &v in vs {
                w.f64(v);
            }
            w.end_array();
        }
        Value::Str(s) => {
            w.key("value").string(s);
        }
    }
    w.end_object();
}

fn write_record(w: &mut JsonWriter, r: &PacketRecord, pid: u64) {
    let tid = r.lane;
    // The packet itself is a complete span covering all its events.
    let pkt_end = r.events.last().map_or(r.start_ns, |e| e.t_ns);
    w.begin_object();
    write_common(
        w,
        &format!("{} #{:x}", r.scope, r.id),
        "X",
        pid,
        tid,
        us(r.start_ns),
    );
    w.key("dur").f64(us(pkt_end.saturating_sub(r.start_ns)));
    w.key("args").begin_object();
    w.key("id").u64(r.id);
    match r.failure {
        Some(reason) => {
            w.key("failure").string(reason);
        }
        None => {
            w.key("failure").null();
        }
    }
    if r.dropped_events > 0 {
        w.key("dropped_events").u64(r.dropped_events as u64);
    }
    w.end_object();
    w.end_object();

    // Pair Enter/Exit events into "X" complete spans via a stack; emit
    // Value events as instants. Unbalanced enters (packet truncated by
    // the event cap) close at the packet end.
    let mut open: Vec<&crate::trace::TraceEvent> = Vec::new();
    for e in &r.events {
        match e.kind {
            EventKind::Enter => open.push(e),
            EventKind::Exit => {
                // Find the matching enter (innermost with the same name).
                if let Some(pos) = open.iter().rposition(|o| o.name == e.name) {
                    let enter = open.remove(pos);
                    w.begin_object();
                    write_common(w, e.name, "X", pid, tid, us(enter.t_ns));
                    w.key("dur").f64(us(e.t_ns.saturating_sub(enter.t_ns)));
                    w.end_object();
                }
            }
            EventKind::Value => {
                w.begin_object();
                write_common(w, e.name, "i", pid, tid, us(e.t_ns));
                write_instant_args(w, &e.value);
                w.end_object();
            }
        }
    }
    for enter in open {
        w.begin_object();
        write_common(w, enter.name, "X", pid, tid, us(enter.t_ns));
        w.key("dur").f64(us(pkt_end.saturating_sub(enter.t_ns)));
        w.end_object();
    }
}

/// Renders `groups` — `(label, records)` pairs, one process per group —
/// as a Chrome `trace_event` JSON document.
pub fn chrome_trace_json(groups: &[(&str, &[PacketRecord])]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("traceEvents").begin_array();
    for (pid0, (label, records)) in groups.iter().enumerate() {
        let pid = pid0 as u64 + 1;
        // Name the process after the group (experiment).
        w.begin_object();
        w.key("name").string("process_name");
        w.key("ph").string("M");
        w.key("pid").u64(pid);
        w.key("args").begin_object();
        w.key("name").string(label);
        w.end_object();
        w.end_object();
        for r in *records {
            write_record(&mut w, r, pid);
        }
    }
    w.end_array();
    w.key("displayTimeUnit").string("ms");
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn record() -> PacketRecord {
        PacketRecord {
            scope: "test.pkt",
            id: 7,
            failure: Some("test.bad"),
            events: vec![
                TraceEvent {
                    seq: 0,
                    name: "stage.a",
                    kind: EventKind::Enter,
                    t_ns: 1_000,
                    value: Value::None,
                },
                TraceEvent {
                    seq: 1,
                    name: "meas.cfo",
                    kind: EventKind::Value,
                    t_ns: 1_500,
                    value: Value::F64(0.5),
                },
                TraceEvent {
                    seq: 2,
                    name: "stage.a",
                    kind: EventKind::Exit,
                    t_ns: 3_000,
                    value: Value::None,
                },
                TraceEvent {
                    seq: 3,
                    name: "stage.open",
                    kind: EventKind::Enter,
                    t_ns: 3_500,
                    value: Value::None,
                },
            ],
            dropped_events: 0,
            start_ns: 500,
            lane: 3,
        }
    }

    #[test]
    fn emits_complete_spans_and_instants() {
        let r = record();
        let j = chrome_trace_json(&[("fig10", std::slice::from_ref(&r))]);
        // Process metadata names the group.
        assert!(j.contains(r#""name":"process_name""#), "{j}");
        assert!(j.contains(r#""name":"fig10""#), "{j}");
        // Packet span: 0.5 µs → 3.5 µs on lane 3.
        assert!(j.contains(r#""name":"test.pkt #7","ph":"X","pid":1,"tid":3,"ts":0.5,"dur":3"#));
        // Stage span paired from enter/exit: 1 µs → 3 µs.
        assert!(j.contains(r#""name":"stage.a","ph":"X","pid":1,"tid":3,"ts":1,"dur":2"#));
        // Value event as instant with args.
        assert!(j.contains(r#""name":"meas.cfo","ph":"i""#));
        assert!(j.contains(r#""args":{"value":0.5}"#));
        // Unclosed stage closes at packet end (3.5 µs): dur 0.
        assert!(j.contains(r#""name":"stage.open","ph":"X","pid":1,"tid":3,"ts":3.5,"dur":0"#));
        // Failure carried into packet args.
        assert!(j.contains(r#""failure":"test.bad""#));
    }

    #[test]
    fn document_is_balanced_json() {
        let r = record();
        let j = chrome_trace_json(&[("a", std::slice::from_ref(&r)), ("b", &[])]);
        // Two process_name metadata entries, one per group.
        assert_eq!(j.matches(r#""ph":"M""#).count(), 2);
        assert!(j.starts_with(r#"{"traceEvents":["#));
        assert!(j.ends_with(r#""displayTimeUnit":"ms"}"#));
    }
}
