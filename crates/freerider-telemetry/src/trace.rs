//! The per-packet flight recorder.
//!
//! Aggregate metrics ([`crate::snapshot`]) answer "how many frames failed";
//! this module answers "why did *this* frame fail": every packet that flows
//! through a link opens a [`packet`] scope, and the RX chain, the channel,
//! the XOR decoder and the MAC record structured span/value events into it
//! (stage enter/exit, CFO estimate, per-subcarrier EVM, Viterbi path
//! metric, vote margins, slot outcomes). When the scope closes, the
//! recorded [`PacketRecord`] is retained or discarded according to the
//! trace mode:
//!
//! | `FREERIDER_TRACE` | retained |
//! |-------------------|----------|
//! | unset / `off`     | nothing (the hot path costs one atomic load)   |
//! | `failures`        | packets marked failed via [`fail`] (black box) |
//! | `all`             | every packet                                   |
//!
//! Retention is bounded: failed and successful packets live in separate
//! ring buffers (so a flood of successes can never evict the failure
//! post-mortems), each with a configurable cap, and each packet holds at
//! most [`MAX_EVENTS_PER_PACKET`] events. Nothing is dropped silently —
//! eviction and per-packet drop counts are reported by [`drain_stats`] and
//! in each record's `dropped_events`.
//!
//! # Determinism contract
//!
//! Event *content* (names, order, values) is a pure function of the packet
//! being decoded, so for any `FREERIDER_THREADS` the same workload yields
//! the same set of records (order-normalised by `(scope, id)` — see
//! [`write_forensics`], which serialises exactly the deterministic fields).
//! Wall-clock timestamps and thread lanes are recorded too, but only the
//! Chrome exporter ([`crate::chrome`]) uses them; the forensic dump omits
//! them by construction.
//!
//! Packet scopes nest (the executor's `rt.map` scope may be live on the
//! calling thread while a link opens per-packet scopes in serial mode);
//! events always attach to the innermost scope, so serial and parallel
//! runs produce identical per-packet records.

use crate::json::JsonWriter;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Environment variable selecting the trace mode (`off|failures|all`).
pub const TRACE_ENV: &str = "FREERIDER_TRACE";

/// Hard cap on events recorded per packet; the excess is counted in
/// [`PacketRecord::dropped_events`].
pub const MAX_EVENTS_PER_PACKET: usize = 4096;

/// Default capacity of the failed-packet ring buffer (the "black box").
pub const DEFAULT_FAILED_CAP: usize = 64;

/// Default capacity of the successful-packet ring buffer (`all` mode).
pub const DEFAULT_OK_CAP: usize = 512;

/// What the flight recorder retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Nothing is recorded; every hook is one branch.
    Off,
    /// Only packets marked failed are retained.
    Failures,
    /// Every packet is retained (failed and successful).
    All,
}

/// Parses a `FREERIDER_TRACE` value (unknown strings mean [`TraceMode::Off`]).
pub fn parse_mode(value: &str) -> TraceMode {
    match value.trim().to_ascii_lowercase().as_str() {
        "failures" | "failed" | "failure" => TraceMode::Failures,
        "all" | "on" | "1" => TraceMode::All,
        _ => TraceMode::Off,
    }
}

// Mode is a process-global atomic: 0 = not yet initialised, 1 = Off,
// 2 = Failures, 3 = All. Initialised lazily from the environment; tests
// and `repro --trace` override it with `set_mode`.
static MODE: AtomicU8 = AtomicU8::new(0);

fn encode_mode(m: TraceMode) -> u8 {
    match m {
        TraceMode::Off => 1,
        TraceMode::Failures => 2,
        TraceMode::All => 3,
    }
}

/// The current trace mode (reads `FREERIDER_TRACE` on first call).
pub fn mode() -> TraceMode {
    match MODE.load(Ordering::Relaxed) {
        0 => {
            let m = std::env::var(TRACE_ENV)
                .map(|v| parse_mode(&v))
                .unwrap_or(TraceMode::Off);
            // Racing initialisers compute the same value; last store wins.
            MODE.store(encode_mode(m), Ordering::Relaxed);
            m
        }
        2 => TraceMode::Failures,
        3 => TraceMode::All,
        _ => TraceMode::Off,
    }
}

/// Overrides the trace mode for the whole process (tests, `repro --trace`).
pub fn set_mode(m: TraceMode) {
    MODE.store(encode_mode(m), Ordering::Relaxed);
}

/// Whether any recording happens at all — the one branch the disabled
/// path pays at every hook.
#[inline]
pub fn active() -> bool {
    MODE.load(Ordering::Relaxed) > 1
        || (MODE.load(Ordering::Relaxed) == 0 && mode() != TraceMode::Off)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

fn lane() -> u64 {
    static NEXT_LANE: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static LANE: u64 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
    }
    LANE.try_with(|&l| l).unwrap_or(0)
}

/// An event's payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// No payload (stage enter/exit).
    None,
    /// An integer quantity.
    U64(u64),
    /// A real quantity (CFO, path metric, …). Deterministic by the
    /// workspace's bit-identical guarantee.
    F64(f64),
    /// A vector quantity (e.g. per-subcarrier EVM).
    F64s(Vec<f64>),
    /// A symbolic payload (failure reasons, outcomes).
    Str(&'static str),
}

/// What an event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A stage was entered.
    Enter,
    /// A stage was exited.
    Exit,
    /// A point measurement or decision.
    Value,
}

impl EventKind {
    fn name(self) -> &'static str {
        match self {
            EventKind::Enter => "enter",
            EventKind::Exit => "exit",
            EventKind::Value => "value",
        }
    }
}

/// One recorded event inside a packet scope.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Position in the packet's event sequence (0-based).
    pub seq: u32,
    /// Stage or measurement name (e.g. `wifi.rx.decode`, `wifi.rx.cfo`).
    pub name: &'static str,
    /// Enter / exit / value.
    pub kind: EventKind,
    /// Wall-clock nanoseconds since the process trace epoch. Excluded
    /// from the deterministic forensic serialisation.
    pub t_ns: u64,
    /// The payload.
    pub value: Value,
}

/// The complete decode trace of one packet.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketRecord {
    /// The scope label (e.g. `wifi.link`, `mac.round`, `rt.map`).
    pub scope: &'static str,
    /// Deterministic per-packet identifier (derive it from the seed and
    /// packet index so it is worker-count independent).
    pub id: u64,
    /// First failure reason, if the packet was marked failed.
    pub failure: Option<&'static str>,
    /// Events in record order.
    pub events: Vec<TraceEvent>,
    /// Events dropped by [`MAX_EVENTS_PER_PACKET`].
    pub dropped_events: u32,
    /// Wall-clock ns (trace epoch) when the scope opened. Chrome export
    /// only; not part of the forensic serialisation.
    pub start_ns: u64,
    /// Recording thread's lane id. Chrome export only.
    pub lane: u64,
}

thread_local! {
    static STACK: RefCell<Vec<PacketRecord>> = const { RefCell::new(Vec::new()) };
}

struct Sink {
    failed: VecDeque<PacketRecord>,
    ok: VecDeque<PacketRecord>,
    failed_cap: usize,
    ok_cap: usize,
    evicted_failed: u64,
    evicted_ok: u64,
}

impl Sink {
    fn new() -> Self {
        Sink {
            failed: VecDeque::new(),
            ok: VecDeque::new(),
            failed_cap: DEFAULT_FAILED_CAP,
            ok_cap: DEFAULT_OK_CAP,
            evicted_failed: 0,
            evicted_ok: 0,
        }
    }
}

fn sink() -> &'static Mutex<Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Sink::new()))
}

fn lock_sink() -> std::sync::MutexGuard<'static, Sink> {
    sink()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Ring-buffer capacities: `failed` bounds the black box, `ok` bounds
/// `all`-mode successful packets. Existing excess records are evicted.
pub fn set_capacity(failed: usize, ok: usize) {
    let mut s = lock_sink();
    s.failed_cap = failed.max(1);
    s.ok_cap = ok.max(1);
    while s.failed.len() > s.failed_cap {
        s.failed.pop_front();
        s.evicted_failed += 1;
    }
    while s.ok.len() > s.ok_cap {
        s.ok.pop_front();
        s.evicted_ok += 1;
    }
}

/// An RAII packet scope; closing it retains or discards the record.
#[must_use = "a packet scope records until it is dropped"]
#[derive(Debug)]
pub struct PacketScope {
    armed: bool,
}

/// Opens a packet scope on this thread. Events recorded until the guard
/// drops attach to this packet. Scopes nest; the innermost wins.
pub fn packet(scope: &'static str, id: u64) -> PacketScope {
    if !active() {
        return PacketScope { armed: false };
    }
    let armed = STACK
        .try_with(|stack| {
            stack.borrow_mut().push(PacketRecord {
                scope,
                id,
                failure: None,
                events: Vec::new(),
                dropped_events: 0,
                start_ns: now_ns(),
                lane: lane(),
            });
            true
        })
        .unwrap_or(false);
    PacketScope { armed }
}

impl Drop for PacketScope {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let record = STACK.try_with(|stack| stack.borrow_mut().pop());
        let Ok(Some(record)) = record else { return };
        let keep = match mode() {
            TraceMode::Off => false,
            TraceMode::Failures => record.failure.is_some(),
            TraceMode::All => true,
        };
        if !keep {
            return;
        }
        let mut s = lock_sink();
        if record.failure.is_some() {
            if s.failed.len() == s.failed_cap {
                s.failed.pop_front();
                s.evicted_failed += 1;
            }
            s.failed.push_back(record);
        } else {
            if s.ok.len() == s.ok_cap {
                s.ok.pop_front();
                s.evicted_ok += 1;
            }
            s.ok.push_back(record);
        }
    }
}

fn push_event(name: &'static str, kind: EventKind, value: Value) {
    let _ = STACK.try_with(|stack| {
        let mut stack = stack.borrow_mut();
        if let Some(rec) = stack.last_mut() {
            if rec.events.len() >= MAX_EVENTS_PER_PACKET {
                rec.dropped_events = rec.dropped_events.saturating_add(1);
                return;
            }
            let seq = rec.events.len() as u32;
            rec.events.push(TraceEvent {
                seq,
                name,
                kind,
                t_ns: now_ns(),
                value,
            });
        }
    });
}

/// Whether a packet scope is live on this thread (use to gate expensive
/// measurement computations, e.g. per-subcarrier EVM).
#[inline]
pub fn in_packet() -> bool {
    active() && STACK.try_with(|s| !s.borrow().is_empty()).unwrap_or(false)
}

/// An RAII stage guard: enter on creation, exit on drop.
#[must_use = "a stage records until it is dropped"]
#[derive(Debug)]
pub struct StageGuard {
    name: &'static str,
    armed: bool,
}

/// Enters stage `name` in the current packet scope (no-op when tracing is
/// off or no scope is live).
pub fn stage(name: &'static str) -> StageGuard {
    if !in_packet() {
        return StageGuard { name, armed: false };
    }
    push_event(name, EventKind::Enter, Value::None);
    StageGuard { name, armed: true }
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        if self.armed {
            push_event(self.name, EventKind::Exit, Value::None);
        }
    }
}

/// Records an integer measurement in the current packet scope.
#[inline]
pub fn value_u64(name: &'static str, v: u64) {
    if in_packet() {
        push_event(name, EventKind::Value, Value::U64(v));
    }
}

/// Records a real measurement in the current packet scope.
#[inline]
pub fn value_f64(name: &'static str, v: f64) {
    if in_packet() {
        push_event(name, EventKind::Value, Value::F64(v));
    }
}

/// Records a vector measurement in the current packet scope.
#[inline]
pub fn value_f64s(name: &'static str, v: &[f64]) {
    if in_packet() {
        push_event(name, EventKind::Value, Value::F64s(v.to_vec()));
    }
}

/// Records a symbolic measurement in the current packet scope.
#[inline]
pub fn value_str(name: &'static str, v: &'static str) {
    if in_packet() {
        push_event(name, EventKind::Value, Value::Str(v));
    }
}

/// Marks the current packet failed (first reason wins) and records the
/// reason as an event. Failed packets survive `FREERIDER_TRACE=failures`.
pub fn fail(reason: &'static str) {
    if !active() {
        return;
    }
    let _ = STACK.try_with(|stack| {
        let mut stack = stack.borrow_mut();
        if let Some(rec) = stack.last_mut() {
            if rec.failure.is_none() {
                rec.failure = Some(reason);
            }
        }
    });
    push_event("fail", EventKind::Value, Value::Str(reason));
}

/// Eviction statistics since the last [`drain`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Failed records evicted by the ring-buffer cap.
    pub evicted_failed: u64,
    /// Successful records evicted by the ring-buffer cap.
    pub evicted_ok: u64,
}

/// Takes every retained record (failed first, each in arrival order),
/// clearing the sink.
pub fn drain() -> Vec<PacketRecord> {
    let mut s = lock_sink();
    s.evicted_failed = 0;
    s.evicted_ok = 0;
    let mut out: Vec<PacketRecord> = s.failed.drain(..).collect();
    out.extend(s.ok.drain(..));
    out
}

/// Eviction counters for the records currently retained (call before
/// [`drain`] — draining resets them). A nonzero count means the trace is
/// a truncated view; report it rather than pretending completeness.
pub fn drain_stats() -> DrainStats {
    let s = lock_sink();
    DrainStats {
        evicted_failed: s.evicted_failed,
        evicted_ok: s.evicted_ok,
    }
}

/// Clears all retained records and eviction counters.
pub fn reset() {
    let mut s = lock_sink();
    s.failed.clear();
    s.ok.clear();
    s.evicted_failed = 0;
    s.evicted_ok = 0;
}

fn write_value(w: &mut JsonWriter, v: &Value) {
    match v {
        Value::None => {}
        Value::U64(x) => {
            w.key("value").u64(*x);
        }
        Value::F64(x) => {
            w.key("value").f64(*x);
        }
        Value::F64s(xs) => {
            w.key("value").begin_array();
            for &x in xs {
                w.f64(x);
            }
            w.end_array();
        }
        Value::Str(s) => {
            w.key("value").string(s);
        }
    }
}

/// Writes `records` as the deterministic forensic JSON array: records are
/// sorted by `(scope, id)` and only worker-count-independent fields are
/// serialised (no timestamps, no thread lanes) — the property the
/// 1-vs-4-worker equivalence test pins.
pub fn write_forensics(records: &[PacketRecord], w: &mut JsonWriter) {
    let mut sorted: Vec<&PacketRecord> = records.iter().collect();
    sorted.sort_by_key(|r| (r.scope, r.id));
    w.begin_array();
    for r in sorted {
        w.begin_object();
        w.key("scope").string(r.scope);
        w.key("id").u64(r.id);
        match r.failure {
            Some(reason) => {
                w.key("failure").string(reason);
            }
            None => {
                w.key("failure").null();
            }
        }
        w.key("dropped_events").u64(r.dropped_events as u64);
        w.key("events").begin_array();
        for e in &r.events {
            w.begin_object();
            w.key("seq").u64(e.seq as u64);
            w.key("name").string(e.name);
            w.key("kind").string(e.kind.name());
            write_value(w, &e.value);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
}

/// The forensic serialisation as a standalone JSON document.
pub fn forensics_json(records: &[PacketRecord]) -> String {
    let mut w = JsonWriter::new();
    write_forensics(records, &mut w);
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // Trace tests share the process-global mode + sink; serialise them.
    static SERIAL: StdMutex<()> = StdMutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn parse_modes() {
        assert_eq!(parse_mode("off"), TraceMode::Off);
        assert_eq!(parse_mode(""), TraceMode::Off);
        assert_eq!(parse_mode("Failures"), TraceMode::Failures);
        assert_eq!(parse_mode(" ALL "), TraceMode::All);
        assert_eq!(parse_mode("garbage"), TraceMode::Off);
    }

    #[test]
    fn off_mode_records_nothing() {
        let _g = guard();
        set_mode(TraceMode::Off);
        reset();
        {
            let _p = packet("test.pkt", 1);
            let _s = stage("test.stage");
            value_u64("test.v", 7);
            fail("test.fail");
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn failures_mode_keeps_only_failed_packets() {
        let _g = guard();
        set_mode(TraceMode::Failures);
        reset();
        {
            let _p = packet("test.pkt", 1);
            value_u64("test.v", 7);
        }
        {
            let _p = packet("test.pkt", 2);
            let _s = stage("test.stage");
            fail("test.reason");
            fail("test.second"); // first reason wins
        }
        let records = drain();
        set_mode(TraceMode::Off);
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!((r.scope, r.id), ("test.pkt", 2));
        assert_eq!(r.failure, Some("test.reason"));
        // enter, fail event, second fail event, exit
        assert_eq!(r.events.len(), 4);
        assert_eq!(r.events[0].kind, EventKind::Enter);
        assert_eq!(r.events.last().unwrap().kind, EventKind::Exit);
    }

    #[test]
    fn all_mode_keeps_everything_and_nests() {
        let _g = guard();
        set_mode(TraceMode::All);
        reset();
        {
            let _outer = packet("test.outer", 10);
            value_u64("outer.v", 1);
            {
                let _inner = packet("test.inner", 11);
                value_u64("inner.v", 2);
            }
            value_u64("outer.v2", 3);
        }
        let records = drain();
        set_mode(TraceMode::Off);
        assert_eq!(records.len(), 2);
        let inner = records.iter().find(|r| r.scope == "test.inner").unwrap();
        let outer = records.iter().find(|r| r.scope == "test.outer").unwrap();
        // Inner events never leak into the outer scope and vice versa.
        assert!(inner.events.iter().all(|e| e.name.starts_with("inner.")));
        assert_eq!(outer.events.len(), 2);
        assert!(outer.events.iter().all(|e| e.name.starts_with("outer.")));
    }

    #[test]
    fn event_cap_counts_drops() {
        let _g = guard();
        set_mode(TraceMode::All);
        reset();
        {
            let _p = packet("test.cap", 1);
            for _ in 0..(MAX_EVENTS_PER_PACKET + 10) {
                value_u64("test.v", 0);
            }
        }
        let records = drain();
        set_mode(TraceMode::Off);
        assert_eq!(records[0].events.len(), MAX_EVENTS_PER_PACKET);
        assert_eq!(records[0].dropped_events, 10);
    }

    #[test]
    fn ring_buffers_evict_oldest_and_count() {
        let _g = guard();
        set_mode(TraceMode::All);
        reset();
        set_capacity(2, 2);
        for id in 0..4u64 {
            let _p = packet("test.ring", id);
            fail("test.x");
        }
        for id in 10..13u64 {
            let _p = packet("test.ring", id);
        }
        let stats = drain_stats();
        let records = drain();
        set_mode(TraceMode::Off);
        set_capacity(DEFAULT_FAILED_CAP, DEFAULT_OK_CAP);
        assert_eq!(stats.evicted_failed, 2);
        assert_eq!(stats.evicted_ok, 1);
        let ids: Vec<u64> = records.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![2, 3, 11, 12]);
    }

    #[test]
    fn forensics_json_is_order_normalised_and_time_free() {
        let _g = guard();
        set_mode(TraceMode::Failures);
        reset();
        for id in [3u64, 1, 2] {
            let _p = packet("test.json", id);
            let _s = stage("test.stage");
            value_f64("test.cfo", 0.25);
            fail("test.bad");
        }
        let records = drain();
        set_mode(TraceMode::Off);
        let j = forensics_json(&records);
        // Sorted by id regardless of arrival order.
        let p1 = j.find(r#""id":1"#).unwrap();
        let p2 = j.find(r#""id":2"#).unwrap();
        let p3 = j.find(r#""id":3"#).unwrap();
        assert!(p1 < p2 && p2 < p3, "{j}");
        assert!(!j.contains("t_ns") && !j.contains("lane"), "{j}");
        assert!(j.contains(r#""failure":"test.bad""#));
        assert!(j.contains(r#""kind":"enter""#) && j.contains(r#""kind":"exit""#));
        assert!(j.contains(r#""name":"test.cfo","kind":"value","value":0.25"#));
    }
}
