//! A leveled event log gated by the `FREERIDER_LOG` environment variable.
//!
//! Levels are the usual `error < warn < info < debug < trace`; unset or
//! `off` disables everything (the default — experiment output stays
//! clean). The variable is read once per process. Events go to stderr so
//! they never corrupt machine-readable stdout/JSON output.
//!
//! ```no_run
//! freerider_telemetry::event!(Info, "wifi.rx", "decoded {} bytes", 42);
//! ```

use std::sync::OnceLock;

/// Environment variable selecting the log level.
pub const LOG_ENV: &str = "FREERIDER_LOG";

/// Event severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or clearly-wrong conditions.
    Error,
    /// Suspicious conditions the run survives.
    Warn,
    /// Coarse progress events.
    Info,
    /// Per-frame / per-decision detail.
    Debug,
    /// Per-sample firehose.
    Trace,
}

impl Level {
    fn name(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

/// Parses a `FREERIDER_LOG` value; `None` means logging is off.
fn parse(value: &str) -> Option<Level> {
    match value.trim().to_ascii_lowercase().as_str() {
        "error" => Some(Level::Error),
        "warn" | "warning" => Some(Level::Warn),
        "info" => Some(Level::Info),
        "debug" => Some(Level::Debug),
        "trace" => Some(Level::Trace),
        _ => None,
    }
}

fn max_level() -> Option<Level> {
    static MAX: OnceLock<Option<Level>> = OnceLock::new();
    *MAX.get_or_init(|| std::env::var(LOG_ENV).ok().as_deref().and_then(parse))
}

/// Whether events at `level` are currently emitted.
#[inline]
pub fn enabled(level: Level) -> bool {
    max_level().is_some_and(|max| level <= max)
}

/// Emits one event to stderr (prefer the [`crate::event!`] macro, which
/// skips formatting when the level is disabled).
pub fn emit(level: Level, target: &str, message: std::fmt::Arguments<'_>) {
    if enabled(level) {
        eprintln!("[{:5}] {target}: {message}", level.name());
    }
}

/// Logs a formatted event when `FREERIDER_LOG` admits its level.
///
/// Arguments: a [`Level`] variant name, a target string (conventionally
/// the subsystem, e.g. `"wifi.rx"`), then `format!`-style arguments.
#[macro_export]
macro_rules! event {
    ($level:ident, $target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::$level) {
            $crate::log::emit(
                $crate::log::Level::$level,
                $target,
                format_args!($($arg)*),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn parse_accepts_known_levels() {
        assert_eq!(parse("info"), Some(Level::Info));
        assert_eq!(parse(" WARN "), Some(Level::Warn));
        assert_eq!(parse("warning"), Some(Level::Warn));
        assert_eq!(parse("off"), None);
        assert_eq!(parse(""), None);
        assert_eq!(parse("nonsense"), None);
    }
}
