//! The hierarchical stage profiler.
//!
//! The flat counters of [`crate::registry`] say how much work each stage
//! did; the flight recorder ([`crate::trace`]) says what happened to one
//! packet. Neither answers the question a hot-path overhaul starts with:
//! *where does the time go, stage by stage, as a tree?* This module does.
//! RAII [`scope`] guards build per-thread call trees; every invocation
//! records its wall-clock into the stage's log₂ histogram, and
//! [`work`] / [`items`] / [`bits`] attach **deterministic cost counters**
//! (FFT butterflies, Viterbi ACS ops, demapped symbols, CRC bytes) and
//! throughput denominators to the innermost open stage.
//!
//! Stages are identified by their slash-joined path from the root
//! (`wifi.rx/decode/viterbi`), so the attribution report is a tree keyed
//! purely by code structure, never by thread identity.
//!
//! # Gating
//!
//! Profiling is off unless `FREERIDER_PROFILE` is set truthy (or a test /
//! `repro --profile` calls [`set_enabled`]). The disabled path of every
//! hook is a single relaxed atomic load — the same discipline as the
//! flight recorder, and bounded the same way by the `bench-baseline`
//! A/A profile-overhead triad.
//!
//! # Determinism contract
//!
//! A stage's *path*, *count*, *samples*, *bits* and *work counters* are
//! pure functions of the workload: scopes are only opened inside
//! per-work-item code (never around executor dispatch), so serial and
//! parallel runs produce identical trees, and the element-wise-addition
//! merge makes [`work_json`] byte-identical for any `FREERIDER_THREADS`.
//! Wall-clock fields (`total_ns`, `p50_ns`, `p90_ns`, throughput) are the
//! deliberate exception and live in a separate `timing` object per stage
//! that consumers must not diff.
//!
//! # Timing invariant
//!
//! Child scopes are disjoint sub-intervals of their parent measured by
//! the same monotonic clock, so per thread
//! `Σ children.total_ns ≤ parent.total_ns`; integer addition across
//! threads preserves the inequality, and `verify.sh` asserts it on a
//! live report.

use crate::hist::LogHistogram;
use crate::json::JsonWriter;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Environment variable enabling the profiler (`1|on|true|yes`).
pub const PROFILE_ENV: &str = "FREERIDER_PROFILE";

/// Path under which work recorded outside any open scope is filed.
pub const UNSCOPED: &str = "(unscoped)";

/// Schema tag of the full attribution report ([`report_json`]).
pub const PROFILE_SCHEMA: &str = "freerider-profile/1";

/// Schema tag of the deterministic work subset ([`work_json`]).
pub const WORK_SCHEMA: &str = "freerider-profile-work/1";

// 0 = not yet initialised, 1 = off, 2 = on. Initialised lazily from the
// environment; tests and `repro --profile` override with `set_enabled`.
static MODE: AtomicU8 = AtomicU8::new(0);

/// Parses a `FREERIDER_PROFILE` value (unknown strings mean off).
pub fn parse_enabled(value: &str) -> bool {
    matches!(
        value.trim().to_ascii_lowercase().as_str(),
        "1" | "on" | "true" | "yes"
    )
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var(PROFILE_ENV)
        .map(|v| parse_enabled(&v))
        .unwrap_or(false);
    // Racing initialisers compute the same value; last store wins.
    MODE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Whether profiling is on — the one relaxed atomic load the disabled
/// path pays at every hook (first call reads `FREERIDER_PROFILE`).
#[inline]
pub fn enabled() -> bool {
    match MODE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => init_from_env(),
    }
}

/// Overrides the profiler state for the whole process (tests,
/// `repro --profile`, `bench-baseline`).
pub fn set_enabled(on: bool) {
    MODE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Accumulated statistics of one stage (one tree node).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageStat {
    /// Scope invocations (deterministic).
    pub count: u64,
    /// Total wall-clock nanoseconds inside the scope (timing).
    pub total_ns: u64,
    /// Per-invocation wall-clock histogram (timing; feeds p50/p90).
    pub hist: LogHistogram,
    /// Throughput denominator: samples processed (deterministic).
    pub samples: u64,
    /// Throughput denominator: payload bits processed (deterministic).
    pub bits: u64,
    /// Named deterministic work counters (butterflies, ACS ops, …).
    pub work: BTreeMap<&'static str, u64>,
}

impl StageStat {
    fn merge(&mut self, other: &StageStat) {
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.hist.merge(&other.hist);
        self.samples += other.samples;
        self.bits += other.bits;
        for (&k, &v) in &other.work {
            *self.work.entry(k).or_insert(0) += v;
        }
    }
}

/// A merged profile: stage path → accumulated stats. `BTreeMap` keeps
/// the report order deterministic and parents before their children
/// (a path is a strict prefix of its children's paths).
pub type ProfileData = BTreeMap<String, StageStat>;

struct Registry {
    /// Data from threads that have exited.
    graveyard: Mutex<ProfileData>,
    /// Live per-thread cells (lock order: graveyard, live, then cell).
    live: Mutex<Vec<Arc<Mutex<ProfileData>>>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        graveyard: Mutex::new(ProfileData::new()),
        live: Mutex::new(Vec::new()),
    })
}

/// Owns one thread's cell; `Drop` folds it into the graveyard so data
/// from finished worker threads survives into later reports.
struct LocalCell {
    data: Arc<Mutex<ProfileData>>,
}

impl Drop for LocalCell {
    fn drop(&mut self) {
        let reg = registry();
        let mut grave = lock(&reg.graveyard);
        let mut live = lock(&reg.live);
        live.retain(|c| !Arc::ptr_eq(c, &self.data));
        for (path, stat) in lock(&self.data).iter() {
            grave.entry(path.clone()).or_default().merge(stat);
        }
    }
}

thread_local! {
    static CELL: LocalCell = {
        let data = Arc::new(Mutex::new(ProfileData::new()));
        lock(&registry().live).push(Arc::clone(&data));
        LocalCell { data }
    };
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

struct Frame {
    path: String,
    start: Instant,
}

fn with_stat<F: FnOnce(&mut StageStat)>(path: &str, f: F) {
    let _ = CELL.try_with(|cell| {
        let mut data = lock(&cell.data);
        if !data.contains_key(path) {
            data.insert(path.to_string(), StageStat::default());
        }
        if let Some(stat) = data.get_mut(path) {
            f(stat);
        }
    });
}

/// The innermost open path on this thread, or [`UNSCOPED`].
fn current_path<F: FnOnce(&str)>(f: F) {
    let _ = STACK.try_with(|stack| {
        let stack = stack.borrow();
        f(stack.last().map(|fr| fr.path.as_str()).unwrap_or(UNSCOPED));
    });
}

/// An RAII stage scope; dropping it records the invocation.
#[must_use = "a profile scope measures until it is dropped"]
#[derive(Debug)]
pub struct ScopeGuard {
    armed: bool,
}

/// Opens stage `name` under the innermost open scope (a root when none
/// is open). No-op unless [`enabled`]. Scope trees must be opened inside
/// per-work-item code — never around executor dispatch — so the tree
/// shape is identical for any worker count.
pub fn scope(name: &'static str) -> ScopeGuard {
    if !enabled() {
        return ScopeGuard { armed: false };
    }
    let armed = STACK
        .try_with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{}/{name}", parent.path),
                None => name.to_string(),
            };
            stack.push(Frame {
                path,
                start: Instant::now(),
            });
            true
        })
        .unwrap_or(false);
    ScopeGuard { armed }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let frame = STACK.try_with(|stack| stack.borrow_mut().pop());
        let Ok(Some(frame)) = frame else { return };
        let ns = frame.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        with_stat(&frame.path, |stat| {
            stat.count += 1;
            stat.total_ns = stat.total_ns.saturating_add(ns);
            stat.hist.record(ns);
        });
    }
}

/// Adds `n` to the deterministic work counter `counter` of the innermost
/// open stage ([`UNSCOPED`] when none). One atomic load when disabled.
#[inline]
pub fn work(counter: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    current_path(|path| {
        with_stat(path, |stat| {
            *stat.work.entry(counter).or_insert(0) += n;
        })
    });
}

/// Credits `n` processed samples to the innermost open stage (the
/// samples/s denominator of the report).
#[inline]
pub fn items(n: u64) {
    if !enabled() {
        return;
    }
    current_path(|path| with_stat(path, |stat| stat.samples += n));
}

/// Credits `n` payload bits to the innermost open stage (the bits/s
/// denominator of the report).
#[inline]
pub fn bits(n: u64) {
    if !enabled() {
        return;
    }
    current_path(|path| with_stat(path, |stat| stat.bits += n));
}

/// Merges every thread's data (graveyard + live) into one report.
pub fn report() -> ProfileData {
    let reg = registry();
    let grave = lock(&reg.graveyard);
    let live = lock(&reg.live);
    let mut out = grave.clone();
    for cell in live.iter() {
        for (path, stat) in lock(cell).iter() {
            out.entry(path.clone()).or_default().merge(stat);
        }
    }
    out
}

/// Clears all recorded data on every thread (live and graveyard).
pub fn reset() {
    let reg = registry();
    let mut grave = lock(&reg.graveyard);
    let live = lock(&reg.live);
    grave.clear();
    for cell in live.iter() {
        lock(cell).clear();
    }
}

/// The parent path of `path` (`None` for roots).
fn parent_of(path: &str) -> Option<&str> {
    path.rfind('/').map(|i| &path[..i])
}

/// The last path segment (the stage's own name).
fn leaf_of(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Writes the full attribution report (schema [`PROFILE_SCHEMA`]).
///
/// Stages come out in path order (parents before children). Each stage
/// carries the deterministic fields (`path`, `name`, `depth`, `count`,
/// `samples`, `bits`, `work`) and a separate `timing` object
/// (`total_ns`, `p50_ns`, `p90_ns`, `percent_of_parent`, derived
/// throughput) that consumers must not diff.
pub fn write_report(data: &ProfileData, w: &mut JsonWriter) {
    w.begin_object();
    w.key("schema").string(PROFILE_SCHEMA);
    w.key("stages").begin_array();
    for (path, stat) in data {
        w.begin_object();
        w.key("path").string(path);
        w.key("name").string(leaf_of(path));
        w.key("depth").u64(path.matches('/').count() as u64);
        w.key("count").u64(stat.count);
        w.key("samples").u64(stat.samples);
        w.key("bits").u64(stat.bits);
        w.key("work").begin_object();
        for (&k, &v) in &stat.work {
            w.key(k).u64(v);
        }
        w.end_object();
        w.key("timing").begin_object();
        w.key("total_ns").u64(stat.total_ns);
        w.key("p50_ns").u64(stat.hist.p50().unwrap_or(0));
        w.key("p90_ns").u64(stat.hist.p90().unwrap_or(0));
        let parent_total = parent_of(path)
            .and_then(|p| data.get(p))
            .map(|s| s.total_ns);
        let pct = match parent_total {
            Some(pt) if pt > 0 => round2(stat.total_ns as f64 / pt as f64 * 100.0),
            Some(_) => 0.0,
            None => 100.0,
        };
        w.key("percent_of_parent").f64(pct);
        if stat.total_ns > 0 {
            let secs = stat.total_ns as f64 / 1e9;
            if stat.samples > 0 {
                w.key("samples_per_s")
                    .f64(round2(stat.samples as f64 / secs));
            }
            if stat.bits > 0 {
                w.key("bits_per_s").f64(round2(stat.bits as f64 / secs));
            }
        }
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();
}

/// [`write_report`] as a standalone JSON document.
pub fn report_json(data: &ProfileData) -> String {
    let mut w = JsonWriter::new();
    write_report(data, &mut w);
    w.finish()
}

/// Serialises only the deterministic subset — paths, invocation counts,
/// samples/bits and work counters, all integers in sorted order — so the
/// bytes are identical for any `FREERIDER_THREADS` (schema
/// [`WORK_SCHEMA`]; the property the 1-vs-4-worker test pins).
pub fn work_json(data: &ProfileData) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema").string(WORK_SCHEMA);
    w.key("stages").begin_object();
    for (path, stat) in data {
        w.key(path).begin_object();
        w.key("count").u64(stat.count);
        w.key("samples").u64(stat.samples);
        w.key("bits").u64(stat.bits);
        w.key("work").begin_object();
        for (&k, &v) in &stat.work {
            w.key(k).u64(v);
        }
        w.end_object();
        w.end_object();
    }
    w.end_object();
    w.end_object();
    w.finish()
}

/// Renders the report as an indented, human-readable table: one line per
/// stage with count, total, p50/p90, percent-of-parent and work
/// counters. What `repro --profile` prints.
pub fn table(data: &ProfileData) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if data.is_empty() {
        out.push_str("(no profile data recorded)\n");
        return out;
    }
    let width = data
        .keys()
        .map(|p| 2 * p.matches('/').count() + leaf_of(p).len())
        .max()
        .unwrap_or(8)
        .max(8);
    let _ = writeln!(
        out,
        "{:<width$}  {:>9}  {:>12}  {:>10}  {:>10}  {:>6}  work",
        "stage", "count", "total", "p50", "p90", "par%"
    );
    for (path, stat) in data {
        let depth = path.matches('/').count();
        let label = format!("{}{}", "  ".repeat(depth), leaf_of(path));
        let parent_total = parent_of(path)
            .and_then(|p| data.get(p))
            .map(|s| s.total_ns);
        let pct = match parent_total {
            Some(pt) if pt > 0 => stat.total_ns as f64 / pt as f64 * 100.0,
            Some(_) => 0.0,
            None => 100.0,
        };
        let work: Vec<String> = stat.work.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let _ = writeln!(
            out,
            "{label:<width$}  {:>9}  {:>12}  {:>10}  {:>10}  {:>5.1}%  {}",
            stat.count,
            format_ns(stat.total_ns),
            format_ns(stat.hist.p50().unwrap_or(0)),
            format_ns(stat.hist.p90().unwrap_or(0)),
            pct,
            work.join(" ")
        );
    }
    out
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // Profile tests share the process-global mode + registry; serialise.
    static SERIAL: StdMutex<()> = StdMutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn parse_values() {
        assert!(parse_enabled("1"));
        assert!(parse_enabled(" ON "));
        assert!(parse_enabled("true"));
        assert!(!parse_enabled(""));
        assert!(!parse_enabled("off"));
        assert!(!parse_enabled("garbage"));
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = guard();
        set_enabled(false);
        reset();
        {
            let _s = scope("test.off");
            work("test.ops", 5);
            items(3);
            bits(8);
        }
        assert!(report().is_empty());
        set_enabled(false);
    }

    #[test]
    fn scope_tree_builds_paths_and_attributes_work() {
        let _g = guard();
        set_enabled(true);
        reset();
        for _ in 0..3 {
            let _root = scope("test.pipe");
            {
                let _c = scope("stage_a");
                work("test.ops", 10);
                items(64);
            }
            {
                let _c = scope("stage_b");
                work("test.ops", 1);
                bits(100);
            }
        }
        let data = report();
        set_enabled(false);
        let root = &data["test.pipe"];
        let a = &data["test.pipe/stage_a"];
        let b = &data["test.pipe/stage_b"];
        assert_eq!(root.count, 3);
        assert_eq!(a.count, 3);
        assert_eq!(a.work["test.ops"], 30);
        assert_eq!(a.samples, 192);
        assert_eq!(b.work["test.ops"], 3);
        assert_eq!(b.bits, 300);
        // Children are disjoint sub-intervals of the parent.
        assert!(a.total_ns + b.total_ns <= root.total_ns);
        assert_eq!(a.hist.count, 3);
    }

    #[test]
    fn work_outside_any_scope_lands_in_unscoped() {
        let _g = guard();
        set_enabled(true);
        reset();
        work("test.stray", 7);
        let data = report();
        set_enabled(false);
        assert_eq!(data[UNSCOPED].work["test.stray"], 7);
    }

    #[test]
    fn threads_merge_like_serial() {
        let _g = guard();
        set_enabled(true);
        reset();
        let run = || {
            for _ in 0..5 {
                let _s = scope("test.mt");
                work("test.ops", 2);
            }
        };
        std::thread::scope(|s| {
            s.spawn(run);
            s.spawn(run);
        });
        run();
        let data = report();
        set_enabled(false);
        // Two finished threads (graveyard) plus this one (live).
        assert_eq!(data["test.mt"].count, 15);
        assert_eq!(data["test.mt"].work["test.ops"], 30);
    }

    #[test]
    fn report_json_carries_schema_and_tree_fields() {
        let _g = guard();
        set_enabled(true);
        reset();
        {
            let _root = scope("test.json");
            let _c = scope("inner");
        }
        let data = report();
        set_enabled(false);
        let j = report_json(&data);
        assert!(j.starts_with(r#"{"schema":"freerider-profile/1""#), "{j}");
        assert!(j.contains(r#""path":"test.json/inner""#), "{j}");
        assert!(j.contains(r#""depth":1"#), "{j}");
        assert!(j.contains(r#""percent_of_parent""#), "{j}");
        // Parent rows precede child rows.
        let p = j.find(r#""path":"test.json""#).unwrap();
        let c = j.find(r#""path":"test.json/inner""#).unwrap();
        assert!(p < c, "{j}");
    }

    #[test]
    fn work_json_is_integer_only_and_time_free() {
        let _g = guard();
        set_enabled(true);
        reset();
        {
            let _s = scope("test.det");
            work("test.ops", 9);
            items(4);
        }
        let data = report();
        set_enabled(false);
        let j = work_json(&data);
        assert!(
            j.starts_with(r#"{"schema":"freerider-profile-work/1""#),
            "{j}"
        );
        assert!(
            !j.contains("ns"),
            "deterministic dump must be time-free: {j}"
        );
        assert!(j.contains(r#""test.det":{"count":1,"samples":4,"bits":0,"work":{"test.ops":9}}"#));
    }

    #[test]
    fn table_indents_children() {
        let _g = guard();
        set_enabled(true);
        reset();
        {
            let _root = scope("test.tbl");
            let _c = scope("leaf");
        }
        let data = report();
        set_enabled(false);
        let t = table(&data);
        assert!(t.contains("test.tbl"), "{t}");
        assert!(t.contains("  leaf"), "{t}");
        assert!(t.contains("100.0%"), "{t}");
    }
}
