//! The global registry and per-thread collectors.
//!
//! Every thread that records telemetry gets a thread-local collector (a
//! [`Snapshot`] behind a mutex). The global registry tracks the live
//! collectors plus a *graveyard* snapshot that absorbs collectors of
//! threads that have exited — `freerider_rt::Executor` spawns fresh scoped
//! workers per call, so without the graveyard the registry would grow
//! without bound and dead workers' data would be lost.
//!
//! [`snapshot`] merges graveyard + live collectors. Because counters and
//! histograms merge by addition, the merged metric section is bit-identical
//! for any worker count over the same workload; only the wall-clock timer
//! section varies.
//!
//! Lock ordering: graveyard → live list → individual collector cell,
//! everywhere. Poisoned mutexes are recovered (telemetry must never turn a
//! worker panic into a second failure).

use crate::snapshot::Snapshot;
use crate::timer::Span;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

struct Registry {
    graveyard: Mutex<Snapshot>,
    live: Mutex<Vec<Arc<Mutex<Snapshot>>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        graveyard: Mutex::new(Snapshot::new()),
        live: Mutex::new(Vec::new()),
    })
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Owns one live collector; its drop moves the data to the graveyard.
struct LocalHandle {
    cell: Arc<Mutex<Snapshot>>,
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        let reg = registry();
        // Lock order: graveyard → live → cell.
        let mut graveyard = lock(&reg.graveyard);
        lock(&reg.live).retain(|c| !Arc::ptr_eq(c, &self.cell));
        let cell = lock(&self.cell);
        graveyard.merge(&cell);
    }
}

thread_local! {
    static LOCAL: LocalHandle = {
        let cell = Arc::new(Mutex::new(Snapshot::new()));
        lock(&registry().live).push(Arc::clone(&cell));
        LocalHandle { cell }
    };
}

fn with_local(f: impl FnOnce(&mut Snapshot)) {
    // During thread teardown the TLS slot may already be gone; telemetry
    // recorded that late is dropped rather than panicking.
    let _ = LOCAL.try_with(|local| f(&mut lock(&local.cell)));
}

/// Increments counter `name` by 1 on this thread's collector.
#[inline]
pub fn count(name: &'static str) {
    count_n(name, 1);
}

/// Adds `n` to counter `name` on this thread's collector.
#[inline]
pub fn count_n(name: &'static str, n: u64) {
    with_local(|s| s.count(name, n));
}

/// Records `value` into histogram `name` on this thread's collector.
#[inline]
pub fn record(name: &'static str, value: u64) {
    with_local(|s| s.record(name, value));
}

/// Records a completed wall-clock span (used by [`Span`]'s drop).
pub fn record_span_ns(name: &'static str, ns: u64) {
    with_local(|s| s.record_span_ns(name, ns));
}

/// Starts a wall-clock span that records itself under `name` on drop.
#[must_use = "a span measures until it is dropped"]
pub fn span(name: &'static str) -> Span {
    Span::start(name)
}

/// Merges graveyard and all live collectors into one [`Snapshot`].
///
/// The returned counters/histograms depend only on what was recorded, not
/// on how many threads recorded it or in which order they finished.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let graveyard = lock(&reg.graveyard);
    let live = lock(&reg.live);
    let mut merged = graveyard.clone();
    for cell in live.iter() {
        merged.merge(&lock(cell));
    }
    merged
}

/// Clears the graveyard and every live collector. Call between experiments
/// so each one reports only its own events.
pub fn reset() {
    let reg = registry();
    let mut graveyard = lock(&reg.graveyard);
    let live = lock(&reg.live);
    *graveyard = Snapshot::new();
    for cell in live.iter() {
        *lock(cell) = Snapshot::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests share the process-global registry with each other, so
    // they serialise on one mutex and only assert on names they own.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn count_record_snapshot_roundtrip() {
        let _guard = lock(&SERIAL);
        reset();
        count("test.reg.a");
        count_n("test.reg.a", 4);
        record("test.reg.h", 10);
        let s = snapshot();
        assert_eq!(s.counter("test.reg.a"), 5);
        assert_eq!(s.histogram("test.reg.h").unwrap().count, 1);
        reset();
        assert_eq!(snapshot().counter("test.reg.a"), 0);
    }

    #[test]
    fn dead_threads_land_in_graveyard() {
        let _guard = lock(&SERIAL);
        reset();
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| count_n("test.reg.dead", 7)))
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(snapshot().counter("test.reg.dead"), 28);
        reset();
    }

    #[test]
    fn span_records_a_timer() {
        let _guard = lock(&SERIAL);
        reset();
        {
            let _s = span("test.reg.span");
        }
        let s = snapshot();
        assert_eq!(s.timers["test.reg.span"].count, 1);
        reset();
    }
}
