//! FIR filter design and application.
//!
//! Used across the workspace for:
//!
//! * receiver channel-select filters (the mechanism that removes the
//!   backscatter tag's unwanted mirror sideband, paper §2.3.4 / §3.2.3),
//! * the Gaussian pulse-shaping filter of the BLE GFSK modulator,
//! * the half-sine matched filter of the O-QPSK demodulator,
//! * the RC low-pass inside the tag's envelope detector.
//!
//! Design is by the windowed-sinc method with a Hamming window — simple,
//! linear-phase, and entirely adequate for channel simulation.

use crate::complex::Complex;

/// A finite-impulse-response filter with real taps.
///
/// Applies to complex IQ buffers; real taps are the common case for
/// symmetric low-pass/band-pass responses.
#[derive(Debug, Clone, PartialEq)]
pub struct Fir {
    taps: Vec<f64>,
}

impl Fir {
    /// Creates a filter from explicit taps.
    ///
    /// # Panics
    /// Panics if `taps` is empty.
    pub fn new(taps: Vec<f64>) -> Self {
        assert!(!taps.is_empty(), "FIR must have at least one tap");
        Fir { taps }
    }

    /// Designs a windowed-sinc low-pass filter.
    ///
    /// * `cutoff` — normalised cutoff frequency in cycles/sample, in `(0, 0.5)`.
    /// * `num_taps` — filter length; odd lengths give integer group delay.
    pub fn low_pass(cutoff: f64, num_taps: usize) -> Self {
        assert!(
            cutoff > 0.0 && cutoff < 0.5,
            "cutoff must be in (0, 0.5), got {cutoff}"
        );
        assert!(num_taps >= 3, "need at least 3 taps");
        let m = (num_taps - 1) as f64;
        let mut taps: Vec<f64> = (0..num_taps)
            .map(|n| {
                let x = n as f64 - m / 2.0;
                let sinc = if x.abs() < 1e-12 {
                    2.0 * cutoff
                } else {
                    (2.0 * std::f64::consts::PI * cutoff * x).sin() / (std::f64::consts::PI * x)
                };
                let w = 0.54 - 0.46 * (2.0 * std::f64::consts::PI * n as f64 / m).cos();
                sinc * w
            })
            .collect();
        // Normalise to unity DC gain.
        let s: f64 = taps.iter().sum();
        for t in &mut taps {
            *t /= s;
        }
        Fir { taps }
    }

    /// Designs a band-pass filter centred at `center` (cycles/sample) with
    /// single-sided bandwidth `half_width`, by modulating a low-pass design.
    ///
    /// The passband is `[center - half_width, center + half_width]`; note the
    /// response is real-tap only when applied as two mixing steps, so this
    /// helper returns a low-pass and the caller mixes. For convenience we
    /// instead expose [`Fir::filter_around`].
    pub fn band_select(half_width: f64, num_taps: usize) -> Self {
        Self::low_pass(half_width, num_taps)
    }

    /// Gaussian filter taps for GFSK with bandwidth-time product `bt`,
    /// spanning `span` symbol periods at `sps` samples/symbol.
    pub fn gaussian(bt: f64, sps: usize, span: usize) -> Self {
        assert!(bt > 0.0 && sps > 0 && span > 0);
        let n = sps * span + 1;
        let sigma = (2.0f64.ln()).sqrt() / (2.0 * std::f64::consts::PI * bt);
        let mid = (n - 1) as f64 / 2.0;
        let mut taps: Vec<f64> = (0..n)
            .map(|i| {
                let t = (i as f64 - mid) / sps as f64; // in symbol periods
                (-t * t / (2.0 * sigma * sigma)).exp()
            })
            .collect();
        let s: f64 = taps.iter().sum();
        for t in &mut taps {
            *t /= s;
        }
        Fir { taps }
    }

    /// The filter taps.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Group delay in samples (for linear-phase symmetric designs).
    pub fn group_delay(&self) -> usize {
        (self.taps.len() - 1) / 2
    }

    /// Filters a complex buffer, returning a buffer of the same length
    /// ("same" convolution: output delayed by the group delay is trimmed).
    pub fn filter(&self, input: &[Complex]) -> Vec<Complex> {
        let full = self.filter_full(input);
        let d = self.group_delay();
        full[d..d + input.len()].to_vec()
    }

    /// Full convolution, output length `input.len() + taps.len() - 1`.
    pub fn filter_full(&self, input: &[Complex]) -> Vec<Complex> {
        let n = input.len();
        let k = self.taps.len();
        let mut out = vec![Complex::ZERO; n + k - 1];
        for (i, &x) in input.iter().enumerate() {
            if x == Complex::ZERO {
                continue;
            }
            for (j, &t) in self.taps.iter().enumerate() {
                out[i + j] += x * t;
            }
        }
        out
    }

    /// Filters a real-valued buffer ("same" length).
    pub fn filter_real(&self, input: &[f64]) -> Vec<f64> {
        let n = input.len();
        let k = self.taps.len();
        let mut full = vec![0.0; n + k - 1];
        for (i, &x) in input.iter().enumerate() {
            if x == 0.0 {
                continue;
            }
            for (j, &t) in self.taps.iter().enumerate() {
                full[i + j] += x * t;
            }
        }
        let d = self.group_delay();
        full[d..d + n].to_vec()
    }

    /// Filters `input` around a frequency offset: mixes the band at
    /// `freq_norm` (cycles/sample) down to DC, low-pass filters, and leaves
    /// the result at baseband. This models a receiver front-end tuned to an
    /// adjacent channel — exactly what the FreeRider backscatter receiver
    /// does when the tag shifts the excitation signal by e.g. 20 MHz.
    pub fn filter_around(&self, input: &[Complex], freq_norm: f64) -> Vec<Complex> {
        let mixed: Vec<Complex> = input
            .iter()
            .enumerate()
            .map(|(n, &x)| x * Complex::cis(-2.0 * std::f64::consts::PI * freq_norm * n as f64))
            .collect();
        self.filter(&mixed)
    }
}

/// A single-pole RC low-pass useful for envelope-detector modelling.
///
/// `y[n] = α·x[n] + (1-α)·y[n-1]` with `α = dt/(RC + dt)`.
#[derive(Debug, Clone, Copy)]
pub struct RcLowPass {
    alpha: f64,
    state: f64,
}

impl RcLowPass {
    /// Creates an RC low-pass with time constant `tau_s` at sample period `dt_s`.
    pub fn new(tau_s: f64, dt_s: f64) -> Self {
        assert!(tau_s > 0.0 && dt_s > 0.0);
        RcLowPass {
            alpha: dt_s / (tau_s + dt_s),
            state: 0.0,
        }
    }

    /// Processes one sample.
    #[inline]
    pub fn step(&mut self, x: f64) -> f64 {
        self.state += self.alpha * (x - self.state);
        self.state
    }

    /// Resets internal state to zero.
    pub fn reset(&mut self) {
        self.state = 0.0;
    }

    /// Processes a whole buffer.
    pub fn process(&mut self, input: &[f64]) -> Vec<f64> {
        input.iter().map(|&x| self.step(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osc::Nco;

    #[test]
    #[should_panic]
    fn empty_taps_panic() {
        let _ = Fir::new(vec![]);
    }

    #[test]
    fn low_pass_passes_dc() {
        let f = Fir::low_pass(0.1, 31);
        let input = vec![Complex::ONE; 200];
        let out = f.filter(&input);
        // Middle of buffer should be ~1.0 (unity DC gain).
        assert!((out[100].re - 1.0).abs() < 1e-6);
    }

    #[test]
    fn low_pass_rejects_high_frequency() {
        let f = Fir::low_pass(0.05, 63);
        let mut nco = Nco::new(0.4);
        let input: Vec<Complex> = (0..400).map(|_| nco.next()).collect();
        let out = f.filter(&input);
        let p: f64 = out[100..300].iter().map(|z| z.norm_sqr()).sum::<f64>() / 200.0;
        assert!(p < 1e-3, "stopband power {p}");
    }

    #[test]
    fn low_pass_passes_in_band_tone() {
        let f = Fir::low_pass(0.1, 63);
        let mut nco = Nco::new(0.02);
        let input: Vec<Complex> = (0..400).map(|_| nco.next()).collect();
        let out = f.filter(&input);
        let p: f64 = out[100..300].iter().map(|z| z.norm_sqr()).sum::<f64>() / 200.0;
        assert!((p - 1.0).abs() < 0.05, "passband power {p}");
    }

    #[test]
    fn filter_around_extracts_offset_band() {
        // Two tones: one at 0.25 cycles/sample, one at DC. Tuning to 0.25
        // should keep only the first.
        let mut nco = Nco::new(0.25);
        let input: Vec<Complex> = (0..600)
            .map(|_| nco.next() + Complex::new(1.0, 0.0))
            .collect();
        let f = Fir::low_pass(0.05, 63);
        let out = f.filter_around(&input, 0.25);
        let p: f64 = out[150..450].iter().map(|z| z.norm_sqr()).sum::<f64>() / 300.0;
        assert!((p - 1.0).abs() < 0.05, "extracted power {p}");
    }

    #[test]
    fn gaussian_taps_are_symmetric_and_normalised() {
        let f = Fir::gaussian(0.5, 8, 4);
        let t = f.taps();
        let s: f64 = t.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        for i in 0..t.len() / 2 {
            assert!((t[i] - t[t.len() - 1 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn rc_low_pass_settles_to_input() {
        let mut rc = RcLowPass::new(1e-6, 50e-9);
        let mut y = 0.0;
        for _ in 0..2000 {
            y = rc.step(1.0);
        }
        assert!((y - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rc_low_pass_smooths_steps() {
        let mut rc = RcLowPass::new(1e-6, 50e-9);
        let y1 = rc.step(1.0);
        assert!(y1 > 0.0 && y1 < 0.1, "single step should move slowly: {y1}");
    }

    #[test]
    fn filter_real_matches_complex() {
        let f = Fir::low_pass(0.2, 11);
        let xr: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
        let xc: Vec<Complex> = xr.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let yr = f.filter_real(&xr);
        let yc = f.filter(&xc);
        for (a, b) in yr.iter().zip(yc.iter()) {
            assert!((a - b.re).abs() < 1e-12);
        }
    }
}
