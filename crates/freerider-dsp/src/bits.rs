//! Bit/byte packing helpers shared by every framer in the workspace.
//!
//! All PHYs here (802.11, 802.15.4, BLE) serialise bytes LSB-first on the
//! air, so the helpers default to LSB-first ordering with explicit
//! MSB-first variants where a codec needs them.

/// Unpacks bytes into bits, least-significant bit of each byte first
/// (the over-the-air order for 802.11, 802.15.4 and BLE).
pub fn bytes_to_bits_lsb(bytes: &[u8]) -> Vec<u8> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in 0..8 {
            bits.push((b >> i) & 1);
        }
    }
    bits
}

/// Packs bits (LSB-first per byte) into bytes. The final partial byte, if
/// any, is zero-padded in its high bits.
pub fn bits_to_bytes_lsb(bits: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(bits.len().div_ceil(8));
    bits_to_bytes_lsb_into(bits, &mut bytes);
    bytes
}

/// [`bits_to_bytes_lsb`] into a caller-provided buffer (cleared first),
/// for allocation-free receive loops.
pub fn bits_to_bytes_lsb_into(bits: &[u8], bytes: &mut Vec<u8>) {
    bytes.clear();
    bytes.reserve(bits.len().div_ceil(8));
    for chunk in bits.chunks(8) {
        let mut b = 0u8;
        for (i, &bit) in chunk.iter().enumerate() {
            b |= (bit & 1) << i;
        }
        bytes.push(b);
    }
}

/// Unpacks bytes into bits, most-significant bit first.
pub fn bytes_to_bits_msb(bytes: &[u8]) -> Vec<u8> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in (0..8).rev() {
            bits.push((b >> i) & 1);
        }
    }
    bits
}

/// Packs bits (MSB-first per byte) into bytes, zero-padding the tail.
pub fn bits_to_bytes_msb(bits: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(bits.len().div_ceil(8));
    for chunk in bits.chunks(8) {
        let mut b = 0u8;
        for (i, &bit) in chunk.iter().enumerate() {
            b |= (bit & 1) << (7 - i);
        }
        bytes.push(b);
    }
    bytes
}

/// Counts the positions at which two bit slices differ (Hamming distance
/// over the common prefix) plus the length difference.
pub fn hamming_distance(a: &[u8], b: &[u8]) -> usize {
    let common = a.len().min(b.len());
    let diff = a[..common]
        .iter()
        .zip(&b[..common])
        .filter(|(x, y)| (**x & 1) != (**y & 1))
        .count();
    diff + (a.len().max(b.len()) - common)
}

/// Bit error rate between a transmitted and received bit sequence.
/// Returns 1.0 when the reference is empty but the received is not, and
/// 0.0 when both are empty.
pub fn bit_error_rate(reference: &[u8], received: &[u8]) -> f64 {
    if reference.is_empty() {
        return if received.is_empty() { 0.0 } else { 1.0 };
    }
    hamming_distance(reference, received) as f64 / reference.len().max(received.len()) as f64
}

/// XOR of two equal-length bit slices — the FreeRider tag-data extraction
/// primitive (Table 1 of the paper). Truncates to the shorter input.
pub fn xor_bits(a: &[u8], b: &[u8]) -> Vec<u8> {
    a.iter().zip(b.iter()).map(|(x, y)| (x ^ y) & 1).collect()
}

/// Majority vote over a bit window: returns 1 if strictly more than half of
/// the bits are 1.
pub fn majority(bits: &[u8]) -> u8 {
    let ones = bits.iter().filter(|&&b| b & 1 == 1).count();
    u8::from(ones * 2 > bits.len())
}

/// A Fibonacci LFSR over GF(2), used for PN sequence generation and data
/// whitening. Taps are given as bit positions (1-based, as in polynomial
/// exponents); e.g. `x⁷+x⁴+1` is `taps = [7, 4]` with a 7-bit state.
#[derive(Debug, Clone)]
pub struct Lfsr {
    state: u32,
    taps: Vec<u32>,
    nbits: u32,
}

impl Lfsr {
    /// Creates an LFSR with `nbits` of state, feedback `taps` (positions
    /// 1..=nbits) and a nonzero initial `state`.
    ///
    /// # Panics
    /// Panics if `nbits` is 0 or > 31, any tap is out of range, or state is 0.
    pub fn new(nbits: u32, taps: &[u32], state: u32) -> Self {
        assert!((1..=31).contains(&nbits), "state width out of range");
        assert!(
            taps.iter().all(|&t| t >= 1 && t <= nbits),
            "tap out of range"
        );
        assert!(state != 0, "LFSR state must be nonzero");
        assert!(state < (1 << nbits), "state wider than register");
        Lfsr {
            state,
            taps: taps.to_vec(),
            nbits,
        }
    }

    /// Advances one step, returning the output bit (the XOR of the taps).
    #[inline]
    pub fn step(&mut self) -> u8 {
        let mut fb = 0u32;
        for &t in &self.taps {
            fb ^= (self.state >> (t - 1)) & 1;
        }
        self.state = ((self.state << 1) | fb) & ((1 << self.nbits) - 1);
        fb as u8
    }

    /// Generates `n` output bits.
    pub fn take(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.step()).collect()
    }

    /// Current register contents.
    pub fn state(&self) -> u32 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsb_round_trip() {
        let data = [0x00, 0xFF, 0xA5, 0x3C, 0x01];
        assert_eq!(bits_to_bytes_lsb(&bytes_to_bits_lsb(&data)), data);
    }

    #[test]
    fn msb_round_trip() {
        let data = [0x80, 0x01, 0x5A];
        assert_eq!(bits_to_bytes_msb(&bytes_to_bits_msb(&data)), data);
    }

    #[test]
    fn lsb_ordering_is_correct() {
        assert_eq!(
            bytes_to_bits_lsb(&[0b0000_0001]),
            vec![1, 0, 0, 0, 0, 0, 0, 0]
        );
        assert_eq!(
            bytes_to_bits_msb(&[0b0000_0001]),
            vec![0, 0, 0, 0, 0, 0, 0, 1]
        );
    }

    #[test]
    fn partial_byte_is_padded() {
        assert_eq!(bits_to_bytes_lsb(&[1, 1, 0]), vec![0b0000_0011]);
        assert_eq!(bits_to_bytes_msb(&[1, 1, 0]), vec![0b1100_0000]);
    }

    #[test]
    fn hamming_and_ber() {
        assert_eq!(hamming_distance(&[1, 0, 1], &[1, 1, 1]), 1);
        assert_eq!(hamming_distance(&[1, 0], &[1, 0, 1, 1]), 2);
        assert!((bit_error_rate(&[1, 0, 1, 0], &[1, 0, 0, 0]) - 0.25).abs() < 1e-12);
        assert_eq!(bit_error_rate(&[], &[]), 0.0);
        assert_eq!(bit_error_rate(&[], &[1]), 1.0);
    }

    #[test]
    fn xor_is_table_1_of_the_paper() {
        // Table 1: tag bit = decoded codeword XOR excitation codeword.
        assert_eq!(xor_bits(&[0, 1, 0, 1], &[0, 0, 1, 1]), vec![0, 1, 1, 0]);
    }

    #[test]
    fn majority_votes() {
        assert_eq!(majority(&[1, 1, 0]), 1);
        assert_eq!(majority(&[1, 0, 0]), 0);
        assert_eq!(majority(&[1, 0]), 0); // tie → 0
        assert_eq!(majority(&[]), 0);
    }

    #[test]
    fn lfsr_period_of_x7_x4_1_is_127() {
        // The 802.11 scrambler polynomial is maximal-length: period 2⁷−1.
        let mut l = Lfsr::new(7, &[7, 4], 0b1011101);
        let start = l.state();
        let mut period = 0usize;
        loop {
            l.step();
            period += 1;
            if l.state() == start {
                break;
            }
            assert!(period < 200, "did not cycle");
        }
        assert_eq!(period, 127);
    }

    #[test]
    #[should_panic]
    fn lfsr_zero_state_panics() {
        let _ = Lfsr::new(7, &[7, 4], 0);
    }
}
