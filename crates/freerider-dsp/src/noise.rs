//! Additive white Gaussian noise.
//!
//! All experiments in the workspace model the thermal noise floor of a
//! receiver as complex AWGN. The generator is seeded explicitly so every
//! figure in EXPERIMENTS.md is reproducible.

use crate::complex::Complex;
use freerider_rt::Rng64;

/// Seeded complex Gaussian noise source.
///
/// Samples are circularly-symmetric complex Gaussians: real and imaginary
/// parts are independent `N(0, σ²/2)` so the *total* sample power is σ².
#[derive(Debug, Clone)]
pub struct NoiseSource {
    rng: Rng64,
    sigma_per_dim: f64,
    spare: Option<f64>,
}

impl NoiseSource {
    /// Creates a source producing samples with average power `power`
    /// (linear units, e.g. milliwatts if the signal is in √mW amplitude).
    pub fn new(seed: u64, power: f64) -> Self {
        assert!(power >= 0.0, "noise power must be non-negative");
        NoiseSource {
            rng: Rng64::new(seed),
            sigma_per_dim: (power / 2.0).sqrt(),
            spare: None,
        }
    }

    /// Average complex-sample power of this source.
    pub fn power(&self) -> f64 {
        2.0 * self.sigma_per_dim * self.sigma_per_dim
    }

    /// One standard Gaussian variate (Box–Muller via `freerider-rt`, with
    /// the sine-branch spare cached so no draw is wasted).
    fn std_normal(&mut self) -> f64 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        let (a, b) = self.rng.gauss_pair();
        self.spare = Some(b);
        a
    }

    /// Draws one complex noise sample.
    #[inline]
    pub fn sample(&mut self) -> Complex {
        Complex::new(
            self.sigma_per_dim * self.std_normal(),
            self.sigma_per_dim * self.std_normal(),
        )
    }

    /// Draws one real Gaussian with the configured per-dimension sigma.
    pub fn sample_real(&mut self) -> f64 {
        self.sigma_per_dim * self.std_normal()
    }

    /// Adds noise to a buffer in place.
    pub fn add_to(&mut self, buf: &mut [Complex]) {
        for x in buf.iter_mut() {
            *x += self.sample();
        }
    }

    /// Returns a noisy copy of `input`.
    pub fn corrupt(&mut self, input: &[Complex]) -> Vec<Complex> {
        input.iter().map(|&x| x + self.sample()).collect()
    }

    /// Generates `n` pure-noise samples.
    pub fn take(&mut self, n: usize) -> Vec<Complex> {
        (0..n).map(|_| self.sample()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_is_calibrated() {
        let mut ns = NoiseSource::new(7, 0.25);
        let n = 200_000;
        let p: f64 = ns.take(n).iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((p - 0.25).abs() < 0.01, "measured power {p}");
    }

    #[test]
    fn zero_power_is_silent() {
        let mut ns = NoiseSource::new(1, 0.0);
        for _ in 0..100 {
            assert_eq!(ns.sample(), Complex::ZERO);
        }
    }

    #[test]
    fn seeded_reproducibility() {
        let mut a = NoiseSource::new(42, 1.0);
        let mut b = NoiseSource::new(42, 1.0);
        for _ in 0..1000 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = NoiseSource::new(1, 1.0);
        let mut b = NoiseSource::new(2, 1.0);
        let same = (0..100).filter(|_| a.sample() == b.sample()).count();
        assert!(same < 5);
    }

    #[test]
    fn mean_is_zero() {
        let mut ns = NoiseSource::new(3, 1.0);
        let n = 100_000;
        let s: Complex = ns.take(n).into_iter().sum();
        assert!(s.abs() / (n as f64) < 0.02);
    }

    #[test]
    fn real_and_imag_balanced() {
        let mut ns = NoiseSource::new(9, 2.0);
        let n = 100_000;
        let buf = ns.take(n);
        let pr: f64 = buf.iter().map(|z| z.re * z.re).sum::<f64>() / n as f64;
        let pi: f64 = buf.iter().map(|z| z.im * z.im).sum::<f64>() / n as f64;
        assert!((pr - 1.0).abs() < 0.05);
        assert!((pi - 1.0).abs() < 0.05);
    }
}
