//! IQ trace capture — the workspace's analogue of a pcap dump.
//!
//! Every link in the workspace moves complex baseband buffers around;
//! when an experiment misbehaves, the fastest diagnosis is to dump the
//! waveform at a pipeline stage and inspect it offline. [`IqTrace`] writes
//! a minimal self-describing binary format (magic, sample rate, f32 IQ
//! pairs) that round-trips losslessly enough for debugging and can be
//! loaded by common SDR tools as raw interleaved `f32` after skipping the
//! 16-byte header.

use crate::Complex;
use std::io::{self, Read, Write};

/// File magic: "FRIQ" + version 1.
const MAGIC: [u8; 4] = *b"FRIQ";
const VERSION: u32 = 1;

/// An IQ trace: a sample rate and a buffer of complex samples.
#[derive(Debug, Clone, PartialEq)]
pub struct IqTrace {
    /// Sample rate in Hz.
    pub sample_rate: f64,
    /// The samples.
    pub samples: Vec<Complex>,
}

/// Errors from trace (de)serialisation.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not an IQ trace (bad magic) or unsupported version.
    BadFormat,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadFormat => write!(f, "not an FRIQ trace"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl IqTrace {
    /// Wraps a buffer as a trace.
    pub fn new(sample_rate: f64, samples: Vec<Complex>) -> Self {
        IqTrace {
            sample_rate,
            samples,
        }
    }

    /// Serialises to a writer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), TraceError> {
        w.write_all(&MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(self.sample_rate as f32).to_le_bytes())?;
        w.write_all(&(self.samples.len() as u32).to_le_bytes())?;
        for z in &self.samples {
            w.write_all(&(z.re as f32).to_le_bytes())?;
            w.write_all(&(z.im as f32).to_le_bytes())?;
        }
        Ok(())
    }

    /// Deserialises from a reader.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Self, TraceError> {
        let mut hdr = [0u8; 16];
        r.read_exact(&mut hdr)?;
        if hdr[..4] != MAGIC {
            return Err(TraceError::BadFormat);
        }
        // lint: allow(panic) — hdr[4..8] is a fixed 4-byte slice
        let version = u32::from_le_bytes(hdr[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(TraceError::BadFormat);
        }
        // lint: allow(panic) — hdr[8..12] is a fixed 4-byte slice
        let sample_rate = f32::from_le_bytes(hdr[8..12].try_into().expect("4 bytes")) as f64;
        // lint: allow(panic) — hdr[12..16] is a fixed 4-byte slice
        let n = u32::from_le_bytes(hdr[12..16].try_into().expect("4 bytes")) as usize;
        let mut buf = vec![0u8; n * 8];
        r.read_exact(&mut buf)?;
        let samples = buf
            .chunks_exact(8)
            .map(|c| {
                Complex::new(
                    // lint: allow(panic) — chunks_exact(8) fixes c.len() at 8
                    f32::from_le_bytes(c[..4].try_into().expect("4 bytes")) as f64,
                    // lint: allow(panic) — chunks_exact(8) fixes c.len() at 8
                    f32::from_le_bytes(c[4..].try_into().expect("4 bytes")) as f64,
                )
            })
            .collect();
        Ok(IqTrace {
            sample_rate,
            samples,
        })
    }

    /// Writes to a file path.
    pub fn save(&self, path: &std::path::Path) -> Result<(), TraceError> {
        let mut f = std::fs::File::create(path)?;
        self.write_to(&mut f)
    }

    /// Reads from a file path.
    pub fn load(path: &std::path::Path) -> Result<Self, TraceError> {
        let mut f = std::fs::File::open(path)?;
        Self::read_from(&mut f)
    }

    /// A text summary: duration, power, peak, and a coarse envelope
    /// sparkline — the "tcpdump one-liner" for a waveform.
    pub fn summary(&self) -> String {
        let n = self.samples.len();
        if n == 0 {
            return "empty trace".to_string();
        }
        let mean_p = crate::db::mean_power(&self.samples);
        let peak = self
            .samples
            .iter()
            .map(|z| z.norm_sqr())
            .fold(0.0f64, f64::max);
        let dur_us = n as f64 / self.sample_rate * 1e6;
        let bars = b" .:-=+*#%@";
        let nbins = 48.min(n);
        let mut spark = String::new();
        for b in 0..nbins {
            let lo = b * n / nbins;
            let hi = ((b + 1) * n / nbins).max(lo + 1);
            let p = crate::db::mean_power(&self.samples[lo..hi]);
            let idx = if peak > 0.0 {
                ((p / peak).sqrt() * (bars.len() - 1) as f64).round() as usize
            } else {
                0
            };
            spark.push(bars[idx.min(bars.len() - 1)] as char);
        }
        format!(
            "{n} samples @ {:.3} Msps = {dur_us:.1} µs | mean {:.1} dBm, peak {:.1} dBm\n[{spark}]",
            self.sample_rate / 1e6,
            crate::db::mw_to_dbm(mean_p),
            crate::db::mw_to_dbm(peak),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chirp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::cis(0.001 * (i * i) as f64))
            .collect()
    }

    #[test]
    fn round_trip_through_memory() {
        let t = IqTrace::new(20e6, chirp(500));
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), 16 + 500 * 8);
        let back = IqTrace::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.samples.len(), 500);
        assert!((back.sample_rate - 20e6).abs() < 1.0);
        for (a, b) in back.samples.iter().zip(t.samples.iter()) {
            assert!((*a - *b).abs() < 1e-6, "f32 round-trip tolerance");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = vec![0u8; 64];
        assert!(matches!(
            IqTrace::read_from(&mut buf.as_slice()),
            Err(TraceError::BadFormat)
        ));
    }

    #[test]
    fn truncated_rejected() {
        let t = IqTrace::new(4e6, chirp(100));
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(matches!(
            IqTrace::read_from(&mut buf.as_slice()),
            Err(TraceError::Io(_))
        ));
    }

    #[test]
    fn file_round_trip() {
        let t = IqTrace::new(8e6, chirp(64));
        let path = std::env::temp_dir().join("freerider_trace_test.friq");
        t.save(&path).unwrap();
        let back = IqTrace::load(&path).unwrap();
        assert_eq!(back.samples.len(), 64);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn summary_reads_sensibly() {
        let mut samples = vec![Complex::ZERO; 100];
        samples.extend(vec![Complex::ONE; 100]);
        let t = IqTrace::new(1e6, samples);
        let s = t.summary();
        assert!(s.contains("200 samples"));
        assert!(s.contains("200.0 µs"));
        // Envelope shows silence then signal.
        let spark = s.split('[').nth(1).unwrap();
        assert!(spark.starts_with(' '));
        assert!(spark.contains('@'));
        assert_eq!(IqTrace::new(1e6, vec![]).summary(), "empty trace");
    }
}
