//! A minimal complex number type.
//!
//! The workspace has no external dependencies (randomness comes from the
//! in-tree `freerider-rt` crate), so instead of pulling `num-complex` we
//! carry this ~150-line implementation. Only the operations the PHYs actually
//! use are provided.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number over `f64`, used for all baseband IQ samples.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real (in-phase) part.
    pub re: f64,
    /// Imaginary (quadrature) part.
    pub im: f64,
}

impl Complex {
    /// The additive identity, `0 + 0j`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0j`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1j`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a complex number from polar coordinates (magnitude, phase).
    #[inline]
    pub fn from_polar(mag: f64, phase: f64) -> Self {
        Complex::new(mag * phase.cos(), mag * phase.sin())
    }

    /// `e^{jθ}` — a unit phasor at angle `theta` radians.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude (`|z|²`), cheaper than [`Complex::abs`].
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplication by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Returns `true` if both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}j", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}j", self.re, -self.im)
        }
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z - z, Complex::ZERO);
        assert_eq!(-z + z, Complex::ZERO);
    }

    #[test]
    fn multiplication_matches_polar() {
        let a = Complex::from_polar(2.0, 0.3);
        let b = Complex::from_polar(1.5, 1.1);
        let p = a * b;
        assert!(close(p.abs(), 3.0));
        assert!(close(p.arg(), 1.4));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-0.5, 0.25);
        let q = (a * b) / b;
        assert!(close(q.re, a.re) && close(q.im, a.im));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert!(close(z.abs(), 5.0));
        assert!(close(z.norm_sqr(), 25.0));
        assert!(close((z * z.conj()).re, 25.0));
        assert!(close((z * z.conj()).im, 0.0));
    }

    #[test]
    fn cis_is_unit_circle() {
        for k in 0..16 {
            let theta = 2.0 * PI * k as f64 / 16.0;
            let z = Complex::cis(theta);
            assert!(close(z.abs(), 1.0));
        }
        assert!(close(Complex::cis(PI / 2.0).im, 1.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        let m = Complex::I * Complex::I;
        assert!(close(m.re, -1.0) && close(m.im, 0.0));
    }

    #[test]
    fn sum_folds() {
        let s: Complex = (0..4).map(|k| Complex::new(k as f64, 1.0)).sum();
        assert_eq!(s, Complex::new(6.0, 4.0));
    }

    #[test]
    fn scalar_ops() {
        let z = Complex::new(1.0, -1.0);
        assert_eq!(z * 2.0, Complex::new(2.0, -2.0));
        assert_eq!(2.0 * z, Complex::new(2.0, -2.0));
        assert_eq!(z / 2.0, Complex::new(0.5, -0.5));
    }
}
