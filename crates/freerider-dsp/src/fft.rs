//! Iterative radix-2 FFT / IFFT.
//!
//! The OFDM modem in `freerider-wifi` runs a 64-point transform per symbol;
//! this implementation supports any power-of-two size. It follows the
//! classic Cooley–Tukey decimation-in-time structure with an explicit
//! bit-reversal permutation, which is simple, allocation-free (in place), and
//! fast enough to simulate multi-megasample packets in the benches.
//!
//! Conventions: [`fft`] computes the *unnormalised* forward DFT
//! `X[k] = Σ_n x[n]·e^{-j2πkn/N}`; [`ifft`] computes the inverse with a
//! `1/N` normalisation, so `ifft(fft(x)) == x`.

use crate::complex::Complex;
use freerider_telemetry::profile;
use std::sync::OnceLock;

/// Deterministic profiler work counter: one unit per radix-2 butterfly
/// (an `n`-point transform performs `n/2 · log₂ n`).
const BUTTERFLIES: &str = "fft.butterflies";

/// Errors from the transform entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FftError {
    /// Input length is not a power of two (or is zero).
    NotPowerOfTwo(usize),
    /// Input length does not match the plan it was handed to.
    LengthMismatch {
        /// The transform size the plan was built for.
        plan: usize,
        /// The length of the buffer that was passed.
        data: usize,
    },
}

impl std::fmt::Display for FftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FftError::NotPowerOfTwo(n) => {
                write!(f, "FFT length {n} is not a nonzero power of two")
            }
            FftError::LengthMismatch { plan, data } => {
                write!(f, "buffer of length {data} passed to a {plan}-point plan")
            }
        }
    }
}

impl std::error::Error for FftError {}

/// In-place forward FFT. Length must be a nonzero power of two.
pub fn fft(data: &mut [Complex]) -> Result<(), FftError> {
    transform(data, false)
}

/// In-place inverse FFT with `1/N` normalisation.
pub fn ifft(data: &mut [Complex]) -> Result<(), FftError> {
    transform(data, true)?;
    let n = data.len() as f64;
    for x in data.iter_mut() {
        *x = *x / n;
    }
    Ok(())
}

fn transform(data: &mut [Complex], inverse: bool) -> Result<(), FftError> {
    let n = data.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(FftError::NotPowerOfTwo(n));
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    profile::work(BUTTERFLIES, (n as u64 / 2) * bits as u64);
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
    Ok(())
}

/// Performs an FFT shift: swaps the two halves of the spectrum so that DC
/// moves to the centre. For even lengths this is its own inverse.
pub fn fft_shift(data: &mut [Complex]) {
    let n = data.len();
    data.rotate_left(n / 2);
}

/// A precomputed transform plan: cached twiddle-factor tables and the
/// bit-reversal permutation for one power-of-two size.
///
/// [`fft`]/[`ifft`] re-derive every twiddle factor with `Complex::cis`
/// trig on each call; a plan hoists that work to construction time so the
/// per-call cost is pure multiply–adds. The tables are generated with the
/// **same** `w *= wlen` recurrence the direct transform uses (not closed
/// form `cis(2πk/N)` calls), so a planned transform is *bit-identical* to
/// the direct one — the property `planned_transform_is_bit_identical`
/// pins and the receiver's determinism guarantees rely on.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversal swap pairs `(i, j)` with `j > i`, in ascending-`i`
    /// order (the order the direct transform applies them).
    swaps: Vec<(u32, u32)>,
    /// Forward twiddles, stages concatenated: `len = 2, 4, …, n`, each
    /// stage contributing `len/2` factors.
    fwd: Vec<Complex>,
    /// Inverse twiddles, same layout.
    inv: Vec<Complex>,
}

impl FftPlan {
    /// Builds a plan for an `n`-point transform (`n` a nonzero power of
    /// two).
    pub fn new(n: usize) -> Result<FftPlan, FftError> {
        if n == 0 || !n.is_power_of_two() {
            return Err(FftError::NotPowerOfTwo(n));
        }
        let bits = n.trailing_zeros();
        let mut swaps = Vec::new();
        for i in 0..n {
            let j = i.reverse_bits() >> (usize::BITS - bits);
            if j > i {
                swaps.push((i as u32, j as u32));
            }
        }
        let table = |sign: f64| -> Vec<Complex> {
            let mut t = Vec::with_capacity(n - 1);
            let mut len = 2;
            while len <= n {
                // Identical recurrence to `transform` — the k-th entry is
                // the k-fold product, not a fresh `cis` evaluation.
                let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
                let wlen = Complex::cis(ang);
                let mut w = Complex::ONE;
                for _ in 0..len / 2 {
                    t.push(w);
                    w *= wlen;
                }
                len <<= 1;
            }
            t
        };
        Ok(FftPlan {
            n,
            swaps,
            fwd: table(-1.0),
            inv: table(1.0),
        })
    }

    /// The transform size this plan serves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is for a zero-point transform (never true; present
    /// for the `len`/`is_empty` API convention).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward FFT through the plan's cached tables.
    pub fn fft(&self, data: &mut [Complex]) -> Result<(), FftError> {
        if data.len() != self.n {
            return Err(FftError::LengthMismatch {
                plan: self.n,
                data: data.len(),
            });
        }
        self.process(data, &self.fwd);
        Ok(())
    }

    /// In-place inverse FFT with `1/N` normalisation through the plan.
    pub fn ifft(&self, data: &mut [Complex]) -> Result<(), FftError> {
        if data.len() != self.n {
            return Err(FftError::LengthMismatch {
                plan: self.n,
                data: data.len(),
            });
        }
        self.process(data, &self.inv);
        let n = data.len() as f64;
        for x in data.iter_mut() {
            *x = *x / n;
        }
        Ok(())
    }

    fn process(&self, data: &mut [Complex], table: &[Complex]) {
        profile::work(
            BUTTERFLIES,
            (self.n as u64 / 2) * self.n.trailing_zeros() as u64,
        );
        for &(i, j) in &self.swaps {
            data.swap(i as usize, j as usize);
        }
        let n = self.n;
        let mut len = 2;
        let mut off = 0;
        while len <= n {
            let half = len / 2;
            let tw = &table[off..off + half];
            let mut i = 0;
            while i < n {
                for (k, &w) in tw.iter().enumerate() {
                    let u = data[i + k];
                    let v = data[i + k + half] * w;
                    data[i + k] = u + v;
                    data[i + k + half] = u - v;
                }
                i += len;
            }
            off += half;
            len <<= 1;
        }
    }

    /// Forward-transforms a packed batch of symbols in place: `data` holds
    /// `data.len() / n` back-to-back `n`-point blocks, each transformed
    /// independently. One entry call amortises the plan/table lookup over
    /// a whole packet's OFDM symbols and strides cache-linearly through
    /// the batch; each block goes through the same butterfly network as a
    /// single [`FftPlan::fft`] call (the 64-point batch uses the
    /// specialised fixed-size path), so the batch is *bit-identical* to
    /// per-symbol transforms — `batch_transform_is_bit_identical` pins it.
    ///
    /// Errors if `data.len()` is not a multiple of the plan size (zero
    /// blocks is fine and a no-op).
    // lint: hot-path
    pub fn run_batch(&self, data: &mut [Complex]) -> Result<(), FftError> {
        if !data.len().is_multiple_of(self.n) {
            return Err(FftError::LengthMismatch {
                plan: self.n,
                data: data.len(),
            });
        }
        if self.n == 64 {
            for chunk in data.chunks_exact_mut(64) {
                // lint: allow(panic) — chunks_exact_mut yields exactly 64
                let block: &mut [Complex; 64] = chunk.try_into().expect("64-sample chunk");
                self.process64(block, &self.fwd);
            }
        } else {
            for chunk in data.chunks_exact_mut(self.n) {
                self.process(chunk, &self.fwd);
            }
        }
        Ok(())
    }

    /// The specialized 64-point butterfly network (the OFDM symbol size):
    /// identical arithmetic to [`FftPlan::process`], but with each of the
    /// six stages monomorphised at a compile-time span length, so every
    /// loop bound, twiddle offset, and butterfly index is a constant the
    /// optimiser unrolls and vectorises without bounds checks.
    fn process64(&self, data: &mut [Complex; 64], table: &[Complex]) {
        debug_assert_eq!(self.n, 64);
        profile::work(BUTTERFLIES, 192); // 64/2 · log₂ 64

        for &(i, j) in &self.swaps {
            data.swap(i as usize, j as usize);
        }
        // Twiddle offsets are the radix-2 prefix sums 0,1,3,7,15,31; each
        // stage runs the same `(u, v·w)` butterflies in the same order as
        // the generic loop above, so the transform stays bit-identical.
        stage64::<2>(data, &table[0..1]);
        stage64::<4>(data, &table[1..3]);
        stage64::<8>(data, &table[3..7]);
        stage64::<16>(data, &table[7..15]);
        stage64::<32>(data, &table[15..31]);
        stage64::<64>(data, &table[31..63]);
    }
}

/// One radix-2 stage of the 64-point network at compile-time span length
/// `LEN`: for each span, the first half combines with the twiddled second
/// half exactly as [`FftPlan::process`]'s inner loop does.
// lint: hot-path
#[inline(always)]
fn stage64<const LEN: usize>(data: &mut [Complex; 64], tw: &[Complex]) {
    const { assert!(LEN.is_power_of_two() && 2 <= LEN && LEN <= 64) };
    let half = LEN / 2;
    debug_assert_eq!(tw.len(), half);
    let mut i = 0;
    while i < 64 {
        for k in 0..half {
            let w = tw[k];
            let u = data[i + k];
            let v = data[i + k + half] * w;
            data[i + k] = u + v;
            data[i + k + half] = u - v;
        }
        i += LEN;
    }
}

/// The process-wide shared 64-point plan — the OFDM symbol size every
/// modem in the workspace transforms at. Built once, reused everywhere.
pub fn plan64() -> &'static FftPlan {
    static PLAN: OnceLock<FftPlan> = OnceLock::new();
    // lint: allow(panic) — 64 is a power of two; construction cannot fail
    PLAN.get_or_init(|| FftPlan::new(64).expect("64 is a power of two"))
}

/// In-place forward 64-point FFT through the shared plan. Infallible: the
/// array type carries the length proof.
#[inline]
pub fn fft64(data: &mut [Complex; 64]) {
    let plan = plan64();
    plan.process64(data, &plan.fwd);
}

/// In-place inverse 64-point FFT (with `1/64` normalisation) through the
/// shared plan.
#[inline]
pub fn ifft64(data: &mut [Complex; 64]) {
    let plan = plan64();
    plan.process64(data, &plan.inv);
    for x in data.iter_mut() {
        *x = *x / 64.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut v = vec![Complex::ZERO; 3];
        assert_eq!(fft(&mut v), Err(FftError::NotPowerOfTwo(3)));
        let mut v = vec![];
        assert_eq!(fft(&mut v), Err(FftError::NotPowerOfTwo(0)));
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut v = vec![Complex::ZERO; 8];
        v[0] = Complex::ONE;
        fft(&mut v).unwrap();
        for x in &v {
            assert!(close(*x, Complex::ONE));
        }
    }

    #[test]
    fn dc_has_impulse_spectrum() {
        let mut v = vec![Complex::ONE; 16];
        fft(&mut v).unwrap();
        assert!(close(v[0], Complex::new(16.0, 0.0)));
        for x in &v[1..] {
            assert!(x.abs() < 1e-9);
        }
    }

    #[test]
    fn single_tone_lands_on_its_bin() {
        let n = 64;
        let k0 = 5;
        let mut v: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(2.0 * std::f64::consts::PI * k0 as f64 * t as f64 / n as f64))
            .collect();
        fft(&mut v).unwrap();
        for (k, x) in v.iter().enumerate() {
            if k == k0 {
                assert!((x.abs() - n as f64).abs() < 1e-8);
            } else {
                assert!(x.abs() < 1e-8, "leakage at bin {k}: {}", x.abs());
            }
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let orig: Vec<Complex> = (0..128)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
            .collect();
        let mut v = orig.clone();
        fft(&mut v).unwrap();
        ifft(&mut v).unwrap();
        for (a, b) in v.iter().zip(orig.iter()) {
            assert!(close(*a, *b));
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let te: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut s = x.clone();
        fft(&mut s).unwrap();
        let fe: f64 = s.iter().map(|z| z.norm_sqr()).sum::<f64>() / 64.0;
        assert!((te - fe).abs() < 1e-8);
    }

    #[test]
    fn shift_centres_dc() {
        let mut v: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64, 0.0)).collect();
        fft_shift(&mut v);
        assert_eq!(v[0].re, 4.0);
        assert_eq!(v[4].re, 0.0);
        fft_shift(&mut v);
        assert_eq!(v[0].re, 0.0);
    }

    fn random_signal(n: usize, seed: u64) -> Vec<Complex> {
        let mut rng = freerider_rt::Rng64::new(seed);
        (0..n)
            .map(|_| Complex::new(rng.gauss(), rng.gauss()))
            .collect()
    }

    #[test]
    fn plan_rejects_bad_sizes() {
        assert_eq!(FftPlan::new(0).unwrap_err(), FftError::NotPowerOfTwo(0));
        assert_eq!(FftPlan::new(48).unwrap_err(), FftError::NotPowerOfTwo(48));
        let plan = FftPlan::new(16).unwrap();
        assert_eq!(plan.len(), 16);
        assert!(!plan.is_empty());
        let mut v = vec![Complex::ZERO; 8];
        assert_eq!(
            plan.fft(&mut v),
            Err(FftError::LengthMismatch { plan: 16, data: 8 })
        );
        assert_eq!(
            plan.ifft(&mut v),
            Err(FftError::LengthMismatch { plan: 16, data: 8 })
        );
    }

    // The property the whole kernel overhaul rests on: a planned transform
    // is not merely close to the direct one, it is the *same sequence of
    // floating-point operations* and therefore bit-identical. Seeded
    // random inputs across every size the workspace uses.
    #[test]
    fn planned_transform_is_bit_identical() {
        for n in [2usize, 4, 8, 64, 128, 1024] {
            let plan = FftPlan::new(n).unwrap();
            for seed in 0..8u64 {
                let orig = random_signal(n, 0xF0F0 + seed * 131 + n as u64);
                let mut direct = orig.clone();
                let mut planned = orig.clone();
                fft(&mut direct).unwrap();
                plan.fft(&mut planned).unwrap();
                for (a, b) in direct.iter().zip(&planned) {
                    assert_eq!(a.re.to_bits(), b.re.to_bits(), "fft n={n} seed={seed}");
                    assert_eq!(a.im.to_bits(), b.im.to_bits(), "fft n={n} seed={seed}");
                }
                let mut direct = orig.clone();
                let mut planned = orig.clone();
                ifft(&mut direct).unwrap();
                plan.ifft(&mut planned).unwrap();
                for (a, b) in direct.iter().zip(&planned) {
                    assert_eq!(a.re.to_bits(), b.re.to_bits(), "ifft n={n} seed={seed}");
                    assert_eq!(a.im.to_bits(), b.im.to_bits(), "ifft n={n} seed={seed}");
                }
            }
        }
    }

    #[test]
    fn specialized_64_path_is_bit_identical() {
        for seed in 0..16u64 {
            let orig = random_signal(64, 0xBEEF + seed);
            let mut direct = orig.clone();
            fft(&mut direct).unwrap();
            let mut arr = [Complex::ZERO; 64];
            arr.copy_from_slice(&orig);
            fft64(&mut arr);
            for (a, b) in direct.iter().zip(arr.iter()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "fft64 seed={seed}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "fft64 seed={seed}");
            }
            let mut direct = orig.clone();
            ifft(&mut direct).unwrap();
            let mut arr = [Complex::ZERO; 64];
            arr.copy_from_slice(&orig);
            ifft64(&mut arr);
            for (a, b) in direct.iter().zip(arr.iter()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "ifft64 seed={seed}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "ifft64 seed={seed}");
            }
        }
    }

    #[test]
    fn batch_transform_is_bit_identical() {
        // A batch of packed symbols must transform exactly as per-symbol
        // calls would — for the specialised 64-point path and the generic
        // one — and reject non-multiple lengths.
        for n in [16usize, 64] {
            let plan = FftPlan::new(n).unwrap();
            for n_blocks in [0usize, 1, 5] {
                let orig = random_signal(n * n_blocks, 0xBA7C + (n * 31 + n_blocks) as u64);
                let mut batch = orig.clone();
                plan.run_batch(&mut batch).unwrap();
                let mut single = orig.clone();
                for chunk in single.chunks_exact_mut(n) {
                    plan.fft(chunk).unwrap();
                }
                for (i, (a, b)) in batch.iter().zip(&single).enumerate() {
                    assert_eq!(
                        a.re.to_bits(),
                        b.re.to_bits(),
                        "n={n} blocks={n_blocks} i={i}"
                    );
                    assert_eq!(
                        a.im.to_bits(),
                        b.im.to_bits(),
                        "n={n} blocks={n_blocks} i={i}"
                    );
                }
            }
            let mut bad = vec![Complex::ZERO; n + 1];
            assert_eq!(
                plan.run_batch(&mut bad),
                Err(FftError::LengthMismatch {
                    plan: n,
                    data: n + 1
                })
            );
        }
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex> = (0..32).map(|i| Complex::new(i as f64, 0.0)).collect();
        let b: Vec<Complex> = (0..32).map(|i| Complex::new(0.0, -(i as f64))).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fab: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        fft(&mut fa).unwrap();
        fft(&mut fb).unwrap();
        fft(&mut fab).unwrap();
        for i in 0..32 {
            assert!(close(fab[i], fa[i] + fb[i]));
        }
    }
}
