//! Iterative radix-2 FFT / IFFT.
//!
//! The OFDM modem in `freerider-wifi` runs a 64-point transform per symbol;
//! this implementation supports any power-of-two size. It follows the
//! classic Cooley–Tukey decimation-in-time structure with an explicit
//! bit-reversal permutation, which is simple, allocation-free (in place), and
//! fast enough to simulate multi-megasample packets in the benches.
//!
//! Conventions: [`fft`] computes the *unnormalised* forward DFT
//! `X[k] = Σ_n x[n]·e^{-j2πkn/N}`; [`ifft`] computes the inverse with a
//! `1/N` normalisation, so `ifft(fft(x)) == x`.

use crate::complex::Complex;

/// Errors from the transform entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FftError {
    /// Input length is not a power of two (or is zero).
    NotPowerOfTwo(usize),
}

impl std::fmt::Display for FftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FftError::NotPowerOfTwo(n) => {
                write!(f, "FFT length {n} is not a nonzero power of two")
            }
        }
    }
}

impl std::error::Error for FftError {}

/// In-place forward FFT. Length must be a nonzero power of two.
pub fn fft(data: &mut [Complex]) -> Result<(), FftError> {
    transform(data, false)
}

/// In-place inverse FFT with `1/N` normalisation.
pub fn ifft(data: &mut [Complex]) -> Result<(), FftError> {
    transform(data, true)?;
    let n = data.len() as f64;
    for x in data.iter_mut() {
        *x = *x / n;
    }
    Ok(())
}

fn transform(data: &mut [Complex], inverse: bool) -> Result<(), FftError> {
    let n = data.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(FftError::NotPowerOfTwo(n));
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
    Ok(())
}

/// Performs an FFT shift: swaps the two halves of the spectrum so that DC
/// moves to the centre. For even lengths this is its own inverse.
pub fn fft_shift(data: &mut [Complex]) {
    let n = data.len();
    data.rotate_left(n / 2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut v = vec![Complex::ZERO; 3];
        assert_eq!(fft(&mut v), Err(FftError::NotPowerOfTwo(3)));
        let mut v = vec![];
        assert_eq!(fft(&mut v), Err(FftError::NotPowerOfTwo(0)));
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut v = vec![Complex::ZERO; 8];
        v[0] = Complex::ONE;
        fft(&mut v).unwrap();
        for x in &v {
            assert!(close(*x, Complex::ONE));
        }
    }

    #[test]
    fn dc_has_impulse_spectrum() {
        let mut v = vec![Complex::ONE; 16];
        fft(&mut v).unwrap();
        assert!(close(v[0], Complex::new(16.0, 0.0)));
        for x in &v[1..] {
            assert!(x.abs() < 1e-9);
        }
    }

    #[test]
    fn single_tone_lands_on_its_bin() {
        let n = 64;
        let k0 = 5;
        let mut v: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(2.0 * std::f64::consts::PI * k0 as f64 * t as f64 / n as f64))
            .collect();
        fft(&mut v).unwrap();
        for (k, x) in v.iter().enumerate() {
            if k == k0 {
                assert!((x.abs() - n as f64).abs() < 1e-8);
            } else {
                assert!(x.abs() < 1e-8, "leakage at bin {k}: {}", x.abs());
            }
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let orig: Vec<Complex> = (0..128)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
            .collect();
        let mut v = orig.clone();
        fft(&mut v).unwrap();
        ifft(&mut v).unwrap();
        for (a, b) in v.iter().zip(orig.iter()) {
            assert!(close(*a, *b));
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let te: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut s = x.clone();
        fft(&mut s).unwrap();
        let fe: f64 = s.iter().map(|z| z.norm_sqr()).sum::<f64>() / 64.0;
        assert!((te - fe).abs() < 1e-8);
    }

    #[test]
    fn shift_centres_dc() {
        let mut v: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64, 0.0)).collect();
        fft_shift(&mut v);
        assert_eq!(v[0].re, 4.0);
        assert_eq!(v[4].re, 0.0);
        fft_shift(&mut v);
        assert_eq!(v[0].re, 0.0);
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex> = (0..32).map(|i| Complex::new(i as f64, 0.0)).collect();
        let b: Vec<Complex> = (0..32).map(|i| Complex::new(0.0, -(i as f64))).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fab: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        fft(&mut fa).unwrap();
        fft(&mut fb).unwrap();
        fft(&mut fab).unwrap();
        for i in 0..32 {
            assert!(close(fab[i], fa[i] + fb[i]));
        }
    }
}
