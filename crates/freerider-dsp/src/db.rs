//! Decibel conversions and power measurement.
//!
//! The channel models work in dBm; the PHYs work in linear amplitude where a
//! complex sample `z` carries instantaneous power `|z|²` milliwatts. These
//! helpers are the single conversion point between the two domains.

use crate::complex::Complex;

/// Converts a power ratio to decibels.
#[inline]
pub fn ratio_to_db(ratio: f64) -> f64 {
    10.0 * ratio.log10()
}

/// Converts decibels to a power ratio.
#[inline]
pub fn db_to_ratio(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts power in milliwatts to dBm.
#[inline]
pub fn mw_to_dbm(mw: f64) -> f64 {
    10.0 * mw.log10()
}

/// Converts dBm to milliwatts.
#[inline]
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Amplitude scale factor corresponding to a power gain in dB
/// (`amplitude × field_scale(g_db)` applies a `g_db` power gain).
#[inline]
pub fn field_scale(gain_db: f64) -> f64 {
    10f64.powf(gain_db / 20.0)
}

/// Mean power of a complex buffer (`Σ|z|²/N`), linear units.
pub fn mean_power(buf: &[Complex]) -> f64 {
    if buf.is_empty() {
        return 0.0;
    }
    buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / buf.len() as f64
}

/// Mean power of a buffer, in dBm (assuming amplitudes in √mW).
pub fn mean_power_dbm(buf: &[Complex]) -> f64 {
    mw_to_dbm(mean_power(buf))
}

/// Scales a buffer so its mean power equals `target_mw`.
/// A silent buffer is returned unchanged.
pub fn normalize_power(buf: &mut [Complex], target_mw: f64) {
    let p = mean_power(buf);
    if p <= 0.0 {
        return;
    }
    let k = (target_mw / p).sqrt();
    for z in buf.iter_mut() {
        *z = z.scale(k);
    }
}

/// Thermal noise power in dBm for the given bandwidth (Hz) and receiver
/// noise figure (dB): `−174 dBm/Hz + 10·log₁₀(B) + NF`.
pub fn thermal_noise_dbm(bandwidth_hz: f64, noise_figure_db: f64) -> f64 {
    -174.0 + 10.0 * bandwidth_hz.log10() + noise_figure_db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for db in [-90.0, -3.0, 0.0, 3.0, 20.0] {
            assert!((ratio_to_db(db_to_ratio(db)) - db).abs() < 1e-12);
            assert!((mw_to_dbm(dbm_to_mw(db)) - db).abs() < 1e-12);
        }
    }

    #[test]
    fn known_values() {
        assert!((db_to_ratio(3.0) - 1.9953).abs() < 1e-3);
        assert!((dbm_to_mw(0.0) - 1.0).abs() < 1e-12);
        assert!((dbm_to_mw(30.0) - 1000.0).abs() < 1e-9);
        assert!((field_scale(6.0) - 1.9953).abs() < 1e-3);
    }

    #[test]
    fn field_scale_squares_to_power() {
        let g = 7.3;
        let amp = field_scale(g);
        assert!((ratio_to_db(amp * amp) - g).abs() < 1e-10);
    }

    #[test]
    fn mean_power_and_normalise() {
        let mut buf = vec![Complex::new(2.0, 0.0); 10];
        assert!((mean_power(&buf) - 4.0).abs() < 1e-12);
        normalize_power(&mut buf, 1.0);
        assert!((mean_power(&buf) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_silent_buffer_is_noop() {
        let mut buf = vec![Complex::ZERO; 4];
        normalize_power(&mut buf, 1.0);
        assert!(buf.iter().all(|z| *z == Complex::ZERO));
        assert_eq!(mean_power(&[]), 0.0);
    }

    #[test]
    fn thermal_noise_wifi_20mhz() {
        // −174 + 73 + NF(6) ≈ −95 dBm: the usual 20 MHz WiFi noise floor.
        let n = thermal_noise_dbm(20e6, 6.0);
        assert!((n - (-94.99)).abs() < 0.1, "noise floor {n}");
    }
}
