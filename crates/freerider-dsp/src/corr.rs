//! Correlation and peak search.
//!
//! Packet detection in every receiver (WiFi STF/LTF, ZigBee SHR, BLE
//! preamble) is built on sliding cross-correlation against a known reference
//! and normalised-peak thresholding.

use crate::complex::Complex;

/// Sliding cross-correlation of `signal` against `reference`.
///
/// Output index `n` holds `Σ_k signal[n+k]·conj(reference[k])` for all `n`
/// where the reference fits entirely inside the signal
/// (`signal.len() - reference.len() + 1` outputs). Returns an empty vector if
/// the reference is longer than the signal.
pub fn cross_correlate(signal: &[Complex], reference: &[Complex]) -> Vec<Complex> {
    if reference.is_empty() || reference.len() > signal.len() {
        return Vec::new();
    }
    let n_out = signal.len() - reference.len() + 1;
    let mut out = Vec::with_capacity(n_out);
    for n in 0..n_out {
        let mut acc = Complex::ZERO;
        for (k, &r) in reference.iter().enumerate() {
            acc += signal[n + k] * r.conj();
        }
        out.push(acc);
    }
    out
}

/// Normalised sliding correlation magnitude in `[0, 1]`.
///
/// `|Σ s·conj(r)| / (‖s_window‖·‖r‖)` — robust to absolute signal level, the
/// standard metric for preamble detection thresholds.
pub fn normalized_correlation(signal: &[Complex], reference: &[Complex]) -> Vec<f64> {
    let mut out = Vec::new();
    normalized_correlation_into(signal, reference, &mut out);
    out
}

/// [`normalized_correlation`] into a caller-provided buffer (cleared
/// first), for allocation-free receive loops. Values are identical.
pub fn normalized_correlation_into(signal: &[Complex], reference: &[Complex], out: &mut Vec<f64>) {
    out.clear();
    if reference.is_empty() || reference.len() > signal.len() {
        return;
    }
    let n_out = signal.len() - reference.len() + 1;
    out.reserve(n_out);
    let r_energy: f64 = reference.iter().map(|z| z.norm_sqr()).sum();
    if r_energy <= 0.0 {
        out.resize(n_out, 0.0);
        return;
    }
    // Running window energy for the signal.
    let mut win_energy: f64 = signal[..reference.len()].iter().map(|z| z.norm_sqr()).sum();
    for n in 0..n_out {
        let mut acc = Complex::ZERO;
        for (k, &r) in reference.iter().enumerate() {
            acc += signal[n + k] * r.conj();
        }
        let denom = (win_energy * r_energy).sqrt();
        out.push(if denom > 1e-30 {
            acc.abs() / denom
        } else {
            0.0
        });
        if n + 1 < n_out {
            win_energy += signal[n + reference.len()].norm_sqr() - signal[n].norm_sqr();
            if win_energy < 0.0 {
                win_energy = 0.0;
            }
        }
    }
}

/// Finds the index and value of the maximum in a real sequence.
/// Returns `None` for an empty input.
pub fn peak(values: &[f64]) -> Option<(usize, f64)> {
    values
        .iter()
        .copied()
        .enumerate()
        .filter(|(_, v)| !v.is_nan())
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

/// Finds the first index where `values` crosses `threshold`, or `None`.
pub fn first_above(values: &[f64], threshold: f64) -> Option<usize> {
    values.iter().position(|&v| v >= threshold)
}

/// Schmidl–Cox style delay-and-correlate metric for repeating preambles
/// (the 802.11 STF repeats every 16 samples): output `n` is
/// `|Σ_{k<win} s[n+k]·conj(s[n+k+lag])| / Σ |s[n+k+lag]|²`.
pub fn delay_correlate(signal: &[Complex], lag: usize, window: usize) -> Vec<f64> {
    if signal.len() < lag + window {
        return Vec::new();
    }
    let n_out = signal.len() - lag - window + 1;
    let mut out = Vec::with_capacity(n_out);
    for n in 0..n_out {
        let mut acc = Complex::ZERO;
        let mut energy = 0.0;
        for k in 0..window {
            acc += signal[n + k] * signal[n + k + lag].conj();
            energy += signal[n + k + lag].norm_sqr();
        }
        out.push(if energy > 1e-30 {
            acc.abs() / energy
        } else {
            0.0
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseSource;
    use crate::osc::Nco;

    fn chirp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::cis(0.001 * (i * i) as f64))
            .collect()
    }

    #[test]
    fn finds_embedded_reference() {
        let reference = chirp(32);
        let mut signal = vec![Complex::ZERO; 100];
        for (i, &r) in reference.iter().enumerate() {
            signal[40 + i] = r;
        }
        let c = normalized_correlation(&signal, &reference);
        let (idx, val) = peak(&c).unwrap();
        assert_eq!(idx, 40);
        assert!(val > 0.999);
    }

    #[test]
    fn finds_reference_under_noise() {
        let reference = chirp(64);
        let mut signal = NoiseSource::new(5, 0.1).take(300);
        for (i, &r) in reference.iter().enumerate() {
            signal[120 + i] += r;
        }
        let c = normalized_correlation(&signal, &reference);
        let (idx, val) = peak(&c).unwrap();
        assert_eq!(idx, 120);
        assert!(val > 0.8, "peak {val}");
    }

    #[test]
    fn empty_or_oversize_reference_yields_empty() {
        let sig = vec![Complex::ONE; 4];
        assert!(cross_correlate(&sig, &[]).is_empty());
        assert!(cross_correlate(&sig, &[Complex::ONE; 5]).is_empty());
        assert!(normalized_correlation(&sig, &[Complex::ONE; 5]).is_empty());
    }

    #[test]
    fn normalisation_is_scale_invariant() {
        let reference = chirp(32);
        let mut signal = vec![Complex::ZERO; 80];
        for (i, &r) in reference.iter().enumerate() {
            signal[20 + i] = r * 1e-4; // very weak copy
        }
        let c = normalized_correlation(&signal, &reference);
        let (idx, val) = peak(&c).unwrap();
        assert_eq!(idx, 20);
        assert!(val > 0.999);
    }

    #[test]
    fn delay_correlate_detects_periodicity() {
        // A tone with period 16 repeats with lag 16 → metric ~1.
        let mut nco = Nco::new(1.0 / 16.0);
        let periodic = nco.take(200);
        let m = delay_correlate(&periodic, 16, 64);
        assert!(m.iter().all(|&v| v > 0.99));
        // Noise should not.
        let noise = NoiseSource::new(11, 1.0).take(200);
        let mn = delay_correlate(&noise, 16, 64);
        let avg: f64 = mn.iter().sum::<f64>() / mn.len() as f64;
        assert!(avg < 0.5, "noise metric {avg}");
    }

    #[test]
    fn first_above_and_peak_edges() {
        assert_eq!(peak(&[]), None);
        assert_eq!(first_above(&[0.1, 0.5, 0.9], 0.6), Some(2));
        assert_eq!(first_above(&[0.1, 0.2], 0.6), None);
    }
}
