//! Correlation and peak search.
//!
//! Packet detection in every receiver (WiFi STF/LTF, ZigBee SHR, BLE
//! preamble) is built on sliding cross-correlation against a known reference
//! and normalised-peak thresholding.

use crate::complex::Complex;

/// Sliding cross-correlation of `signal` against `reference`.
///
/// Output index `n` holds `Σ_k signal[n+k]·conj(reference[k])` for all `n`
/// where the reference fits entirely inside the signal
/// (`signal.len() - reference.len() + 1` outputs). Returns an empty vector if
/// the reference is longer than the signal.
pub fn cross_correlate(signal: &[Complex], reference: &[Complex]) -> Vec<Complex> {
    if reference.is_empty() || reference.len() > signal.len() {
        return Vec::new();
    }
    let n_out = signal.len() - reference.len() + 1;
    let mut out = Vec::with_capacity(n_out);
    for n in 0..n_out {
        let mut acc = Complex::ZERO;
        for (k, &r) in reference.iter().enumerate() {
            acc += signal[n + k] * r.conj();
        }
        out.push(acc);
    }
    out
}

/// Normalised sliding correlation magnitude in `[0, 1]`.
///
/// `|Σ s·conj(r)| / (‖s_window‖·‖r‖)` — robust to absolute signal level, the
/// standard metric for preamble detection thresholds.
pub fn normalized_correlation(signal: &[Complex], reference: &[Complex]) -> Vec<f64> {
    let mut out = Vec::new();
    normalized_correlation_into(signal, reference, &mut out);
    out
}

/// [`normalized_correlation`] into a caller-provided buffer (cleared
/// first), for allocation-free receive loops. Values are identical.
///
/// Dispatches to the lane-batched kernel at the measured default width
/// ([`DEFAULT_CORR_LANES`]); the scalar formulation is retained as
/// [`normalized_correlation_scalar_into`] for A/B benchmarking. Every
/// compiled width produces bit-identical output (see
/// `lane_correlation_is_bit_identical`).
// lint: hot-path
#[inline]
pub fn normalized_correlation_into(signal: &[Complex], reference: &[Complex], out: &mut Vec<f64>) {
    normalized_correlation_lanes_into::<DEFAULT_CORR_LANES>(signal, reference, out);
}

/// Lane widths the workspace compiles [`normalized_correlation_lanes_into`]
/// at; `bench-baseline --lanes` emits an A/B row per width.
pub const CORR_LANE_WIDTHS: [usize; 3] = [2, 4, 8];

/// The measured-fastest correlation lane width on the reference machine
/// (see `benchmarks/latest.json` `lanes` section and DESIGN §11).
pub const DEFAULT_CORR_LANES: usize = 8;

/// The scalar (pre-lane) normalised-correlation kernel, retained verbatim
/// as the A/B comparator for the lane-batched rewrite.
// lint: hot-path
pub fn normalized_correlation_scalar_into(
    signal: &[Complex],
    reference: &[Complex],
    out: &mut Vec<f64>,
) {
    out.clear();
    if reference.is_empty() || reference.len() > signal.len() {
        return;
    }
    let n_out = signal.len() - reference.len() + 1;
    out.reserve(n_out);
    let r_energy: f64 = reference.iter().map(|z| z.norm_sqr()).sum();
    if r_energy <= 0.0 {
        out.resize(n_out, 0.0);
        return;
    }
    // Running window energy for the signal.
    let mut win_energy: f64 = signal[..reference.len()].iter().map(|z| z.norm_sqr()).sum();
    for n in 0..n_out {
        let mut acc = Complex::ZERO;
        for (k, &r) in reference.iter().enumerate() {
            acc += signal[n + k] * r.conj();
        }
        let denom = (win_energy * r_energy).sqrt();
        out.push(if denom > 1e-30 {
            acc.abs() / denom
        } else {
            0.0
        });
        if n + 1 < n_out {
            win_energy += signal[n + reference.len()].norm_sqr() - signal[n].norm_sqr();
            if win_energy < 0.0 {
                win_energy = 0.0;
            }
        }
    }
}

/// Lane-batched normalised correlation: `LANES` *output positions* advance
/// together through the reference, each lane keeping its own accumulator
/// in the scalar kernel's exact order (per-output accumulation is a serial
/// reduction, so batching across outputs — not across taps — is the only
/// axis that vectorises without reassociating sums). The complex MAC is
/// expanded into re/im SoA arithmetic that mirrors `Complex`'s `Mul`/`Add`
/// operation-for-operation (`x·(−y)` and `a − (−c)` are exact in IEEE), so
/// every lane width is bit-identical to the scalar kernel.
///
/// The running window-energy chain is order-sensitive (`+=new − old` with
/// a clamp), so it stays a scalar serial pass feeding each lane block.
// lint: hot-path
pub fn normalized_correlation_lanes_into<const LANES: usize>(
    signal: &[Complex],
    reference: &[Complex],
    out: &mut Vec<f64>,
) {
    const {
        assert!(
            LANES > 0 && LANES <= 64,
            "lane width must be a small positive count"
        )
    };
    out.clear();
    if reference.is_empty() || reference.len() > signal.len() {
        return;
    }
    let n_out = signal.len() - reference.len() + 1;
    out.reserve(n_out);
    let r_energy: f64 = reference.iter().map(|z| z.norm_sqr()).sum();
    if r_energy <= 0.0 {
        out.resize(n_out, 0.0);
        return;
    }
    let m = reference.len();
    let mut win_energy: f64 = signal[..m].iter().map(|z| z.norm_sqr()).sum();
    let mut n = 0usize;
    while n + LANES <= n_out {
        // Serial window-energy chain for this block, evolved exactly as
        // the scalar loop does (same order, same clamp, same stop at the
        // final output).
        let mut en = [0.0f64; LANES];
        for (l, e) in en.iter_mut().enumerate() {
            *e = win_energy;
            if n + l + 1 < n_out {
                win_energy += signal[n + l + m].norm_sqr() - signal[n + l].norm_sqr();
                if win_energy < 0.0 {
                    win_energy = 0.0;
                }
            }
        }
        let mut acc_re = [0.0f64; LANES];
        let mut acc_im = [0.0f64; LANES];
        for (k, &r) in reference.iter().enumerate() {
            let (rr, ri) = (r.re, r.im);
            let window = &signal[n + k..n + k + LANES];
            for l in 0..LANES {
                let s = window[l];
                // s · conj(r), expanded: identical rounding to the scalar
                // kernel's `acc += signal[n+k] * r.conj()`.
                acc_re[l] += s.re * rr + s.im * ri;
                acc_im[l] += s.im * rr - s.re * ri;
            }
        }
        for l in 0..LANES {
            let denom = (en[l] * r_energy).sqrt();
            let a = Complex::new(acc_re[l], acc_im[l]).abs();
            out.push(if denom > 1e-30 { a / denom } else { 0.0 });
        }
        n += LANES;
    }
    // Scalar tail for the remainder outputs.
    while n < n_out {
        let mut acc = Complex::ZERO;
        for (k, &r) in reference.iter().enumerate() {
            acc += signal[n + k] * r.conj();
        }
        let denom = (win_energy * r_energy).sqrt();
        out.push(if denom > 1e-30 {
            acc.abs() / denom
        } else {
            0.0
        });
        if n + 1 < n_out {
            win_energy += signal[n + m].norm_sqr() - signal[n].norm_sqr();
            if win_energy < 0.0 {
                win_energy = 0.0;
            }
        }
        n += 1;
    }
}

/// Finds the index and value of the maximum in a real sequence.
/// Returns `None` for an empty input.
pub fn peak(values: &[f64]) -> Option<(usize, f64)> {
    values
        .iter()
        .copied()
        .enumerate()
        .filter(|(_, v)| !v.is_nan())
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

/// Finds the first index where `values` crosses `threshold`, or `None`.
pub fn first_above(values: &[f64], threshold: f64) -> Option<usize> {
    values.iter().position(|&v| v >= threshold)
}

/// Schmidl–Cox style delay-and-correlate metric for repeating preambles
/// (the 802.11 STF repeats every 16 samples): output `n` is
/// `|Σ_{k<win} s[n+k]·conj(s[n+k+lag])| / Σ |s[n+k+lag]|²`.
pub fn delay_correlate(signal: &[Complex], lag: usize, window: usize) -> Vec<f64> {
    if signal.len() < lag + window {
        return Vec::new();
    }
    let n_out = signal.len() - lag - window + 1;
    let mut out = Vec::with_capacity(n_out);
    for n in 0..n_out {
        let mut acc = Complex::ZERO;
        let mut energy = 0.0;
        for k in 0..window {
            acc += signal[n + k] * signal[n + k + lag].conj();
            energy += signal[n + k + lag].norm_sqr();
        }
        out.push(if energy > 1e-30 {
            acc.abs() / energy
        } else {
            0.0
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseSource;
    use crate::osc::Nco;

    fn chirp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::cis(0.001 * (i * i) as f64))
            .collect()
    }

    #[test]
    fn finds_embedded_reference() {
        let reference = chirp(32);
        let mut signal = vec![Complex::ZERO; 100];
        for (i, &r) in reference.iter().enumerate() {
            signal[40 + i] = r;
        }
        let c = normalized_correlation(&signal, &reference);
        let (idx, val) = peak(&c).unwrap();
        assert_eq!(idx, 40);
        assert!(val > 0.999);
    }

    #[test]
    fn finds_reference_under_noise() {
        let reference = chirp(64);
        let mut signal = NoiseSource::new(5, 0.1).take(300);
        for (i, &r) in reference.iter().enumerate() {
            signal[120 + i] += r;
        }
        let c = normalized_correlation(&signal, &reference);
        let (idx, val) = peak(&c).unwrap();
        assert_eq!(idx, 120);
        assert!(val > 0.8, "peak {val}");
    }

    #[test]
    fn empty_or_oversize_reference_yields_empty() {
        let sig = vec![Complex::ONE; 4];
        assert!(cross_correlate(&sig, &[]).is_empty());
        assert!(cross_correlate(&sig, &[Complex::ONE; 5]).is_empty());
        assert!(normalized_correlation(&sig, &[Complex::ONE; 5]).is_empty());
    }

    #[test]
    fn normalisation_is_scale_invariant() {
        let reference = chirp(32);
        let mut signal = vec![Complex::ZERO; 80];
        for (i, &r) in reference.iter().enumerate() {
            signal[20 + i] = r * 1e-4; // very weak copy
        }
        let c = normalized_correlation(&signal, &reference);
        let (idx, val) = peak(&c).unwrap();
        assert_eq!(idx, 20);
        assert!(val > 0.999);
    }

    #[test]
    fn delay_correlate_detects_periodicity() {
        // A tone with period 16 repeats with lag 16 → metric ~1.
        let mut nco = Nco::new(1.0 / 16.0);
        let periodic = nco.take(200);
        let m = delay_correlate(&periodic, 16, 64);
        assert!(m.iter().all(|&v| v > 0.99));
        // Noise should not.
        let noise = NoiseSource::new(11, 1.0).take(200);
        let mn = delay_correlate(&noise, 16, 64);
        let avg: f64 = mn.iter().sum::<f64>() / mn.len() as f64;
        assert!(avg < 0.5, "noise metric {avg}");
    }

    #[test]
    fn lane_correlation_is_bit_identical() {
        // Every compiled lane width (and the dispatching entry point) must
        // produce to_bits-identical output to the scalar kernel — across
        // signal lengths that exercise full lane blocks, scalar tails, a
        // single output, empty/oversize references, and a zero-energy
        // reference (the early-out path).
        let noise = NoiseSource::new(77, 1.0).take(400);
        let refs: Vec<Vec<Complex>> = vec![
            chirp(32),
            chirp(1),
            chirp(17),
            Vec::new(),
            vec![Complex::ZERO; 8], // zero energy → all-zeros output
            chirp(500),             // longer than every signal → empty
        ];
        for reference in &refs {
            for sig_len in [0usize, 1, 7, 31, 32, 33, 63, 64, 100, 400] {
                let signal = &noise[..sig_len];
                let mut expect = Vec::new();
                normalized_correlation_scalar_into(signal, reference, &mut expect);
                let mut got = Vec::new();
                let tag = |w: usize| format!("lanes={w} ref={} sig={sig_len}", reference.len());
                normalized_correlation_lanes_into::<2>(signal, reference, &mut got);
                assert!(bits_eq(&expect, &got), "{}", tag(2));
                normalized_correlation_lanes_into::<4>(signal, reference, &mut got);
                assert!(bits_eq(&expect, &got), "{}", tag(4));
                normalized_correlation_lanes_into::<8>(signal, reference, &mut got);
                assert!(bits_eq(&expect, &got), "{}", tag(8));
                normalized_correlation_into(signal, reference, &mut got);
                assert!(bits_eq(&expect, &got), "dispatch ref sig={sig_len}");
            }
        }
    }

    fn bits_eq(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn first_above_and_peak_edges() {
        assert_eq!(peak(&[]), None);
        assert_eq!(first_above(&[0.1, 0.5, 0.9], 0.6), Some(2));
        assert_eq!(first_above(&[0.1, 0.2], 0.6), None);
    }
}
