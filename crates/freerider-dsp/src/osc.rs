//! Oscillators.
//!
//! [`Nco`] is an ideal complex numerically-controlled oscillator used by
//! receiver front-ends to tune to an offset channel.
//!
//! [`SquareWave`] models what a backscatter tag *actually* produces when it
//! toggles its RF transistor at a target frequency (paper §2.3.4): a ±1
//! square wave. Multiplying the excitation signal by a square wave creates
//! both the desired shifted copy at `+f`, a mirror copy at `-f` (the
//! double-sideband problem of §3.2.3), and odd harmonics at ±3f, ±5f, … each
//! attenuated by 1/k. The fundamental carries `2/π` of the amplitude
//! (≈ −3.9 dB), which the channel-budget model in `freerider-channel`
//! accounts for.

use crate::complex::Complex;

/// Ideal complex oscillator: successive calls yield `e^{j2πfn}`.
#[derive(Debug, Clone)]
pub struct Nco {
    phase: f64,
    step: f64,
}

impl Nco {
    /// Creates an NCO at normalised frequency `freq` (cycles per sample).
    /// Negative frequencies are allowed (conjugate rotation).
    pub fn new(freq: f64) -> Self {
        Nco {
            phase: 0.0,
            step: 2.0 * std::f64::consts::PI * freq,
        }
    }

    /// Creates an NCO with an initial phase offset (radians).
    pub fn with_phase(freq: f64, phase: f64) -> Self {
        Nco {
            phase,
            step: 2.0 * std::f64::consts::PI * freq,
        }
    }

    /// Returns the next sample and advances the phase.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Complex {
        let out = Complex::cis(self.phase);
        self.phase += self.step;
        // Keep phase bounded to preserve precision over long runs.
        if self.phase > std::f64::consts::PI * 4.0 {
            self.phase -= std::f64::consts::PI * 4.0;
        } else if self.phase < -std::f64::consts::PI * 4.0 {
            self.phase += std::f64::consts::PI * 4.0;
        }
        out
    }

    /// Generates `n` samples.
    pub fn take(&mut self, n: usize) -> Vec<Complex> {
        (0..n).map(|_| self.next()).collect()
    }

    /// Mixes a buffer by this oscillator (multiplies sample-wise),
    /// consuming oscillator state so consecutive calls are phase-continuous.
    pub fn mix(&mut self, input: &[Complex]) -> Vec<Complex> {
        input.iter().map(|&x| x * self.next()).collect()
    }
}

/// A ±1 square-wave oscillator modelling RF-transistor toggling.
///
/// The tag hardware cannot synthesise a complex exponential — it can only
/// open/close an RF switch, multiplying the reflected signal by a two-level
/// waveform. This type reproduces that, including an optional phase delay
/// used by the phase-shift codeword translator (delaying the tag waveform by
/// `Δθ/2πf` shifts the backscattered signal's phase by `Δθ`, paper §2.1).
#[derive(Debug, Clone)]
pub struct SquareWave {
    freq: f64,
    phase: f64, // in cycles, [0,1)
}

impl SquareWave {
    /// Creates a square wave at normalised frequency `freq` (cycles/sample).
    ///
    /// # Panics
    /// Panics if `freq` is not in `(0, 0.5]` (must be representable).
    pub fn new(freq: f64) -> Self {
        assert!(
            freq > 0.0 && freq <= 0.5,
            "square wave frequency must be in (0, 0.5] cycles/sample, got {freq}"
        );
        SquareWave { freq, phase: 0.0 }
    }

    /// Sets a phase offset, expressed in radians of the fundamental.
    pub fn set_phase(&mut self, radians: f64) {
        self.phase = (radians / (2.0 * std::f64::consts::PI)).rem_euclid(1.0);
    }

    /// Returns the next sample (`+1.0` or `-1.0`) and advances.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> f64 {
        let out = if self.phase < 0.5 { 1.0 } else { -1.0 };
        self.phase += self.freq;
        if self.phase >= 1.0 {
            self.phase -= 1.0;
        }
        out
    }

    /// Generates `n` samples.
    pub fn take(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next()).collect()
    }

    /// Multiplies a complex buffer by the square wave (the backscatter
    /// operation itself), phase-continuously.
    pub fn modulate(&mut self, input: &[Complex]) -> Vec<Complex> {
        input.iter().map(|&x| x * self.next()).collect()
    }

    /// Amplitude of the fundamental relative to the square wave's ±1 levels:
    /// `4/π` per Fourier series; the *shifted copy* in one sideband gets half
    /// of that, i.e. `2/π`.
    pub const FUNDAMENTAL_SIDEBAND_GAIN: f64 = 2.0 / std::f64::consts::PI;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft;

    #[test]
    fn nco_frequency_is_correct() {
        let mut nco = Nco::new(4.0 / 64.0);
        let mut buf = nco.take(64);
        fft::fft(&mut buf).unwrap();
        let (peak_bin, _) = buf
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.norm_sqr().partial_cmp(&b.1.norm_sqr()).unwrap())
            .unwrap();
        assert_eq!(peak_bin, 4);
    }

    #[test]
    fn nco_is_unit_amplitude_and_phase_continuous() {
        let mut nco = Nco::new(0.013);
        let a = nco.take(100);
        let b = nco.take(100);
        for z in a.iter().chain(b.iter()) {
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
        // continuity: phase step between a's last and b's first equals step
        let d1 = (a[99] * a[98].conj()).arg();
        let d2 = (b[0] * a[99].conj()).arg();
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn negative_frequency_conjugates() {
        let mut p = Nco::new(0.05);
        let mut n = Nco::new(-0.05);
        for _ in 0..50 {
            let zp = p.next();
            let zn = n.next();
            assert!((zp.conj() - zn).abs() < 1e-12);
        }
    }

    #[test]
    fn square_wave_alternates_at_half_rate() {
        let mut sq = SquareWave::new(0.5);
        let s = sq.take(6);
        assert_eq!(s, vec![1.0, -1.0, 1.0, -1.0, 1.0, -1.0]);
    }

    #[test]
    fn square_wave_duty_cycle_is_half() {
        let mut sq = SquareWave::new(0.01);
        let s = sq.take(10_000);
        let pos = s.iter().filter(|&&x| x > 0.0).count();
        assert!((pos as f64 / 10_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn square_wave_has_double_sideband_spectrum() {
        // Multiplying DC by a square wave at f should put energy at ±f with
        // equal magnitude and at ±3f at one third of it.
        let n = 1024;
        let f = 64.0 / n as f64;
        let mut sq = SquareWave::new(f);
        let dc = vec![Complex::ONE; n];
        let mut out = sq.modulate(&dc);
        fft::fft(&mut out).unwrap();
        let mag = |bin: usize| out[bin].abs() / n as f64;
        let upper = mag(64);
        let lower = mag(n - 64);
        let third = mag(192);
        assert!((upper - lower).abs() < 1e-9, "sidebands asymmetric");
        assert!(
            (upper - SquareWave::FUNDAMENTAL_SIDEBAND_GAIN).abs() < 0.01,
            "fundamental gain {upper}"
        );
        // Sampled square waves alias slightly; allow a loose band around 1/3.
        assert!((third - upper / 3.0).abs() < 0.03, "3rd harmonic {third}");
    }

    #[test]
    fn square_wave_phase_delay_shifts_fundamental_phase() {
        let n = 1024;
        let f = 64.0 / n as f64;
        let theta = std::f64::consts::PI / 2.0;
        let mut a = SquareWave::new(f);
        let mut b = SquareWave::new(f);
        b.set_phase(theta);
        let mut fa: Vec<Complex> = a.take(n).iter().map(|&x| Complex::new(x, 0.0)).collect();
        let mut fb: Vec<Complex> = b.take(n).iter().map(|&x| Complex::new(x, 0.0)).collect();
        fft::fft(&mut fa).unwrap();
        fft::fft(&mut fb).unwrap();
        let dphi = (fb[64] * fa[64].conj()).arg();
        assert!(
            (dphi.abs() - theta).abs() < 0.05,
            "phase shift {dphi} vs {theta}"
        );
    }

    #[test]
    #[should_panic]
    fn square_wave_rejects_unrepresentable_freq() {
        let _ = SquareWave::new(0.7);
    }
}
