//! # freerider-dsp
//!
//! Digital signal processing substrate for the FreeRider backscatter stack.
//!
//! Every PHY in this workspace (802.11g OFDM, 802.15.4 O-QPSK, BLE GFSK) and
//! the tag/channel models are built from the primitives in this crate:
//!
//! * [`Complex`] — a minimal, dependency-free complex number type over `f64`.
//! * [`fft`] — an iterative radix-2 FFT/IFFT used by the OFDM modem.
//! * [`fir`] — windowed-sinc FIR design and streaming/batch filtering, used
//!   for channel-select filters and pulse shaping.
//! * [`osc`] — complex numerically controlled oscillators and the square-wave
//!   oscillator that models a backscatter tag's RF-transistor toggling.
//! * [`noise`] — a seeded additive white Gaussian noise source.
//! * [`corr`] — cross-correlation and peak search for preamble detection.
//! * [`db`] — dB/linear conversions and signal power measurement.
//! * [`bits`] — bit/byte packing helpers shared by all framers.
//! * [`trace`] — IQ trace capture (the workspace's pcap analogue).
//! * [`resample`] — integer-factor resampling for wide-band shift tests.
//!
//! The crate is deliberately synchronous and allocation-conscious: signal
//! buffers are plain `Vec<Complex>`/slices, all algorithms are deterministic,
//! and random sources take explicit seeds so that every experiment in the
//! workspace is reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod complex;
pub mod corr;
pub mod db;
pub mod fft;
pub mod fir;
pub mod noise;
pub mod osc;
pub mod resample;
pub mod trace;

pub use complex::Complex;

/// Convenience alias for a buffer of IQ samples.
pub type IqBuf = Vec<Complex>;
