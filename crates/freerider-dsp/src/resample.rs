//! Integer-factor resampling.
//!
//! Used by the frequency-shifting integration tests: representing a tag's
//! multi-megahertz channel shift at IQ level needs a simulation band wider
//! than one PHY's baseband, so narrowband waveforms are upsampled into a
//! wide band, shifted with the real square wave, and the receiver's
//! channel selection brings them back down.

use crate::fir::Fir;
use crate::Complex;

/// Upsamples by 2: zero-stuffing followed by a half-band low-pass
/// (gain-compensated). Output length is `2 × input.len()`.
pub fn upsample2(input: &[Complex]) -> Vec<Complex> {
    let mut stuffed = Vec::with_capacity(input.len() * 2);
    for &z in input {
        stuffed.push(z);
        stuffed.push(Complex::ZERO);
    }
    let lpf = Fir::low_pass(0.23, 63);
    // Zero-stuffing halves the signal power in-band; compensate ×2.
    lpf.filter(&stuffed).into_iter().map(|z| z * 2.0).collect()
}

/// Downsamples by 2: half-band low-pass then decimation.
/// Output length is `input.len() / 2`.
pub fn downsample2(input: &[Complex]) -> Vec<Complex> {
    let lpf = Fir::low_pass(0.23, 63);
    lpf.filter(input).into_iter().step_by(2).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db;
    use crate::osc::Nco;

    #[test]
    fn up_then_down_is_identity_in_band() {
        let mut nco = Nco::new(0.05);
        let orig = nco.take(600);
        let up = upsample2(&orig);
        assert_eq!(up.len(), 1200);
        let back = downsample2(&up);
        assert_eq!(back.len(), 600);
        // Compare away from the filter edges.
        for k in 100..500 {
            assert!(
                (back[k] - orig[k]).abs() < 0.02,
                "sample {k}: {} vs {}",
                back[k],
                orig[k]
            );
        }
    }

    #[test]
    fn upsample_preserves_in_band_power() {
        let mut nco = Nco::new(0.08);
        let orig = nco.take(800);
        let up = upsample2(&orig);
        let p = db::mean_power(&up[200..1400]);
        assert!((p - 1.0).abs() < 0.05, "power {p}");
    }

    #[test]
    fn upsampled_tone_halves_its_normalised_frequency() {
        let mut nco = Nco::new(0.1);
        let orig = nco.take(512);
        let up = upsample2(&orig);
        // Instantaneous frequency of the upsampled tone = 0.05 cyc/sample.
        let mid = &up[300..700];
        let mut acc = Complex::ZERO;
        for w in mid.windows(2) {
            acc += w[1] * w[0].conj();
        }
        let f = acc.arg() / std::f64::consts::TAU;
        assert!((f - 0.05).abs() < 1e-3, "freq {f}");
    }

    #[test]
    fn downsample_rejects_upper_half_band() {
        // A tone at 0.4 cyc/sample would alias to 0.2 after decimation if
        // not filtered; the half-band filter must crush it first.
        let mut nco = Nco::new(0.4);
        let tone = nco.take(800);
        let down = downsample2(&tone);
        let p = db::mean_power(&down[100..300]);
        assert!(p < 1e-3, "aliased power {p}");
    }
}
