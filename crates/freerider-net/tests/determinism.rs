//! The sharded simulator's determinism contract, checked from outside
//! the crate: the final per-tag report set is **byte-identical** (full
//! structural equality, including every float bit via `PartialEq`)
//! across executor widths 1 and 4, and regardless of how many observers
//! watch the run. This is the property `freerider-serve` builds on — a
//! served job may legally run at any `FREERIDER_THREADS` width with any
//! number of subscribers and must still return the same answer.

use freerider_net::{Deployment, DeploymentSim, LinkModel, SimConfig, SimEvent};
use freerider_rt::{CancelToken, Executor};

fn sim() -> DeploymentSim {
    let mut d = Deployment::open_plan()
        .with_receiver(5.0, 1.0)
        .with_receiver(-5.0, -1.0);
    for i in 0..60 {
        let x = (i % 10) as f64 * 0.9 - 4.5;
        let y = (i / 10) as f64 * 1.1 - 3.3;
        d = d.with_tag(x, y);
    }
    DeploymentSim::new(
        d,
        LinkModel::default(),
        SimConfig {
            rounds: 120,
            seed: 0xD15EA5E,
            ..SimConfig::default()
        },
    )
}

fn run_with(width: usize, observers: usize) -> freerider_net::DeploymentReport {
    let exec = Executor::new(width);
    let cancel = CancelToken::new();
    // Observers only count events; they must not perturb the run.
    let mut rounds_seen = 0usize;
    let mut snapshots_seen = 0usize;
    let snapshot_every = if observers > 0 { 7 } else { 0 };
    let report = sim()
        .run_observed(&exec, &cancel, snapshot_every, &mut |e| match e {
            SimEvent::Round(_) => rounds_seen += 1,
            SimEvent::Tags { .. } => snapshots_seen += 1,
        })
        .expect("not cancelled");
    assert_eq!(rounds_seen, 120);
    if observers > 0 {
        assert_eq!(snapshots_seen, 120 / 7);
    }
    report
}

#[test]
fn final_reports_are_identical_across_widths_and_observers() {
    let serial = sim().run();
    for width in [1usize, 4] {
        for observers in [0usize, 3] {
            let r = run_with(width, observers);
            assert_eq!(
                r, serial,
                "width {width} / {observers} observers diverged from the serial run"
            );
        }
    }
}
