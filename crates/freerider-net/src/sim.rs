//! The deployment simulator: Framed-Slotted-Aloha rounds over a 2D scene
//! with per-tag PLM reach, per-link PRR, and report-latency accounting.

use crate::deployment::Deployment;
use crate::link::LinkModel;
use freerider_mac::aloha::{run_round, summarize, SlotOutcome};
use freerider_mac::messages::MESSAGE_BITS;
use freerider_mac::Coordinator;
use freerider_rt::Rng64;

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Rounds to run.
    pub rounds: usize,
    /// Slot duration, seconds.
    pub slot_s: f64,
    /// Tag bits per delivered slot.
    pub bits_per_slot: usize,
    /// Each tag generates one fixed-size report this often, seconds.
    pub report_interval_s: f64,
    /// Report size, bits.
    pub report_bits: usize,
    /// PLM control rate, bits/second.
    pub plm_bps: f64,
    /// Capture probability on collisions.
    pub capture_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            rounds: 400,
            slot_s: 2.5e-3,
            bits_per_slot: 100,
            report_interval_s: 1.0,
            report_bits: 128,
            plm_bps: 500.0,
            capture_prob: 0.45,
            seed: 1,
        }
    }
}

/// Per-tag results.
#[derive(Debug, Clone)]
pub struct TagReport {
    /// Bits delivered.
    pub delivered_bits: u64,
    /// Reports completely delivered.
    pub reports_delivered: usize,
    /// Mean report delivery latency, seconds (NaN if none delivered).
    pub mean_latency_s: f64,
    /// Whether the tag was servable at all (powered + a receiver in range).
    pub servable: bool,
    /// Fraction of round announcements this tag decoded (PLM reach).
    pub plm_reach: f64,
}

/// Whole-deployment results.
#[derive(Debug, Clone)]
pub struct DeploymentReport {
    /// Per-tag results, in deployment order.
    pub tags: Vec<TagReport>,
    /// Aggregate delivered throughput, bits/second.
    pub aggregate_bps: f64,
    /// Jain's fairness index over servable tags' deliveries.
    pub fairness: f64,
    /// Total simulated time, seconds.
    pub total_time_s: f64,
}

/// The deployment simulator.
pub struct DeploymentSim {
    deployment: Deployment,
    model: LinkModel,
    config: SimConfig,
}

impl DeploymentSim {
    /// Creates a simulator.
    pub fn new(deployment: Deployment, model: LinkModel, config: SimConfig) -> Self {
        DeploymentSim {
            deployment,
            model,
            config,
        }
    }

    /// PLM announcement decode probability for a tag, from the excitation
    /// power at the tag (the Fig. 4 mechanism, condensed: solid when the
    /// tag is comfortably powered, collapsing near the front-end floor).
    fn plm_prob(&self, power_at_tag_dbm: f64, tag_sensitivity_dbm: f64) -> f64 {
        let margin = power_at_tag_dbm - tag_sensitivity_dbm;
        (0.72 * (1.0 / (1.0 + (-margin / 2.0).exp()))).clamp(0.0, 1.0) / 0.72 * 0.97
    }

    /// Runs the simulation.
    pub fn run(&self) -> DeploymentReport {
        let cfg = &self.config;
        let d = &self.deployment;
        let mut rng = Rng64::new(cfg.seed);
        let n = d.tags.len();

        // Precompute per-tag service parameters.
        let mut prr = vec![0.0f64; n];
        let mut plm = vec![0.0f64; n];
        let mut servable = vec![false; n];
        for (i, t) in d.tags.iter().enumerate() {
            let powered = d.power_at(t.position) >= t.sensitivity_dbm;
            let best = self.model.best_receiver(d, t.position);
            if powered {
                if let Some((_, margin)) = best {
                    prr[i] = self.model.prr(margin);
                    servable[i] = prr[i] > 0.01;
                }
                plm[i] = self.plm_prob(d.power_at(t.position), t.sensitivity_dbm);
            }
        }

        let mut coordinator = Coordinator::with_defaults();
        let control_airtime = MESSAGE_BITS as f64 / cfg.plm_bps;
        let mut time = 0.0f64;
        let mut delivered = vec![0u64; n];
        let mut reports_done = vec![0usize; n];
        let mut latency_acc = vec![0.0f64; n];
        let mut plm_heard = vec![0usize; n];
        // Each tag's current report: (bits remaining, generation time).
        let mut pending: Vec<(usize, f64)> = (0..n).map(|_| (cfg.report_bits, 0.0)).collect();

        for _ in 0..cfg.rounds {
            let n_slots = coordinator.n_slots();
            // Every servable tag listens for the announcement; only those
            // that heard it *and* have a report waiting (born in the past)
            // contend for a slot.
            let mut participants = Vec::new();
            for i in 0..n {
                if !servable[i] {
                    continue;
                }
                if rng.bernoulli(plm[i]) {
                    plm_heard[i] += 1;
                    if pending[i].1 <= time {
                        participants.push(i);
                    }
                }
            }
            let slots = run_round(&participants, n_slots, cfg.capture_prob, &mut rng);
            let round_dur = control_airtime + n_slots as f64 * cfg.slot_s;
            for s in &slots {
                if let SlotOutcome::Success(i) | SlotOutcome::Capture(i) = s {
                    let i = *i;
                    // The slot delivers if the best receiver decodes it.
                    if rng.bernoulli(prr[i]) {
                        delivered[i] += cfg.bits_per_slot as u64;
                        let (remaining, born) = &mut pending[i];
                        if *remaining <= cfg.bits_per_slot {
                            reports_done[i] += 1;
                            latency_acc[i] += (time + round_dur) - *born;
                            // Next report is generated on schedule.
                            let next_born = *born + cfg.report_interval_s.max(1e-9);
                            *remaining = cfg.report_bits;
                            *born = next_born.max(time);
                        } else {
                            *remaining -= cfg.bits_per_slot;
                        }
                    }
                }
            }
            coordinator.adapt(&summarize(&slots));
            time += round_dur;
        }

        let served: Vec<f64> = (0..n)
            .filter(|&i| servable[i])
            .map(|i| delivered[i] as f64)
            .collect();
        let tags = (0..n)
            .map(|i| TagReport {
                delivered_bits: delivered[i],
                reports_delivered: reports_done[i],
                mean_latency_s: if reports_done[i] > 0 {
                    latency_acc[i] / reports_done[i] as f64
                } else {
                    f64::NAN
                },
                servable: servable[i],
                plm_reach: plm_heard[i] as f64 / cfg.rounds as f64,
            })
            .collect();
        DeploymentReport {
            tags,
            aggregate_bps: delivered.iter().sum::<u64>() as f64 / time.max(1e-12),
            fairness: freerider_mac::fairness::jain_index(&served),
            total_time_s: time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freerider_channel::geometry::{Point, Wall};

    fn small_office() -> Deployment {
        let mut d = Deployment::open_plan()
            .with_receiver(6.0, 0.0)
            .with_receiver(-6.0, 0.0);
        for k in 0..8 {
            let angle = k as f64 * std::f64::consts::TAU / 8.0;
            d = d.with_tag(2.0 * angle.cos(), 2.0 * angle.sin());
        }
        d
    }

    #[test]
    fn healthy_office_serves_every_tag() {
        // Saturated tags (report interval ≈ 0 keeps every queue non-empty).
        let cfg = SimConfig {
            report_interval_s: 0.0,
            ..SimConfig::default()
        };
        let sim = DeploymentSim::new(small_office(), LinkModel::default(), cfg);
        let r = sim.run();
        assert!(r.tags.iter().all(|t| t.servable));
        assert!(r.tags.iter().all(|t| t.delivered_bits > 0), "{r:?}");
        assert!(r.fairness > 0.9, "fairness {}", r.fairness);
        assert!(r.aggregate_bps > 5e3, "aggregate {}", r.aggregate_bps);
    }

    #[test]
    fn light_duty_cycle_is_offered_load_bound() {
        // 8 tags × one 128-bit report per second ≈ 1 kbps of offered load:
        // the network delivers about that, far below its saturated capacity.
        let sim = DeploymentSim::new(small_office(), LinkModel::default(), SimConfig::default());
        let r = sim.run();
        assert!(
            r.aggregate_bps > 0.6e3 && r.aggregate_bps < 2.5e3,
            "aggregate {}",
            r.aggregate_bps
        );
        // Latency at light load is a handful of rounds, far under the
        // 1 s reporting interval.
        for t in &r.tags {
            assert!(t.mean_latency_s < 0.5, "latency {}", t.mean_latency_s);
        }
    }

    #[test]
    fn out_of_power_tags_are_unservable() {
        let d = small_office().with_tag(8.0, 8.0); // ~11 m from the exciter
        let sim = DeploymentSim::new(d, LinkModel::default(), SimConfig::default());
        let r = sim.run();
        let last = r.tags.last().unwrap();
        assert!(!last.servable);
        assert_eq!(last.delivered_bits, 0);
    }

    #[test]
    fn walls_cut_service() {
        let mut d = Deployment::open_plan()
            .with_receiver(6.0, 0.0)
            .with_tag(2.0, 0.0);
        let open_rate = {
            let sim = DeploymentSim::new(d.clone(), LinkModel::default(), SimConfig::default());
            sim.run().tags[0].delivered_bits
        };
        // A heavy wall between tag and the only receiver.
        d.site =
            d.site
                .clone()
                .with_wall(Wall::new(Point::new(4.0, -5.0), Point::new(4.0, 5.0), 30.0));
        let sim = DeploymentSim::new(d, LinkModel::default(), SimConfig::default());
        let walled = sim.run().tags[0].delivered_bits;
        assert!(walled < open_rate / 10, "{walled} vs {open_rate}");
    }

    #[test]
    fn report_latency_is_tracked() {
        let sim = DeploymentSim::new(small_office(), LinkModel::default(), SimConfig::default());
        let r = sim.run();
        for t in &r.tags {
            assert!(t.reports_delivered > 0);
            assert!(t.mean_latency_s.is_finite());
            assert!(t.mean_latency_s > 0.0);
            assert!(t.mean_latency_s < r.total_time_s);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a =
            DeploymentSim::new(small_office(), LinkModel::default(), SimConfig::default()).run();
        let b =
            DeploymentSim::new(small_office(), LinkModel::default(), SimConfig::default()).run();
        assert_eq!(a.tags.len(), b.tags.len());
        for (x, y) in a.tags.iter().zip(b.tags.iter()) {
            assert_eq!(x.delivered_bits, y.delivered_bits);
        }
    }
}
