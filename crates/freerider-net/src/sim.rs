//! The deployment simulator: Framed-Slotted-Aloha rounds over a 2D scene
//! with per-tag PLM reach, per-link PRR, and report-latency accounting.
//!
//! # Sharding and determinism
//!
//! Each round runs in two phases. Phase A draws every tag's per-round
//! randomness (announcement decode, slot choice, delivery) from a stream
//! derived per `(round, tag)` — tags are independent, so the draws shard
//! over a [`freerider_rt::Executor`] and are bit-identical for any worker
//! count. Phase B merges serially in tag order: it resolves slot
//! collisions (capture draws come from a per-round merge stream), applies
//! deliveries, and advances the MAC coordinator. The result is therefore
//! **byte-identical** whether the simulation runs serially, sharded over
//! N threads, or inside a server with any number of subscribers attached
//! — observers only *read* state between rounds.

use crate::deployment::Deployment;
use crate::link::LinkModel;
use freerider_mac::aloha::RoundOutcome;
use freerider_mac::messages::MESSAGE_BITS;
use freerider_mac::Coordinator;
use freerider_rt::{derive_seed, CancelToken, Executor, Rng64};
use freerider_telemetry::profile;

/// Simulator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Rounds to run.
    pub rounds: usize,
    /// Slot duration, seconds.
    pub slot_s: f64,
    /// Tag bits per delivered slot.
    pub bits_per_slot: usize,
    /// Each tag generates one fixed-size report this often, seconds.
    pub report_interval_s: f64,
    /// Report size, bits.
    pub report_bits: usize,
    /// PLM control rate, bits/second.
    pub plm_bps: f64,
    /// Capture probability on collisions.
    pub capture_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            rounds: 400,
            slot_s: 2.5e-3,
            bits_per_slot: 100,
            report_interval_s: 1.0,
            report_bits: 128,
            plm_bps: 500.0,
            capture_prob: 0.45,
            seed: 1,
        }
    }
}

/// Per-tag results.
#[derive(Debug, Clone, PartialEq)]
pub struct TagReport {
    /// Bits delivered.
    pub delivered_bits: u64,
    /// Reports completely delivered.
    pub reports_delivered: usize,
    /// Mean report delivery latency, seconds (`None` when no report was
    /// delivered — `None`, not NaN, so serializations stay valid JSON).
    pub mean_latency_s: Option<f64>,
    /// Whether the tag was servable at all (powered + a receiver in range).
    pub servable: bool,
    /// Fraction of round announcements this tag decoded (PLM reach).
    pub plm_reach: f64,
}

/// Whole-deployment results.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentReport {
    /// Per-tag results, in deployment order.
    pub tags: Vec<TagReport>,
    /// Aggregate delivered throughput, bits/second.
    pub aggregate_bps: f64,
    /// Jain's fairness index over servable tags' deliveries.
    pub fairness: f64,
    /// Total simulated time, seconds.
    pub total_time_s: f64,
}

/// Progress of one completed round, streamed to observers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundProgress {
    /// 0-based index of the round just completed.
    pub round: usize,
    /// Total rounds configured.
    pub rounds: usize,
    /// Simulated time elapsed, seconds.
    pub time_s: f64,
    /// Slots the coordinator scheduled this round.
    pub n_slots: u16,
    /// Tags that contended this round.
    pub participants: usize,
    /// Slots that delivered data this round (success + salvaged capture
    /// whose best receiver decoded the burst).
    pub delivered_slots: usize,
    /// Cumulative bits delivered across all tags.
    pub delivered_bits: u64,
    /// Cumulative reports fully delivered across all tags.
    pub reports_delivered: u64,
}

/// One observation emitted by [`DeploymentSim::run_observed`].
#[derive(Debug)]
pub enum SimEvent<'a> {
    /// A round completed.
    Round(RoundProgress),
    /// A periodic per-tag snapshot (every `snapshot_every` rounds).
    Tags {
        /// 0-based index of the round just completed.
        round: usize,
        /// Current per-tag state, in deployment order.
        tags: &'a [TagReport],
    },
}

/// Stream id for the serial merge draws of a round (collision capture).
/// Tag streams use the tag index, which is always far below this.
const MERGE_STREAM: u64 = freerider_rt::stream::MAC;

/// One tag's pre-drawn randomness for a round (phase A output).
#[derive(Debug, Clone, Copy, Default)]
struct TagDraw {
    /// Decoded the round announcement.
    heard: bool,
    /// Chosen slot (uniform over the round's frame).
    slot: u16,
    /// Would the best receiver decode this tag's burst?
    deliver: bool,
}

/// The deployment simulator.
pub struct DeploymentSim {
    deployment: Deployment,
    model: LinkModel,
    config: SimConfig,
}

impl DeploymentSim {
    /// Creates a simulator.
    pub fn new(deployment: Deployment, model: LinkModel, config: SimConfig) -> Self {
        DeploymentSim {
            deployment,
            model,
            config,
        }
    }

    /// The configuration this simulator runs.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// PLM announcement decode probability for a tag, from the excitation
    /// power at the tag (the Fig. 4 mechanism, condensed: solid when the
    /// tag is comfortably powered, collapsing near the front-end floor).
    fn plm_prob(&self, power_at_tag_dbm: f64, tag_sensitivity_dbm: f64) -> f64 {
        let margin = power_at_tag_dbm - tag_sensitivity_dbm;
        (0.72 * (1.0 / (1.0 + (-margin / 2.0).exp()))).clamp(0.0, 1.0) / 0.72 * 0.97
    }

    /// Runs the simulation serially with no observer.
    pub fn run(&self) -> DeploymentReport {
        match self.run_observed(&Executor::serial(), &CancelToken::new(), 0, &mut |_| {}) {
            Some(r) => r,
            // A fresh token can never be cancelled.
            None => unreachable!("uncancellable run reported cancellation"),
        }
    }

    /// Runs the simulation, sharding per-round tag draws over `exec` and
    /// reporting progress to `observer`.
    ///
    /// * After every round the observer receives [`SimEvent::Round`].
    /// * Every `snapshot_every` rounds (and never for `0`) it additionally
    ///   receives [`SimEvent::Tags`] with the current per-tag state.
    /// * `cancel` is checked once per round; a cancelled run returns
    ///   `None` after completing the in-flight round.
    ///
    /// The returned report is **byte-identical** for any `exec` worker
    /// count and any observer behaviour — observers see state, they never
    /// steer it.
    pub fn run_observed(
        &self,
        exec: &Executor,
        cancel: &CancelToken,
        snapshot_every: usize,
        observer: &mut dyn FnMut(SimEvent<'_>),
    ) -> Option<DeploymentReport> {
        let cfg = &self.config;
        let d = &self.deployment;
        let n = d.tags.len();

        // Precompute per-tag service parameters.
        let mut prr = vec![0.0f64; n];
        let mut plm = vec![0.0f64; n];
        let mut servable = vec![false; n];
        for (i, t) in d.tags.iter().enumerate() {
            let powered = d.power_at(t.position) >= t.sensitivity_dbm;
            let best = self.model.best_receiver(d, t.position);
            if powered {
                if let Some((_, margin)) = best {
                    prr[i] = self.model.prr(margin);
                    servable[i] = prr[i] > 0.01;
                }
                plm[i] = self.plm_prob(d.power_at(t.position), t.sensitivity_dbm);
            }
        }

        let mut coordinator = Coordinator::with_defaults();
        let control_airtime = MESSAGE_BITS as f64 / cfg.plm_bps;
        let mut time = 0.0f64;
        let mut delivered = vec![0u64; n];
        let mut reports_done = vec![0usize; n];
        let mut latency_acc = vec![0.0f64; n];
        let mut plm_heard = vec![0usize; n];
        // Each tag's current report: (bits remaining, generation time).
        let mut pending: Vec<(usize, f64)> = (0..n).map(|_| (cfg.report_bits, 0.0)).collect();
        let tag_ids: Vec<u32> = (0..n as u32).collect();
        let mut tag_reports: Vec<TagReport> = Vec::new();

        for round in 0..cfg.rounds {
            if cancel.is_cancelled() {
                return None;
            }
            let n_slots = coordinator.n_slots();
            let round_seed = derive_seed(cfg.seed, round as u64);

            // Phase A — per-tag draws, sharded. Every tag draws from its
            // own `(round, tag)` stream, so the result is independent of
            // scheduling and worker count.
            let draws: Vec<TagDraw> = exec.map(&tag_ids, |i, _| {
                // A root profile scope per work item (never wrapping the
                // dispatch itself), so the stage tree is identical for
                // any worker count.
                let _prof = profile::scope("net.sim.draw");
                if !servable[i] {
                    return TagDraw::default();
                }
                let mut rng = Rng64::derive(round_seed, i as u64);
                TagDraw {
                    heard: rng.bernoulli(plm[i]),
                    slot: rng.index(n_slots as usize) as u16,
                    deliver: rng.bernoulli(prr[i]),
                }
            });

            // Phase B — serial merge in tag order. Tags that decoded the
            // announcement *and* have a report waiting contend for their
            // chosen slot.
            let prof_merge = profile::scope("net.sim.merge");
            profile::work("mac.slots", n_slots as u64);
            let mut slots: Vec<Vec<usize>> = vec![Vec::new(); n_slots as usize];
            let mut participants = 0usize;
            for i in 0..n {
                if !servable[i] {
                    continue;
                }
                if draws[i].heard {
                    plm_heard[i] += 1;
                    if pending[i].1 <= time {
                        slots[draws[i].slot as usize].push(i);
                        participants += 1;
                    }
                }
            }
            let mut merge_rng = Rng64::derive(round_seed, MERGE_STREAM);
            let mut outcome = RoundOutcome::default();
            let round_dur = control_airtime + n_slots as f64 * cfg.slot_s;
            let mut delivered_slots = 0usize;
            for occupants in &slots {
                let winner = match occupants.len() {
                    0 => {
                        outcome.empty += 1;
                        None
                    }
                    1 => {
                        outcome.success += 1;
                        Some(occupants[0])
                    }
                    _ => {
                        if merge_rng.bernoulli(cfg.capture_prob) {
                            // The "strongest" tag wins; with i.i.d.
                            // placement any occupant is equally likely.
                            outcome.capture += 1;
                            Some(occupants[merge_rng.index(occupants.len())])
                        } else {
                            outcome.collision += 1;
                            None
                        }
                    }
                };
                if let Some(i) = winner {
                    // The slot delivers if the best receiver decodes it.
                    if draws[i].deliver {
                        delivered_slots += 1;
                        delivered[i] += cfg.bits_per_slot as u64;
                        let (remaining, born) = &mut pending[i];
                        if *remaining <= cfg.bits_per_slot {
                            reports_done[i] += 1;
                            latency_acc[i] += (time + round_dur) - *born;
                            // Next report is generated on schedule.
                            let next_born = *born + cfg.report_interval_s.max(1e-9);
                            *remaining = cfg.report_bits;
                            *born = next_born.max(time);
                        } else {
                            *remaining -= cfg.bits_per_slot;
                        }
                    }
                }
            }
            profile::bits((delivered_slots * cfg.bits_per_slot) as u64);
            coordinator.adapt(&outcome);
            drop(prof_merge);
            time += round_dur;

            observer(SimEvent::Round(RoundProgress {
                round,
                rounds: cfg.rounds,
                time_s: time,
                n_slots,
                participants,
                delivered_slots,
                delivered_bits: delivered.iter().sum(),
                reports_delivered: reports_done.iter().map(|&r| r as u64).sum(),
            }));
            if snapshot_every > 0 && (round + 1) % snapshot_every == 0 {
                build_reports(
                    &mut tag_reports,
                    &delivered,
                    &reports_done,
                    &latency_acc,
                    &servable,
                    &plm_heard,
                    round + 1,
                );
                observer(SimEvent::Tags {
                    round,
                    tags: &tag_reports,
                });
            }
        }

        let served: Vec<f64> = (0..n)
            .filter(|&i| servable[i])
            .map(|i| delivered[i] as f64)
            .collect();
        build_reports(
            &mut tag_reports,
            &delivered,
            &reports_done,
            &latency_acc,
            &servable,
            &plm_heard,
            cfg.rounds,
        );
        Some(DeploymentReport {
            tags: tag_reports,
            aggregate_bps: delivered.iter().sum::<u64>() as f64 / time.max(1e-12),
            fairness: freerider_mac::fairness::jain_index(&served),
            total_time_s: time,
        })
    }
}

/// Rebuilds the per-tag report vector from the running accumulators.
#[allow(clippy::too_many_arguments)]
fn build_reports(
    out: &mut Vec<TagReport>,
    delivered: &[u64],
    reports_done: &[usize],
    latency_acc: &[f64],
    servable: &[bool],
    plm_heard: &[usize],
    rounds_elapsed: usize,
) {
    out.clear();
    out.extend((0..delivered.len()).map(|i| TagReport {
        delivered_bits: delivered[i],
        reports_delivered: reports_done[i],
        mean_latency_s: if reports_done[i] > 0 {
            Some(latency_acc[i] / reports_done[i] as f64)
        } else {
            None
        },
        servable: servable[i],
        plm_reach: plm_heard[i] as f64 / rounds_elapsed.max(1) as f64,
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use freerider_channel::geometry::{Point, Wall};

    fn small_office() -> Deployment {
        let mut d = Deployment::open_plan()
            .with_receiver(6.0, 0.0)
            .with_receiver(-6.0, 0.0);
        for k in 0..8 {
            let angle = k as f64 * std::f64::consts::TAU / 8.0;
            d = d.with_tag(2.0 * angle.cos(), 2.0 * angle.sin());
        }
        d
    }

    #[test]
    fn healthy_office_serves_every_tag() {
        // Saturated tags (report interval ≈ 0 keeps every queue non-empty).
        let cfg = SimConfig {
            report_interval_s: 0.0,
            ..SimConfig::default()
        };
        let sim = DeploymentSim::new(small_office(), LinkModel::default(), cfg);
        let r = sim.run();
        assert!(r.tags.iter().all(|t| t.servable));
        assert!(r.tags.iter().all(|t| t.delivered_bits > 0), "{r:?}");
        assert!(r.fairness > 0.9, "fairness {}", r.fairness);
        assert!(r.aggregate_bps > 5e3, "aggregate {}", r.aggregate_bps);
    }

    #[test]
    fn light_duty_cycle_is_offered_load_bound() {
        // 8 tags × one 128-bit report per second ≈ 1 kbps of offered load:
        // the network delivers about that, far below its saturated capacity.
        let sim = DeploymentSim::new(small_office(), LinkModel::default(), SimConfig::default());
        let r = sim.run();
        assert!(
            r.aggregate_bps > 0.6e3 && r.aggregate_bps < 2.5e3,
            "aggregate {}",
            r.aggregate_bps
        );
        // Latency at light load is a handful of rounds, far under the
        // 1 s reporting interval.
        for t in &r.tags {
            assert!(t.mean_latency_s.unwrap() < 0.5, "latency {t:?}");
        }
    }

    #[test]
    fn out_of_power_tags_are_unservable() {
        let d = small_office().with_tag(8.0, 8.0); // ~11 m from the exciter
        let sim = DeploymentSim::new(d, LinkModel::default(), SimConfig::default());
        let r = sim.run();
        let last = r.tags.last().unwrap();
        assert!(!last.servable);
        assert_eq!(last.delivered_bits, 0);
        assert_eq!(last.mean_latency_s, None);
    }

    #[test]
    fn walls_cut_service() {
        let mut d = Deployment::open_plan()
            .with_receiver(6.0, 0.0)
            .with_tag(2.0, 0.0);
        let open_rate = {
            let sim = DeploymentSim::new(d.clone(), LinkModel::default(), SimConfig::default());
            sim.run().tags[0].delivered_bits
        };
        // A heavy wall between tag and the only receiver.
        d.site =
            d.site
                .clone()
                .with_wall(Wall::new(Point::new(4.0, -5.0), Point::new(4.0, 5.0), 30.0));
        let sim = DeploymentSim::new(d, LinkModel::default(), SimConfig::default());
        let walled = sim.run().tags[0].delivered_bits;
        assert!(walled < open_rate / 10, "{walled} vs {open_rate}");
    }

    #[test]
    fn report_latency_is_tracked() {
        let sim = DeploymentSim::new(small_office(), LinkModel::default(), SimConfig::default());
        let r = sim.run();
        for t in &r.tags {
            assert!(t.reports_delivered > 0);
            let lat = t.mean_latency_s.unwrap();
            assert!(lat > 0.0);
            assert!(lat < r.total_time_s);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a =
            DeploymentSim::new(small_office(), LinkModel::default(), SimConfig::default()).run();
        let b =
            DeploymentSim::new(small_office(), LinkModel::default(), SimConfig::default()).run();
        assert_eq!(a.tags.len(), b.tags.len());
        for (x, y) in a.tags.iter().zip(b.tags.iter()) {
            assert_eq!(x.delivered_bits, y.delivered_bits);
        }
    }

    #[test]
    fn observer_sees_every_round_and_periodic_snapshots() {
        let sim = DeploymentSim::new(small_office(), LinkModel::default(), SimConfig::default());
        let mut rounds = 0usize;
        let mut snapshots = 0usize;
        let mut last_bits = 0u64;
        let r = sim
            .run_observed(
                &Executor::serial(),
                &CancelToken::new(),
                50,
                &mut |e| match e {
                    SimEvent::Round(p) => {
                        assert_eq!(p.round, rounds);
                        assert!(p.delivered_bits >= last_bits, "bits must be cumulative");
                        last_bits = p.delivered_bits;
                        rounds += 1;
                    }
                    SimEvent::Tags { tags, .. } => {
                        assert_eq!(tags.len(), 8);
                        snapshots += 1;
                    }
                },
            )
            .unwrap();
        assert_eq!(rounds, SimConfig::default().rounds);
        assert_eq!(snapshots, SimConfig::default().rounds / 50);
        assert_eq!(last_bits, r.tags.iter().map(|t| t.delivered_bits).sum());
    }

    #[test]
    fn cancellation_stops_between_rounds() {
        let sim = DeploymentSim::new(small_office(), LinkModel::default(), SimConfig::default());
        let cancel = CancelToken::new();
        let mut seen = 0usize;
        let c = cancel.clone();
        let out = sim.run_observed(&Executor::serial(), &cancel, 0, &mut |e| {
            if let SimEvent::Round(p) = e {
                seen = p.round + 1;
                if p.round == 9 {
                    c.cancel();
                }
            }
        });
        assert!(out.is_none());
        assert_eq!(seen, 10, "cancel lands at the next round boundary");
    }

    #[test]
    fn sharded_run_is_byte_identical_to_serial() {
        let sim = DeploymentSim::new(small_office(), LinkModel::default(), SimConfig::default());
        let serial = sim.run();
        for threads in [2, 4] {
            let par = sim
                .run_observed(&Executor::new(threads), &CancelToken::new(), 0, &mut |_| {})
                .unwrap();
            assert_eq!(serial, par, "threads={threads}");
        }
    }
}
