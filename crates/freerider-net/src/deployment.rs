//! The deployment scene.

use freerider_channel::geometry::{Point, Site};
use freerider_channel::PathLoss;

/// The excitation radio (the paper's "exciting radio": an AP, a laptop,
/// or a phone doing productive traffic).
#[derive(Debug, Clone, Copy)]
pub struct Exciter {
    /// Position.
    pub position: Point,
    /// Transmit power, dBm.
    pub tx_power_dbm: f64,
}

/// A backscatter receiver (an AP on the adjacent channel, backhaul
/// connected per Fig. 1).
#[derive(Debug, Clone, Copy)]
pub struct ReceiverNode {
    /// Position.
    pub position: Point,
    /// Sync sensitivity, dBm (−94 for the WiFi receiver class).
    pub sensitivity_dbm: f64,
}

/// A deployed tag.
#[derive(Debug, Clone, Copy)]
pub struct TagNode {
    /// Position.
    pub position: Point,
    /// Minimum excitation power for the tag front end, dBm (−36.5 per the
    /// Fig. 14 calibration).
    pub sensitivity_dbm: f64,
}

impl TagNode {
    /// A tag with the standard front-end threshold.
    pub fn at(x: f64, y: f64) -> Self {
        TagNode {
            position: Point::new(x, y),
            sensitivity_dbm: -36.5,
        }
    }
}

/// A complete deployment.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// Site geometry and propagation.
    pub site: Site,
    /// The exciting radio.
    pub exciter: Exciter,
    /// Backscatter receivers.
    pub receivers: Vec<ReceiverNode>,
    /// Tags.
    pub tags: Vec<TagNode>,
    /// Backscatter conversion loss, dB (Γ efficiency + sideband split).
    pub backscatter_loss_db: f64,
}

impl Deployment {
    /// An empty open-plan deployment with the paper's hallway propagation
    /// and an 11 dBm exciter at the origin.
    pub fn open_plan() -> Self {
        Deployment {
            site: Site::open(PathLoss::new(35.0, 1.75)),
            exciter: Exciter {
                position: Point::new(0.0, 0.0),
                tx_power_dbm: 11.0,
            },
            receivers: Vec::new(),
            tags: Vec::new(),
            backscatter_loss_db: freerider_channel::budget::SIDEBAND_LOSS_DB + 2.1,
        }
    }

    /// Adds a receiver (builder style).
    pub fn with_receiver(mut self, x: f64, y: f64) -> Self {
        self.receivers.push(ReceiverNode {
            position: Point::new(x, y),
            sensitivity_dbm: -94.0,
        });
        self
    }

    /// Adds a tag (builder style).
    pub fn with_tag(mut self, x: f64, y: f64) -> Self {
        self.tags.push(TagNode::at(x, y));
        self
    }

    /// Excitation power arriving at a point, dBm.
    pub fn power_at(&self, p: Point) -> f64 {
        self.exciter.tx_power_dbm - self.site.loss_db(self.exciter.position, p)
    }

    /// Backscatter RSSI from a tag position to a receiver position, dBm.
    pub fn backscatter_rssi(&self, tag: Point, rx: Point) -> f64 {
        self.power_at(tag) - self.backscatter_loss_db - self.site.loss_db(tag, rx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freerider_channel::geometry::Wall;

    #[test]
    fn open_plan_matches_the_calibrated_budget() {
        // The 2D deployment with no walls must reproduce the 1D budget.
        let d = Deployment::open_plan().with_receiver(3.0, 0.0);
        let budget = freerider_channel::BackscatterBudget::wifi_los();
        let tag = Point::new(1.0, 0.0);
        let rssi_2d = d.backscatter_rssi(tag, d.receivers[0].position);
        let rssi_1d = budget.rssi_dbm(1.0, 2.0);
        assert!((rssi_2d - rssi_1d).abs() < 1e-9, "{rssi_2d} vs {rssi_1d}");
    }

    #[test]
    fn walls_attenuate_geometrically() {
        let mut d = Deployment::open_plan().with_receiver(10.0, 0.0);
        let tag = Point::new(2.0, 0.0);
        let open = d.backscatter_rssi(tag, d.receivers[0].position);
        d.site =
            d.site
                .clone()
                .with_wall(Wall::new(Point::new(5.0, -5.0), Point::new(5.0, 5.0), 8.0));
        let walled = d.backscatter_rssi(tag, d.receivers[0].position);
        assert!((open - walled - 8.0).abs() < 1e-9);
        // The excitation path (0→2 m) doesn't cross the wall.
        assert!((d.power_at(tag) - (11.0 - 35.0 - 17.5 * 2.0f64.log10())).abs() < 1e-9);
    }

    #[test]
    fn builder_accumulates_nodes() {
        let d = Deployment::open_plan()
            .with_receiver(1.0, 0.0)
            .with_receiver(2.0, 0.0)
            .with_tag(0.5, 0.5);
        assert_eq!(d.receivers.len(), 2);
        assert_eq!(d.tags.len(), 1);
    }
}
