//! Link response curves: geometric budgets → packet reception / tag rate.
//!
//! Deployment-scale simulation cannot afford IQ-sample links for every
//! (tag, receiver, packet) triple, so this module abstracts them with
//! response curves **calibrated against the workspace's own IQ-level
//! results** (Fig. 10's regenerated sweep): PRR as a logistic function of
//! the link margin (RSSI − sensitivity), matching the measured transition
//! — PRR ≈ 1 above +2 dB margin, ≈ 0.5 at +0.3 dB, ≈ 0 below −2 dB under
//! Rician-12 dB fading — and a small residual tag BER within decoded
//! packets.

use crate::deployment::Deployment;
use freerider_channel::geometry::Point;

/// The calibrated link model.
#[derive(Debug, Clone, Copy)]
pub struct LinkModel {
    /// Margin at which PRR crosses 0.5, dB.
    pub prr_midpoint_db: f64,
    /// Logistic scale of the PRR transition, dB.
    pub prr_scale_db: f64,
    /// In-packet tag bit rate, bits/second (62.5 kbps for WiFi binary).
    pub tag_rate_bps: f64,
    /// Fraction of packet airtime carrying tag bits (header overhead).
    pub airtime_efficiency: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            prr_midpoint_db: 0.3,
            prr_scale_db: 0.8,
            tag_rate_bps: 62_500.0,
            airtime_efficiency: 0.96,
        }
    }
}

impl LinkModel {
    /// Packet reception rate at the given link margin.
    pub fn prr(&self, margin_db: f64) -> f64 {
        1.0 / (1.0 + (-(margin_db - self.prr_midpoint_db) / self.prr_scale_db).exp())
    }

    /// Expected delivered tag rate (bits/second of excitation airtime) for
    /// a tag at `tag` heard by the best receiver of `d`. Zero when the
    /// excitation cannot power the tag or no receiver clears its margin.
    pub fn expected_rate(&self, d: &Deployment, tag: Point, tag_sensitivity_dbm: f64) -> f64 {
        if d.power_at(tag) < tag_sensitivity_dbm {
            return 0.0;
        }
        let best = self.best_receiver(d, tag);
        match best {
            Some((_, margin)) => self.tag_rate_bps * self.airtime_efficiency * self.prr(margin),
            None => 0.0,
        }
    }

    /// The receiver with the largest link margin for a tag at `tag`,
    /// with that margin in dB.
    pub fn best_receiver(&self, d: &Deployment, tag: Point) -> Option<(usize, f64)> {
        d.receivers
            .iter()
            .enumerate()
            .map(|(i, rx)| {
                let margin = d.backscatter_rssi(tag, rx.position) - rx.sensitivity_dbm;
                (i, margin)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;

    #[test]
    fn prr_transition_matches_the_iq_calibration() {
        let m = LinkModel::default();
        assert!(m.prr(5.0) > 0.99);
        assert!((m.prr(0.3) - 0.5).abs() < 1e-12);
        assert!(m.prr(-3.0) < 0.02);
        // Monotone.
        for k in -10..10 {
            assert!(m.prr(k as f64) <= m.prr(k as f64 + 1.0));
        }
    }

    #[test]
    fn expected_rate_reproduces_the_42m_cliff() {
        // The 1D paper scenario embedded in 2D: tag 1 m from the exciter,
        // one receiver moved away. Full rate near, cliff in the low 40s.
        let m = LinkModel::default();
        let near = Deployment::open_plan().with_receiver(1.0 + 10.0, 0.0);
        let r10 = m.expected_rate(&near, Point::new(1.0, 0.0), -36.5);
        assert!((r10 - 60_000.0).abs() < 2e3, "10 m rate {r10}");

        let far = Deployment::open_plan().with_receiver(1.0 + 42.0, 0.0);
        let r42 = m.expected_rate(&far, Point::new(1.0, 0.0), -36.5);
        assert!(r42 > 10e3 && r42 < 55e3, "42 m rate {r42}");

        // Past the cliff only a fade-up trickle remains (the logistic tail
        // mirrors the IQ sweep's occasional Rician fade-up packets).
        let gone = Deployment::open_plan().with_receiver(1.0 + 55.0, 0.0);
        let r55 = m.expected_rate(&gone, Point::new(1.0, 0.0), -36.5);
        assert!(r55 < 8e3, "55 m rate {r55}");
        let dead = Deployment::open_plan().with_receiver(1.0 + 80.0, 0.0);
        let r80 = m.expected_rate(&dead, Point::new(1.0, 0.0), -36.5);
        assert!(r80 < 300.0, "80 m rate {r80}");
    }

    #[test]
    fn starved_tag_delivers_nothing() {
        // A tag 6 m from the 11 dBm exciter is below the −36.5 dBm front-
        // end threshold even with a receiver right next to it.
        let d = Deployment::open_plan().with_receiver(6.2, 0.0);
        let m = LinkModel::default();
        assert_eq!(m.expected_rate(&d, Point::new(6.0, 0.0), -36.5), 0.0);
    }

    #[test]
    fn best_receiver_picks_the_nearer_one() {
        let d = Deployment::open_plan()
            .with_receiver(20.0, 0.0)
            .with_receiver(3.0, 0.0);
        let m = LinkModel::default();
        let (idx, margin) = m.best_receiver(&d, Point::new(1.0, 0.0)).unwrap();
        assert_eq!(idx, 1);
        assert!(margin > 20.0);
    }

    #[test]
    fn no_receivers_means_no_service() {
        let d = Deployment::open_plan();
        let m = LinkModel::default();
        assert!(m.best_receiver(&d, Point::new(1.0, 0.0)).is_none());
        assert_eq!(m.expected_rate(&d, Point::new(1.0, 0.0), -36.5), 0.0);
    }
}
