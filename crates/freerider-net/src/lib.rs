//! # freerider-net
//!
//! Deployment-scale simulation of FreeRider networks: the "office
//! setting" of the paper's Fig. 1 — a smartphone or AP as the exciting
//! radio, WiFi APs as backscatter receivers connected by an Ethernet
//! backhaul, and a population of tags scattered through a floor plan.
//!
//! Where `freerider-core` simulates individual links at the IQ-sample
//! level, this crate answers the questions an operator asks before
//! deploying: *will a tag at this desk reach any receiver? how many tags
//! can one exciter serve? what report latency should I expect?* It runs
//! on top of 2D geometry ([`freerider_channel::geometry`]) and link
//! response curves calibrated against the workspace's own IQ-level
//! results (see [`link::LinkModel`]).
//!
//! * [`deployment`] — the scene: site geometry, exciter, receivers, tags.
//! * [`link`] — geometric link budgets → PRR/rate response curves.
//! * [`sim`] — the multi-round network simulator (PLM reach, Framed
//!   Slotted Aloha, best-receiver decoding, latency accounting), with
//!   per-round sharding over the `freerider-rt` executor, streamed
//!   progress/snapshot observation, and cooperative cancellation — the
//!   job engine `freerider-serve` hosts as a long-running service.
//! * [`coverage`] — tag-placement coverage maps with ASCII rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage;
pub mod deployment;
pub mod link;
pub mod sim;

pub use deployment::{Deployment, Exciter, ReceiverNode, TagNode};
pub use link::LinkModel;
pub use sim::{DeploymentReport, DeploymentSim, RoundProgress, SimConfig, SimEvent, TagReport};
