//! Coverage maps: where in a site can a tag live?
//!
//! Sweeps a grid of candidate tag positions and computes the expected tag
//! rate at the best receiver for each — the planning artefact a FreeRider
//! operator would pin to the wall.

use crate::deployment::Deployment;
use crate::link::LinkModel;
use freerider_channel::geometry::Point;

/// A rectangular coverage grid.
#[derive(Debug, Clone)]
pub struct CoverageMap {
    /// Lower-left corner.
    pub origin: Point,
    /// Cell size, metres.
    pub cell_m: f64,
    /// Columns.
    pub cols: usize,
    /// Rows.
    pub rows: usize,
    /// Expected tag rate per cell, bits/second (row-major, row 0 at the
    /// *top* of the rendered map = largest y).
    pub rate_bps: Vec<f64>,
}

/// Computes the coverage map of `d` over the rectangle from `origin`
/// (lower-left) spanning `cols × rows` cells of `cell_m` metres.
pub fn coverage_map(
    d: &Deployment,
    model: &LinkModel,
    origin: Point,
    cell_m: f64,
    cols: usize,
    rows: usize,
) -> CoverageMap {
    assert!(cell_m > 0.0 && cols > 0 && rows > 0);
    let mut rate_bps = Vec::with_capacity(cols * rows);
    for r in 0..rows {
        let y = origin.y + (rows - 1 - r) as f64 * cell_m + cell_m / 2.0;
        for c in 0..cols {
            let x = origin.x + c as f64 * cell_m + cell_m / 2.0;
            rate_bps.push(model.expected_rate(d, Point::new(x, y), -36.5));
        }
    }
    CoverageMap {
        origin,
        cell_m,
        cols,
        rows,
        rate_bps,
    }
}

impl CoverageMap {
    /// Fraction of cells with expected rate above `threshold_bps`.
    pub fn covered_fraction(&self, threshold_bps: f64) -> f64 {
        let n = self.rate_bps.len();
        if n == 0 {
            return 0.0;
        }
        self.rate_bps
            .iter()
            .filter(|&&r| r >= threshold_bps)
            .count() as f64
            / n as f64
    }

    /// Renders the map as ASCII art: ' ' dead, '.' marginal, then
    /// increasingly dense glyphs toward full rate.
    pub fn render(&self, d: &Deployment) -> String {
        let glyphs = b" .:-=+*#@";
        let max = self
            .rate_bps
            .iter()
            .cloned()
            .fold(0.0f64, f64::max)
            .max(1.0);
        let mut out = String::new();
        for r in 0..self.rows {
            for c in 0..self.cols {
                let x = self.origin.x + c as f64 * self.cell_m + self.cell_m / 2.0;
                let y =
                    self.origin.y + (self.rows - 1 - r) as f64 * self.cell_m + self.cell_m / 2.0;
                let p = Point::new(x, y);
                // Mark infrastructure.
                if p.distance(&d.exciter.position) < self.cell_m * 0.75 {
                    out.push('T');
                    continue;
                }
                if d.receivers
                    .iter()
                    .any(|rx| p.distance(&rx.position) < self.cell_m * 0.75)
                {
                    out.push('R');
                    continue;
                }
                let rate = self.rate_bps[r * self.cols + c];
                let idx = ((rate / max).sqrt() * (glyphs.len() - 1) as f64).round() as usize;
                out.push(glyphs[idx.min(glyphs.len() - 1)] as char);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;

    #[test]
    fn coverage_is_centred_on_the_exciter() {
        // One exciter at the origin with receivers flanking it: the region
        // near the exciter is covered (the tag-power bound), far corners
        // are not.
        let d = Deployment::open_plan()
            .with_receiver(3.0, 0.0)
            .with_receiver(-3.0, 0.0);
        let m = LinkModel::default();
        let map = coverage_map(&d, &m, Point::new(-10.0, -10.0), 1.0, 20, 20);
        // Centre cell (just off the exciter) is hot.
        let centre = m.expected_rate(&d, Point::new(1.5, 0.5), -36.5);
        assert!(centre > 50e3, "centre {centre}");
        // Far corner is dead (tag cannot be powered at ~14 m).
        let corner = map.rate_bps[0];
        assert_eq!(corner, 0.0);
        // Coverage fraction is between the extremes.
        let f = map.covered_fraction(30e3);
        assert!(f > 0.05 && f < 0.9, "covered {f}");
    }

    #[test]
    fn render_shape_and_markers() {
        let d = Deployment::open_plan().with_receiver(2.0, 0.0);
        let m = LinkModel::default();
        let map = coverage_map(&d, &m, Point::new(-5.0, -5.0), 1.0, 10, 10);
        let art = map.render(&d);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l.chars().count() == 10));
        assert!(art.contains('T'), "exciter marker");
        assert!(art.contains('R'), "receiver marker");
    }

    #[test]
    fn covered_fraction_bounds() {
        let d = Deployment::open_plan().with_receiver(2.0, 0.0);
        let m = LinkModel::default();
        let map = coverage_map(&d, &m, Point::new(-4.0, -4.0), 1.0, 8, 8);
        assert!(map.covered_fraction(0.0) >= map.covered_fraction(60e3));
        assert!(map.covered_fraction(f64::INFINITY) == 0.0);
    }
}
