//! A hand-rolled Rust lexer, just precise enough for rule checking.
//!
//! The analyzer's rules fire on identifiers, string-literal contents, and
//! comments — so the lexer's only hard job is *not confusing the three*.
//! That means it must get right exactly the places where a naive
//! regex-over-source approach breaks:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments,
//! * cooked strings with escapes, raw strings with any `#` count, and the
//!   `b` / `r` / `br` / `c` / `cr` prefixes,
//! * lifetimes (`'a`) versus char literals (`'a'`, `'\n'`, `'\u{1F980}'`),
//! * raw identifiers (`r#match`) versus raw strings (`r#"..."#`).
//!
//! Everything else (numbers, punctuation) is tokenized loosely; the rules
//! never inspect those beyond single characters.

/// The kind of one lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (raw identifiers carry their bare name).
    Ident(String),
    /// A lifetime such as `'a` (the name excludes the quote).
    Lifetime(String),
    /// A string literal; the payload is the *content* (no quotes, raw —
    /// escape sequences are not cooked, which the rules never need).
    Str(String),
    /// A char or byte literal (`'x'`, `b'\n'`); content is irrelevant.
    Char,
    /// A numeric literal (integer or float, any base/suffix).
    Num,
    /// A single punctuation character (`{`, `}`, `.`, `!`, …).
    Punct(char),
    /// A `//` comment; the payload excludes the slashes and newline.
    LineComment(String),
    /// A `/* */` comment (nesting handled); payload excludes delimiters.
    BlockComment(String),
}

/// One token plus its location (lines are 1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: Tok,
    /// Line the token starts on.
    pub line: u32,
    /// Line the token ends on (differs for multi-line strings/comments).
    pub end_line: u32,
}

/// Lexes `src` into a token stream. Never fails: unterminated constructs
/// are tolerated by consuming to end-of-file (the analyzer lints files
/// that `rustc` may still reject; best-effort beats a hard error).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: Tok, start_line: u32) {
        self.out.push(Token {
            kind,
            line: start_line,
            end_line: self.line,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let start = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(start),
                '/' if self.peek(1) == Some('*') => self.block_comment(start),
                '"' => self.cooked_string(start),
                '\'' => self.quote(start),
                c if c.is_ascii_digit() => self.number(start),
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed(start),
                c => {
                    self.bump();
                    self.push(Tok::Punct(c), start);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, start: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(Tok::LineComment(text), start);
    }

    fn block_comment(&mut self, start: u32) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(Tok::BlockComment(text), start);
    }

    /// A `"…"` string with `\`-escapes (the opening quote not yet consumed).
    fn cooked_string(&mut self, start: u32) {
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    // Keep the escape verbatim; rules match raw content.
                    text.push('\\');
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                '"' => break,
                c => text.push(c),
            }
        }
        self.push(Tok::Str(text), start);
    }

    /// A `r"…"` / `r#"…"#` raw string; `'r'` already consumed, `self.pos`
    /// is at the first `#` or the opening quote.
    fn raw_string(&mut self, start: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // Candidate close: must be followed by `hashes` hashes.
                for ahead in 0..hashes {
                    if self.peek(ahead) != Some('#') {
                        text.push('"');
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
        }
        self.push(Tok::Str(text), start);
    }

    /// `'` starts either a lifetime or a char literal; disambiguate by
    /// lookahead the way rustc does: it is a char literal iff the next
    /// char is an escape, or a single char directly followed by `'`.
    fn quote(&mut self, start: u32) {
        self.bump(); // the opening '
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume until the closing quote.
                self.bump();
                self.bump(); // escape head ('n', 'u', '\'', …)
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(Tok::Char, start);
            }
            Some(c) if self.peek(1) == Some('\'') => {
                // 'x' — a one-char literal (also covers '_', digits, …).
                let _ = c;
                self.bump();
                self.bump();
                self.push(Tok::Char, start);
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                // A lifetime: consume the identifier.
                let mut name = String::new();
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(Tok::Lifetime(name), start);
            }
            _ => {
                // Stray quote (e.g. inside a macro); treat as punctuation.
                self.push(Tok::Punct('\''), start);
            }
        }
    }

    fn number(&mut self, start: u32) {
        // Loose: digits, `_`, base/exponent letters, and `.` only when a
        // digit follows (so `1..2` lexes as Num Punct Punct Num).
        while let Some(c) = self.peek(0) {
            let part_of_number = c == '_'
                || c.is_ascii_alphanumeric()
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if !part_of_number {
                break;
            }
            self.bump();
        }
        self.push(Tok::Num, start);
    }

    /// An identifier — or one of the literal prefixes `r` / `b` / `br` /
    /// `c` / `cr` fused onto a string, or a raw identifier `r#name`.
    fn ident_or_prefixed(&mut self, start: u32) {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match (name.as_str(), self.peek(0)) {
            // Raw string (possibly byte/C): r"…", r#"…"#, br#"…"#, cr"…".
            ("r" | "br" | "cr", Some('"')) | ("r" | "br" | "cr", Some('#'))
                if self.raw_follows() =>
            {
                self.raw_string(start);
            }
            // Raw identifier r#name (the `#` is followed by an ident char,
            // which `raw_follows` ruled out above).
            ("r", Some('#')) => {
                self.bump();
                let mut raw = String::new();
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        raw.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(Tok::Ident(raw), start);
            }
            // Cooked byte/C string or byte char: b"…", c"…", b'…'.
            ("b" | "c", Some('"')) => self.cooked_string(start),
            ("b", Some('\'')) => self.quote(start),
            _ => self.push(Tok::Ident(name), start),
        }
    }

    /// True when the chars at `pos` are `#`*n `"` (a raw-string opener) or
    /// an immediate `"`; distinguishes `r#"…"#` from `r#ident`.
    fn raw_follows(&self) -> bool {
        let mut ahead = 0usize;
        while self.peek(ahead) == Some('#') {
            ahead += 1;
        }
        self.peek(ahead) == Some('"')
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_punct() {
        assert_eq!(
            kinds("let x = y.unwrap();"),
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("x".into()),
                Tok::Punct('='),
                Tok::Ident("y".into()),
                Tok::Punct('.'),
                Tok::Ident("unwrap".into()),
                Tok::Punct('('),
                Tok::Punct(')'),
                Tok::Punct(';'),
            ]
        );
    }

    #[test]
    fn comments_do_not_hide_code_and_code_does_not_leak_into_comments() {
        let toks = kinds("a /* unwrap() */ b // HashMap\nc");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("a".into()),
                Tok::BlockComment(" unwrap() ".into()),
                Tok::Ident("b".into()),
                Tok::LineComment(" HashMap".into()),
                Tok::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("x /* outer /* inner */ still comment */ y");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0], Tok::Ident("x".into()));
        assert!(matches!(&toks[1], Tok::BlockComment(t)
            if t.contains("inner") && t.contains("still comment")));
        assert_eq!(toks[2], Tok::Ident("y".into()));
    }

    #[test]
    fn cooked_string_with_escaped_quote() {
        assert_eq!(
            kinds(r#"let s = "a\"b // not a comment";"#),
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("s".into()),
                Tok::Punct('='),
                Tok::Str(r#"a\"b // not a comment"#.into()),
                Tok::Punct(';'),
            ]
        );
    }

    #[test]
    fn raw_strings_any_hash_count() {
        assert_eq!(kinds(r###"r"plain""###), vec![Tok::Str("plain".into())]);
        assert_eq!(
            kinds(r###"r#"has "quotes" inside"#"###),
            vec![Tok::Str(r#"has "quotes" inside"#.into())]
        );
        assert_eq!(
            kinds("r##\"one # and \"# inside\"##"),
            vec![Tok::Str("one # and \"# inside".into())]
        );
        assert_eq!(kinds(r###"br#"bytes"#"###), vec![Tok::Str("bytes".into())]);
    }

    #[test]
    fn lifetimes_versus_char_literals() {
        assert_eq!(
            kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }"),
            vec![
                Tok::Ident("fn".into()),
                Tok::Ident("f".into()),
                Tok::Punct('<'),
                Tok::Lifetime("a".into()),
                Tok::Punct('>'),
                Tok::Punct('('),
                Tok::Ident("x".into()),
                Tok::Punct(':'),
                Tok::Punct('&'),
                Tok::Lifetime("a".into()),
                Tok::Ident("str".into()),
                Tok::Punct(')'),
                Tok::Punct('{'),
                Tok::Ident("let".into()),
                Tok::Ident("c".into()),
                Tok::Punct('='),
                Tok::Char,
                Tok::Punct(';'),
                Tok::Ident("let".into()),
                Tok::Ident("n".into()),
                Tok::Punct('='),
                Tok::Char,
                Tok::Punct(';'),
                Tok::Punct('}'),
            ]
        );
    }

    #[test]
    fn unicode_escape_char_literal() {
        assert_eq!(
            kinds(r"let crab = '\u{1F980}';"),
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("crab".into()),
                Tok::Punct('='),
                Tok::Char,
                Tok::Punct(';'),
            ]
        );
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        assert_eq!(
            kinds("let r#match = r#\"raw\"#;"),
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("match".into()),
                Tok::Punct('='),
                Tok::Str("raw".into()),
                Tok::Punct(';'),
            ]
        );
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let toks = lex("a\n/* two\nlines */\nb\"x\ny\"");
        assert_eq!(toks[0].line, 1);
        assert_eq!((toks[1].line, toks[1].end_line), (2, 3));
        assert_eq!(toks[2].line, 4);
        assert_eq!((toks[2].line, toks[2].end_line), (4, 5));
    }

    #[test]
    fn unterminated_constructs_do_not_loop() {
        assert!(!lex("/* never closed").is_empty());
        assert!(!lex("\"never closed").is_empty());
        assert!(!lex("r#\"never closed").is_empty());
    }

    #[test]
    fn byte_string_literals_are_single_tokens() {
        // `b"..."` must not split into an ident `b` plus a string — and
        // its contents must not leak tokens (the `]` here would otherwise
        // desynchronize bracket tracking in the item-tree parser).
        assert_eq!(
            kinds(r#"let x = b"ab]cd";"#),
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("x".into()),
                Tok::Punct('='),
                Tok::Str("ab]cd".into()),
                Tok::Punct(';'),
            ]
        );
        // Escapes terminate correctly: `\"` does not end the literal.
        assert_eq!(kinds(r#"b"a\"b""#), vec![Tok::Str("a\\\"b".into())]);
    }

    #[test]
    fn raw_byte_string_literals_skip_hash_guards() {
        assert_eq!(
            kinds(r##"let x = br#"a "quoted" b"#;"##),
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("x".into()),
                Tok::Punct('='),
                Tok::Str("a \"quoted\" b".into()),
                Tok::Punct(';'),
            ]
        );
        // And the un-guarded form `br"..."`.
        assert_eq!(kinds(r#"br"xy""#), vec![Tok::Str("xy".into())]);
    }

    #[test]
    fn static_lifetime_in_turbofish_is_a_lifetime_not_a_char() {
        // `'static` directly after `::<` must lex as a lifetime; a char
        // misread would swallow `static>` and derail generic tracking.
        assert_eq!(
            kinds("f::<'static, T>()"),
            vec![
                Tok::Ident("f".into()),
                Tok::Punct(':'),
                Tok::Punct(':'),
                Tok::Punct('<'),
                Tok::Lifetime("static".into()),
                Tok::Punct(','),
                Tok::Ident("T".into()),
                Tok::Punct('>'),
                Tok::Punct('('),
                Tok::Punct(')'),
            ]
        );
        // Lifetime followed immediately by a real char literal.
        assert_eq!(
            kinds("&'static str; 's'"),
            vec![
                Tok::Punct('&'),
                Tok::Lifetime("static".into()),
                Tok::Ident("str".into()),
                Tok::Punct(';'),
                Tok::Char,
            ]
        );
    }
}
